package multicast_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"multicast"
)

func campaignCfg() multicast.Config {
	return multicast.Config{
		N:         64,
		Algorithm: multicast.AlgoMultiCast,
		Adversary: multicast.RandomFractionJammer(0.5),
		Budget:    20_000,
		Seed:      9,
	}
}

// A driven single-workload campaign must reproduce the streaming API's
// metrics exactly, and its artifact must round-trip through the
// file-merge path.
func TestRunCampaignMatchesRunTrials(t *testing.T) {
	cfg := campaignCfg()
	const trials = 9

	var slots []int64
	err := multicast.RunTrialsContext(context.Background(), cfg,
		multicast.TrialPlan{Trials: trials},
		func(_ int, m multicast.Metrics) error { slots = append(slots, m.Slots); return nil })
	if err != nil {
		t.Fatal(err)
	}
	var wantMean float64
	for _, s := range slots {
		wantMean += float64(s)
	}
	wantMean /= float64(len(slots))

	sum, err := multicast.RunCampaign(context.Background(), cfg, multicast.CampaignPlan{
		Trials: trials, Shards: 3, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Single() || len(sum.Points) != 1 {
		t.Fatalf("single-workload campaign produced %d points (scenario %q)", len(sum.Points), sum.Scenario)
	}
	col := sum.Points[0].Collector
	if col.Trials() != trials {
		t.Fatalf("campaign covered %d trials, want %d", col.Trials(), trials)
	}
	if got := col.Slots().Mean; got != wantMean {
		t.Errorf("campaign slot mean %v != streaming mean %v", got, wantMean)
	}
}

// Cancelling a driven scenario campaign mid-run and resuming it must
// produce per-point summaries bit-identical to the uninterrupted run.
func TestRunScenarioCampaignCancelResume(t *testing.T) {
	scen, ok := multicast.ScenarioByName("duel")
	if !ok {
		t.Fatal("duel scenario missing")
	}
	opts := multicast.ScenarioOptions{Seed: 9, N: 32, Budget: 10_000}
	plan := multicast.CampaignPlan{Trials: 5, Shards: 2, Dir: t.TempDir()}

	whole, err := multicast.RunScenarioCampaign(context.Background(), scen, opts,
		multicast.CampaignPlan{Trials: plan.Trials, Shards: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the campaign after a few cells, then resume it.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	interrupted := plan
	interrupted.Progress = func(ev multicast.CampaignEvent) {
		if ev.Kind == multicast.CampaignShardCell && ev.Done >= 2 {
			once.Do(cancel)
		}
	}
	_, err = multicast.RunScenarioCampaign(ctx, scen, opts, interrupted)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign: err = %v, want context.Canceled", err)
	}

	resumed := plan
	resumed.Resume = true
	sum, err := multicast.RunScenarioCampaign(context.Background(), scen, opts, resumed)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if sum.Identity() != whole.Identity() {
		t.Fatalf("identity diverged:\n got %q\nwant %q", sum.Identity(), whole.Identity())
	}
	for p := range whole.Points {
		g, w := sum.Points[p].Collector, whole.Points[p].Collector
		if g.Trials() != w.Trials() || g.Slots() != w.Slots() || g.EveEnergy() != w.EveEnergy() {
			t.Errorf("point %d (%s): resumed summaries diverge from the uninterrupted run",
				p, whole.Points[p].Label)
		}
	}
}

// MergeSummaries must enforce the exact-coverage rules at the public
// surface too.
func TestMergeSummariesRefusesMixedCampaigns(t *testing.T) {
	cfg := campaignCfg()
	run := func(seed uint64) *multicast.Summary {
		c := cfg
		c.Seed = seed
		s, err := multicast.RunCampaign(context.Background(), c, multicast.CampaignPlan{
			Trials: 2, Dir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(1), run(2)
	if _, err := multicast.MergeSummaries([]*multicast.Summary{a, b}); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Errorf("err = %v, want a different-campaign refusal", err)
	}
	if _, err := multicast.MergeSummaries([]*multicast.Summary{a}); err != nil {
		t.Errorf("merging one complete summary: %v", err)
	}
}
