package multicast

import (
	"multicast/internal/adversary"
	"multicast/internal/trace"
)

// TraceRecorder records per-slot time series (informed count, halted
// count, jam intensity, traffic) when attached as Config.Observer, and
// renders them as ASCII charts. See NewTraceRecorder.
type TraceRecorder = trace.Recorder

// TraceSeries is one recorded, downsampled time series.
type TraceSeries = trace.Series

// NewTraceRecorder returns a recorder sampling every stride slots. Attach
// it with Config.Observer (it slows the hot loop; use for demos/debugging).
func NewTraceRecorder(stride int64) *TraceRecorder { return trace.NewRecorder(stride) }

// TraceChart renders series as labelled sparkline rows of the given width.
func TraceChart(width int, series ...*TraceSeries) string {
	return trace.Chart(width, series...)
}

// BurstyJammer is a two-state Markov (on/off) jammer: geometric bursts of
// f-fraction jamming with the given mean durations — the "microwave oven"
// interference of the paper's introduction.
func BurstyJammer(f float64, meanOn, meanOff float64) Adversary {
	return adversary.Bursty(f, meanOn, meanOff)
}
