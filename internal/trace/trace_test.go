package trace

import (
	"strings"
	"testing"

	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
)

func TestRecorderSamples(t *testing.T) {
	r := NewRecorder(10)
	for slot := int64(0); slot < 100; slot++ {
		r.Slot(slot, 32, int(slot%5), 3, 2, int(slot), 0)
	}
	if r.Slots() != 100 {
		t.Fatalf("Slots = %d, want 100", r.Slots())
	}
	if len(r.Jammed.Values) != 10 {
		t.Fatalf("10 strides expected, got %d", len(r.Jammed.Values))
	}
	// Monotone curves keep the latest value within a stride.
	if got := r.Informed.Values[0]; got != 9 {
		t.Errorf("informed stride 0 = %v, want 9 (last slot of the stride)", got)
	}
	// Activity curves sample the stride's first slot.
	if got := r.Jammed.Values[3]; got != 0 {
		t.Errorf("jammed stride 3 = %v, want 0 (slot 30 %% 5)", got)
	}
}

func TestRecorderStrideClamp(t *testing.T) {
	r := NewRecorder(0)
	r.Slot(0, 1, 0, 0, 0, 1, 0)
	if len(r.Informed.Values) != 1 {
		t.Fatal("stride 0 must clamp to 1")
	}
}

func TestSeriesAtAndMax(t *testing.T) {
	s := &Series{Name: "x", Stride: 5, Values: []float64{1, 4, 2}}
	cases := map[int64]float64{0: 1, 4: 1, 5: 4, 9: 4, 10: 2, 999: 2, -3: 1}
	for slot, want := range cases {
		if got := s.At(slot); got != want {
			t.Errorf("At(%d) = %v, want %v", slot, got, want)
		}
	}
	if s.Max() != 4 {
		t.Errorf("Max = %v", s.Max())
	}
	empty := &Series{Stride: 1}
	if empty.At(3) != 0 || empty.Max() != 0 {
		t.Error("empty series must return zeros")
	}
}

func TestSparkline(t *testing.T) {
	s := &Series{Name: "ramp", Stride: 1, Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}}
	line := Sparkline(s, 8)
	runes := []rune(line)
	if len(runes) != 8 {
		t.Fatalf("width %d, want 8", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("ramp endpoints wrong: %q", line)
	}
	if Sparkline(s, 0) != "" || Sparkline(&Series{Stride: 1}, 5) != "" {
		t.Error("degenerate inputs must render empty")
	}
	flat := &Series{Stride: 1, Values: []float64{0, 0, 0}}
	if got := Sparkline(flat, 3); got != "▁▁▁" {
		t.Errorf("all-zero series = %q", got)
	}
}

func TestChart(t *testing.T) {
	a := &Series{Name: "aa", Stride: 2, Values: []float64{1, 2}}
	b := &Series{Name: "b", Stride: 2, Values: []float64{5}}
	out := Chart(10, a, b)
	if !strings.Contains(out, "aa") || !strings.Contains(out, "max=5") {
		t.Fatalf("chart missing content:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("chart must have one line per series:\n%s", out)
	}
}

func TestRecorderAgainstEngine(t *testing.T) {
	// The recorder's informed curve must reach n and be non-decreasing
	// when attached to a real execution.
	rec := NewRecorder(8)
	m, err := sim.Run(sim.Config{
		N: 64,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCastCore(core.Sim(), 64, 0)
		},
		Seed:     5,
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Slots() != m.Slots {
		t.Fatalf("recorder saw %d slots, metrics %d", rec.Slots(), m.Slots)
	}
	prev := 0.0
	for i, v := range rec.Informed.Values {
		if v < prev {
			t.Fatalf("informed curve decreased at stride %d: %v < %v", i, v, prev)
		}
		prev = v
	}
	if rec.Informed.Max() != 64 {
		t.Fatalf("informed curve peaks at %v, want 64", rec.Informed.Max())
	}
}
