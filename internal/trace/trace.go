// Package trace records per-slot time series from an execution through the
// engine's Observer hook and renders them as compact ASCII charts. It
// exists for the examples and the single-run CLI: the epidemic S-curve of
// the informed count, the jam intensity profile, and the halt wave are the
// paper's §1 intuition made visible.
package trace

import (
	"fmt"
	"strings"
)

// Series is a downsampled time series: one sample per Stride slots.
type Series struct {
	// Name labels the series in charts.
	Name string
	// Stride is the sampling interval in slots.
	Stride int64
	// Values holds one sample per stride (the value at the stride's last
	// observed slot).
	Values []float64
}

// At returns the sample covering the given slot (clamped to the range).
func (s *Series) At(slot int64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	i := int(slot / s.Stride)
	if i < 0 {
		i = 0
	}
	if i >= len(s.Values) {
		i = len(s.Values) - 1
	}
	return s.Values[i]
}

// Max returns the largest sample (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Recorder is a sim.Observer that records the standard execution curves.
// The zero value is not usable; call NewRecorder.
type Recorder struct {
	stride int64

	Informed *Series // nodes that know m
	Halted   *Series // nodes that terminated
	Jammed   *Series // channels Eve jammed in the slot
	Traffic  *Series // listeners + broadcasters in the slot

	slots int64
}

// NewRecorder returns a Recorder sampling every stride slots (stride ≥ 1).
func NewRecorder(stride int64) *Recorder {
	if stride < 1 {
		stride = 1
	}
	return &Recorder{
		stride:   stride,
		Informed: &Series{Name: "informed", Stride: stride},
		Halted:   &Series{Name: "halted", Stride: stride},
		Jammed:   &Series{Name: "jammed", Stride: stride},
		Traffic:  &Series{Name: "traffic", Stride: stride},
	}
}

// Slot implements the engine's Observer interface.
func (r *Recorder) Slot(slot int64, channels, jammed, listeners, broadcasters, informed, halted int) {
	r.slots = slot + 1
	if slot%r.stride != 0 {
		// Keep the latest value of the stride for monotone curves; for
		// the activity curves the stride sample is the stride's first
		// slot, which is unbiased for stationary behaviour.
		if n := len(r.Informed.Values); n > 0 {
			r.Informed.Values[n-1] = float64(informed)
			r.Halted.Values[n-1] = float64(halted)
		}
		return
	}
	r.Informed.Values = append(r.Informed.Values, float64(informed))
	r.Halted.Values = append(r.Halted.Values, float64(halted))
	r.Jammed.Values = append(r.Jammed.Values, float64(jammed))
	r.Traffic.Values = append(r.Traffic.Values, float64(listeners+broadcasters))
}

// Slots returns the number of slots observed.
func (r *Recorder) Slots() int64 { return r.slots }

// Sparkline renders values as a one-line unicode sparkline of the given
// width, rescaled to the series maximum.
func Sparkline(s *Series, width int) string {
	if width < 1 || len(s.Values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := s.Max()
	var b strings.Builder
	for i := 0; i < width; i++ {
		// Sample the series uniformly.
		idx := i * len(s.Values) / width
		v := s.Values[idx]
		if max == 0 {
			b.WriteRune(ramp[0])
			continue
		}
		level := int(v / max * float64(len(ramp)-1))
		if level < 0 {
			level = 0
		}
		if level >= len(ramp) {
			level = len(ramp) - 1
		}
		b.WriteRune(ramp[level])
	}
	return b.String()
}

// Chart renders one or more series as a labelled multi-line ASCII chart of
// the given width, each line a sparkline annotated with its range.
func Chart(width int, series ...*Series) string {
	var b strings.Builder
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range series {
		fmt.Fprintf(&b, "%-*s %s  max=%g (stride %d slots)\n",
			nameW, s.Name, Sparkline(s, width), s.Max(), s.Stride)
	}
	return b.String()
}
