// Package experiments defines the reproduction experiments E1–E14 (see
// DESIGN.md §3). The paper is a theory paper with no empirical tables, so
// each experiment operationalises one theorem, lemma, or in-text claim as
// a measurable workload: a parameter sweep, the adversary the claim is
// about, and the metric whose scaling shape the claim predicts. The
// harness prints one table per experiment plus fitted log-log slopes so
// the measured exponents can be compared with the claimed ones.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"multicast/internal/runner"
	"multicast/internal/scenario"
	"multicast/internal/sim"
	"multicast/internal/stats"
)

// RunConfig controls how much statistical work an experiment does.
type RunConfig struct {
	// Trials per data point. Zero means the experiment's default.
	Trials int
	// Seed is the base seed; data points derive their own seeds from it.
	Seed uint64
	// Quick trims sweeps to small parameter ranges so the whole suite
	// finishes in a couple of minutes (used by benchmarks and CI).
	Quick bool
	// Engine overrides the slot-loop implementation for every trial
	// (zero = Auto). Dense and sparse produce identical metrics; the
	// knob exists to re-run tables on the reference engine or to time
	// the difference.
	Engine sim.Engine
}

// Result is a rendered experiment outcome.
type Result struct {
	// ID is the experiment identifier (E1…E14).
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper statement being checked.
	Claim string
	// Columns are the table headers.
	Columns []string
	// Rows are the formatted table cells.
	Rows [][]string
	// Notes carry fitted slopes and pass/fail observations.
	Notes []string
}

// Experiment is a runnable reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg RunConfig) (Result, error)
}

// registry is populated by the per-experiment files' init functions.
var registry []Experiment

func register(e Experiment) {
	if _, ok := idOrder(e.ID); !ok {
		panic(fmt.Sprintf("experiments: malformed experiment ID %q (want E<number>)", e.ID))
	}
	registry = append(registry, e)
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// register rejected malformed IDs, so the keys always exist.
		a, _ := idOrder(out[i].ID)
		b, _ := idOrder(out[j].ID)
		return a < b
	})
	return out
}

// idOrder maps "E10" → 10 for sorting. IDs that do not match the
// E<number> scheme (with a positive number) are rejected with ok =
// false rather than silently sorting first as 0, so registration can
// refuse them outright.
func idOrder(id string) (n int, ok bool) {
	if len(id) < 2 || len(id) > 8 || (id[0] != 'E' && id[0] != 'e') {
		return 0, false
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n == 0 {
		return 0, false
	}
	return n, true
}

// Get returns the experiment with the given ID (case-insensitive).
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Shared measurement helpers

// point aggregates the trials of one sweep point.
type point struct {
	Slots, MaxEnergy, EveEnergy, AllInformed stats.Summary
	Invariants                               sim.InvariantCounts
}

// measure runs trials of sc under rc's engine choice and aggregates the
// headline metrics. Trials stream straight into mergeable accumulators
// (O(1) memory in the trial count): no per-trial metric slices exist on
// this path anymore.
func (rc RunConfig) measure(sc sim.Config, trials int) (point, error) {
	sc.Engine = rc.Engine
	col := runner.NewCollector()
	if err := runner.Run(context.Background(), sc, runner.Plan{Trials: trials}, col.Add); err != nil {
		return point{}, err
	}
	return point{
		Slots:       col.Slots(),
		MaxEnergy:   col.MaxEnergy(),
		EveEnergy:   col.EveEnergy(),
		AllInformed: col.AllInformed(),
		Invariants:  col.Invariants(),
	}, nil
}

// expand pulls a named workload grid out of the scenario registry —
// experiments that sweep a standard axis (channel counts, algorithm
// duels) enumerate through the registry so the experiment tables, the
// CLIs, and the examples measure the same points.
func expand(name string, opts scenario.Options) ([]scenario.Point, error) {
	s, ok := scenario.Get(name)
	if !ok {
		return nil, fmt.Errorf("experiments: scenario %q missing from the registry", name)
	}
	pts := s.Points(opts)
	if len(pts) == 0 {
		return nil, fmt.Errorf("experiments: scenario %q expanded to zero points", name)
	}
	return pts, nil
}

// measurePoints measures every workload point of an expanded scenario.
func (rc RunConfig) measurePoints(pts []scenario.Point, trials int) ([]point, error) {
	out := make([]point, len(pts))
	for i, p := range pts {
		sc, err := p.Config.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: point %s: %w", p.Label, err)
		}
		m, err := rc.measure(sc, trials)
		if err != nil {
			return nil, fmt.Errorf("experiments: point %s: %w", p.Label, err)
		}
		out[i] = m
	}
	return out, nil
}

// defaultTrials resolves the trial count.
func defaultTrials(cfg RunConfig, def, quick int) int {
	if cfg.Trials > 0 {
		return cfg.Trials
	}
	if cfg.Quick {
		return quick
	}
	return def
}

// fmtInt renders a float that represents a count.
func fmtInt(v float64) string {
	switch {
	case v >= 1e7:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// fmtSlope renders a fitted exponent with its R².
func fmtSlope(f stats.Fit) string {
	return fmt.Sprintf("%.2f (R²=%.3f)", f.Slope, f.R2)
}

// Render formats the result as an aligned text table.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper claim: %s\n", r.Claim)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown formats the result as a GitHub-flavoured markdown table.
func (r Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&b, "*Paper claim:* %s\n\n", r.Claim)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(r.Columns, " | "))
	b.WriteString("|")
	for range r.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}

// CSV formats the result as RFC-4180-ish CSV (quotes only where needed).
func (r Result) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}
