package experiments

import (
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "extension: adaptive (reactive) Eve — the §8 conjecture",
		Claim: "§8 future work: \"we suspect MultiCast and MultiCastAdv can handle such more powerful adversary with few (or even no) modifications\" — per-slot channel hopping should neutralise reactivity",
		Run:   runE13,
	})
}

func runE13(cfg RunConfig) (Result, error) {
	const n = 256
	const budget = int64(100_000)
	trials := defaultTrials(cfg, 10, 3)

	res := Result{
		ID:      "E13",
		Title:   "extension: adaptive (reactive) Eve",
		Claim:   "§8 conjecture (this is an extension beyond the paper's proofs)",
		Columns: []string{"adversary", "class", "slots (mean)", "max node cost", "Eve spent", "violations"},
	}

	type foe struct {
		adv   adversary.Factory
		class string
	}
	foes := []foe{
		{adversary.None(), "baseline"},
		{adversary.BlockFraction(0.5), "oblivious"},
		{adversary.FullBurst(0), "oblivious"},
		{adversary.Reactive(0.5), "ADAPTIVE"},
		{adversary.Reactive(1.0), "ADAPTIVE"},
		{adversary.Camper(64, 128), "ADAPTIVE"},
	}
	if cfg.Quick {
		foes = []foe{
			{adversary.FullBurst(0), "oblivious"},
			{adversary.Reactive(1.0), "ADAPTIVE"},
		}
	}

	var oblivSlots, adaptSlots []float64
	for fi, f := range foes {
		p, err := cfg.measure(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: f.adv,
			Budget:    budget,
			Seed:      cfg.Seed + uint64(fi)*739,
			MaxSlots:  1 << 26,
		}, trials)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, []string{
			f.adv.Name(),
			f.class,
			fmtInt(p.Slots.Mean),
			fmtInt(p.MaxEnergy.Mean),
			fmtInt(p.EveEnergy.Mean),
			fmt.Sprintf("%d", violations(p)),
		})
		switch f.class {
		case "oblivious":
			oblivSlots = append(oblivSlots, p.Slots.Mean)
		case "ADAPTIVE":
			adaptSlots = append(adaptSlots, p.Slots.Mean)
		}
	}
	worst := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if len(oblivSlots) > 0 && len(adaptSlots) > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"worst adaptive delay / worst oblivious delay = %.2f — values ≤ ~1 support the conjecture that per-slot rehopping makes last-slot knowledge worthless",
			worst(adaptSlots)/worst(oblivSlots)))
	}
	res.Notes = append(res.Notes,
		"adaptive Eve observes every channel's outcome each slot (delivered/collided/quiet/jammed) and conditions the next jam set on the full history; she still cannot predict fresh coins",
		"safety invariants must stay at zero even against adaptive strategies")
	return res, nil
}
