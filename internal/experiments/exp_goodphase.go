package experiments

import (
	"context"
	"fmt"
	"strings"

	"multicast/internal/core"
	"multicast/internal/predict"
	"multicast/internal/protocol"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "good-phase identification: helpers emerge only at jˆ = lg n − 1 (or lg C)",
		Claim: "Lemmas 6.1–6.3: w.h.p. no node becomes helper in epochs i ≤ lg n, at phases j ≥ lg n, or at phases j < lg n − 1; Corollary C.1 moves the target to j = lg C under the cut-off",
		Run:   runE14,
	})
}

func runE14(cfg RunConfig) (Result, error) {
	n := 64
	trials := defaultTrials(cfg, 3, 1)
	params := core.Sim()

	type variant struct {
		name    string
		build   func() (protocol.Algorithm, error)
		targetJ int
	}
	variants := []variant{
		{
			name:    "MultiCastAdv",
			build:   func() (protocol.Algorithm, error) { return core.NewMultiCastAdv(params) },
			targetJ: lg2(n) - 1,
		},
		{
			name:    "MultiCastAdv(C=16)",
			build:   func() (protocol.Algorithm, error) { return core.NewMultiCastAdvC(params, 16) },
			targetJ: 4, // lg 16
		},
	}
	if cfg.Quick {
		variants = variants[:1]
	}

	res := Result{
		ID:      "E14",
		Title:   "good-phase identification",
		Claim:   "Lemmas 6.1–6.3 / Corollary C.1",
		Columns: []string{"algorithm", "predicted jˆ", "jˆ histogram (j:count)", "wrong-phase helpers", "helper epoch (predicted)"},
	}
	for vi, v := range variants {
		// The jˆ histogram folds in per trial as metrics stream out of the
		// runner; no per-trial buffering.
		var hist [sim.MaxHelperJBucket + 1]int64
		err := runner.Run(context.Background(), sim.Config{
			N:         n,
			Algorithm: v.build,
			Seed:      cfg.Seed + uint64(vi)*547,
			MaxSlots:  1 << 27,
			Engine:    cfg.Engine,
		}, runner.Plan{Trials: trials}, func(_ int, m sim.Metrics) error {
			for j, c := range m.HelperJCounts {
				hist[j] += int64(c)
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}
		var parts []string
		wrong := int64(0)
		for j, c := range hist {
			if c == 0 {
				continue
			}
			parts = append(parts, fmt.Sprintf("%d:%d", j, c))
			if j != v.targetJ {
				wrong += c
			}
		}
		he := predict.HelperEpoch(params, n, 0)
		res.Rows = append(res.Rows, []string{
			v.name,
			fmt.Sprintf("%d", v.targetJ),
			strings.Join(parts, " "),
			fmt.Sprintf("%d", wrong),
			fmt.Sprintf("%d", he),
		})
	}
	res.Notes = append(res.Notes,
		"every helper transition must land on the predicted phase: wrong-phase helpers would let Eve jam a phase the nodes are not actually relying on",
		"the predicted helper epoch comes from the closed-form counter expectations (internal/predict), i.e. the same algebra as Lemmas 6.1–6.3")
	return res, nil
}
