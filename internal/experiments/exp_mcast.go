package experiments

import (
	"fmt"
	"math"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
	"multicast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "MultiCast: time Θ̃(T/n), cost Θ̃(√(T/n))",
		Claim: "Theorem 5.4: all nodes terminate within O(T/n + lg²n) slots at cost O(√(T/n)·√lgT·lgn + lg²n)",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E9",
		Title: "resource competitiveness: node cost grows as the square root of Eve's",
		Claim: "Definition 3.1 with Theorem 5.4's ρ: max node cost / T → 0, specifically cost ∝ T^{1/2}",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "fixed budget, growing network: more nodes help",
		Claim: "Theorems 4.4/5.4: at fixed T, time falls like 1/n and cost like 1/√n (up to polylog)",
		Run:   runE10,
	})
}

// sweepMultiCastBudgets runs MultiCast for each budget and returns points.
func sweepMultiCastBudgets(cfg RunConfig, n int, budgets []int64, trials int) ([]point, error) {
	points := make([]point, len(budgets))
	for bi, budget := range budgets {
		p, err := cfg.measure(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.FullBurst(0),
			Budget:    budget,
			Seed:      cfg.Seed + uint64(bi)*3571,
			MaxSlots:  1 << 26,
		}, trials)
		if err != nil {
			return nil, err
		}
		points[bi] = p
	}
	return points, nil
}

func runE3(cfg RunConfig) (Result, error) {
	const n = 256
	// Dense T grid: MultiCast's runtime is a step function of T (an
	// iteration is entered whole or not at all, and lengths grow 4× per
	// iteration), so sparse decade sampling aliases the slope; several
	// points per decade average the quantization out.
	budgets := []int64{10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}
	trials := defaultTrials(cfg, 5, 2)
	if cfg.Quick {
		budgets = []int64{10_000, 100_000, 1_000_000}
	}
	points, err := sweepMultiCastBudgets(cfg, n, budgets, trials)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:      "E3",
		Title:   "MultiCast: time Θ̃(T/n), cost Θ̃(√(T/n))",
		Claim:   "Theorem 5.4",
		Columns: []string{"T", "slots (mean)", "max node cost", "√(T/n)", "Eve spent", "violations"},
	}
	var xs, ySlots, yCost []float64
	for bi, p := range points {
		budget := budgets[bi]
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", budget),
			fmtInt(p.Slots.Mean),
			fmtInt(p.MaxEnergy.Mean),
			fmtInt(sqrtf(float64(budget) / float64(n))),
			fmtInt(p.EveEnergy.Mean),
			fmt.Sprintf("%d", violations(p)),
		})
		xs = append(xs, float64(budget))
		ySlots = append(ySlots, p.Slots.Mean)
		yCost = append(yCost, p.MaxEnergy.Mean)
	}
	res.Notes = append(res.Notes,
		"slots vs T slope "+fmtSlope(stats.LogLogSlope(xs, ySlots))+" — theorem predicts → 1 (iteration quantization puts steps of ×~5 on the curve)",
		"cost vs T slope "+fmtSlope(stats.LogLogSlope(xs, yCost))+" — theorem predicts → 0.5 (the √(T/n) law); compare E2's slope ≈ 1 for MultiCastCore")
	return res, nil
}

func runE9(cfg RunConfig) (Result, error) {
	const n = 256
	budgets := []int64{10_000, 100_000, 1_000_000}
	trials := defaultTrials(cfg, 5, 2)
	if cfg.Quick {
		budgets = []int64{10_000, 100_000}
	}
	points, err := sweepMultiCastBudgets(cfg, n, budgets, trials)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:      "E9",
		Title:   "resource competitiveness ratio",
		Claim:   "Definition 3.1: max_u cost(u) ≤ ρ(T) + τ with ρ(T) = Θ̃(√(T/n)) ∈ o(T)",
		Columns: []string{"Eve spent T(π)", "max node cost", "cost/T ratio", "cost/√(T/n)"},
	}
	var xs, ys []float64
	for _, p := range points {
		t := p.EveEnergy.Mean
		c := p.MaxEnergy.Mean
		res.Rows = append(res.Rows, []string{
			fmtInt(t),
			fmtInt(c),
			fmt.Sprintf("%.4f", c/t),
			fmt.Sprintf("%.2f", c/sqrtf(t/float64(n))),
		})
		xs = append(xs, t)
		ys = append(ys, c)
	}
	res.Notes = append(res.Notes,
		"cost vs actual Eve spend slope "+fmtSlope(stats.LogLogSlope(xs, ys))+" — competitiveness requires < 1, theory predicts 0.5",
		"the cost/T ratio must fall as T grows: honest nodes bankrupt the jammer")
	return res, nil
}

func runE10(cfg RunConfig) (Result, error) {
	const budget = int64(2_000_000)
	ns := []int{64, 128, 256, 512, 1024}
	trials := defaultTrials(cfg, 5, 2)
	if cfg.Quick {
		ns = []int{64, 256}
	}
	res := Result{
		ID:      "E10",
		Title:   "fixed budget, growing network",
		Claim:   "Theorems 4.4/5.4 n-dependence",
		Columns: []string{"n", "slots (mean)", "jam-free floor", "max node cost", "T/n", "violations"},
	}
	var xs, ySlots, yCost []float64
	for ni, n := range ns {
		nn := n
		build := func() (protocol.Algorithm, error) {
			return core.NewMultiCast(core.Sim(), nn)
		}
		p, err := cfg.measure(sim.Config{
			N:         nn,
			Algorithm: build,
			Adversary: adversary.FullBurst(0),
			Budget:    budget,
			Seed:      cfg.Seed + uint64(ni)*7919,
			MaxSlots:  1 << 26,
		}, trials)
		if err != nil {
			return Result{}, err
		}
		// The jam-free floor is the O(lg²n) τ term; points where the
		// floor dominates say nothing about the T/n law, so they are
		// reported but excluded from the fit.
		floor, err := cfg.measure(sim.Config{
			N: nn, Algorithm: build, Seed: cfg.Seed + uint64(ni)*7919, MaxSlots: 1 << 26,
		}, trials)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", nn),
			fmtInt(p.Slots.Mean),
			fmtInt(floor.Slots.Mean),
			fmtInt(p.MaxEnergy.Mean),
			fmt.Sprintf("%d", budget/int64(nn)),
			fmt.Sprintf("%d", violations(p)),
		})
		if p.Slots.Mean > 3*floor.Slots.Mean {
			xs = append(xs, float64(nn))
			ySlots = append(ySlots, p.Slots.Mean)
			yCost = append(yCost, p.MaxEnergy.Mean)
		}
	}
	if len(xs) >= 2 {
		res.Notes = append(res.Notes,
			"slots vs n slope (floor-dominated points excluded) "+fmtSlope(stats.LogLogSlope(xs, ySlots))+" — theory predicts → −1",
			"cost vs n slope (same points) "+fmtSlope(stats.LogLogSlope(xs, yCost))+" — theory predicts → −0.5")
	}
	res.Notes = append(res.Notes,
		"once T/n falls under the lg²n floor, more nodes stop helping — exactly the '+ lg²n' additive term of Theorem 5.4")
	return res, nil
}

func sqrtf(v float64) float64 {
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}
