package experiments

import (
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "safety invariants under adversarial schedules",
		Claim: "Lemmas 4.2/5.2 (no node halts before everyone is informed), 6.4 (helpers imply all informed), 6.5 (halts imply all helpers) — each holds w.h.p.",
		Run:   runE11,
	})
}

func runE11(cfg RunConfig) (Result, error) {
	const n = 64
	trials := defaultTrials(cfg, 20, 4)
	advTrials := 2
	if cfg.Quick {
		advTrials = 1
	}

	res := Result{
		ID:      "E11",
		Title:   "safety invariants under adversarial schedules",
		Claim:   "Lemmas 4.2 / 5.2 / 6.4 / 6.5",
		Columns: []string{"algorithm", "adversary", "trials", "halted-uninformed", "halt-before-informed", "helper-before-informed", "halt-before-helpers"},
	}

	type caseDef struct {
		alg    string
		build  func() (protocol.Algorithm, error)
		adv    adversary.Factory
		budget int64
		trials int
		max    int64
	}
	params := core.Sim()
	cases := []caseDef{
		{
			alg:    "MultiCastCore",
			build:  func() (protocol.Algorithm, error) { return core.NewMultiCastCore(params, n, 20_000) },
			adv:    adversary.Pulse(128, 64, 0.95, 0),
			budget: 20_000, trials: trials,
		},
		{
			alg:    "MultiCastCore",
			build:  func() (protocol.Algorithm, error) { return core.NewMultiCastCore(params, n, 20_000) },
			adv:    adversary.RandomFraction(0.7),
			budget: 20_000, trials: trials,
		},
		{
			alg:    "MultiCast",
			build:  func() (protocol.Algorithm, error) { return core.NewMultiCast(params, n) },
			adv:    adversary.StopAfter(adversary.FullBurst(0), 5_000),
			budget: 1 << 30, trials: trials,
		},
		{
			alg:    "MultiCast",
			build:  func() (protocol.Algorithm, error) { return core.NewMultiCast(params, n) },
			adv:    adversary.Sweep(24),
			budget: 50_000, trials: trials,
		},
		{
			alg:    "MultiCast(C=8)",
			build:  func() (protocol.Algorithm, error) { return core.NewMultiCastC(params, n, 8) },
			adv:    adversary.FullBurst(0),
			budget: 20_000, trials: trials,
		},
		{
			alg:    "MultiCastAdv",
			build:  func() (protocol.Algorithm, error) { return core.NewMultiCastAdv(params) },
			adv:    targetedJammer(params, -1, lg2(n)-1, 0.9),
			budget: 500_000, trials: advTrials, max: 1 << 27,
		},
		{
			alg:    "MultiCastAdv(C=16)",
			build:  func() (protocol.Algorithm, error) { return core.NewMultiCastAdvC(params, 16) },
			adv:    adversary.None(),
			budget: 0, trials: advTrials, max: 1 << 27,
		},
	}

	totalViolations := 0
	totalTrials := 0
	for i, c := range cases {
		p, err := cfg.measure(sim.Config{
			N:         n,
			Algorithm: c.build,
			Adversary: c.adv,
			Budget:    c.budget,
			Seed:      cfg.Seed + uint64(i)*263,
			MaxSlots:  c.max,
		}, c.trials)
		if err != nil {
			return Result{}, err
		}
		inv := p.Invariants
		res.Rows = append(res.Rows, []string{
			c.alg,
			c.adv.Name(),
			fmt.Sprintf("%d", c.trials),
			fmt.Sprintf("%d", inv.HaltedUninformed),
			fmt.Sprintf("%d", inv.HaltBeforeAllInformed),
			fmt.Sprintf("%d", inv.HelperBeforeAllInformed),
			fmt.Sprintf("%d", inv.HaltBeforeAllHelpers),
		})
		totalViolations += violations(p)
		totalTrials += c.trials
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"total violations: %d across %d trials — the lemmas hold w.h.p., so (near-)zero counts are the pass condition",
		totalViolations, totalTrials))
	return res, nil
}
