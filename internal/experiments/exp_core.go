package experiments

import (
	"errors"
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
	"multicast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "epidemic broadcast survives heavy jamming (one MultiCastCore iteration)",
		Claim: "Lemma 4.1: if Eve jams ≤90% of the n/2 channels, one iteration informs all nodes w.h.p.; beyond that the success rate collapses",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "MultiCastCore time and cost scale as Θ(T/n + lg T̂)",
		Claim: "Theorem 4.4: runtime and per-node cost are O(T/n + max{lgT, lgn}) against a budget-T adversary",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E8",
		Title: "fast shutdown after Eve stops jamming",
		Claim: "§4 closing remark: once Eve stops, MultiCastCore halts within one iteration (Θ(lg T̂) slots); other resource-competitive algorithms (MultiCast here) need up to Θ̃(T) slots",
		Run:   runE8,
	})
}

// runE1 sweeps the jam fraction and measures whether all nodes are
// informed within a single MultiCastCore iteration.
func runE1(cfg RunConfig) (Result, error) {
	n := 256
	fracs := []float64{0, 0.50, 0.80, 0.90, 0.95, 0.98}
	if cfg.Quick {
		n = 64
		fracs = []float64{0, 0.90, 0.98}
	}
	trials := defaultTrials(cfg, 20, 5)

	// Lemma 4.1 holds "for a sufficiently large constant a". The Sim
	// preset's a = 40 targets jam-free termination speed; surviving 90%
	// jamming inside ONE iteration needs the ~10× longer iterations the
	// lemma budgets for, so this experiment exhibits a = 400.
	params := core.Sim()
	params.CoreA = 400
	alg, err := core.NewMultiCastCore(params, n, 0)
	if err != nil {
		return Result{}, err
	}
	iterLen := alg.IterationLength()

	res := Result{
		ID:    "E1",
		Title: "epidemic broadcast survives heavy jamming (one MultiCastCore iteration)",
		Claim: "Lemma 4.1: ≤90% jamming cannot stop one iteration from informing everyone",
		Columns: []string{"jam fraction", "success@1iter", "mean informed slot", "iteration R",
			"trials"},
	}
	for fi, f := range fracs {
		frac := f
		success := 0
		informedSlots := stats.NewAccumulator()
		for t := 0; t < trials; t++ {
			m, err := sim.Run(sim.Config{
				N: n,
				Algorithm: func() (protocol.Algorithm, error) {
					return core.NewMultiCastCore(params, n, 0)
				},
				Adversary: adversary.BlockFraction(frac),
				Budget:    1 << 40,
				Seed:      cfg.Seed + uint64(fi*1000+t),
				MaxSlots:  32 * iterLen,
				Engine:    cfg.Engine,
			})
			// Heavy jamming legitimately prevents halting within the
			// horizon; the metric of interest is informing time.
			if err != nil && !errors.Is(err, sim.ErrMaxSlots) {
				return Result{}, err
			}
			if m.AllInformedSlot > 0 && m.AllInformedSlot <= iterLen {
				success++
			}
			if m.AllInformedSlot > 0 {
				informedSlots.AddInt64(m.AllInformedSlot)
			}
		}
		mean := "never"
		if informedSlots.Count() > 0 {
			mean = fmtInt(informedSlots.Summary().Mean)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%d/%d", success, trials),
			mean,
			fmt.Sprintf("%d", iterLen),
			fmt.Sprintf("%d", trials),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: success@1iter ≈ 100% for fractions ≤ 0.9, degrading only at ≥ 0.95")
	return res, nil
}

// runE2 sweeps Eve's budget against MultiCastCore.
func runE2(cfg RunConfig) (Result, error) {
	const n = 256
	budgets := []int64{0, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000}
	if cfg.Quick {
		budgets = []int64{0, 10_000, 100_000}
	}
	trials := defaultTrials(cfg, 10, 3)

	res := Result{
		ID:      "E2",
		Title:   "MultiCastCore time and cost scale as Θ(T/n + lg T̂)",
		Claim:   "Theorem 4.4",
		Columns: []string{"T", "slots (mean)", "max node cost", "Eve spent", "T/n", "invariant violations"},
	}
	var xs, ySlots, yCost []float64
	for bi, budget := range budgets {
		p, err := cfg.measure(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastCore(core.Sim(), n, budget)
			},
			Adversary: adversary.FullBurst(0),
			Budget:    budget,
			Seed:      cfg.Seed + uint64(bi)*977,
		}, trials)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", budget),
			fmtInt(p.Slots.Mean),
			fmtInt(p.MaxEnergy.Mean),
			fmtInt(p.EveEnergy.Mean),
			fmt.Sprintf("%d", budget/int64(n)),
			fmt.Sprintf("%d", violations(p)),
		})
		// Exclude points still dominated by the jam-free lg T̂ floor from
		// the fit: the theorem's Θ(T/n) term only shows once T/n exceeds
		// the floor.
		if budget >= 100_000 {
			xs = append(xs, float64(budget))
			ySlots = append(ySlots, p.Slots.Mean)
			yCost = append(yCost, p.MaxEnergy.Mean)
		}
	}
	if len(xs) >= 2 {
		res.Notes = append(res.Notes,
			"slots vs T log-log slope (T ≥ 1e5) "+fmtSlope(stats.LogLogSlope(xs, ySlots))+" — theorem predicts → 1 (Θ(T/n) term dominates)",
			"cost vs T log-log slope (T ≥ 1e5) "+fmtSlope(stats.LogLogSlope(xs, yCost))+" — theorem predicts → 1 for MultiCastCore (cost Θ(T/n), not √)")
	}
	return res, nil
}

// runE8 measures halt latency after a jam-everything adversary stops.
func runE8(cfg RunConfig) (Result, error) {
	const n = 256
	const stop = int64(2000)
	trials := defaultTrials(cfg, 10, 3)
	// Eve jams all n/2 channels for `stop` slots: T = stop·n/2.
	budget := stop * int64(n/2)

	res := Result{
		ID:      "E8",
		Title:   "fast shutdown after Eve stops jamming",
		Claim:   "§4 closing remark",
		Columns: []string{"algorithm", "jam stops at", "all halted by", "halt latency (mean)", "latency bound"},
	}

	type variant struct {
		name  string
		build func() (protocol.Algorithm, error)
		bound string
	}
	coreAlg, err := core.NewMultiCastCore(core.Sim(), n, budget)
	if err != nil {
		return Result{}, err
	}
	variants := []variant{
		{
			name:  "MultiCastCore",
			build: func() (protocol.Algorithm, error) { return core.NewMultiCastCore(core.Sim(), n, budget) },
			bound: fmt.Sprintf("≤ 2R = %d (one full iteration)", 2*coreAlg.IterationLength()),
		},
		{
			name:  "MultiCast",
			build: func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), n) },
			bound: "Θ̃(current iteration) — grows with T",
		},
	}
	var latencies []float64
	for vi, v := range variants {
		p, err := cfg.measure(sim.Config{
			N:         n,
			Algorithm: v.build,
			Adversary: adversary.StopAfter(adversary.FullBurst(0), stop),
			Budget:    budget,
			Seed:      cfg.Seed + uint64(vi)*131,
		}, trials)
		if err != nil {
			return Result{}, err
		}
		latency := p.Slots.Mean - float64(stop)
		latencies = append(latencies, latency)
		res.Rows = append(res.Rows, []string{
			v.name,
			fmt.Sprintf("%d", stop),
			fmtInt(p.Slots.Mean),
			fmtInt(latency),
			v.bound,
		})
	}
	if len(latencies) == 2 && latencies[0] > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"MultiCast shutdown latency is %.1f× MultiCastCore's — the price of not knowing T",
			latencies[1]/latencies[0]))
	}
	return res, nil
}

// violations sums the invariant counters of a point.
func violations(p point) int {
	c := p.Invariants
	return c.HaltedUninformed + c.HaltBeforeAllInformed + c.HelperBeforeAllInformed + c.HaltBeforeAllHelpers
}
