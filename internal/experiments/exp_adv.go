package experiments

import (
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/rng"
	"multicast/internal/sim"
	"multicast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "MultiCastAdv without knowing n, under phase-targeted jamming",
		Claim: "Theorem 6.10: time Õ(T/n^{1−2α} + n^{2α}), cost Õ(√(T/n^{1−2α}) + n^{2α}); Eve's best strategy is jamming only the good phases j = lg n − 1",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E7",
		Title: "MultiCastAdv(C): the cut-off keeps unknown-n broadcast viable on C channels",
		Claim: "Theorem 7.2: runtime dominated by Õ(T/C^{1−2α}), helpers emerge at the cut-off phase j = lg C",
		Run:   runE7,
	})
}

// targetedJammer jams frac of the channels during phases with j == targetJ
// of the MultiCastAdv schedule — the worst-case oblivious attack the
// paper's analysis identifies (she knows the algorithm, hence the schedule).
// jCut < 0 targets the unlimited-channel schedule.
func targetedJammer(params core.Params, jCut, targetJ int, frac float64) adversary.Factory {
	name := fmt.Sprintf("target-j=%d(%.2f)", targetJ, frac)
	return adversary.NewFactory(name, func(r *rng.Source) adversary.Strategy {
		var sched *core.AdvSchedule
		if jCut >= 0 {
			sched = core.NewAdvScheduleC(params, 1<<jCut)
		} else {
			sched = core.NewAdvSchedule(params)
		}
		pred := sched.ActiveFunc(func(w core.StepWindow) bool { return w.J == targetJ })
		return adversary.NewWindowed(name, adversary.BlockFraction(frac).New(r), pred)
	})
}

func runE5(cfg RunConfig) (Result, error) {
	n := 64
	budgets := []int64{0, 2_000_000, 8_000_000}
	trials := defaultTrials(cfg, 3, 1)
	if cfg.Quick {
		n = 32
		budgets = []int64{0, 1_000_000}
	}
	params := core.Sim()
	targetJ := lg2(n) - 1

	res := Result{
		ID:      "E5",
		Title:   "MultiCastAdv under phase-targeted jamming",
		Claim:   "Theorem 6.10 (α = " + fmt.Sprintf("%.2f", params.Alpha) + ")",
		Columns: []string{"T", "slots (mean)", "max node cost", "Eve spent", "helpers@", "violations"},
	}
	var xs, ySlots, yCost []float64
	for bi, budget := range budgets {
		p, err := cfg.measure(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastAdv(params)
			},
			Adversary: targetedJammer(params, -1, targetJ, 0.95),
			Budget:    budget,
			Seed:      cfg.Seed + uint64(bi)*433,
			MaxSlots:  1 << 27,
		}, trials)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", budget),
			fmtInt(p.Slots.Mean),
			fmtInt(p.MaxEnergy.Mean),
			fmtInt(p.EveEnergy.Mean),
			fmtInt(p.AllInformed.Mean),
			fmt.Sprintf("%d", violations(p)),
		})
		if budget > 0 {
			xs = append(xs, p.EveEnergy.Mean)
			ySlots = append(ySlots, p.Slots.Mean)
			yCost = append(yCost, p.MaxEnergy.Mean)
		}
	}
	if len(xs) >= 2 {
		res.Notes = append(res.Notes,
			"slots vs Eve-spend slope "+fmtSlope(stats.LogLogSlope(xs, ySlots))+" — theorem predicts ≤ 1",
			"cost vs Eve-spend slope "+fmtSlope(stats.LogLogSlope(xs, yCost))+" — theorem predicts ≤ 0.5 asymptotically")
	}
	res.Notes = append(res.Notes,
		"the T = 0 row is the unavoidable τ = Õ(n^{2α}) term of Definition 3.1: epochs must grow until the n-estimate checks pass even with no jamming")
	return res, nil
}

func runE7(cfg RunConfig) (Result, error) {
	n := 64
	chans := []int{16, 32}
	trials := defaultTrials(cfg, 2, 1)
	if cfg.Quick {
		n = 32
		chans = []int{16}
	}
	params := core.Sim()

	res := Result{
		ID:      "E7",
		Title:   "MultiCastAdv(C) under the cut-off",
		Claim:   "Theorem 7.2",
		Columns: []string{"C", "lg C (cut-off)", "slots (mean)", "max node cost", "informed@", "violations"},
	}
	for ci, c := range chans {
		cc := c
		p, err := cfg.measure(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastAdvC(params, cc)
			},
			Seed:     cfg.Seed + uint64(ci)*389,
			MaxSlots: 1 << 27,
		}, trials)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", cc),
			fmt.Sprintf("%d", lg2(cc)),
			fmtInt(p.Slots.Mean),
			fmtInt(p.MaxEnergy.Mean),
			fmtInt(p.AllInformed.Mean),
			fmt.Sprintf("%d", violations(p)),
		})
	}
	res.Notes = append(res.Notes,
		"with C ≤ n/2 the good phase j = lg n − 1 does not exist; helpers must emerge at the cut-off j = lg C (the relaxed Figure 6 rule), and smaller C pays the n^{2+2α}/C^{2−2α} floor in extra slots",
		"runs use T = 0: the τ floor is the dominant and most expensive regime to validate here; budgeted behaviour is covered by E5's identical machinery")
	return res, nil
}

// lg2 is ⌊log₂ n⌋ without importing math for an int.
func lg2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
