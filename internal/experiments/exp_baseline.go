package experiments

import (
	"fmt"

	"multicast/internal/scenario"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "multi-channel MultiCast vs single-channel baseline [GKPPSY14]",
		Claim: "§1: multiple channels buy a ~n× time speedup (Õ(T/n+1) vs Õ(T+n)) at the same Õ(√(T/n)) energy order",
		Run:   runE4,
	})
}

func runE4(cfg RunConfig) (Result, error) {
	ns := []int{64, 256}
	if cfg.Quick {
		ns = []int{64}
	}
	const budget = int64(100_000)
	trials := defaultTrials(cfg, 5, 2)

	res := Result{
		ID:      "E4",
		Title:   "multi-channel MultiCast vs single-channel baseline",
		Claim:   "§1 headline comparison against Gilbert et al. SPAA 2014",
		Columns: []string{"n", "algorithm", "channels", "slots (mean)", "max node cost", "Eve spent"},
	}

	// Presentation metadata for the duel scenario's contenders, keyed by
	// the algorithm each point resolves to.
	meta := map[string]struct{ name, channels string }{
		scenario.AlgoMultiCast:     {"MultiCast", "n/2"},
		scenario.AlgoSingleChannel: {"SingleChannel", "1"},
	}

	for ni, n := range ns {
		// The contenders come from the duel registry scenario — the same
		// pairing `mcast -scenario duel` and examples/duel run. Both
		// points share a base seed (seed-paired duel), which varies by n.
		pts, err := expand("duel", scenario.Options{
			N: n, Budget: budget, Seed: cfg.Seed + uint64(ni)*104729,
		})
		if err != nil {
			return Result{}, err
		}
		points, err := cfg.measurePoints(pts, trials)
		if err != nil {
			return Result{}, err
		}
		var mcSlots, mcCost, scSlots, scCost float64
		for pi, p := range points {
			m, ok := meta[pts[pi].Config.Algorithm]
			if !ok {
				return Result{}, fmt.Errorf("experiments: unexpected duel contender %q", pts[pi].Label)
			}
			if pts[pi].Config.Algorithm == scenario.AlgoMultiCast {
				mcSlots, mcCost = p.Slots.Mean, p.MaxEnergy.Mean
			} else {
				scSlots, scCost = p.Slots.Mean, p.MaxEnergy.Mean
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", n),
				m.name,
				m.channels,
				fmtInt(p.Slots.Mean),
				fmtInt(p.MaxEnergy.Mean),
				fmtInt(p.EveEnergy.Mean),
			})
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"n=%d: single-channel takes %.0f× longer (theory ~n/2 = %d× against a full-burst jammer); cost ratio %.1f× (theory: same order)",
			n, scSlots/mcSlots, n/2, scCost/mcCost))
	}
	res.Notes = append(res.Notes,
		"who-wins: multi-channel must dominate time at every n while staying within a small constant in energy")
	return res, nil
}
