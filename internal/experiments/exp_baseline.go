package experiments

import (
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
	"multicast/internal/singlechan"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "multi-channel MultiCast vs single-channel baseline [GKPPSY14]",
		Claim: "§1: multiple channels buy a ~n× time speedup (Õ(T/n+1) vs Õ(T+n)) at the same Õ(√(T/n)) energy order",
		Run:   runE4,
	})
}

func runE4(cfg RunConfig) (Result, error) {
	ns := []int{64, 256}
	if cfg.Quick {
		ns = []int{64}
	}
	const budget = int64(100_000)
	trials := defaultTrials(cfg, 5, 2)

	res := Result{
		ID:      "E4",
		Title:   "multi-channel MultiCast vs single-channel baseline",
		Claim:   "§1 headline comparison against Gilbert et al. SPAA 2014",
		Columns: []string{"n", "algorithm", "channels", "slots (mean)", "max node cost", "Eve spent"},
	}

	type variant struct {
		name     string
		channels string
		build    func(n int) func() (protocol.Algorithm, error)
	}
	variants := []variant{
		{
			name:     "MultiCast",
			channels: "n/2",
			build: func(n int) func() (protocol.Algorithm, error) {
				return func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), n) }
			},
		},
		{
			name:     "SingleChannel",
			channels: "1",
			build: func(n int) func() (protocol.Algorithm, error) {
				return func() (protocol.Algorithm, error) { return singlechan.New(singlechan.DefaultParams(), n) }
			},
		},
	}

	for ni, n := range ns {
		var slots [2]float64
		var costs [2]float64
		for vi, v := range variants {
			p, err := cfg.measure(sim.Config{
				N:         n,
				Algorithm: v.build(n),
				Adversary: adversary.FullBurst(0),
				Budget:    budget,
				Seed:      cfg.Seed + uint64(ni*10+vi)*104729,
				MaxSlots:  1 << 26,
			}, trials)
			if err != nil {
				return Result{}, err
			}
			slots[vi] = p.Slots.Mean
			costs[vi] = p.MaxEnergy.Mean
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", n),
				v.name,
				v.channels,
				fmtInt(p.Slots.Mean),
				fmtInt(p.MaxEnergy.Mean),
				fmtInt(p.EveEnergy.Mean),
			})
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"n=%d: single-channel takes %.0f× longer (theory ~n/2 = %d× against a full-burst jammer); cost ratio %.1f× (theory: same order)",
			n, slots[1]/slots[0], n/2, costs[1]/costs[0]))
	}
	res.Notes = append(res.Notes,
		"who-wins: multi-channel must dominate time at every n while staying within a small constant in energy")
	return res, nil
}
