package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(all))
	}
	for i, e := range all {
		want := i + 1
		n, ok := idOrder(e.ID)
		if !ok || n != want {
			t.Errorf("position %d holds %s, want E%d (sorted order)", i, e.ID, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s is missing metadata or a Run function", e.ID)
		}
	}
}

func TestIDOrderRejectsMalformed(t *testing.T) {
	for _, id := range []string{"", "E", "X3", "E-1", "E1a", "3", "E0", "Experiment", "E123456789"} {
		if n, ok := idOrder(id); ok {
			t.Errorf("idOrder(%q) accepted malformed ID as %d", id, n)
		}
	}
	for id, want := range map[string]int{"E1": 1, "e7": 7, "E14": 14, "E102": 102} {
		n, ok := idOrder(id)
		if !ok || n != want {
			t.Errorf("idOrder(%q) = (%d, %v), want (%d, true)", id, n, ok, want)
		}
	}
}

func TestRegisterRejectsMalformedID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("register accepted a malformed experiment ID")
		}
	}()
	register(Experiment{ID: "bogus", Title: "t", Claim: "c"})
}

func TestGet(t *testing.T) {
	for _, id := range []string{"E1", "e1", "E12", "e11"} {
		if _, ok := Get(id); !ok {
			t.Errorf("Get(%q) failed", id)
		}
	}
	if _, ok := Get("E99"); ok {
		t.Error("Get(E99) succeeded")
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	r := Result{
		ID: "EX", Title: "demo", Claim: "claims",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	text := r.Render()
	for _, want := range []string{"EX — demo", "a note", "333"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q:\n%s", want, text)
		}
	}
	md := r.Markdown()
	for _, want := range []string{"### EX", "| a | bb |", "| 333 | 4 |", "- a note"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestQuickExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment execution is slow")
	}
	// The cheap experiments run end-to-end in quick mode; the expensive
	// MultiCastAdv ones (E5, E7, E11's Adv rows) are exercised by the
	// benchmark harness instead.
	for _, id := range []string{"E2", "E4", "E6", "E8", "E9", "E10", "E12", "E13"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res, err := e.Run(RunConfig{Quick: true, Trials: 2, Seed: 7})
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(res.Rows) == 0 || len(res.Columns) == 0 {
			t.Errorf("%s produced an empty table", id)
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Errorf("%s: row width %d != %d columns", id, len(row), len(res.Columns))
			}
		}
		if res.Render() == "" || res.Markdown() == "" {
			t.Errorf("%s renders empty", id)
		}
	}
}

func TestE3ProducesSlopes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment execution is slow")
	}
	e, _ := Get("E3")
	res, err := e.Run(RunConfig{Quick: true, Trials: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) < 2 {
		t.Fatalf("E3 must report both slope fits, got notes %v", res.Notes)
	}
	for _, n := range res.Notes {
		if !strings.Contains(n, "slope") {
			continue
		}
		if !strings.Contains(n, "R²") {
			t.Errorf("slope note lacks a fit quality: %q", n)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtInt(12.34); got != "12.3" {
		t.Errorf("fmtInt(12.34) = %q", got)
	}
	if got := fmtInt(123456); got != "123456" {
		t.Errorf("fmtInt(123456) = %q", got)
	}
	if !strings.Contains(fmtInt(3.2e7), "e+07") {
		t.Errorf("fmtInt(3.2e7) = %q", fmtInt(3.2e7))
	}
}

func TestCSV(t *testing.T) {
	r := Result{
		Columns: []string{"a", "b,with comma"},
		Rows:    [][]string{{"1", `say "hi"`}, {"2", "plain"}},
	}
	got := r.CSV()
	want := "a,\"b,with comma\"\n1,\"say \"\"hi\"\"\"\n2,plain\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}
