package experiments

import (
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
	"multicast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "MultiCast(C): limited spectrum trades time, not energy",
		Claim: "Corollary 7.1: with C ≤ n/2 channels, time is O(T/C + (n/C)lg²n) while cost stays O(√(T/n)·polylog) independent of C",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E12",
		Title: "near-optimality against the Ω(T/C) lower bound",
		Claim: "§7: Eve can jam all C channels for T/C slots, so T/C slots are unavoidable; MultiCast(C)'s overhead over T/C is a constant plus the jam-free floor",
		Run:   runE12,
	})
}

// sweepChannels runs MultiCast(C) over a C sweep under a full-burst jammer.
func sweepChannels(cfg RunConfig, n int, budget int64, chans []int, trials int) ([]point, error) {
	points := make([]point, len(chans))
	for ci, c := range chans {
		cc := c
		p, err := cfg.measure(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastC(core.Sim(), n, cc)
			},
			Adversary: adversary.FullBurst(0),
			Budget:    budget,
			Seed:      cfg.Seed + uint64(ci)*6151,
			MaxSlots:  1 << 26,
		}, trials)
		if err != nil {
			return nil, err
		}
		points[ci] = p
	}
	return points, nil
}

func runE6(cfg RunConfig) (Result, error) {
	const n = 256
	const budget = int64(200_000)
	chans := []int{2, 8, 32, 128}
	trials := defaultTrials(cfg, 5, 2)
	if cfg.Quick {
		chans = []int{8, 64}
	}
	points, err := sweepChannels(cfg, n, budget, chans, trials)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:      "E6",
		Title:   "MultiCast(C): limited spectrum trades time, not energy",
		Claim:   "Corollary 7.1",
		Columns: []string{"C", "slots (mean)", "T/C", "max node cost", "violations"},
	}
	var xs, ySlots, yCost []float64
	for ci, p := range points {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", chans[ci]),
			fmtInt(p.Slots.Mean),
			fmt.Sprintf("%d", budget/int64(chans[ci])),
			fmtInt(p.MaxEnergy.Mean),
			fmt.Sprintf("%d", violations(p)),
		})
		xs = append(xs, float64(chans[ci]))
		ySlots = append(ySlots, p.Slots.Mean)
		yCost = append(yCost, p.MaxEnergy.Mean)
	}
	res.Notes = append(res.Notes,
		"slots vs C slope "+fmtSlope(stats.LogLogSlope(xs, ySlots))+" — corollary predicts → −1 (time ∝ 1/C)",
		"cost vs C slope "+fmtSlope(stats.LogLogSlope(xs, yCost))+" — corollary predicts → 0 (cost independent of C)")
	if len(yCost) > 1 {
		lo, hi := yCost[0], yCost[0]
		for _, c := range yCost {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf("cost spread across the C sweep: max/min = %.2f (flat is ideal)", hi/lo))
	}
	return res, nil
}

func runE12(cfg RunConfig) (Result, error) {
	const n = 256
	const budget = int64(200_000)
	chans := []int{2, 8, 32, 128}
	trials := defaultTrials(cfg, 5, 2)
	if cfg.Quick {
		chans = []int{8, 64}
	}
	points, err := sweepChannels(cfg, n, budget, chans, trials)
	if err != nil {
		return Result{}, err
	}
	// Jam-free floor: the (n/C)·polylog term, measured with T = 0.
	floors, err := sweepChannels(cfg, n, 0, chans, trials)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:      "E12",
		Title:   "near-optimality against the Ω(T/C) lower bound",
		Claim:   "§7 remark",
		Columns: []string{"C", "lower bound T/C", "measured slots", "jam-free floor", "overhead (slots−floor)/(T/C)"},
	}
	for ci, p := range points {
		lb := float64(budget) / float64(chans[ci])
		over := (p.Slots.Mean - floors[ci].Slots.Mean) / lb
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", chans[ci]),
			fmtInt(lb),
			fmtInt(p.Slots.Mean),
			fmtInt(floors[ci].Slots.Mean),
			fmt.Sprintf("%.2f×", over),
		})
	}
	res.Notes = append(res.Notes,
		"the overhead column is the constant hiding in O(T/C): it must stay bounded (and roughly flat) across the sweep",
		"\"the more channels we have, the faster we can be\" — measured slots must fall monotonically with C")
	return res, nil
}
