package experiments

import (
	"fmt"

	"multicast/internal/scenario"
	"multicast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "MultiCast(C): limited spectrum trades time, not energy",
		Claim: "Corollary 7.1: with C ≤ n/2 channels, time is O(T/C + (n/C)lg²n) while cost stays O(√(T/n)·polylog) independent of C",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E12",
		Title: "near-optimality against the Ω(T/C) lower bound",
		Claim: "§7: Eve can jam all C channels for T/C slots, so T/C slots are unavoidable; MultiCast(C)'s overhead over T/C is a constant plus the jam-free floor",
		Run:   runE12,
	})
}

// channelLadder expands the channel-ladder registry scenario — the
// experiments measure the same C points that `mcast -scenario
// channel-ladder` and examples/spectrum sweep.
func channelLadder(cfg RunConfig, n int, budget int64) ([]scenario.Point, []int, error) {
	pts, err := expand("channel-ladder", scenario.Options{
		N: n, Budget: budget, Seed: cfg.Seed, Quick: cfg.Quick,
	})
	if err != nil {
		return nil, nil, err
	}
	chans := make([]int, len(pts))
	for i, p := range pts {
		chans[i] = p.Config.Channels
	}
	return pts, chans, nil
}

func runE6(cfg RunConfig) (Result, error) {
	const n = 256
	const budget = int64(200_000)
	trials := defaultTrials(cfg, 5, 2)
	pts, chans, err := channelLadder(cfg, n, budget)
	if err != nil {
		return Result{}, err
	}
	points, err := cfg.measurePoints(pts, trials)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:      "E6",
		Title:   "MultiCast(C): limited spectrum trades time, not energy",
		Claim:   "Corollary 7.1",
		Columns: []string{"C", "slots (mean)", "T/C", "max node cost", "violations"},
	}
	var xs, ySlots, yCost []float64
	for ci, p := range points {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", chans[ci]),
			fmtInt(p.Slots.Mean),
			fmt.Sprintf("%d", budget/int64(chans[ci])),
			fmtInt(p.MaxEnergy.Mean),
			fmt.Sprintf("%d", violations(p)),
		})
		xs = append(xs, float64(chans[ci]))
		ySlots = append(ySlots, p.Slots.Mean)
		yCost = append(yCost, p.MaxEnergy.Mean)
	}
	res.Notes = append(res.Notes,
		"slots vs C slope "+fmtSlope(stats.LogLogSlope(xs, ySlots))+" — corollary predicts → −1 (time ∝ 1/C)",
		"cost vs C slope "+fmtSlope(stats.LogLogSlope(xs, yCost))+" — corollary predicts → 0 (cost independent of C)")
	if len(yCost) > 1 {
		lo, hi := yCost[0], yCost[0]
		for _, c := range yCost {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf("cost spread across the C sweep: max/min = %.2f (flat is ideal)", hi/lo))
	}
	return res, nil
}

func runE12(cfg RunConfig) (Result, error) {
	const n = 256
	const budget = int64(200_000)
	trials := defaultTrials(cfg, 5, 2)
	pts, chans, err := channelLadder(cfg, n, budget)
	if err != nil {
		return Result{}, err
	}
	points, err := cfg.measurePoints(pts, trials)
	if err != nil {
		return Result{}, err
	}
	// Jam-free floor: the (n/C)·polylog term, measured with T = 0. The
	// scenario points are plain data, so the floor is the same ladder
	// with the budget zeroed.
	floorPts := make([]scenario.Point, len(pts))
	for i, p := range pts {
		floorPts[i] = p
		floorPts[i].Config.Budget = 0
	}
	floors, err := cfg.measurePoints(floorPts, trials)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:      "E12",
		Title:   "near-optimality against the Ω(T/C) lower bound",
		Claim:   "§7 remark",
		Columns: []string{"C", "lower bound T/C", "measured slots", "jam-free floor", "overhead (slots−floor)/(T/C)"},
	}
	for ci, p := range points {
		lb := float64(budget) / float64(chans[ci])
		over := (p.Slots.Mean - floors[ci].Slots.Mean) / lb
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", chans[ci]),
			fmtInt(lb),
			fmtInt(p.Slots.Mean),
			fmtInt(floors[ci].Slots.Mean),
			fmt.Sprintf("%.2f×", over),
		})
	}
	res.Notes = append(res.Notes,
		"the overhead column is the constant hiding in O(T/C): it must stay bounded (and roughly flat) across the sweep",
		"\"the more channels we have, the faster we can be\" — measured slots must fall monotonically with C")
	return res, nil
}
