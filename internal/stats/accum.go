package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultSampleCap is the number of raw samples an Accumulator retains.
// Up to the cap, summaries are exact and independent of insertion or
// merge order; above it, see the Accumulator documentation.
const DefaultSampleCap = 8192

// Accumulator is a mergeable streaming aggregator for one scalar metric.
// It tracks count, min, max, and Welford mean/variance in O(1) state,
// and retains up to a cap of raw samples for quantiles.
//
// Determinism contract (the trial layer relies on this): as long as the
// total count stays within the sample cap, Summary is computed from the
// sorted retained samples, so it is a pure function of the sample
// multiset — bit-identical regardless of insertion order, worker
// scheduling, or how the samples were partitioned across merged
// accumulators. Above the cap the summary is a documented approximation:
// count, min, and max stay exact, mean/std come from the merged Welford
// state (exact up to float summation order), and quantiles are computed
// from the retained sample subset (first cap samples in insertion order;
// Merge concatenates and truncates at the cap).
//
// Non-finite samples (NaN, ±Inf) are dropped and tallied in Dropped
// rather than silently poisoning every downstream moment.
type Accumulator struct {
	count   int64
	dropped int64
	mean    float64 // Welford running mean
	m2      float64 // Welford sum of squared deviations
	min     float64
	max     float64
	samples []float64
	cap     int
}

// NewAccumulator returns an accumulator retaining DefaultSampleCap samples.
func NewAccumulator() *Accumulator { return NewAccumulatorCap(DefaultSampleCap) }

// NewAccumulatorCap returns an accumulator retaining up to capSamples raw
// samples (minimum 1).
func NewAccumulatorCap(capSamples int) *Accumulator {
	if capSamples < 1 {
		capSamples = 1
	}
	return &Accumulator{cap: capSamples}
}

// Add folds one sample into the accumulator. Non-finite samples are
// dropped (counted in Dropped).
func (a *Accumulator) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		a.dropped++
		return
	}
	a.count++
	if a.count == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.count)
	a.m2 += d * (x - a.mean)
	if len(a.samples) < a.cap {
		a.samples = append(a.samples, x)
	}
}

// AddInt64 folds one integer sample into the accumulator.
func (a *Accumulator) AddInt64(x int64) { a.Add(float64(x)) }

// Count returns the number of accumulated (non-dropped) samples.
func (a *Accumulator) Count() int64 { return a.count }

// Dropped returns the number of non-finite samples that were discarded.
func (a *Accumulator) Dropped() int64 { return a.dropped }

// Exact reports whether every accumulated sample is retained, i.e. the
// Summary is exact and independent of insertion/merge order.
func (a *Accumulator) Exact() bool { return a.count == int64(len(a.samples)) }

// Merge folds b into a, as if every sample added to b had been added to
// a. Count, min, max, and the Welford moments merge exactly; retained
// samples are concatenated and truncated at a's cap (see the type
// documentation for what that means above the cap). b is not modified.
func (a *Accumulator) Merge(b *Accumulator) {
	if b == nil || (b.count == 0 && b.dropped == 0) {
		return
	}
	a.dropped += b.dropped
	if b.count == 0 {
		return
	}
	if a.count == 0 {
		a.min, a.max = b.min, b.max
	} else {
		if b.min < a.min {
			a.min = b.min
		}
		if b.max > a.max {
			a.max = b.max
		}
	}
	// Chan et al. parallel-variance combination.
	na, nb := float64(a.count), float64(b.count)
	delta := b.mean - a.mean
	n := na + nb
	a.mean += delta * nb / n
	a.m2 += b.m2 + delta*delta*na*nb/n
	a.count += b.count
	room := a.cap - len(a.samples)
	if room > len(b.samples) {
		room = len(b.samples)
	}
	a.samples = append(a.samples, b.samples[:room]...)
}

// Summary renders the accumulated distribution. With no samples it
// returns the zero Summary (Count 0) except for the Dropped tally.
func (a *Accumulator) Summary() Summary {
	s := Summary{Count: int(a.count), Dropped: int(a.dropped)}
	if a.count == 0 {
		return s
	}
	sorted := append([]float64(nil), a.samples...)
	sort.Float64s(sorted)
	if a.Exact() {
		// All samples retained: recompute every moment from the sorted
		// sample so the result is a pure function of the multiset.
		var sum float64
		for _, x := range sorted {
			sum += x
		}
		s.Mean = sum / float64(len(sorted))
		var ss float64
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		if len(sorted) > 1 {
			s.Std = math.Sqrt(ss / float64(len(sorted)-1))
		}
		s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	} else {
		s.Mean = a.mean
		if a.count > 1 {
			s.Std = math.Sqrt(a.m2 / float64(a.count-1))
		}
		s.Min, s.Max = a.min, a.max
	}
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// accumJSON is the Accumulator wire format. Floats survive the round
// trip exactly: encoding/json emits the shortest representation that
// parses back to the identical float64.
type accumJSON struct {
	Count   int64     `json:"count"`
	Dropped int64     `json:"dropped,omitempty"`
	Mean    float64   `json:"mean"`
	M2      float64   `json:"m2"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Cap     int       `json:"cap"`
	Samples []float64 `json:"samples"`
}

// MarshalJSON encodes the full accumulator state, so shards summarized
// on separate machines can be merged from their JSON artifacts.
func (a *Accumulator) MarshalJSON() ([]byte, error) {
	j := accumJSON{
		Count: a.count, Dropped: a.dropped,
		Mean: a.mean, M2: a.m2,
		Cap: a.cap, Samples: a.samples,
	}
	if a.count > 0 { // min/max are meaningless (and unset) at count 0
		j.Min, j.Max = a.min, a.max
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores an accumulator marshalled by MarshalJSON.
func (a *Accumulator) UnmarshalJSON(data []byte) error {
	var j accumJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Count < 0 || j.Cap < 1 || int64(len(j.Samples)) > j.Count || len(j.Samples) > j.Cap {
		return fmt.Errorf("stats: invalid accumulator state (count=%d cap=%d samples=%d)",
			j.Count, j.Cap, len(j.Samples))
	}
	for _, x := range j.Samples {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("stats: non-finite retained sample in accumulator JSON")
		}
	}
	*a = Accumulator{
		count: j.Count, dropped: j.Dropped,
		mean: j.Mean, m2: j.M2,
		min: j.Min, max: j.Max,
		samples: j.Samples, cap: j.Cap,
	}
	return nil
}
