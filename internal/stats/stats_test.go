package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v wrong", s)
	}
	if !almost(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Std = %v, want √2.5", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Count != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P95 != 7 {
		t.Fatalf("singleton summary %+v wrong", s)
	}
}

// Edge-case contract: empty, single-element, and non-finite inputs take
// the documented zero/Dropped path instead of panicking or silently
// propagating NaN into every moment.
func TestSummarizeEdgeCases(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		in   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{7}, Summary{Count: 1, Mean: 7, Min: 7, Max: 7, Median: 7, P25: 7, P75: 7, P95: 7}},
		{"all NaN", []float64{nan, nan}, Summary{Dropped: 2}},
		{"NaN mixed in", []float64{3, nan, 1, inf, 2}, Summary{
			Count: 3, Dropped: 2, Mean: 2, Std: 1, Min: 1, Max: 3,
			Median: 2, P25: 1.5, P75: 2.5, P95: 2.9,
		}},
	}
	for _, tc := range cases {
		got := Summarize(tc.in)
		if got.Count != tc.want.Count || got.Dropped != tc.want.Dropped ||
			!almost(got.Mean, tc.want.Mean, 1e-12) || !almost(got.Std, tc.want.Std, 1e-12) ||
			got.Min != tc.want.Min || got.Max != tc.want.Max ||
			!almost(got.Median, tc.want.Median, 1e-12) || !almost(got.P25, tc.want.P25, 1e-12) ||
			!almost(got.P75, tc.want.P75, 1e-12) || !almost(got.P95, tc.want.P95, 1e-12) {
			t.Errorf("%s: Summarize = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestQuantileEmptyIsZero(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v, want 0", got)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int64{10, 20, 30})
	if s.Mean != 20 || s.Min != 10 || s.Max != 30 {
		t.Fatalf("SummarizeInts %+v wrong", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 9}, {0.5, 4.5}, {0.25, 2.25}, {0.95, 8.55}, {-1, 0}, {2, 9},
	}
	for _, tc := range cases {
		if got := Quantile(sorted, tc.q); !almost(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 1, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit %+v, want slope 2 intercept 1 R²=1", f)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9} // ≈2x
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2, 0.1) {
		t.Errorf("slope = %v, want ≈2", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R² = %v, want > 0.99", f.R2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	cases := [][2][]float64{
		{{1}, {1}},             // too short
		{{1, 2}, {1}},          // length mismatch
		{{3, 3, 3}, {1, 2, 3}}, // constant x
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			LinearFit(c[0], c[1])
		}()
	}
}

func TestLinearFitConstantY(t *testing.T) {
	f := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if f.Slope != 0 || f.Intercept != 5 || f.R2 != 1 {
		t.Fatalf("constant-y fit %+v", f)
	}
}

func TestLogLogSlopePowerLaw(t *testing.T) {
	// y = 3·x^0.5.
	var xs, ys []float64
	for _, x := range []float64{1, 4, 16, 64, 256} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Sqrt(x))
	}
	f := LogLogSlope(xs, ys)
	if !almost(f.Slope, 0.5, 1e-9) {
		t.Errorf("slope = %v, want 0.5", f.Slope)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	xs := []float64{0, -1, 2, 4, 8}
	ys := []float64{5, 5, 4, 8, 16} // usable points: (2,4),(4,8),(8,16) → slope 1
	f := LogLogSlope(xs, ys)
	if !almost(f.Slope, 1, 1e-9) {
		t.Errorf("slope = %v, want 1", f.Slope)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{8}); !almost(got, 8, 1e-12) {
		t.Errorf("GeoMean(8) = %v", got)
	}
	for _, bad := range [][]float64{nil, {1, 0}, {-2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeoMean(%v) did not panic", bad)
				}
			}()
			GeoMean(bad)
		}()
	}
}

// Property: Summarize respects ordering invariants.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.P95 && s.P95 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LinearFit slope is scale-equivariant: fitting (x, k·y) gives
// k times the slope.
func TestQuickFitScaling(t *testing.T) {
	f := func(raw []int8, kRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		k := 1 + float64(kRaw%7)
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		ys2 := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(i)
			ys[i] = float64(v)
			ys2[i] = k * float64(v)
		}
		f1, f2 := LinearFit(xs, ys), LinearFit(xs, ys2)
		return almost(f2.Slope, k*f1.Slope, 1e-6*(1+math.Abs(f1.Slope)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
