package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func accumOf(xs ...float64) *Accumulator {
	a := NewAccumulator()
	for _, x := range xs {
		a.Add(x)
	}
	return a
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := []float64{4, 1, 3, 3, 9, 0.5, -2, 7}
	got := accumOf(xs...).Summary()
	want := Summarize(xs)
	if got != want {
		t.Fatalf("accumulator summary %+v != Summarize %+v", got, want)
	}
}

func TestAccumulatorEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{5}, Summary{Count: 1, Mean: 5, Min: 5, Max: 5, Median: 5, P25: 5, P75: 5, P95: 5}},
		{"NaN only", []float64{math.NaN()}, Summary{Dropped: 1}},
		{"Inf dropped", []float64{1, math.Inf(-1), 3}, Summary{
			Count: 2, Dropped: 1, Mean: 2, Std: math.Sqrt2, Min: 1, Max: 3,
			Median: 2, P25: 1.5, P75: 2.5, P95: 2.9,
		}},
	}
	for _, tc := range cases {
		got := accumOf(tc.in...).Summary()
		if got.Count != tc.want.Count || got.Dropped != tc.want.Dropped ||
			!almost(got.Mean, tc.want.Mean, 1e-12) || !almost(got.Std, tc.want.Std, 1e-12) ||
			got.Min != tc.want.Min || got.Max != tc.want.Max ||
			!almost(got.P95, tc.want.P95, 1e-12) {
			t.Errorf("%s: %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// The determinism contract: under the cap, any partition of the sample
// multiset into shard accumulators, merged in any order, yields a
// bit-identical Summary.
func TestAccumulatorMergePartitionInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64() * 100
	}
	whole := accumOf(xs...)
	want := whole.Summary()

	for _, k := range []int{1, 2, 3, 7} {
		shards := make([]*Accumulator, k)
		for i := range shards {
			shards[i] = NewAccumulator()
		}
		for i, x := range xs {
			shards[i%k].Add(x)
		}
		// Merge right-to-left to exercise a non-trivial merge order.
		merged := NewAccumulator()
		for i := k - 1; i >= 0; i-- {
			merged.Merge(shards[i])
		}
		if got := merged.Summary(); got != want {
			t.Errorf("k=%d: merged summary %+v != whole %+v", k, got, want)
		}
		if !merged.Exact() {
			t.Errorf("k=%d: merged accumulator lost exactness below the cap", k)
		}
	}
}

func TestAccumulatorOverCap(t *testing.T) {
	a := NewAccumulatorCap(4)
	for x := 1.0; x <= 10; x++ {
		a.Add(x)
	}
	if a.Exact() {
		t.Fatal("Exact() true above the cap")
	}
	s := a.Summary()
	if s.Count != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("count/min/max must stay exact above the cap: %+v", s)
	}
	if !almost(s.Mean, 5.5, 1e-12) {
		t.Errorf("Welford mean = %v, want 5.5", s.Mean)
	}
	wantStd := math.Sqrt(110.0 / 12) // sample variance of 1..10 is 55/6
	if !almost(s.Std, wantStd, 1e-12) {
		t.Errorf("Welford std = %v, want %v", s.Std, wantStd)
	}
	// Quantiles degrade to the retained prefix {1,2,3,4} — approximate
	// by design, but still ordered and in range.
	if s.Median < s.Min || s.Median > s.Max {
		t.Errorf("approximate median %v out of [min, max]", s.Median)
	}
}

func TestAccumulatorMergeWelfordOverCap(t *testing.T) {
	// Above the cap the Welford path carries mean/std; merging two halves
	// must agree with one pass over the concatenation to float accuracy.
	r := rand.New(rand.NewSource(7))
	a, b := NewAccumulatorCap(2), NewAccumulatorCap(2)
	all := NewAccumulatorCap(2)
	for i := 0; i < 1000; i++ {
		x := r.ExpFloat64()
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	sa, sw := a.Summary(), all.Summary()
	if sa.Count != sw.Count || sa.Min != sw.Min || sa.Max != sw.Max {
		t.Fatalf("exact fields diverged: %+v vs %+v", sa, sw)
	}
	if !almost(sa.Mean, sw.Mean, 1e-9) || !almost(sa.Std, sw.Std, 1e-9) {
		t.Errorf("merged moments %v/%v vs single-pass %v/%v", sa.Mean, sa.Std, sw.Mean, sw.Std)
	}
}

func TestAccumulatorJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := NewAccumulator()
	for i := 0; i < 257; i++ {
		a.Add(r.NormFloat64() * 1e6)
	}
	a.Add(math.NaN()) // dropped tally must survive too
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Accumulator
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Summary(), a.Summary(); got != want {
		t.Fatalf("round-tripped summary %+v != original %+v", got, want)
	}
	if b.Dropped() != 1 {
		t.Errorf("Dropped = %d after round trip, want 1", b.Dropped())
	}

	// Merging a round-tripped shard equals merging the live shard.
	other := accumOf(1, 2, 3)
	m1 := accumOf(1, 2, 3)
	m1.Merge(a)
	other.Merge(&b)
	if other.Summary() != m1.Summary() {
		t.Error("merge via JSON differs from live merge")
	}
}

func TestAccumulatorJSONRejectsCorrupt(t *testing.T) {
	for _, bad := range []string{
		`{"count":-1,"cap":4,"samples":[]}`,
		`{"count":0,"cap":0,"samples":[]}`,
		`{"count":1,"cap":4,"samples":[1,2]}`,
		`{"count":8,"cap":2,"samples":[1,2,3]}`,
	} {
		var a Accumulator
		if err := json.Unmarshal([]byte(bad), &a); err == nil {
			t.Errorf("accepted corrupt state %s", bad)
		}
	}
}

func TestAccumulatorEmptyJSON(t *testing.T) {
	data, err := json.Marshal(NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	var a Accumulator
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 0 || a.Summary() != (Summary{}) {
		t.Fatalf("empty round trip gave %+v", a.Summary())
	}
}
