// Package stats aggregates per-trial metrics into summaries and provides
// the log-log slope fits the experiment harness uses to compare measured
// scaling exponents with the paper's theorems.
//
// The cross-machine merge guarantees of the trial and sweep layers rest
// on Accumulator's determinism contract: while an accumulator's total
// count stays within its sample cap (DefaultSampleCap unless overridden)
// its Summary is a pure function of the sample multiset — bit-identical
// however the samples were ordered, partitioned across machines, or
// merged. Above the cap the summary is a documented approximation:
// count, min, max stay exact, mean/std come from merged Welford state,
// and quantiles are computed from the retained sample subset. Campaign
// tooling (internal/runner.Collector, cmd/mcast -merge) inherits exactly
// these semantics.
package stats

import (
	"fmt"
	"math"
)

// Summary describes the distribution of one scalar metric across trials.
type Summary struct {
	Count                 int
	Dropped               int // non-finite samples excluded from the moments
	Mean, Std             float64
	Min, Max              float64
	Median, P25, P75, P95 float64
}

// Summarize computes a Summary of xs. Empty input yields the zero
// Summary (Count 0) rather than a panic, and non-finite samples (NaN,
// ±Inf) are excluded from every moment and tallied in Dropped — the
// error path is the Count/Dropped pair, which callers can inspect.
// The result is a pure function of the finite-sample multiset.
func Summarize(xs []float64) Summary {
	a := NewAccumulatorCap(max(len(xs), 1))
	for _, x := range xs {
		a.Add(x)
	}
	return a.Summary()
}

// SummarizeInts converts and summarizes integer samples.
func SummarizeInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted (ascending) data
// using linear interpolation. Empty input returns 0 (the documented zero
// path — callers that must distinguish "no data" check len first).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g med=%.4g p95=%.4g max=%.4g",
		s.Count, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// Fit is an ordinary least-squares line y = Slope·x + Intercept with the
// coefficient of determination.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y = a·x + b by least squares. It panics unless
// len(xs) == len(ys) ≥ 2 and the xs are not all equal.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size ≥ 2")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// LogLogSlope fits log₂(y) against log₂(x) and returns the power-law
// exponent: y ∝ x^Slope. Points with non-positive coordinates are skipped;
// it panics if fewer than two remain.
func LogLogSlope(xs, ys []float64) Fit {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log2(xs[i]))
			ly = append(ly, math.Log2(ys[i]))
		}
	}
	return LinearFit(lx, ly)
}

// GeoMean returns the geometric mean of positive samples; it panics if the
// slice is empty or any sample is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeoMean of empty slice")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive sample")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
