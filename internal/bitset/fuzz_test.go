package bitset

import "testing"

// FuzzSetRange cross-checks the word-blasting SetRange against a naive
// bit-by-bit reference.
func FuzzSetRange(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(64))
	f.Add(uint16(3), uint16(7), uint16(100))
	f.Add(uint16(63), uint16(65), uint16(128))
	f.Add(uint16(64), uint16(192), uint16(256))
	f.Fuzz(func(t *testing.T, loRaw, hiRaw, nRaw uint16) {
		n := int(nRaw)%512 + 1
		lo := int(loRaw) % (n + 1)
		hi := int(hiRaw) % (n + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		fast := New(n)
		fast.SetRange(lo, hi)
		slow := New(n)
		for i := lo; i < hi; i++ {
			slow.Set(i)
		}
		if fast.Count() != slow.Count() {
			t.Fatalf("SetRange(%d,%d) on %d bits: count %d vs naive %d", lo, hi, n, fast.Count(), slow.Count())
		}
		for i := 0; i < n; i++ {
			if fast.Test(i) != slow.Test(i) {
				t.Fatalf("SetRange(%d,%d) bit %d: %v vs naive %v", lo, hi, i, fast.Test(i), slow.Test(i))
			}
		}
	})
}

// FuzzCountRange cross-checks CountRange against per-bit counting.
func FuzzCountRange(f *testing.F) {
	f.Add([]byte{0xff, 0x01}, uint16(9))
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, raw []byte, limitRaw uint16) {
		n := len(raw)*8 + 1
		s := New(n)
		for i, b := range raw {
			for bit := 0; bit < 8; bit++ {
				if b&(1<<bit) != 0 {
					s.Set(i*8 + bit)
				}
			}
		}
		limit := int(limitRaw) % (n + 1)
		want := 0
		for i := 0; i < limit; i++ {
			if s.Test(i) {
				want++
			}
		}
		if got := s.CountRange(limit); got != want {
			t.Fatalf("CountRange(%d) = %d, want %d", limit, got, want)
		}
	})
}
