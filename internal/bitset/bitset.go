// Package bitset implements a dense bitset used for per-slot jam masks and
// channel occupancy tracking. The simulator resolves every channel every
// slot, so membership tests and population counts are on the hot path; the
// representation is a plain []uint64 with no indirection.
package bitset

import "math/bits"

// Set is a fixed-capacity dense bitset. The zero value has capacity zero;
// use New or Grow before setting bits.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a set with capacity for n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Grow ensures capacity for at least n bits, preserving contents.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	need := (n + 63) / 64
	if need > len(s.words) {
		w := make([]uint64, need)
		copy(w, s.words)
		s.words = w
	}
	s.n = n
}

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// Reset clears all bits without changing capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [0, limit).
// It panics if limit is out of [0, Len()].
func (s *Set) CountRange(limit int) int {
	if limit < 0 || limit > s.n {
		panic("bitset: CountRange limit out of range")
	}
	c := 0
	full := limit >> 6
	for i := 0; i < full; i++ {
		c += bits.OnesCount64(s.words[i])
	}
	if rem := uint(limit) & 63; rem != 0 {
		c += bits.OnesCount64(s.words[full] & ((1 << rem) - 1))
	}
	return c
}

// SetRange sets all bits in [lo, hi).
func (s *Set) SetRange(lo, hi int) {
	if lo < 0 || hi > s.n || lo > hi {
		panic("bitset: SetRange bounds out of range")
	}
	if lo == hi {
		return
	}
	first, last := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if first == last {
		s.words[first] |= loMask & hiMask
		return
	}
	s.words[first] |= loMask
	for i := first + 1; i < last; i++ {
		s.words[i] = ^uint64(0)
	}
	s.words[last] |= hiMask
}

// CopyFrom makes s an exact copy of other (capacity and contents).
func (s *Set) CopyFrom(other *Set) {
	s.Grow(other.n)
	s.n = other.n
	s.words = s.words[:0]
	s.words = append(s.words, other.words...)
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}
