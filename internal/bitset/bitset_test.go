package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("fresh set Count = %d", s.Count())
	}
	for i := 0; i < 130; i++ {
		if s.Test(i) {
			t.Fatalf("fresh set has bit %d set", i)
		}
	}
}

func TestSetClearTest(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}

func TestSetIdempotent(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Set(3)
	if s.Count() != 1 {
		t.Fatalf("double Set changed count: %d", s.Count())
	}
	s.Clear(3)
	s.Clear(3)
	if s.Count() != 0 {
		t.Fatalf("double Clear changed count: %d", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Set){
		func(s *Set) { s.Set(-1) },
		func(s *Set) { s.Set(100) },
		func(s *Set) { s.Test(100) },
		func(s *Set) { s.Clear(-5) },
		func(s *Set) { s.CountRange(101) },
		func(s *Set) { s.CountRange(-1) },
		func(s *Set) { s.SetRange(-1, 5) },
		func(s *Set) { s.SetRange(5, 101) },
		func(s *Set) { s.SetRange(7, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f(New(100))
		}()
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestReset(t *testing.T) {
	s := New(300)
	s.SetRange(0, 300)
	if s.Count() != 300 {
		t.Fatalf("Count = %d, want 300", s.Count())
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
	if s.Len() != 300 {
		t.Fatalf("Reset changed capacity: %d", s.Len())
	}
}

func TestCountRange(t *testing.T) {
	s := New(256)
	for i := 0; i < 256; i += 2 {
		s.Set(i)
	}
	tests := []struct{ limit, want int }{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {64, 32}, {65, 33}, {128, 64}, {256, 128},
	}
	for _, tc := range tests {
		if got := s.CountRange(tc.limit); got != tc.want {
			t.Errorf("CountRange(%d) = %d, want %d", tc.limit, got, tc.want)
		}
	}
}

func TestSetRange(t *testing.T) {
	cases := []struct{ lo, hi int }{
		{0, 0}, {0, 1}, {0, 64}, {0, 65}, {1, 63}, {63, 65}, {10, 200}, {64, 128}, {100, 101},
	}
	for _, tc := range cases {
		s := New(256)
		s.SetRange(tc.lo, tc.hi)
		if got, want := s.Count(), tc.hi-tc.lo; got != want {
			t.Errorf("SetRange(%d,%d) Count = %d, want %d", tc.lo, tc.hi, got, want)
		}
		for i := 0; i < 256; i++ {
			want := i >= tc.lo && i < tc.hi
			if s.Test(i) != want {
				t.Errorf("SetRange(%d,%d) bit %d = %v", tc.lo, tc.hi, i, s.Test(i))
			}
		}
	}
}

func TestGrowPreserves(t *testing.T) {
	s := New(64)
	s.Set(10)
	s.Set(63)
	s.Grow(1000)
	if s.Len() != 1000 {
		t.Fatalf("Len after Grow = %d", s.Len())
	}
	if !s.Test(10) || !s.Test(63) {
		t.Fatal("Grow lost bits")
	}
	if s.Test(999) {
		t.Fatal("Grow set spurious bits")
	}
	s.Set(999)
	if !s.Test(999) {
		t.Fatal("cannot set bit after Grow")
	}
}

func TestGrowShrinkIsNoop(t *testing.T) {
	s := New(100)
	s.Set(99)
	s.Grow(10)
	if s.Len() != 100 || !s.Test(99) {
		t.Fatal("Grow with smaller n must be a no-op")
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	s := New(150)
	s.Set(0)
	s.Set(149)
	c := s.Clone()
	c.Clear(0)
	if !s.Test(0) {
		t.Fatal("Clone aliases source storage")
	}
	if c.Test(0) || !c.Test(149) {
		t.Fatal("Clone contents wrong")
	}

	var d Set
	d.CopyFrom(s)
	if d.Len() != 150 || !d.Test(0) || !d.Test(149) || d.Count() != 2 {
		t.Fatal("CopyFrom contents wrong")
	}
	d.Set(5)
	if s.Test(5) {
		t.Fatal("CopyFrom aliases source storage")
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSets(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		uniq := map[uint16]bool{}
		for _, i := range idx {
			s.Set(int(i))
			uniq[i] = true
		}
		return s.Count() == len(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CountRange(limit) ≤ Count and CountRange(Len) == Count.
func TestQuickCountRangeConsistent(t *testing.T) {
	f := func(idx []uint16, limit uint16) bool {
		s := New(1 << 16)
		for _, i := range idx {
			s.Set(int(i))
		}
		if s.CountRange(s.Len()) != s.Count() {
			return false
		}
		return s.CountRange(int(limit)) <= s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Set then Test always true; Clear then Test always false.
func TestQuickSetClearRoundTrip(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		for _, i := range idx {
			s.Set(int(i))
			if !s.Test(int(i)) {
				return false
			}
			s.Clear(int(i))
			if s.Test(int(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetTest(b *testing.B) {
	s := New(1024)
	for i := 0; i < b.N; i++ {
		s.Set(i & 1023)
		if !s.Test(i & 1023) {
			b.Fatal("bit missing")
		}
	}
}

func BenchmarkCountRange(b *testing.B) {
	s := New(4096)
	s.SetRange(0, 4096)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.CountRange(3000)
	}
	_ = sink
}
