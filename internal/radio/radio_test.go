package radio

import (
	"testing"
	"testing/quick"

	"multicast/internal/bitset"
	"multicast/internal/rng"
)

func begin(nw *Network, slot int64, channels int) {
	nw.BeginSlot(slot, channels, nil, 0)
}

func TestSilenceOnEmptyChannel(t *testing.T) {
	nw := NewNetwork(4, 8)
	begin(nw, 0, 8)
	for ch := 0; ch < 8; ch++ {
		fb := nw.Listen(0, ch)
		if fb.Status != Silence {
			t.Fatalf("channel %d: status %v, want silence", ch, fb.Status)
		}
		if fb.Payload != None {
			t.Fatalf("silence carried payload %v", fb.Payload)
		}
	}
	nw.EndSlot()
}

func TestSingleBroadcasterDeliversMessage(t *testing.T) {
	nw := NewNetwork(4, 8)
	begin(nw, 0, 8)
	nw.Broadcast(1, 3, MsgM)
	fb := nw.Listen(0, 3)
	if fb.Status != Message || fb.Payload != MsgM {
		t.Fatalf("got %+v, want message m", fb)
	}
	// Other channels unaffected.
	if fb := nw.Listen(2, 4); fb.Status != Silence {
		t.Fatalf("adjacent channel got %v", fb.Status)
	}
	nw.EndSlot()
}

func TestBeaconDelivery(t *testing.T) {
	nw := NewNetwork(2, 2)
	begin(nw, 0, 2)
	nw.Broadcast(0, 1, Beacon)
	fb := nw.Listen(1, 1)
	if fb.Status != Message || fb.Payload != Beacon {
		t.Fatalf("got %+v, want beacon", fb)
	}
	nw.EndSlot()
}

func TestCollisionIsNoise(t *testing.T) {
	nw := NewNetwork(4, 4)
	begin(nw, 0, 4)
	nw.Broadcast(0, 2, MsgM)
	nw.Broadcast(1, 2, MsgM)
	fb := nw.Listen(2, 2)
	if fb.Status != Noise {
		t.Fatalf("two broadcasters: status %v, want noise", fb.Status)
	}
	if fb.Payload != None {
		t.Fatalf("noise leaked payload %v", fb.Payload)
	}
	nw.EndSlot()
}

func TestCollisionOfDifferentPayloadsIsNoise(t *testing.T) {
	nw := NewNetwork(3, 1)
	begin(nw, 0, 1)
	nw.Broadcast(0, 0, MsgM)
	nw.Broadcast(1, 0, Beacon)
	if fb := nw.Listen(2, 0); fb.Status != Noise {
		t.Fatalf("m+beacon collision: %v, want noise", fb.Status)
	}
	nw.EndSlot()
}

func TestJammingIsNoise(t *testing.T) {
	nw := NewNetwork(2, 4)
	jam := bitset.New(4)
	jam.Set(1)
	nw.BeginSlot(0, 4, jam, 1)
	// Jammed and silent channel → noise.
	if fb := nw.Listen(0, 1); fb.Status != Noise {
		t.Fatalf("jammed empty channel: %v, want noise", fb.Status)
	}
	// Jammed channel with one broadcaster → noise (message destroyed).
	nw.Broadcast(1, 1, MsgM)
	if fb := nw.Listen(0, 1); fb.Status != Noise {
		t.Fatalf("jammed single-broadcaster channel: %v, want noise", fb.Status)
	}
	// Unjammed channel in the same slot still works.
	if fb := nw.Listen(0, 2); fb.Status != Silence {
		t.Fatalf("unjammed channel: %v, want silence", fb.Status)
	}
	nw.EndSlot()
	if nw.EveEnergy() != 1 {
		t.Fatalf("Eve energy = %d, want 1", nw.EveEnergy())
	}
}

func TestCollisionAndJammingIndistinguishable(t *testing.T) {
	// The model says listeners cannot tell collision from jamming: both
	// must yield the identical Feedback value.
	nwA := NewNetwork(3, 1)
	begin(nwA, 0, 1)
	nwA.Broadcast(0, 0, MsgM)
	nwA.Broadcast(1, 0, MsgM)
	collision := nwA.Listen(2, 0)
	nwA.EndSlot()

	nwB := NewNetwork(3, 1)
	jam := bitset.New(1)
	jam.Set(0)
	nwB.BeginSlot(0, 1, jam, 1)
	jammed := nwB.Listen(2, 0)
	nwB.EndSlot()

	if collision != jammed {
		t.Fatalf("collision %+v != jammed %+v", collision, jammed)
	}
}

func TestEnergyAccounting(t *testing.T) {
	nw := NewNetwork(3, 4)
	jam := bitset.New(4)
	jam.Set(0)
	jam.Set(1)
	nw.BeginSlot(0, 4, jam, 2)
	nw.Broadcast(0, 2, MsgM)
	nw.Listen(1, 2)
	nw.Listen(1, 3) // a node listening twice is the engine's bug, but metering still counts
	nw.EndSlot()

	if got := nw.NodeEnergy(0); got != 1 {
		t.Errorf("broadcaster energy = %d, want 1", got)
	}
	if got := nw.NodeEnergy(1); got != 2 {
		t.Errorf("listener energy = %d, want 2", got)
	}
	if got := nw.NodeEnergy(2); got != 0 {
		t.Errorf("idle node energy = %d, want 0", got)
	}
	if got := nw.EveEnergy(); got != 2 {
		t.Errorf("Eve energy = %d, want 2", got)
	}

	// Energy accumulates across slots.
	begin(nw, 1, 4)
	nw.Broadcast(0, 0, MsgM)
	nw.EndSlot()
	if got := nw.NodeEnergy(0); got != 2 {
		t.Errorf("cumulative energy = %d, want 2", got)
	}
}

func TestIdlingIsFree(t *testing.T) {
	nw := NewNetwork(2, 2)
	for s := int64(0); s < 100; s++ {
		begin(nw, s, 2)
		nw.EndSlot()
	}
	for id := 0; id < 2; id++ {
		if nw.NodeEnergy(id) != 0 {
			t.Fatalf("idle node %d charged %d", id, nw.NodeEnergy(id))
		}
	}
}

func TestChannelStateResetsBetweenSlots(t *testing.T) {
	nw := NewNetwork(2, 2)
	begin(nw, 0, 2)
	nw.Broadcast(0, 1, MsgM)
	nw.EndSlot()
	begin(nw, 1, 2)
	if fb := nw.Listen(1, 1); fb.Status != Silence {
		t.Fatalf("stale broadcast leaked into next slot: %v", fb.Status)
	}
	nw.EndSlot()
}

func TestGrowChannels(t *testing.T) {
	nw := NewNetwork(2, 2)
	begin(nw, 0, 2)
	nw.EndSlot()
	// MultiCastAdv grows the channel count between phases.
	nw.BeginSlot(1, 1024, nil, 0)
	nw.Broadcast(0, 1000, MsgM)
	if fb := nw.Listen(1, 1000); fb.Status != Message {
		t.Fatalf("high channel after grow: %v", fb.Status)
	}
	nw.EndSlot()
	if nw.Channels() != 1024 {
		t.Fatalf("Channels = %d, want 1024", nw.Channels())
	}
}

func TestBroadcastersOn(t *testing.T) {
	nw := NewNetwork(4, 2)
	begin(nw, 0, 2)
	if nw.BroadcastersOn(0) != 0 {
		t.Fatal("fresh channel has broadcasters")
	}
	nw.Broadcast(0, 0, MsgM)
	nw.Broadcast(1, 0, MsgM)
	nw.Broadcast(2, 0, MsgM)
	if got := nw.BroadcastersOn(0); got != 3 {
		t.Fatalf("BroadcastersOn = %d, want 3", got)
	}
	b, l := nw.SlotActivity()
	if b != 3 || l != 0 {
		t.Fatalf("SlotActivity = (%d,%d), want (3,0)", b, l)
	}
	nw.EndSlot()
}

func TestModelPanics(t *testing.T) {
	cases := map[string]func(){
		"listen outside slot": func() {
			nw := NewNetwork(1, 1)
			nw.Listen(0, 0)
		},
		"broadcast outside slot": func() {
			nw := NewNetwork(1, 1)
			nw.Broadcast(0, 0, MsgM)
		},
		"none payload": func() {
			nw := NewNetwork(1, 1)
			begin(nw, 0, 1)
			nw.Broadcast(0, 0, None)
		},
		"bad node id": func() {
			nw := NewNetwork(1, 1)
			begin(nw, 0, 1)
			nw.Listen(5, 0)
		},
		"bad channel": func() {
			nw := NewNetwork(1, 1)
			begin(nw, 0, 1)
			nw.Listen(0, 3)
		},
		"negative channel": func() {
			nw := NewNetwork(1, 1)
			begin(nw, 0, 1)
			nw.Listen(0, -1)
		},
		"slot does not advance": func() {
			nw := NewNetwork(1, 1)
			begin(nw, 0, 1)
			nw.EndSlot()
			begin(nw, 0, 1)
		},
		"nested BeginSlot": func() {
			nw := NewNetwork(1, 1)
			begin(nw, 0, 1)
			begin(nw, 1, 1)
		},
		"EndSlot without BeginSlot": func() {
			nw := NewNetwork(1, 1)
			nw.EndSlot()
		},
		"zero nodes": func() { NewNetwork(0, 1) },
		"zero channels in slot": func() {
			nw := NewNetwork(1, 1)
			nw.BeginSlot(0, 0, nil, 0)
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStatusAndPayloadStrings(t *testing.T) {
	if Silence.String() != "silence" || Message.String() != "message" || Noise.String() != "noise" {
		t.Error("Status strings wrong")
	}
	if MsgM.String() != "m" || Beacon.String() != "±" || None.String() != "none" {
		t.Error("Payload strings wrong")
	}
	if Status(9).String() == "" || Payload(9).String() == "" {
		t.Error("unknown values must still render")
	}
}

// Property: with k broadcasters on a channel and no jamming, listeners see
// silence iff k==0, the message iff k==1, noise iff k≥2.
func TestQuickResolutionRule(t *testing.T) {
	f := func(k uint8, seed uint64) bool {
		broadcasters := int(k % 8)
		nw := NewNetwork(10, 4)
		begin(nw, 0, 4)
		for i := 0; i < broadcasters; i++ {
			nw.Broadcast(i, 2, MsgM)
		}
		fb := nw.Listen(9, 2)
		nw.EndSlot()
		switch {
		case broadcasters == 0:
			return fb.Status == Silence
		case broadcasters == 1:
			return fb.Status == Message && fb.Payload == MsgM
		default:
			return fb.Status == Noise
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total node energy equals broadcasts + listens, and Eve energy
// equals the jam counts charged, across a random multi-slot schedule.
func TestQuickEnergyConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const n, c = 8, 16
		nw := NewNetwork(n, c)
		wantNode := int64(0)
		wantEve := int64(0)
		for s := int64(0); s < 50; s++ {
			jam := bitset.New(c)
			jamCount := 0
			for ch := 0; ch < c; ch++ {
				if r.Bernoulli(0.3) {
					jam.Set(ch)
					jamCount++
				}
			}
			nw.BeginSlot(s, c, jam, jamCount)
			wantEve += int64(jamCount)
			for id := 0; id < n; id++ {
				switch r.Intn(3) {
				case 0:
					nw.Broadcast(id, r.Intn(c), MsgM)
					wantNode++
				case 1:
					nw.Listen(id, r.Intn(c))
					wantNode++
				}
			}
			nw.EndSlot()
		}
		var gotNode int64
		for id := 0; id < n; id++ {
			gotNode += nw.NodeEnergy(id)
		}
		return gotNode == wantNode && nw.EveEnergy() == wantEve
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkResolveSlot(b *testing.B) {
	const n, c = 256, 128
	nw := NewNetwork(n, c)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		nw.BeginSlot(int64(i), c, nil, 0)
		for id := 0; id < 16; id++ {
			nw.Broadcast(id, r.Intn(c), MsgM)
		}
		for id := 16; id < 32; id++ {
			nw.Listen(id, r.Intn(c))
		}
		nw.EndSlot()
	}
}
