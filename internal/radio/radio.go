// Package radio implements the paper's communication model (Section 3):
// a synchronous, single-hop, multi-channel radio network.
//
// Per slot, per channel:
//
//   - no broadcaster and no jamming        → every listener detects silence;
//   - exactly one broadcaster, no jamming  → every listener receives the message;
//   - ≥2 broadcasters, or jamming, or both → every listener hears noise.
//
// Listeners cannot distinguish collision noise from jamming noise, and
// broadcasters get no feedback about channel status. Broadcasting or
// listening on one channel for one slot costs the node one unit of energy;
// jamming one channel for one slot costs Eve one unit. Idling is free.
// All energy metering in the simulator happens in this package so that the
// resource-competitive ratios reported by the experiment harness are
// audited in exactly one place.
package radio

import (
	"fmt"

	"multicast/internal/bitset"
)

// Status is what a listener observes on a channel.
type Status uint8

const (
	// Silence: nobody broadcast and Eve did not jam.
	Silence Status = iota
	// Message: exactly one broadcaster and no jamming; the payload is
	// delivered intact.
	Message
	// Noise: a collision (≥2 broadcasters) or jamming or both.
	Noise
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Silence:
		return "silence"
	case Message:
		return "message"
	case Noise:
		return "noise"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Payload identifies what a node broadcasts. The broadcast problem carries
// a single message m; MultiCastAdv additionally uses a special beacon "±"
// broadcast by uninformed nodes in step two (Figure 4).
type Payload uint8

const (
	// None is the zero Payload; it is never transmitted.
	None Payload = iota
	// MsgM is the broadcast message m.
	MsgM
	// Beacon is the special beacon message ± of MultiCastAdv.
	Beacon
)

// String returns a human-readable payload name.
func (p Payload) String() string {
	switch p {
	case None:
		return "none"
	case MsgM:
		return "m"
	case Beacon:
		return "±"
	default:
		return fmt.Sprintf("Payload(%d)", uint8(p))
	}
}

// Feedback is what a listening node learns at the end of a slot.
type Feedback struct {
	Status Status
	// Payload is the received message when Status == Message, None otherwise.
	Payload Payload
}

// chanState is per-channel slot-stamped occupancy. Stamping avoids clearing
// every channel every slot: a channel whose stamp differs from the current
// slot is empty.
type chanState struct {
	stamp   int64
	count   int32
	payload Payload
}

// Network is the shared medium for one execution. It is not safe for
// concurrent use; the simulation engine drives it from a single goroutine
// (trial-level parallelism lives above this layer).
type Network struct {
	channels int
	states   []chanState
	slot     int64
	inSlot   bool
	jam      *bitset.Set // jam mask for the current slot (nil → no jamming)

	nodeEnergy []int64
	eveEnergy  int64

	// Slot-level tallies for tests and traces.
	broadcastsThisSlot int
	listensThisSlot    int
}

// NewNetwork returns a network with meters for n nodes and capacity for
// channels channels. Capacity grows on demand (MultiCastAdv increases its
// channel count as epochs proceed).
func NewNetwork(n, channels int) *Network {
	if n <= 0 {
		panic("radio: network needs at least one node")
	}
	if channels < 1 {
		channels = 1
	}
	states := make([]chanState, channels)
	for i := range states {
		states[i].stamp = -1
	}
	return &Network{
		channels:   channels,
		states:     states,
		slot:       -1,
		nodeEnergy: make([]int64, n),
	}
}

// Channels returns the current channel capacity.
func (nw *Network) Channels() int { return nw.channels }

// Slot returns the index of the slot currently in progress (or the last
// completed slot if none is in progress).
func (nw *Network) Slot() int64 { return nw.slot }

// NodeEnergy returns the total energy spent so far by node id.
func (nw *Network) NodeEnergy(id int) int64 { return nw.nodeEnergy[id] }

// NodeEnergies returns the per-node energy meter slice (not a copy).
func (nw *Network) NodeEnergies() []int64 { return nw.nodeEnergy }

// EveEnergy returns the total energy Eve has spent jamming.
func (nw *Network) EveEnergy() int64 { return nw.eveEnergy }

// ChargeEve adds amount to Eve's energy meter without running a slot. The
// sparse engine uses it to account for jamming in slot ranges it skips:
// no node listens there, so the jam sets are unobservable, but Eve still
// pays for them. amount must be ≥ 0.
func (nw *Network) ChargeEve(amount int64) {
	if amount < 0 {
		panic("radio: negative Eve charge")
	}
	nw.eveEnergy += amount
}

// ChargeNode adds one unit to node id's energy meter without running a
// slot. The event engine's lean step resolves channel outcomes itself —
// outside BeginSlot/EndSlot — but all energy metering still lands here,
// so the competitive ratios stay audited in one place.
func (nw *Network) ChargeNode(id int) {
	if id < 0 || id >= len(nw.nodeEnergy) {
		chargeNodePanic(id)
	}
	nw.nodeEnergy[id]++
}

// chargeNodePanic is split out so ChargeNode stays inlinable on the
// engines' hot path.
func chargeNodePanic(id int) {
	panic(fmt.Sprintf("radio: node id %d out of range", id))
}

// Reset returns the network to its just-constructed state while keeping
// its allocations, so a pooled execution (sim.Executor) can reuse one
// network across trials. The channel-state slice keeps its full length —
// grow() treats len(states) as the capacity, so shrinking the visible
// slice would forfeit it — and the stamps are rewound instead, an
// O(capacity) cost paid once per trial, never per slot.
func (nw *Network) Reset(n, channels int) {
	if n <= 0 {
		panic("radio: network needs at least one node")
	}
	if channels < 1 {
		channels = 1
	}
	if channels > len(nw.states) {
		nw.states = make([]chanState, channels)
	}
	for i := range nw.states {
		nw.states[i] = chanState{stamp: -1}
	}
	nw.channels = channels
	if n <= cap(nw.nodeEnergy) {
		nw.nodeEnergy = nw.nodeEnergy[:n]
		clear(nw.nodeEnergy)
	} else {
		nw.nodeEnergy = make([]int64, n)
	}
	nw.slot = -1
	nw.inSlot = false
	nw.jam = nil
	nw.eveEnergy = 0
	nw.broadcastsThisSlot = 0
	nw.listensThisSlot = 0
}

// grow ensures capacity for at least channels channels.
func (nw *Network) grow(channels int) {
	if channels <= len(nw.states) {
		nw.channels = max(nw.channels, channels)
		return
	}
	states := make([]chanState, channels)
	copy(states, nw.states)
	for i := len(nw.states); i < channels; i++ {
		states[i].stamp = -1
	}
	nw.states = states
	nw.channels = channels
}

// BeginSlot starts slot number slot using the given number of channels and
// jam mask. jam may be nil (no jamming); otherwise only bits < channels are
// honoured, and Eve is charged one unit per jammed channel. jamCount must
// equal jam.CountRange(channels); it is passed in because the engine has
// already computed it while enforcing Eve's budget.
//
// Slots must begin in strictly increasing order.
func (nw *Network) BeginSlot(slot int64, channels int, jam *bitset.Set, jamCount int) {
	if nw.inSlot {
		panic("radio: BeginSlot called while a slot is in progress")
	}
	if slot <= nw.slot {
		panic(fmt.Sprintf("radio: slot %d does not advance past %d", slot, nw.slot))
	}
	if channels < 1 {
		panic("radio: slot needs at least one channel")
	}
	nw.grow(channels)
	nw.slot = slot
	nw.inSlot = true
	nw.jam = jam
	nw.eveEnergy += int64(jamCount)
	nw.broadcastsThisSlot = 0
	nw.listensThisSlot = 0
}

// EndSlot finishes the slot in progress.
func (nw *Network) EndSlot() {
	if !nw.inSlot {
		panic("radio: EndSlot without BeginSlot")
	}
	nw.inSlot = false
	nw.jam = nil
}

// Broadcast transmits payload on channel ch (0-based) on behalf of node id.
// The broadcaster learns nothing about the channel. Costs one energy unit.
func (nw *Network) Broadcast(id, ch int, payload Payload) {
	nw.checkAccess(id, ch)
	if payload == None {
		panic("radio: cannot broadcast the None payload")
	}
	st := &nw.states[ch]
	if st.stamp != nw.slot {
		st.stamp = nw.slot
		st.count = 1
		st.payload = payload
	} else {
		st.count++
	}
	nw.nodeEnergy[id]++
	nw.broadcastsThisSlot++
}

// Listen observes channel ch on behalf of node id and returns the feedback
// defined by the model. Costs one energy unit. All broadcasts for the slot
// must be registered before any listen; the engine guarantees this order.
func (nw *Network) Listen(id, ch int) Feedback {
	nw.checkAccess(id, ch)
	nw.nodeEnergy[id]++
	nw.listensThisSlot++
	if nw.jam != nil && ch < nw.jam.Len() && nw.jam.Test(ch) {
		return Feedback{Status: Noise}
	}
	st := &nw.states[ch]
	if st.stamp != nw.slot || st.count == 0 {
		return Feedback{Status: Silence}
	}
	if st.count == 1 {
		return Feedback{Status: Message, Payload: st.payload}
	}
	return Feedback{Status: Noise}
}

func (nw *Network) checkAccess(id, ch int) {
	if !nw.inSlot {
		panic("radio: channel access outside a slot")
	}
	if id < 0 || id >= len(nw.nodeEnergy) {
		panic(fmt.Sprintf("radio: node id %d out of range", id))
	}
	if ch < 0 || ch >= nw.channels {
		panic(fmt.Sprintf("radio: channel %d out of range [0,%d)", ch, nw.channels))
	}
}

// BroadcastersOn reports how many nodes have broadcast on ch in the current
// slot. Test/trace helper; not part of the node-visible model.
func (nw *Network) BroadcastersOn(ch int) int {
	st := &nw.states[ch]
	if st.stamp != nw.slot {
		return 0
	}
	return int(st.count)
}

// SlotActivity reports the number of broadcasts and listens registered in
// the current slot. Test/trace helper.
func (nw *Network) SlotActivity() (broadcasts, listens int) {
	return nw.broadcastsThisSlot, nw.listensThisSlot
}
