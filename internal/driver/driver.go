// Package driver turns a sharded campaign from a hand-run procedure
// into a supervised one: given a campaign spec and a shard count k, it
// launches k shard workers, streams per-shard progress, restarts or
// resumes failed shards with bounded retries, and gathers and merges
// the shard artifacts into the final summary — the summary the
// unsharded run would have produced, bit for bit.
//
// Workers run either in-process (each shard drives runner.RunSweep
// under its own campaign.Checkpointer, so a crashed or cancelled driver
// resumes every shard at its next undone grid cell) or as subprocesses
// via Options.Spawn (each child writes its shard artifact itself; a
// failed child is restarted from scratch, since its checkpoint state is
// its own business). Options.Schedule swaps the static per-shard pools
// for one work-stealing pool over the whole grid (see steal.go) without
// changing a byte of any artifact. Either way the artifact directory is the only
// coordination medium, which is what makes a driven campaign
// killable: re-running with Options.Resume skips shards whose
// artifacts are complete, resumes checkpointed ones, and re-merges.
//
// Options.Chaos is the driver's fault-injection seam: internal/chaos
// plugs deterministic, seeded failures into the spawn/checkpoint/
// gather path through it (see ChaosHooks). Gathering is self-healing
// against non-foreign damage — a corrupt or misdelivered shard artifact
// is discarded and its shard re-run — while corrupt checkpoints and
// foreign artifacts stay hard errors, because regenerating over them
// could silently discard another campaign's work.
package driver

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"

	"multicast/internal/cache"
	"multicast/internal/campaign"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

// Spec describes one campaign to drive.
type Spec struct {
	// Template carries the campaign identity and artifact skeleton (its
	// collectors are ignored; shard workers start from CloneEmpty).
	Template *campaign.Summary
	// Points are the workload points backing Template.Points, in the
	// same order. Required for in-process workers; ignored when Spawn
	// launches subprocesses (the children build their own workloads).
	Points []sim.Config
	// Trials is the trial count per point; must match Template.Trials.
	Trials int
}

// ErrInjected marks a failure injected by the chaos harness (see
// internal/chaos). The driver uses it to skip best-effort rescue work a
// real crash could not have performed — e.g. the tail checkpoint flush
// after a simulated process death.
var ErrInjected = errors.New("injected chaos fault")

// Options tune a driven campaign.
type Options struct {
	// Shards is k: the campaign grid is split into shards 0..k-1, one
	// worker each. Minimum 1.
	Shards int
	// Schedule picks how grid cells are distributed over workers:
	// ScheduleStatic (the default, also the zero value) pins shard i to
	// the cells g ≡ i (mod k); ScheduleSteal runs one work-stealing pool
	// over the whole grid. Either way the shard artifacts — and the
	// merged summary — are bit-identical. Steal requires in-process
	// workers (Spawn must be nil).
	Schedule Schedule
	// Workers caps each in-process shard worker's trial pool; 0 divides
	// GOMAXPROCS evenly across shards (minimum 1 each).
	Workers int
	// Retries is how many times a failed shard worker is relaunched
	// (resuming from its checkpoint) before the campaign fails. 0 means
	// fail on the first error.
	Retries int
	// Dir is the campaign directory holding shard artifacts and
	// checkpoints. Required: it is the resume state.
	Dir string
	// Resume continues a previously interrupted campaign in Dir:
	// completed shard artifacts are kept, checkpointed shards resume at
	// their next undone cell. Without Resume, a Dir already holding
	// campaign files is refused.
	Resume bool
	// CheckpointEvery is the number of grid cells between checkpoint
	// flushes for in-process workers; 0 or 1 checkpoints every cell.
	CheckpointEvery int
	// Progress, if non-nil, receives per-shard events.
	Progress func(Event)
	// Spawn, if non-nil, launches shard workers as subprocesses instead
	// of in-process: it must return a command that runs shard
	// `shard`/`shards` of the campaign and writes its artifact to
	// `artifact` (atomically — campaign.Summary.Write does). The driver
	// validates the artifact after the child exits.
	Spawn func(ctx context.Context, shard, shards int, artifact string) *exec.Cmd
	// Cache, if non-nil, is the content-addressed cell result cache:
	// every grid cell is looked up before it is dispatched — under both
	// schedules — and a hit flows into the fold exactly like a computed
	// result, so artifacts, checkpoints, and the merged summary are
	// byte-identical with or without it. Misses store their result back.
	// Requires in-process workers (Spawn must be nil): subprocess
	// children own their own execution and would bypass the seam.
	Cache *cache.Store
	// CellHook is a test seam: called after each checkpointed cell of an
	// in-process shard; an error fails the shard attempt as if the
	// worker had crashed there.
	CellHook func(shard, attempt, done int) error
	// Chaos, if non-nil, injects deterministic faults into the campaign
	// fabric (see ChaosHooks and internal/chaos). Implies KeepGoing so
	// every scheduled fault point is reached regardless of sibling
	// failures.
	Chaos *ChaosHooks
	// KeepGoing keeps healthy shards running after another shard fails,
	// instead of cancelling the fleet on the first error. The failing
	// shard with the lowest index names the run's error.
	KeepGoing bool
}

// ChaosHooks is the driver's fault-injection seam. Every field is
// optional; nil hooks are skipped. internal/chaos provides the standard
// implementation — a seeded, deterministic schedule — but the driver
// only depends on this shape, so tests can hand-roll hooks too. The
// per-cell and per-flush hooks apply to in-process workers; Begin and
// Gather also cover subprocess runs.
type ChaosHooks struct {
	// Begin is called once per Run before workers launch, with the
	// shard count — the point where seeded wildcard targets resolve.
	Begin func(shards int)
	// Arm is called as a shard worker attempt starts, after checkpoint
	// resume: done cells are already covered, cells is the shard's
	// local slice size.
	Arm func(shard, attempt, done, cells int)
	// Cell is called after each checkpointed cell; returning an error
	// crashes the worker there, and blocking on ctx simulates a stalled
	// worker.
	Cell func(ctx context.Context, shard, attempt, done int) error
	// CheckpointFault may replace a checkpoint flush with a storage
	// fault (the payload bytes are what Flush would have written).
	CheckpointFault func(shard, attempt int, data []byte) *campaign.Fault
	// ArtifactFault may replace a shard artifact write with a storage
	// fault.
	ArtifactFault func(shard, attempt int, data []byte) *campaign.Fault
	// Gather is called after all shards succeed, before the merge — the
	// seam for delivery faults (duplicated or swapped artifacts).
	Gather func(dir string, shards int) error
}

// ArtifactPath returns the shard artifact path within dir the driver
// writes and gathers.
func ArtifactPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.json", shard))
}

// CheckpointPath returns the shard checkpoint sidecar path within dir —
// exported so operators (and chaos drills) can name the sidecar to
// inspect or remove when a corrupt-checkpoint refusal asks for it.
func CheckpointPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt.json", shard))
}

// Run drives the campaign to completion and returns the merged summary.
// On failure the campaign directory keeps every complete artifact and
// checkpoint, so rerunning with Options.Resume loses no finished cell.
func Run(ctx context.Context, spec Spec, opts Options) (*campaign.Summary, error) {
	if spec.Template == nil {
		return nil, fmt.Errorf("driver: no campaign template")
	}
	if err := spec.Template.Validate(); err != nil {
		return nil, fmt.Errorf("driver: campaign template: %w", err)
	}
	if spec.Trials != spec.Template.Trials {
		return nil, fmt.Errorf("driver: spec trials %d != template trials %d", spec.Trials, spec.Template.Trials)
	}
	if opts.Spawn == nil && len(spec.Points) != len(spec.Template.Points) {
		return nil, fmt.Errorf("driver: %d workload points for %d template points",
			len(spec.Points), len(spec.Template.Points))
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("driver: shards = %d must be positive", opts.Shards)
	}
	if opts.Retries < 0 {
		return nil, fmt.Errorf("driver: retries = %d must not be negative", opts.Retries)
	}
	sched, err := ParseSchedule(string(opts.Schedule))
	if err != nil {
		return nil, err
	}
	opts.Schedule = sched
	if sched == ScheduleSteal && opts.Spawn != nil {
		return nil, fmt.Errorf("driver: schedule %q needs in-process workers, not Spawn subprocesses", ScheduleSteal)
	}
	if opts.Cache != nil && opts.Spawn != nil {
		return nil, fmt.Errorf("driver: the result cache needs in-process workers, not Spawn subprocesses")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("driver: campaign directory required (it is the resume state)")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if !opts.Resume {
		stale, err := filepath.Glob(filepath.Join(opts.Dir, "shard-*.json"))
		if err != nil {
			return nil, err
		}
		if len(stale) > 0 {
			return nil, fmt.Errorf("driver: %s already holds campaign files (%s, …) — resume the campaign or remove the directory",
				opts.Dir, filepath.Base(stale[0]))
		}
	}

	d := &drive{spec: spec, opts: opts, total: len(spec.Template.Points) * spec.Trials}
	if d.opts.Workers == 0 && d.opts.Spawn == nil {
		d.opts.Workers = max(1, runtime.GOMAXPROCS(0)/opts.Shards)
	}
	if opts.Cache != nil {
		grid, err := runner.NewGrid(spec.Points, spec.Trials)
		if err != nil {
			return nil, err
		}
		d.cache = newCellCache(opts.Cache, spec.Template, grid)
	}
	// Under chaos, sibling cancellation would make which fault points
	// are reached depend on goroutine timing; keep the fleet going so a
	// seeded schedule always plays out the same way.
	keepGoing := opts.KeepGoing || opts.Chaos != nil
	if c := d.opts.Chaos; c != nil && c.Begin != nil {
		c.Begin(opts.Shards)
	}

	if d.opts.Schedule == ScheduleSteal {
		if err := d.driveSteal(ctx); err != nil {
			return nil, err
		}
	} else {
		var wg sync.WaitGroup
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		errs := make([]error, opts.Shards)
		for i := 0; i < opts.Shards; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := d.runShard(runCtx, i); err != nil {
					errs[i] = err
					if !keepGoing {
						cancel() // first failure stops the fleet; checkpoints survive
					}
				}
			}()
		}
		wg.Wait()
		// The lowest-index failing shard's error (deterministic), not a
		// sibling's cancellation echo.
		var firstErr error
		for _, err := range errs {
			if err != nil && !errors.Is(err, context.Canceled) {
				firstErr = err
				break
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if c := d.opts.Chaos; c != nil && c.Gather != nil {
		if err := c.Gather(d.opts.Dir, d.opts.Shards); err != nil {
			return nil, err
		}
	}
	paths := make([]string, opts.Shards)
	for i := range paths {
		paths[i] = ArtifactPath(opts.Dir, i)
	}
	merged, err := campaign.MergeFiles(paths)
	if err != nil {
		return nil, fmt.Errorf("driver: gathering shard artifacts: %w", err)
	}
	return merged, nil
}

// drive is the shared state of one Run call.
type drive struct {
	spec  Spec
	opts  Options
	total int        // global grid cells
	cache *cellCache // nil unless Options.Cache is set

	mu sync.Mutex // serializes Progress callbacks
}

func (d *drive) emit(ev Event) {
	if d.opts.Progress == nil {
		return
	}
	if ev.Err != nil {
		ev.ErrText = ev.Err.Error()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opts.Progress(ev)
}

// localCells counts the grid cells of shard i — the runner's own slice
// definition, so completeness checks cannot desync from the execution
// loop.
func (d *drive) localCells(i int) int {
	return runner.Shard{Index: i, Count: d.opts.Shards}.Cells(d.total)
}

// terminalError marks a failure retrying cannot fix — identity and
// validation mismatches are deterministic, so relaunching the worker
// would just replay them Retries times with misleading progress lines.
type terminalError struct{ err error }

func (e terminalError) Error() string { return e.err.Error() }
func (e terminalError) Unwrap() error { return e.err }

// shardTemplate is shard i's empty artifact skeleton.
func (d *drive) shardTemplate(i int) *campaign.Summary {
	s := d.spec.Template.CloneEmpty()
	s.ShardIndex, s.ShardCount = i, d.opts.Shards
	return s
}

// runShard supervises one shard: skip it if its artifact is already
// complete, otherwise attempt it up to 1+Retries times, resuming
// in-process attempts from the shard checkpoint.
func (d *drive) runShard(ctx context.Context, i int) error {
	local := d.localCells(i)
	for attempt := 0; ; attempt++ {
		if d.opts.Resume || attempt > 0 {
			done, err := d.shardComplete(i, attempt, local)
			if err != nil {
				return err
			}
			if done {
				d.emit(Event{Shard: i, Kind: EventShardDone, Done: local, Total: local, Attempt: attempt})
				return nil
			}
		}
		var err error
		if d.opts.Spawn != nil {
			err = d.runSubprocess(ctx, i, attempt, local)
		} else {
			err = d.runInProcess(ctx, i, attempt, local)
		}
		if err == nil {
			d.emit(Event{Shard: i, Kind: EventShardDone, Done: local, Total: local, Attempt: attempt})
			return nil
		}
		if ctx.Err() != nil {
			// Cancellation (or a sibling shard's failure) is not this
			// shard's fault; don't burn retries on it.
			return ctx.Err()
		}
		var term terminalError
		if errors.As(err, &term) {
			return term.err
		}
		if attempt >= d.opts.Retries {
			return fmt.Errorf("driver: shard %d/%d failed after %d attempt(s): %w",
				i, d.opts.Shards, attempt+1, err)
		}
		d.emit(Event{Shard: i, Kind: EventRetry, Total: local, Attempt: attempt, Err: err})
	}
}

// shardComplete reports whether shard i's artifact already covers its
// whole slice. An artifact from a different campaign is a hard error —
// re-running over it could silently discard another campaign's work.
// Damage the shard itself can repair — a corrupt artifact, or one from
// this campaign misdelivered into the wrong shard slot or with the
// wrong coverage — is discarded (with an EventDiscard) and the shard
// re-runs: the cells are deterministic, so regeneration is always safe.
func (d *drive) shardComplete(i, attempt, local int) (bool, error) {
	path := ArtifactPath(d.opts.Dir, i)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	discard := func(reason error) (bool, error) {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return false, err
		}
		d.emit(Event{Shard: i, Kind: EventDiscard, Total: local, Attempt: attempt, Err: reason})
		return false, nil
	}
	s, err := campaign.Read(path)
	if err != nil {
		if errors.Is(err, campaign.ErrCorruptArtifact) {
			return discard(fmt.Errorf("driver: shard %d artifact: %w", i, err))
		}
		return false, fmt.Errorf("driver: shard %d artifact: %w", i, err)
	}
	tmpl := d.shardTemplate(i)
	if s.Identity() != tmpl.Identity() {
		return false, fmt.Errorf("driver: artifact %s is from a different campaign:\n  %s\nvs this campaign:\n  %s",
			path, s.Identity(), tmpl.Identity())
	}
	if s.ShardIndex != i || s.ShardCount != d.opts.Shards {
		return discard(fmt.Errorf("driver: artifact %s is shard %d/%d, not %d/%d — misdelivered; regenerating",
			path, s.ShardIndex, s.ShardCount, i, d.opts.Shards))
	}
	if s.Cells() != int64(local) {
		return discard(fmt.Errorf("driver: artifact %s covers %d of %d cells — incomplete; regenerating",
			path, s.Cells(), local))
	}
	return true, nil
}

// runInProcess executes one attempt of shard i through runner.RunSweep
// under a checkpointer, then writes the shard artifact.
func (d *drive) runInProcess(ctx context.Context, i, attempt, local int) error {
	chaos := d.opts.Chaos
	ck := campaign.NewCheckpointer(CheckpointPath(d.opts.Dir, i), d.shardTemplate(i), d.opts.CheckpointEvery)
	if chaos != nil && chaos.CheckpointFault != nil {
		ck.Fault = func(data []byte) *campaign.Fault {
			return chaos.CheckpointFault(i, attempt, data)
		}
	}
	if d.opts.Resume || attempt > 0 {
		if _, err := ck.Resume(); err != nil {
			return terminalError{err} // foreign/corrupt checkpoint: retrying replays it
		}
	}
	if chaos != nil && chaos.Arm != nil {
		chaos.Arm(i, attempt, ck.Done(), local)
	}
	d.emit(Event{Shard: i, Kind: EventStart, Done: ck.Done(), Total: local, Attempt: attempt})
	plan := runner.SweepPlan{
		Trials:  d.spec.Trials,
		Shard:   runner.Shard{Index: i, Count: d.opts.Shards},
		Skip:    ck.Done(),
		Workers: d.opts.Workers,
	}
	if d.cache != nil {
		plan.Cache = d.cache // guarded: a typed-nil adapter must not enable the seam
	}
	err := runner.RunSweep(ctx, d.spec.Points, plan, func(p, t int, m sim.Metrics) error {
		if err := ck.Add(p, t, m); err != nil {
			return err
		}
		d.emit(Event{Shard: i, Kind: EventCell, Done: ck.Done(), Total: local, Attempt: attempt,
			Cache: d.cache.mark(p*d.spec.Trials + t)})
		if d.opts.CellHook != nil {
			if err := d.opts.CellHook(i, attempt, ck.Done()); err != nil {
				return err
			}
		}
		if chaos != nil && chaos.Cell != nil {
			if err := chaos.Cell(ctx, i, attempt, ck.Done()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		// The checkpoint keeps every completed cell; flush any tail the
		// throttle was still holding so a retry resumes as far along as
		// possible (best effort — the stale checkpoint is also correct).
		// An injected crash simulates the process dying on the spot, so
		// no rescue flush happens for it either.
		if ck.Done() > 0 && !errors.Is(err, ErrInjected) {
			_ = ck.Flush()
		}
		return err
	}
	if got := ck.Done(); got != local {
		return fmt.Errorf("driver: shard %d ran %d of %d cells", i, got, local)
	}
	var fp campaign.FaultPoint
	if chaos != nil && chaos.ArtifactFault != nil {
		fp = func(data []byte) *campaign.Fault {
			return chaos.ArtifactFault(i, attempt, data)
		}
	}
	if err := ck.Summary().WriteWithFault(ArtifactPath(d.opts.Dir, i), fp); err != nil {
		return err
	}
	return ck.Remove()
}

// runSubprocess executes one attempt of shard i via Options.Spawn and
// validates the artifact the child wrote.
func (d *drive) runSubprocess(ctx context.Context, i, attempt, local int) error {
	path := ArtifactPath(d.opts.Dir, i)
	// A failed child restarts from scratch; drop its stale artifact so
	// completeness checks can't read a half-campaign's leftovers.
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	d.emit(Event{Shard: i, Kind: EventStart, Done: 0, Total: local, Attempt: attempt})
	cmd := d.opts.Spawn(ctx, i, d.opts.Shards, path)
	if cmd == nil {
		return fmt.Errorf("driver: spawn returned no command for shard %d", i)
	}
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("driver: shard %d worker: %w", i, err)
	}
	done, err := d.shardComplete(i, attempt, local)
	if err != nil {
		// A foreign artifact is deterministic, not a torn write worth
		// retrying. (Corrupt or misdelivered artifacts never reach here:
		// shardComplete discards them and reports the shard incomplete.)
		return terminalError{err}
	}
	if !done {
		return fmt.Errorf("driver: shard %d worker exited without writing %s", i, path)
	}
	return nil
}
