package driver

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"multicast/internal/campaign"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

// The work-stealing schedule decouples who computes a grid cell from
// where its result lands. One pool of Shards×Workers workers claims
// cells from a lease scheduler over the whole flattened grid; a single
// fold stage receives the computed metrics tagged with their global
// index g and replays each shard's cells in ascending-g order into that
// shard's campaign.Checkpointer. Folding in grid order is what keeps
// the two standing contracts intact:
//
//   - the shard artifacts (and so the merged summary) are bit-identical
//     to the static layout's, because each shard's accumulators see the
//     exact insertion order runner.RunSweep delivers; and
//   - every checkpoint still covers a prefix of its shard's slice, so a
//     killed steal campaign resumes under either schedule — the lease a
//     resumed worker needs is exactly the folded prefix the sidecar's
//     DoneCells records.
//
// The pool is one retry unit (it is one process): a failed attempt
// relaunches everything unfinished, resuming every shard from its
// checkpoint, with EventRetry announced per unfinished shard.

// lease is one worker's claim on a contiguous range of grid cells:
// [next, end) remain to be computed.
type lease struct{ next, end int }

// stealScheduler hands out grid cells one at a time from per-worker
// contiguous leases, re-splitting the largest remaining lease when a
// worker runs dry. Cells are millisecond-scale simulations, so a single
// mutex around claims is cheap compared to any cell.
type stealScheduler struct {
	mu     sync.Mutex
	leases []lease
}

// newStealScheduler splits [0, total) into one contiguous lease per
// worker. Workers beyond total start empty and immediately steal.
func newStealScheduler(total, workers int) *stealScheduler {
	s := &stealScheduler{leases: make([]lease, workers)}
	for w := range s.leases {
		s.leases[w] = lease{next: w * total / workers, end: (w + 1) * total / workers}
	}
	return s
}

// claim returns worker w's next cell. An idle worker steals the far
// half of the largest remaining lease (the victim keeps the near half,
// rounded up, preserving its locality); when no lease holds at least
// two cells there is nothing worth stealing and the worker retires.
func (s *stealScheduler) claim(w int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leases[w].next >= s.leases[w].end {
		victim, best := -1, 1
		for v := range s.leases {
			if rem := s.leases[v].end - s.leases[v].next; rem > best {
				victim, best = v, rem
			}
		}
		if victim < 0 {
			return 0, false
		}
		l := s.leases[victim]
		mid := l.next + (l.end-l.next+1)/2
		s.leases[victim].end = mid
		s.leases[w] = lease{next: mid, end: l.end}
	}
	g := s.leases[w].next
	s.leases[w].next++
	return g, true
}

// cellResult is one computed cell in flight from the pool to the fold
// stage.
type cellResult struct {
	g int
	m sim.Metrics
}

// driveSteal supervises the whole steal-scheduled campaign: attempts
// run the shared pool across every unfinished shard, and a failed
// attempt retries the pool as a unit.
func (d *drive) driveSteal(ctx context.Context) error {
	finished := make([]bool, d.opts.Shards)
	for attempt := 0; ; attempt++ {
		err := d.runStealAttempt(ctx, attempt, finished)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var term terminalError
		if errors.As(err, &term) {
			return term.err
		}
		if attempt >= d.opts.Retries {
			return fmt.Errorf("driver: steal pool failed after %d attempt(s): %w", attempt+1, err)
		}
		for s, ok := range finished {
			if !ok {
				d.emit(Event{Shard: s, Kind: EventRetry, Total: d.localCells(s), Attempt: attempt, Err: err})
			}
		}
	}
}

// finishShard writes shard s's completed artifact (through the chaos
// artifact-fault seam), drops its checkpoint, and announces the shard
// done — the steal-side mirror of runInProcess's tail.
func (d *drive) finishShard(s, attempt int, cks []*campaign.Checkpointer, finished []bool, locals []int) error {
	chaos := d.opts.Chaos
	var fp campaign.FaultPoint
	if chaos != nil && chaos.ArtifactFault != nil {
		fp = func(data []byte) *campaign.Fault {
			return chaos.ArtifactFault(s, attempt, data)
		}
	}
	if err := cks[s].Summary().WriteWithFault(ArtifactPath(d.opts.Dir, s), fp); err != nil {
		return err
	}
	if err := cks[s].Remove(); err != nil {
		return err
	}
	finished[s] = true
	d.emit(Event{Shard: s, Kind: EventShardDone, Done: locals[s], Total: locals[s], Attempt: attempt})
	return nil
}

// runStealAttempt is one pool launch: per-shard setup exactly as
// runShard would do it (completeness check, checkpoint resume, chaos
// arming, EventStart), then workers computing stolen cells concurrently
// while the fold stage lands them in grid order.
func (d *drive) runStealAttempt(ctx context.Context, attempt int, finished []bool) error {
	k := d.opts.Shards
	chaos := d.opts.Chaos
	grid, err := runner.NewGrid(d.spec.Points, d.spec.Trials)
	if err != nil {
		return terminalError{err}
	}
	if d.cache != nil {
		grid.Cache = d.cache // guarded: a typed-nil adapter must not enable the seam
	}

	locals := make([]int, k)
	cks := make([]*campaign.Checkpointer, k)
	folded := make([]int, k) // cells folded into shard s so far (its next local index)
	remaining := 0
	for i := 0; i < k; i++ {
		locals[i] = d.localCells(i)
		if finished[i] {
			folded[i] = locals[i]
			continue
		}
		if d.opts.Resume || attempt > 0 {
			complete, err := d.shardComplete(i, attempt, locals[i])
			if err != nil {
				// Foreign artifacts are deterministic refusals; retrying
				// the pool would just replay them.
				return terminalError{err}
			}
			if complete {
				d.emit(Event{Shard: i, Kind: EventShardDone, Done: locals[i], Total: locals[i], Attempt: attempt})
				finished[i] = true
				folded[i] = locals[i]
				continue
			}
		}
		ck := campaign.NewCheckpointer(CheckpointPath(d.opts.Dir, i), d.shardTemplate(i), d.opts.CheckpointEvery)
		ck.Schedule = string(ScheduleSteal)
		if chaos != nil && chaos.CheckpointFault != nil {
			shard := i
			ck.Fault = func(data []byte) *campaign.Fault {
				return chaos.CheckpointFault(shard, attempt, data)
			}
		}
		if d.opts.Resume || attempt > 0 {
			if _, err := ck.Resume(); err != nil {
				return terminalError{err} // foreign/corrupt checkpoint: retrying replays it
			}
		}
		if chaos != nil && chaos.Arm != nil {
			chaos.Arm(i, attempt, ck.Done(), locals[i])
		}
		d.emit(Event{Shard: i, Kind: EventStart, Done: ck.Done(), Total: locals[i], Attempt: attempt})
		cks[i] = ck
		folded[i] = ck.Done()
		remaining += locals[i] - ck.Done()
		if ck.Done() == locals[i] {
			// An empty slice, or a resumed prefix that already covers it:
			// nothing for the pool to compute, finalize on the spot.
			if err := d.finishShard(i, attempt, cks, finished, locals); err != nil {
				return err
			}
		}
	}
	if remaining == 0 {
		return nil
	}

	// Workers read these snapshots while the fold loop advances folded
	// and finished; freeze the launch-time view so the skip predicate
	// races with nothing.
	resumed := make([]int, k)
	copy(resumed, folded)
	skipShard := make([]bool, k)
	copy(skipShard, finished)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := k * d.opts.Workers
	sched := newStealScheduler(grid.Total(), workers)
	results := make(chan cellResult, workers)

	// The failure at the lowest grid index names the attempt — a
	// deterministic pick, whatever order the pool hit failures in.
	var failMu sync.Mutex
	failG, failErr := 0, error(nil)
	fail := func(g int, err error) {
		failMu.Lock()
		if failErr == nil || g < failG {
			failG, failErr = g, err
		}
		failMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := sim.NewExecutor()
			for {
				g, ok := sched.claim(w)
				if !ok || runCtx.Err() != nil {
					return
				}
				s := g % k
				if skipShard[s] || g/k < resumed[s] {
					continue // already folded into shard s before this attempt
				}
				m, err := grid.RunCell(runCtx.Done(), ex, g)
				if err != nil {
					if runCtx.Err() == nil {
						fail(g, err)
					}
					return
				}
				// CellHook runs on the computing worker — its delays skew
				// who is fast, which is the seam the steal tests lean on —
				// with done as the cell's 1-based index in its shard's
				// slice, matching the static path's post-cell position.
				if hook := d.opts.CellHook; hook != nil {
					if err := hook(s, attempt, g/k+1); err != nil {
						fail(g, err)
						return
					}
				}
				select {
				case results <- cellResult{g: g, m: m}:
				case <-runCtx.Done():
					return
				}
			}
		}(w)
	}

	// The fold stage: land results in ascending-g order per shard. A
	// cell arriving early waits in pending until its shard's slice
	// reaches it. chaos.Cell fires here, after the fold, so fault
	// ordinals count folded cells — deterministic per shard — not the
	// racy compute order. A fold-side failure (a checkpoint fault, an
	// injected crash, an artifact write error) stops only its own shard
	// — the steal analog of the static fleet's chaos-implied KeepGoing:
	// every other shard still reaches all of its own fault points, so a
	// seeded schedule plays out the same way on every run.
	pending := make(map[int]sim.Metrics, workers)
	shardErrs := make([]error, k) // first fold-side failure per shard
	failShard := func(s int, err error) {
		shardErrs[s] = err
		remaining -= locals[s] - folded[s]
	}
fold:
	for remaining > 0 {
		select {
		case r := <-results:
			s := r.g % k
			if shardErrs[s] != nil {
				continue // the shard already failed; drop its stragglers
			}
			pending[r.g] = r.m
			for {
				g := s + folded[s]*k
				m, ok := pending[g]
				if !ok {
					break
				}
				delete(pending, g)
				p, t := grid.Split(g)
				if err := cks[s].Add(p, t, m); err != nil {
					failShard(s, err)
					break
				}
				folded[s]++
				remaining--
				d.emit(Event{Shard: s, Kind: EventCell, Done: cks[s].Done(), Total: locals[s], Attempt: attempt,
					Cache: d.cache.mark(g)})
				if chaos != nil && chaos.Cell != nil {
					if err := chaos.Cell(runCtx, s, attempt, cks[s].Done()); err != nil {
						failShard(s, err)
						break
					}
				}
				if cks[s].Done() == locals[s] {
					if err := d.finishShard(s, attempt, cks, finished, locals); err != nil {
						failShard(s, err)
					}
					break
				}
			}
		case <-runCtx.Done():
			break fold
		}
	}
	cancel()
	wg.Wait()

	// The lowest-index failed shard names the attempt — the same
	// deterministic pick as the static fleet — then compute-side
	// failures, then cancellation.
	err = nil
	for _, serr := range shardErrs {
		if serr != nil {
			err = serr
			break
		}
	}
	if err == nil {
		failMu.Lock()
		err = failErr
		failMu.Unlock()
	}
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err == nil && remaining > 0 {
		err = fmt.Errorf("driver: steal pool stopped with %d cell(s) unfolded", remaining)
	}
	if err != nil {
		// Mirror runInProcess's rescue flush: the checkpoints keep every
		// folded cell; flush any tail the throttle was still holding. A
		// shard whose own failure was an injected fault simulates dying
		// on the spot, so it gets no rescue flush — and neither does any
		// shard when the whole pool's failure is the injected one.
		for s, ck := range cks {
			if ck == nil || finished[s] || ck.Done() == 0 {
				continue
			}
			cause := shardErrs[s]
			if cause == nil {
				cause = err
			}
			if !errors.Is(cause, ErrInjected) {
				_ = ck.Flush()
			}
		}
		return err
	}
	return nil
}
