package driver

import "fmt"

// EventKind classifies a progress event.
type EventKind string

const (
	// EventStart: a shard worker attempt begins (Done cells already
	// checkpointed when resuming).
	EventStart EventKind = "start"
	// EventCell: a shard worker completed (and checkpointed) one grid
	// cell.
	EventCell EventKind = "cell"
	// EventShardDone: a shard's artifact is complete on disk.
	EventShardDone EventKind = "shard-done"
	// EventRetry: a shard attempt failed and will be retried (resuming
	// from its checkpoint when one exists).
	EventRetry EventKind = "retry"
	// EventDiscard: a shard artifact on disk was corrupt or misdelivered
	// (wrong shard slot, same campaign) and has been deleted; the shard
	// re-runs. Err carries the reason.
	EventDiscard EventKind = "discard"
)

// Event is one per-shard progress notification. Events are delivered
// serially (never concurrently) but interleave across shards.
//
// An Event marshals to one compact JSON object (the `mcast
// -progress-json` stream), so every field that should reach an external
// watcher carries a tag. Err itself cannot round-trip JSON — error is
// an interface — so emit mirrors it into ErrText and Err is excluded
// from the encoding; in-process consumers keep the typed error.
type Event struct {
	// Shard is the shard index, 0 ≤ Shard < Shards.
	Shard int `json:"shard"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Done and Total count this shard's grid cells (local, not global).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Attempt numbers the worker attempt, starting at 0.
	Attempt int `json:"attempt"`
	// Err carries the failure on EventRetry and EventDiscard. In-process
	// only: JSON consumers read ErrText instead.
	Err error `json:"-"`
	// ErrText is Err's message, filled in by the driver as it emits the
	// event — the JSON-safe image of Err.
	ErrText string `json:"err,omitempty"`
	// Cache annotates an EventCell when the campaign runs with a result
	// cache: CacheHit for a cell replayed from the cache, CacheMiss for
	// one that simulated (and stored its result). Empty — and absent
	// from the JSON stream — when no cache is configured.
	Cache string `json:"cache,omitempty"`
}

const (
	// CacheHit marks a cell whose result was replayed from the cache.
	CacheHit = "hit"
	// CacheMiss marks a cell that was simulated.
	CacheMiss = "miss"
)

// Schedule picks how a driven campaign's grid cells are distributed
// over its workers.
type Schedule string

const (
	// ScheduleStatic is the default layout: shard i owns the cells
	// g ≡ i (mod k) and runs them on its own worker pool, independent of
	// every other shard.
	ScheduleStatic Schedule = "static"
	// ScheduleSteal runs one work-stealing pool of Shards×Workers
	// workers over the whole grid: workers claim contiguous cell ranges
	// and re-split the largest remaining range when one goes idle, so
	// heterogeneous workers finish together instead of idling behind the
	// slowest shard. The artifact layout is unchanged — a fold stage
	// replays each shard's cells in ascending grid order, so stealing
	// changes who computes a cell, never where it lands. Requires
	// in-process workers (no Options.Spawn).
	ScheduleSteal Schedule = "steal"
)

// ParseSchedule resolves a schedule name; the empty string is
// ScheduleStatic, anything else unknown is an error.
func ParseSchedule(s string) (Schedule, error) {
	switch Schedule(s) {
	case "", ScheduleStatic:
		return ScheduleStatic, nil
	case ScheduleSteal:
		return ScheduleSteal, nil
	}
	return "", fmt.Errorf("driver: unknown schedule %q (want %q or %q)", s, ScheduleStatic, ScheduleSteal)
}
