package driver

import (
	"context"
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/campaign"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

func mcast(n int) func() (protocol.Algorithm, error) {
	return func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), n) }
}

// testSpec builds a two-point campaign with distinct workloads per
// point, so cross-point or cross-shard mixups cannot cancel out.
func testSpec(trials int) Spec {
	points := []sim.Config{
		{N: 32, Algorithm: mcast(32), Adversary: adversary.RandomFraction(0.4), Budget: 10_000, Seed: 7},
		{N: 64, Algorithm: mcast(64), Adversary: adversary.FullBurst(0), Budget: 15_000, Seed: 7},
	}
	tmpl := campaign.New("test-sweep", 7, trials, []campaign.Point{
		{Label: "n=32", Workload: "mcast n=32 adv=random seed=7"},
		{Label: "n=64", Workload: "mcast n=64 adv=burst seed=7"},
	})
	return Spec{Template: tmpl, Points: points, Trials: trials}
}

// unsharded runs the spec's whole grid through the plain runner — the
// reference a driven campaign must reproduce bit for bit.
func unsharded(t *testing.T, spec Spec) *campaign.Summary {
	t.Helper()
	s := spec.Template.CloneEmpty()
	err := runner.RunSweep(context.Background(), spec.Points,
		runner.SweepPlan{Trials: spec.Trials, Workers: 2},
		func(p, tr int, m sim.Metrics) error { return s.Points[p].Collector.Add(tr, m) })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertSameSummaries requires got's per-point summaries to be
// bit-identical to want's (float-exact stats.Summary equality).
func assertSameSummaries(t *testing.T, got, want *campaign.Summary) {
	t.Helper()
	if got.Identity() != want.Identity() {
		t.Fatalf("identity diverged:\n got %q\nwant %q", got.Identity(), want.Identity())
	}
	for p := range want.Points {
		g, w := got.Points[p].Collector, want.Points[p].Collector
		if g.Trials() != w.Trials() {
			t.Fatalf("point %d: %d trials, want %d", p, g.Trials(), w.Trials())
		}
		if g.Slots() != w.Slots() || g.MaxEnergy() != w.MaxEnergy() ||
			g.SourceEnergy() != w.SourceEnergy() || g.MeanEnergy() != w.MeanEnergy() ||
			g.EveEnergy() != w.EveEnergy() || g.AllInformed() != w.AllInformed() {
			t.Errorf("point %d: driven summaries diverge from the unsharded run", p)
		}
		if g.Invariants() != w.Invariants() {
			t.Errorf("point %d: invariant counts diverge", p)
		}
	}
}

// A driven campaign must reproduce the unsharded run exactly, for k
// both below and above the point count.
func TestDriveMatchesUnsharded(t *testing.T) {
	spec := testSpec(6)
	want := unsharded(t, spec)
	for _, k := range []int{1, 3} {
		merged, err := Run(context.Background(), spec, Options{
			Shards: k, Workers: 2, Dir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		assertSameSummaries(t, merged, want)
	}
}

// The acceptance scenario: a k=3 driven campaign with one shard killed
// mid-run, resumed, must merge bit-identically to the unsharded run —
// and the resumed attempt must pick up at the crashed shard's next
// undone cell, not from scratch.
func TestDriveCrashResumeBitIdentical(t *testing.T) {
	spec := testSpec(6)
	want := unsharded(t, spec)
	dir := t.TempDir()

	boom := fmt.Errorf("injected worker crash")
	_, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir,
		CellHook: func(shard, attempt, done int) error {
			if shard == 1 && done == 2 {
				return boom
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "shard 1/3") {
		t.Fatalf("err = %v, want shard 1/3 failure", err)
	}

	var mu sync.Mutex
	var resumedAt = -1
	merged, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir, Resume: true,
		Progress: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Kind == EventStart && ev.Shard == 1 {
				resumedAt = ev.Done
			}
		},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumedAt != 2 {
		t.Errorf("shard 1 resumed at %d cells, want 2 (its checkpoint)", resumedAt)
	}
	assertSameSummaries(t, merged, want)
}

// Bounded retries must resume a transiently failing shard from its
// checkpoint within one Run call.
func TestDriveRetryResumesFromCheckpoint(t *testing.T) {
	spec := testSpec(6)
	want := unsharded(t, spec)

	var mu sync.Mutex
	starts := map[int][]int{} // attempt → Done at start, shard 1 only
	merged, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: t.TempDir(), Retries: 1,
		CellHook: func(shard, attempt, done int) error {
			if shard == 1 && attempt == 0 && done == 2 {
				return fmt.Errorf("transient crash")
			}
			return nil
		},
		Progress: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Kind == EventStart && ev.Shard == 1 {
				starts[ev.Attempt] = append(starts[ev.Attempt], ev.Done)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := starts[1]; len(got) != 1 || got[0] != 2 {
		t.Errorf("shard 1 attempt 1 started at %v cells, want [2] (checkpoint resume, not restart)", got)
	}
	assertSameSummaries(t, merged, want)
}

// A persistently failing shard must exhaust its retries and surface the
// underlying error; completed cells stay checkpointed for -resume.
func TestDriveBoundedRetries(t *testing.T) {
	spec := testSpec(4)
	attempts := 0
	var mu sync.Mutex
	_, err := Run(context.Background(), spec, Options{
		Shards: 2, Workers: 1, Dir: t.TempDir(), Retries: 2,
		CellHook: func(shard, attempt, done int) error {
			if shard == 0 {
				mu.Lock()
				attempts = max(attempts, attempt+1)
				mu.Unlock()
				return fmt.Errorf("permanent failure")
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("err = %v, want a 3-attempt failure", err)
	}
	if attempts != 3 {
		t.Errorf("shard 0 ran %d attempts, want 3", attempts)
	}
}

// Without Resume, a directory already holding campaign files must be
// refused — silently overwriting a half-finished campaign loses work.
func TestDriveRefusesDirtyDirWithoutResume(t *testing.T) {
	spec := testSpec(2)
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Shards: 2, Workers: 1, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), spec, Options{Shards: 2, Workers: 1, Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "already holds campaign files") {
		t.Errorf("err = %v, want a dirty-directory refusal", err)
	}
	// With Resume the completed campaign just re-merges.
	merged, err := Run(context.Background(), spec, Options{Shards: 2, Workers: 1, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSummaries(t, merged, unsharded(t, spec))
}

// Subprocess workers: the driver gathers whatever artifacts the
// children wrote (here: staged by an earlier in-process run) and a
// failing child burns its bounded retries.
func TestDriveSpawn(t *testing.T) {
	spec := testSpec(4)
	want := unsharded(t, spec)

	// Stage shard artifacts with an in-process drive, then "launch"
	// children that just copy them into place.
	staging := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Shards: 2, Workers: 1, Dir: staging}); err != nil {
		t.Fatal(err)
	}
	merged, err := Run(context.Background(), spec, Options{
		Shards: 2, Dir: t.TempDir(),
		Spawn: func(ctx context.Context, shard, shards int, artifact string) *exec.Cmd {
			return exec.CommandContext(ctx, "cp", ArtifactPath(staging, shard), artifact)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSummaries(t, merged, want)

	_, err = Run(context.Background(), spec, Options{
		Shards: 2, Retries: 1, Dir: t.TempDir(),
		Spawn: func(ctx context.Context, shard, shards int, artifact string) *exec.Cmd {
			return exec.CommandContext(ctx, "false")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "failed after 2 attempt(s)") {
		t.Errorf("err = %v, want a bounded-retry subprocess failure", err)
	}
}

// Artifacts in the campaign directory that belong to a different
// campaign must be a hard error on resume, not a silent re-run.
func TestDriveResumeRefusesForeignArtifacts(t *testing.T) {
	spec := testSpec(3)
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Shards: 2, Workers: 1, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	other := testSpec(3)
	other.Template.Seed++
	for i, p := range other.Points {
		p.Seed++
		other.Points[i] = p
	}
	_, err := Run(context.Background(), other, Options{Shards: 2, Workers: 1, Dir: dir, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("err = %v, want a different-campaign refusal", err)
	}
}

// A foreign checkpoint is deterministic — resuming must fail
// immediately with the identity mismatch instead of burning retries on
// replays of the same refusal.
func TestDriveForeignCheckpointFailsWithoutRetries(t *testing.T) {
	spec := testSpec(4)
	dir := t.TempDir()

	// Leave a checkpoint behind by crashing shard 0 mid-run.
	_, err := Run(context.Background(), spec, Options{
		Shards: 2, Workers: 1, Dir: dir,
		CellHook: func(shard, attempt, done int) error {
			if shard == 0 && done == 1 {
				return fmt.Errorf("injected crash")
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("seed crash did not fail")
	}

	other := testSpec(4)
	other.Template.Seed++
	for i := range other.Points {
		other.Points[i].Seed++
	}
	retries := 0
	var mu sync.Mutex
	_, err = Run(context.Background(), other, Options{
		Shards: 2, Workers: 1, Dir: dir, Resume: true, Retries: 3,
		Progress: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Kind == EventRetry {
				retries++
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("err = %v, want a different-campaign refusal", err)
	}
	if retries != 0 {
		t.Errorf("deterministic identity mismatch burned %d retries", retries)
	}
}

// shard-slice accounting: localCells must partition the grid exactly.
func TestLocalCellsPartition(t *testing.T) {
	for _, tc := range []struct{ total, k int }{{12, 3}, {13, 3}, {2, 5}, {0, 2}, {7, 1}} {
		d := &drive{opts: Options{Shards: tc.k}, total: tc.total}
		sum := 0
		for i := 0; i < tc.k; i++ {
			sum += d.localCells(i)
		}
		if sum != tc.total {
			t.Errorf("total=%d k=%d: shard cells sum to %d", tc.total, tc.k, sum)
		}
	}
}
