package driver

// Tests for the chaos seam itself — driven through hand-rolled
// ChaosHooks literals rather than internal/chaos, so the driver's
// gather-time self-healing and terminal-checkpoint paths are pinned
// independently of the schedule layer built on top of them.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"multicast/internal/campaign"
)

// countEvents returns a Progress callback tallying event kinds.
func countEvents(mu *sync.Mutex, counts map[EventKind]int) func(Event) {
	return func(ev Event) {
		mu.Lock()
		counts[ev.Kind]++
		mu.Unlock()
	}
}

// crashShardAt returns a CellHook that fails the given shard once its
// attempt-0 run reaches done cells.
func crashShardAt(shard, done int) func(int, int, int) error {
	return func(s, attempt, d int) error {
		if s == shard && attempt == 0 && d == done {
			return fmt.Errorf("injected worker crash")
		}
		return nil
	}
}

// A shard whose checkpoint sidecar is corrupt must fail the campaign
// fast as terminal — burning zero of the retry budget — instead of
// rerunning into the same refusal -retries times. (Satellite: corrupt
// resume state needs an operator, not retries.)
func TestDriveCorruptCheckpointFailsFast(t *testing.T) {
	spec := testSpec(4)
	dir := t.TempDir()

	// Crash shard 0 mid-run to leave a real sidecar behind, then tear it.
	_, err := Run(context.Background(), spec, Options{
		Shards: 2, Workers: 2, Dir: dir,
		CellHook: crashShardAt(0, 2),
	})
	if err == nil {
		t.Fatal("seed crash run unexpectedly succeeded")
	}
	ckpt := CheckpointPath(dir, 0)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	counts := map[EventKind]int{}
	_, err = Run(context.Background(), spec, Options{
		Shards: 2, Workers: 2, Dir: dir, Resume: true, Retries: 3,
		Progress: countEvents(&mu, counts),
	})
	if !errors.Is(err, campaign.ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
	if counts[EventRetry] != 0 {
		t.Errorf("%d retry events — a corrupt checkpoint must not burn the retry budget", counts[EventRetry])
	}
}

// A shard artifact corrupted between completion and gather fails the
// merge with ErrCorruptArtifact; a resume must then discard the damaged
// file (emitting EventDiscard), regenerate the shard, and merge
// bit-identically. (Satellite: the driver's gather loop self-heals what
// campaign.Read refuses.)
func TestDriveGatherCorruptArtifactDiscardAndRegenerate(t *testing.T) {
	spec := testSpec(6)
	want := unsharded(t, spec)
	dir := t.TempDir()

	_, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir,
		Chaos: &ChaosHooks{Gather: func(d string, shards int) error {
			p := ArtifactPath(d, 1)
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/3], 0o644)
		}},
	})
	if !errors.Is(err, campaign.ErrCorruptArtifact) {
		t.Fatalf("err = %v, want ErrCorruptArtifact", err)
	}

	var mu sync.Mutex
	counts := map[EventKind]int{}
	merged, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir, Resume: true,
		Progress: countEvents(&mu, counts),
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if counts[EventDiscard] != 1 {
		t.Errorf("%d discard events, want 1", counts[EventDiscard])
	}
	assertSameSummaries(t, merged, want)
}

// A duplicate shard delivery — one shard's artifact overwriting
// another's slot — must be refused by the gather merge, and a resume
// must discard the misdelivered file and regenerate the true shard.
// (Satellite: duplicate-shard gather path in the driver, not just
// campaign.Merge's refusal.)
func TestDriveGatherDuplicateShardDiscardAndRegenerate(t *testing.T) {
	spec := testSpec(6)
	want := unsharded(t, spec)
	dir := t.TempDir()

	_, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir,
		Chaos: &ChaosHooks{Gather: func(d string, shards int) error {
			data, err := os.ReadFile(ArtifactPath(d, 0))
			if err != nil {
				return err
			}
			return os.WriteFile(ArtifactPath(d, 2), data, 0o644)
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicates shard") {
		t.Fatalf("err = %v, want duplicate-shard merge refusal", err)
	}

	var mu sync.Mutex
	counts := map[EventKind]int{}
	merged, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir, Resume: true,
		Progress: countEvents(&mu, counts),
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if counts[EventDiscard] != 1 {
		t.Errorf("%d discard events, want 1", counts[EventDiscard])
	}
	assertSameSummaries(t, merged, want)
}

// An artifact from a different campaign landing in a shard slot is NOT
// self-healed: both the gather merge and a subsequent resume refuse it
// by identity, because silently deleting foreign data would destroy
// another campaign's results. (Satellite: foreign-artifact gather
// path.)
func TestDriveGatherForeignArtifactHardError(t *testing.T) {
	spec := testSpec(6)
	dir := t.TempDir()

	// A valid artifact of a different campaign (different base seed).
	foreign := testSpec(6)
	foreign.Template = campaign.New("test-sweep", 8, 6, []campaign.Point{
		{Label: "n=32", Workload: "mcast n=32 adv=random seed=8"},
		{Label: "n=64", Workload: "mcast n=64 adv=burst seed=8"},
	})

	_, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir,
		Chaos: &ChaosHooks{Gather: func(d string, shards int) error {
			f := foreign.Template.CloneEmpty()
			f.ShardIndex, f.ShardCount = 1, 3
			return f.WriteWithFault(ArtifactPath(d, 1), nil)
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("err = %v, want different-campaign merge refusal", err)
	}

	_, err = Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Dir: dir, Resume: true,
	})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("resume err = %v, want different-campaign refusal (no silent discard of foreign data)", err)
	}
}
