package driver

import (
	"multicast/internal/cache"
	"multicast/internal/campaign"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

// cellCache adapts a cache.Store to the runner grid's lookup/store
// seam for one campaign: the content address of every global cell is
// precomputed from the template points' identities (label + workload
// string) and the grid's per-cell seed, and each Load records whether
// it hit so the fold paths can annotate the cell's progress event.
//
// The hit slice is written by the computing worker and read only after
// the cell's result has crossed a channel into the (single) delivery
// or fold goroutine, so the per-index handoff is ordered; distinct
// cells never share an index.
type cellCache struct {
	store *cache.Store
	keys  []string
	hit   []bool
}

// newCellCache derives the per-cell keys of the campaign's grid.
func newCellCache(store *cache.Store, tmpl *campaign.Summary, grid runner.Grid) *cellCache {
	total := grid.Total()
	c := &cellCache{store: store, keys: make([]string, total), hit: make([]bool, total)}
	for g := 0; g < total; g++ {
		p, _ := grid.Split(g)
		c.keys[g] = cache.Key(tmpl.Points[p].Label, tmpl.Points[p].Workload, grid.Seed(g))
	}
	return c
}

// Load implements runner.CellCache.
func (c *cellCache) Load(idx int) (sim.Metrics, bool) {
	m, ok := c.store.Load(c.keys[idx])
	c.hit[idx] = ok
	return m, ok
}

// Store implements runner.CellCache. A failed write is deliberately
// dropped: the cache is best-effort and the computed result is already
// on its way to the fold.
func (c *cellCache) Store(idx int, m sim.Metrics) {
	_ = c.store.Put(c.keys[idx], m)
}

// mark renders cell idx's Event.Cache annotation; a nil adapter (no
// cache configured) marks nothing, keeping the event stream's schema
// unchanged for cacheless campaigns.
func (c *cellCache) mark(idx int) string {
	if c == nil {
		return ""
	}
	if c.hit[idx] {
		return CacheHit
	}
	return CacheMiss
}
