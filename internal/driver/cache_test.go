package driver

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"multicast/internal/cache"
	"multicast/internal/runner"
)

// cacheRun drives spec into a fresh campaign directory with the given
// schedule and cache store, returning the merged summary (and its
// serialized bytes) plus the hit/miss tallies from the progress stream.
func cacheRun(t *testing.T, spec Spec, sched Schedule, store *cache.Store) (sum []byte, hits, misses int) {
	t.Helper()
	// Progress callbacks are serialized by the driver, so plain counters
	// are safe here.
	merged, err := Run(context.Background(), spec, Options{
		Shards: 3, Workers: 2, Schedule: sched, Dir: t.TempDir(), Cache: store,
		Progress: func(ev Event) {
			if ev.Kind != EventCell {
				return
			}
			switch ev.Cache {
			case CacheHit:
				hits++
			case CacheMiss:
				misses++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "merged.json")
	if err := merged.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, hits, misses
}

// The acceptance scenario: a warm identical re-run simulates zero
// cells — every cell is a cache hit — and still merges byte-identically
// to the cold run, under both schedules.
func TestDriveCacheWarmRunSimulatesNothing(t *testing.T) {
	spec := testSpec(6)
	cells := spec.Trials * len(spec.Points)
	for _, sched := range []Schedule{ScheduleStatic, ScheduleSteal} {
		t.Run(string(sched), func(t *testing.T) {
			store, err := cache.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			cold, hits, misses := cacheRun(t, spec, sched, store)
			if hits != 0 || misses != cells {
				t.Fatalf("cold run: %d hits, %d misses, want 0/%d", hits, misses, cells)
			}
			warm, hits, misses := cacheRun(t, spec, sched, store)
			if hits != cells || misses != 0 {
				t.Fatalf("warm run: %d hits, %d misses, want %d/0", hits, misses, cells)
			}
			if !bytes.Equal(cold, warm) {
				t.Fatal("warm merged summary is not byte-identical to the cold run")
			}
		})
	}
}

// Extending a sweep reuses every already-computed cell: raising Trials
// from 6 to 9 over the same cache simulates only the 6 new cells, and
// the merged result still matches the unsharded reference for the
// extended spec.
func TestDriveCacheExtendedSweepSimulatesOnlyNewCells(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec6 := testSpec(6)
	if _, _, misses := cacheRun(t, spec6, ScheduleStatic, store); misses != 12 {
		t.Fatalf("cold run: %d misses, want 12", misses)
	}

	spec9 := testSpec(9)
	want := unsharded(t, spec9)
	merged, err := Run(context.Background(), spec9, Options{
		Shards: 3, Workers: 2, Dir: t.TempDir(), Cache: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSummaries(t, merged, want)

	// Re-count through the progress stream: a fresh drive of spec9 now
	// hits all 18 cells.
	_, hits, misses := cacheRun(t, spec9, ScheduleSteal, store)
	if hits != 18 || misses != 0 {
		t.Fatalf("re-drive of extended spec: %d hits, %d misses, want 18/0", hits, misses)
	}
}

// A corrupt cache entry is silently a miss: the damaged cell is
// re-simulated (and re-stored), the others replay, and the merged
// summary stays byte-identical.
func TestDriveCacheCorruptEntryResimulated(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6)
	cold, _, _ := cacheRun(t, spec, ScheduleStatic, store)

	// Truncate cell 0's entry to half — an unambiguous miss (bit flips
	// in key-name bytes can decode identically; truncation cannot).
	grid, err := runner.NewGrid(spec.Points, spec.Trials)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key(spec.Template.Points[0].Label, spec.Template.Points[0].Workload, grid.Seed(0))
	path := store.EntryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	warm, hits, misses := cacheRun(t, spec, ScheduleSteal, store)
	if hits != 11 || misses != 1 {
		t.Fatalf("post-corruption run: %d hits, %d misses, want 11/1", hits, misses)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("re-simulated cell diverged from the cold run")
	}
	// The miss re-stored the entry: a third run hits every cell again.
	if _, hits, misses := cacheRun(t, spec, ScheduleStatic, store); hits != 12 || misses != 0 {
		t.Fatalf("third run: %d hits, %d misses, want 12/0", hits, misses)
	}
}

// The cache seam lives in the in-process cell loop; combining it with
// Spawn subprocesses must be refused up front, not silently ignored.
func TestDriveCacheRefusesSpawn(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(2)
	_, err = Run(context.Background(), spec, Options{
		Shards: 1, Dir: t.TempDir(), Cache: store,
		Spawn: func(ctx context.Context, shard, shards int, artifact string) *exec.Cmd {
			return exec.CommandContext(ctx, "true")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "in-process") {
		t.Fatalf("err = %v, want in-process refusal", err)
	}
}
