package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// Every EventKind must cross the JSON boundary losslessly: emit mirrors
// the typed Err into ErrText, and every other field carries a tag, so
// decoding an encoded event loses nothing but the in-process error
// value itself.
func TestEventJSONRoundTrip(t *testing.T) {
	for _, kind := range []EventKind{EventStart, EventCell, EventShardDone, EventRetry, EventDiscard} {
		ev := Event{Shard: 2, Kind: kind, Done: 3, Total: 9, Attempt: 1}
		if kind == EventRetry || kind == EventDiscard {
			ev.Err = errors.New("worker exploded")
		}
		var emitted Event
		d := &drive{opts: Options{Progress: func(e Event) { emitted = e }}}
		d.emit(ev)
		if ev.Err != nil && emitted.ErrText != ev.Err.Error() {
			t.Errorf("%s: emit filled ErrText = %q, want %q", kind, emitted.ErrText, ev.Err.Error())
		}
		data, err := json.Marshal(emitted)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var got Event
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		want := emitted
		want.Err = nil // the typed error is in-process only; ErrText carries it
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip\n got %+v\nwant %+v\njson %s", kind, got, want, data)
		}
	}
}

// The JSON-lines progress stream is part of the interface orchestrators
// script against: a seeded single-shard campaign (serial, so event
// order is deterministic) with one forced retry must emit a
// byte-identical stream. A schema change fails this test until the
// golden file is deliberately regenerated with -update-golden.
func TestProgressGolden(t *testing.T) {
	spec := testSpec(2)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_, err := Run(context.Background(), spec, Options{
		Shards: 1, Workers: 1, Dir: t.TempDir(), Retries: 1,
		Progress: func(ev Event) {
			if err := enc.Encode(ev); err != nil {
				t.Error(err)
			}
		},
		CellHook: func(shard, attempt, done int) error {
			if attempt == 0 && done == 2 {
				return errors.New("injected golden crash")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "progress.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("progress stream diverged from %s — schema changes need a deliberate -update-golden regen\n got:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// checkEventInvariants audits a campaign's event stream shard by shard:
// attempts never go backwards, Done advances one cell at a time from
// the attempt's starting point, a shard finishes exactly once with
// Done == Total, and the cells folded in the finishing attempt account
// for exactly the slice beyond its resumed prefix.
func checkEventInvariants(t *testing.T, events []Event, k int) {
	t.Helper()
	type shardState struct {
		attempt  int
		done     int
		started  bool // EventStart seen for the current attempt
		finished bool
	}
	st := make([]shardState, k)
	for i := range st {
		st[i].attempt = -1
	}
	for _, ev := range events {
		if ev.Shard < 0 || ev.Shard >= k {
			t.Fatalf("event for shard %d of %d: %+v", ev.Shard, k, ev)
		}
		s := &st[ev.Shard]
		if ev.Attempt < s.attempt {
			t.Errorf("shard %d: attempt went backwards, %d after %d", ev.Shard, ev.Attempt, s.attempt)
		}
		if ev.Attempt > s.attempt {
			s.attempt, s.started = ev.Attempt, false
		}
		if s.finished && ev.Kind != EventShardDone {
			t.Errorf("shard %d: %s event after shard-done", ev.Shard, ev.Kind)
		}
		switch ev.Kind {
		case EventStart:
			if s.started {
				t.Errorf("shard %d: second start within attempt %d", ev.Shard, ev.Attempt)
			}
			s.started, s.done = true, ev.Done
		case EventCell:
			if !s.started {
				t.Errorf("shard %d: cell event before any start in attempt %d", ev.Shard, ev.Attempt)
			}
			if ev.Done != s.done+1 {
				t.Errorf("shard %d: cell done %d after %d — out of order", ev.Shard, ev.Done, s.done)
			}
			s.done = ev.Done
		case EventShardDone:
			if ev.Done != ev.Total {
				t.Errorf("shard %d: shard-done at %d of %d cells", ev.Shard, ev.Done, ev.Total)
			}
			if s.started && s.done != ev.Total {
				t.Errorf("shard %d: shard-done claims %d cells but starts+cells account for %d",
					ev.Shard, ev.Total, s.done)
			}
			if s.finished {
				t.Errorf("shard %d: finished twice", ev.Shard)
			}
			s.finished = true
		case EventRetry:
			if s.finished {
				t.Errorf("shard %d: retry after shard-done", ev.Shard)
			}
		case EventDiscard:
			// A discard precedes the attempt's start; nothing to track.
		default:
			t.Errorf("shard %d: unknown event kind %q", ev.Shard, ev.Kind)
		}
	}
	for i := range st {
		if !st[i].finished {
			t.Errorf("shard %d never reported shard-done", i)
		}
	}
}

// Event accounting holds under every schedule, including through an
// in-run retry: per shard, EventCell events advance Done one at a time
// to Total, exactly once each attempt, never interleaving out of order.
func TestEventAccountingInvariants(t *testing.T) {
	spec := testSpec(6)
	want := unsharded(t, spec)
	for _, sched := range []Schedule{ScheduleStatic, ScheduleSteal} {
		t.Run(string(sched), func(t *testing.T) {
			var mu sync.Mutex
			var events []Event
			sum, err := Run(context.Background(), spec, Options{
				Shards: 3, Workers: 2, Dir: t.TempDir(), Retries: 1, Schedule: sched,
				Progress: func(ev Event) {
					mu.Lock()
					defer mu.Unlock()
					events = append(events, ev)
				},
				CellHook: func(shard, attempt, done int) error {
					if shard == 1 && attempt == 0 && done == 2 {
						return fmt.Errorf("transient crash")
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			checkEventInvariants(t, events, 3)
			retried := false
			for _, ev := range events {
				if ev.Kind == EventRetry && ev.Shard == 1 {
					retried = true
					if ev.ErrText == "" {
						t.Error("retry event carries no ErrText")
					}
				}
			}
			if !retried {
				t.Error("the transient crash produced no retry event for shard 1")
			}
			assertSameSummaries(t, sum, want)
		})
	}
}
