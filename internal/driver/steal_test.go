package driver

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"multicast/internal/campaign"
)

// summaryBytes renders a summary exactly as Write persists it — the
// byte-identity the steal tests compare.
func summaryBytes(t testing.TB, s *campaign.Summary) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "summary.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// skewHook slows cells down proportionally to their shard index —
// deliberately heterogeneous per-worker speeds, so contiguous leases
// drain at very different rates and idle workers must steal.
func skewHook(shard, attempt, done int) error {
	time.Sleep(time.Duration(shard) * 2 * time.Millisecond)
	return nil
}

// The acceptance wall: for k both below and above the point count, a
// steal-scheduled campaign with skewed worker speeds merges
// byte-identically to the static-scheduled one (and, at k=1, to the
// unsharded artifact) — stealing changes who computes a cell, never
// where it lands — and a mid-campaign kill resumed under steal is
// byte-identical too.
func TestStealMergeIdentity(t *testing.T) {
	spec := testSpec(6)
	want := unsharded(t, spec)
	wantBytes := summaryBytes(t, want)

	for _, k := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			staticSum, err := Run(context.Background(), spec, Options{
				Shards: k, Workers: 2, Dir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			staticBytes := summaryBytes(t, staticSum)

			stealSum, err := Run(context.Background(), spec, Options{
				Shards: k, Workers: 2, Dir: t.TempDir(),
				Schedule: ScheduleSteal, CellHook: skewHook,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := summaryBytes(t, stealSum); !bytes.Equal(got, staticBytes) {
				t.Errorf("steal-merged artifact differs from the static-merged one at k=%d", k)
			}
			if k == 1 {
				if got := summaryBytes(t, stealSum); !bytes.Equal(got, wantBytes) {
					t.Errorf("k=1 steal artifact differs from the unsharded artifact")
				}
			}
			assertSameSummaries(t, stealSum, want)

			// Mid-campaign kill: a worker crash fails the whole pool (it
			// is one process); -resume under steal finishes from the
			// checkpoints, still byte-identical.
			dir := t.TempDir()
			boom := fmt.Errorf("injected steal kill")
			_, err = Run(context.Background(), spec, Options{
				Shards: k, Workers: 2, Dir: dir, Schedule: ScheduleSteal,
				CellHook: func(shard, attempt, done int) error {
					if shard == 0 && done == 2 {
						return boom
					}
					return skewHook(shard, attempt, done)
				},
			})
			if err == nil || !strings.Contains(err.Error(), "steal pool failed") {
				t.Fatalf("kill run err = %v, want a steal pool failure", err)
			}
			resumed, err := Run(context.Background(), spec, Options{
				Shards: k, Workers: 2, Dir: dir, Resume: true,
				Schedule: ScheduleSteal, CellHook: skewHook,
			})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := summaryBytes(t, resumed); !bytes.Equal(got, staticBytes) {
				t.Errorf("killed+resumed steal artifact differs from the static-merged one at k=%d", k)
			}
		})
	}
}

// Checkpoints are schedule-agnostic: a campaign killed under one
// schedule resumes exactly under the other, because either way every
// sidecar covers a prefix of its shard's slice.
func TestStealCrossScheduleResume(t *testing.T) {
	spec := testSpec(6)
	const k = 3
	clean, err := Run(context.Background(), spec, Options{Shards: k, Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := summaryBytes(t, clean)

	for _, tc := range []struct {
		name         string
		kill, resume Schedule
	}{
		{"steal-then-static", ScheduleSteal, ScheduleStatic},
		{"static-then-steal", ScheduleStatic, ScheduleSteal},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			_, err := Run(context.Background(), spec, Options{
				Shards: k, Workers: 2, Dir: dir, Schedule: tc.kill,
				CellHook: func(shard, attempt, done int) error {
					if shard == 1 && done == 2 {
						return fmt.Errorf("injected kill")
					}
					return nil
				},
			})
			if err == nil {
				t.Fatal("kill run succeeded")
			}
			sum, err := Run(context.Background(), spec, Options{
				Shards: k, Workers: 2, Dir: dir, Resume: true, Schedule: tc.resume,
			})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := summaryBytes(t, sum); !bytes.Equal(got, cleanBytes) {
				t.Errorf("cross-schedule resume diverges from a clean k=%d run", k)
			}
		})
	}
}

// The steal schedule needs in-process workers: a subprocess cannot
// stream per-cell results back to the fold stage.
func TestStealRefusesSpawn(t *testing.T) {
	spec := testSpec(2)
	_, err := Run(context.Background(), spec, Options{
		Shards: 2, Dir: t.TempDir(), Schedule: ScheduleSteal,
		Spawn: func(ctx context.Context, shard, shards int, artifact string) *exec.Cmd {
			return exec.CommandContext(ctx, "true")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "in-process") {
		t.Errorf("err = %v, want an in-process-workers refusal", err)
	}
}

func TestParseSchedule(t *testing.T) {
	for in, want := range map[string]Schedule{
		"": ScheduleStatic, "static": ScheduleStatic, "steal": ScheduleSteal,
	} {
		got, err := ParseSchedule(in)
		if err != nil || got != want {
			t.Errorf("ParseSchedule(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseSchedule("round-robin"); err == nil || !strings.Contains(err.Error(), "unknown schedule") {
		t.Errorf("ParseSchedule(round-robin) err = %v, want unknown-schedule", err)
	}
}

// The lease scheduler must hand out every cell exactly once, however
// claims and steals interleave across concurrent workers.
func TestStealSchedulerClaims(t *testing.T) {
	for _, tc := range []struct{ total, workers int }{
		{12, 4}, {13, 3}, {5, 8}, {1, 1}, {100, 7},
	} {
		sched := newStealScheduler(tc.total, tc.workers)
		var mu sync.Mutex
		seen := make([]int, tc.total)
		var wg sync.WaitGroup
		for w := 0; w < tc.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					g, ok := sched.claim(w)
					if !ok {
						return
					}
					mu.Lock()
					seen[g]++
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		for g, n := range seen {
			if n != 1 {
				t.Errorf("total=%d workers=%d: cell %d claimed %d times", tc.total, tc.workers, g, n)
			}
		}
	}
}
