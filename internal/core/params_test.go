package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	if err := Sim().Validate(); err != nil {
		t.Errorf("Sim preset invalid: %v", err)
	}
	for _, alpha := range []float64{0.05, 0.1, 0.2, 0.24} {
		if err := Paper(alpha).Validate(); err != nil {
			t.Errorf("Paper(%v) preset invalid: %v", alpha, err)
		}
	}
}

func TestPaperPresetLiteralConstants(t *testing.T) {
	p := Paper(0.1)
	if p.CoreP != 1.0/64 {
		t.Errorf("CoreP = %v, want 1/64", p.CoreP)
	}
	if p.StartIter != 6 {
		t.Errorf("StartIter = %d, want 6", p.StartIter)
	}
	if p.LogPow != 2 {
		t.Errorf("LogPow = %d, want 2", p.LogPow)
	}
	if p.IExp != 3 {
		t.Errorf("IExp = %d, want 3", p.IExp)
	}
	if p.HelperNm != 1.5 || p.HelperNs != 0.9 || p.HelperNmPrime != 2.2 {
		t.Errorf("helper thresholds = %v/%v/%v, want 1.5/0.9/2.2", p.HelperNm, p.HelperNs, p.HelperNmPrime)
	}
	if p.HaltNoise != 1.0/3000 {
		t.Errorf("HaltNoise = %v, want 1/3000", p.HaltNoise)
	}
	if p.HaltRatio != 0.5 {
		t.Errorf("HaltRatio = %v, want 1/2", p.HaltRatio)
	}
}

func TestValidateRejects(t *testing.T) {
	base := Sim()
	cases := []struct {
		name string
		mod  func(*Params)
		want string
	}{
		{"zero CoreP", func(p *Params) { p.CoreP = 0 }, "CoreP"},
		{"CoreP above half", func(p *Params) { p.CoreP = 0.6 }, "CoreP"},
		{"negative CoreA", func(p *Params) { p.CoreA = -1 }, "CoreA"},
		{"zero A", func(p *Params) { p.A = 0 }, "A ="},
		{"StartIter zero", func(p *Params) { p.StartIter = 0 }, "StartIter"},
		{"StartIter huge", func(p *Params) { p.StartIter = 21 }, "StartIter"},
		{"LogPow negative", func(p *Params) { p.LogPow = -1 }, "LogPow"},
		{"HaltRatio one", func(p *Params) { p.HaltRatio = 1 }, "HaltRatio"},
		{"alpha zero", func(p *Params) { p.Alpha = 0 }, "Alpha"},
		{"alpha quarter", func(p *Params) { p.Alpha = 0.25 }, "Alpha"},
		{"zero B", func(p *Params) { p.B = 0 }, "B ="},
		{"IExp big", func(p *Params) { p.IExp = 5 }, "IExp"},
		{"zero HelperNm", func(p *Params) { p.HelperNm = 0 }, "helper thresholds"},
		{"HaltNoise one", func(p *Params) { p.HaltNoise = 1 }, "HaltNoise"},
		{"negative HelperGap", func(p *Params) { p.HelperGap = -1 }, "HelperGap"},
	}
	for _, tc := range cases {
		p := base
		tc.mod(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid params", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestHelperGapDefaultsToPaperFormula(t *testing.T) {
	p := Paper(0.2)
	if got := p.helperGap(); got != 10 { // ⌈2/0.2⌉
		t.Errorf("helperGap(α=0.2) = %d, want 10", got)
	}
	p = Paper(0.15)
	if got := p.helperGap(); got != 14 { // ⌈2/0.15⌉ = ⌈13.33⌉
		t.Errorf("helperGap(α=0.15) = %d, want 14", got)
	}
	p.HelperGap = 7
	if got := p.helperGap(); got != 7 {
		t.Errorf("explicit HelperGap ignored: %d", got)
	}
}

func TestValidateN(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 1024} {
		if err := ValidateN(n); err != nil {
			t.Errorf("ValidateN(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{-2, 0, 1, 3, 6, 100, 1000} {
		if err := ValidateN(n); err == nil {
			t.Errorf("ValidateN(%d) accepted a non-power-of-two", n)
		}
	}
}

func TestLg(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for n, want := range cases {
		if got := lg(n); got != want {
			t.Errorf("lg(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLgPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lg(0) did not panic")
		}
	}()
	lg(0)
}

func TestLgPow(t *testing.T) {
	if got := lgPow(256, 2); got != 64 {
		t.Errorf("lgPow(256,2) = %v, want 64", got)
	}
	if got := lgPow(256, 0); got != 1 {
		t.Errorf("lgPow(256,0) = %v, want 1", got)
	}
	// lg floored at 1 so n=2 still yields positive factors.
	if got := lgPow(2, 2); got != 1 {
		t.Errorf("lgPow(2,2) = %v, want 1", got)
	}
}

func TestCeilPos(t *testing.T) {
	cases := map[float64]int64{0.1: 1, 1.0: 1, 1.5: 2, -3: 1, 0: 1, 100.0001: 101}
	for x, want := range cases {
		if got := ceilPos(x); got != want {
			t.Errorf("ceilPos(%v) = %d, want %d", x, got, want)
		}
	}
}

func TestLgf(t *testing.T) {
	cases := map[int64]float64{1: 1, 2: 1, 4: 2, 1024: 10, 1 << 20: 20}
	for v, want := range cases {
		if got := lgf(v); got != want {
			t.Errorf("lgf(%d) = %v, want %v", v, got, want)
		}
	}
}

// Property: helperGap is always positive and equals ⌈2/α⌉ when unset.
func TestQuickHelperGap(t *testing.T) {
	f := func(raw uint8) bool {
		alpha := 0.01 + 0.23*float64(raw)/255
		p := Paper(alpha)
		g := p.helperGap()
		return g >= 1 && g == int(math.Ceil(2/alpha))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelDiv(t *testing.T) {
	p := Sim()
	if p.channelDiv() != 2 {
		t.Fatalf("default channelDiv = %d, want 2", p.channelDiv())
	}
	p.ChannelDiv = 4
	alg, err := NewMultiCast(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Channels(0) != 16 {
		t.Errorf("Channels = %d with ChannelDiv 4, want 16", alg.Channels(0))
	}
	algCore, err := NewMultiCastCore(p, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if algCore.Channels(0) != 16 {
		t.Errorf("Core Channels = %d with ChannelDiv 4, want 16", algCore.Channels(0))
	}
	// MultiCast(C) pins the divisor to the paper's 2.
	algC, err := NewMultiCastC(p, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if algC.RoundLength() != 4 {
		t.Errorf("MultiCast(C) round length %d, want 4 (n/2 virtual channels)", algC.RoundLength())
	}
	p.ChannelDiv = -1
	if err := p.Validate(); err == nil {
		t.Error("negative ChannelDiv accepted")
	}
}
