package core

import (
	"math"
	"testing"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// walkStep drives a node through the remainder of its current step window,
// delivering feed(slotInStep) each slot (nil → no feedback).
func walkStep(t *testing.T, nd *advNode, feed func(k int64) *radio.Feedback) {
	t.Helper()
	w := nd.cur
	for k := nd.offset; k < w.Len; k++ {
		nd.Step(0)
		if feed != nil {
			if fb := feed(k); fb != nil {
				nd.Deliver(*fb)
			}
		}
		nd.EndSlot(0)
		if nd.Status() == protocol.Halted {
			return
		}
	}
}

// feedbackPlan delivers nm messages, then beacons up to nmPrime totals,
// then noise up to nn, then silence for the rest of the step.
func feedbackPlan(nm, beacons, nn int64) func(k int64) *radio.Feedback {
	return func(k int64) *radio.Feedback {
		switch {
		case k < nm:
			return &radio.Feedback{Status: radio.Message, Payload: radio.MsgM}
		case k < nm+beacons:
			return &radio.Feedback{Status: radio.Message, Payload: radio.Beacon}
		case k < nm+beacons+nn:
			return &radio.Feedback{Status: radio.Noise}
		default:
			return &radio.Feedback{Status: radio.Silence}
		}
	}
}

func newAdvNode(t *testing.T, source bool) *advNode {
	t.Helper()
	alg, err := NewMultiCastAdv(Sim())
	if err != nil {
		t.Fatal(err)
	}
	return alg.NewNode(1, source, rng.New(7)).(*advNode)
}

func newAdvCNode(t *testing.T, c int, source bool) *advNode {
	t.Helper()
	alg, err := NewMultiCastAdvC(Sim(), c)
	if err != nil {
		t.Fatal(err)
	}
	return alg.NewNode(1, source, rng.New(7)).(*advNode)
}

// thresholds returns the helper-check thresholds for the node's current window.
func thresholds(nd *advNode) (nmMin, nsMin, nmPrimeMax, nnMax int64) {
	p := nd.alg.params
	w := nd.cur
	rp := float64(w.Len) * w.P
	rp2 := rp * w.P
	return int64(math.Ceil(p.HelperNm * rp2)), int64(math.Ceil(p.HelperNs * rp)),
		int64(math.Floor(p.HelperNmPrime * rp2)), int64(math.Floor(p.HaltNoise * rp))
}

func TestAdvConstructorValidation(t *testing.T) {
	bad := Sim()
	bad.Alpha = 0.3
	if _, err := NewMultiCastAdv(bad); err == nil {
		t.Error("accepted α ≥ 1/4")
	}
	if _, err := NewMultiCastAdvC(Sim(), 0); err == nil {
		t.Error("accepted C = 0")
	}
	alg, err := NewMultiCastAdv(Sim())
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "MultiCastAdv" {
		t.Errorf("Name = %q", alg.Name())
	}
	algC, err := NewMultiCastAdvC(Sim(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if algC.Name() != "MultiCastAdv(C)" {
		t.Errorf("Name = %q", algC.Name())
	}
}

func TestAdvChannelsFollowSchedule(t *testing.T) {
	alg, _ := NewMultiCastAdv(Sim())
	sched := NewAdvSchedule(Sim())
	for k := 0; k < 40; k++ {
		w := sched.Window(k)
		if got := alg.Channels(w.Start); got != w.Channels {
			t.Fatalf("Channels(%d) = %d, want %d (window %+v)", w.Start, got, w.Channels, w)
		}
	}
}

func TestAdvStepOneBehaviour(t *testing.T) {
	// Uninformed: only listens; informed: only broadcasts m.
	un := newAdvNode(t, false)
	src := newAdvNode(t, true)
	for s := 0; s < 2000; s++ {
		if un.cur.Step != 1 {
			break
		}
		if a := un.Step(0); a.Kind == protocol.Broadcast {
			t.Fatal("uninformed node broadcast in step one")
		}
		un.EndSlot(0)
	}
	for s := 0; s < 2000; s++ {
		if src.cur.Step != 1 {
			break
		}
		if a := src.Step(0); a.Kind == protocol.Listen {
			t.Fatal("informed node listened in step one")
		} else if a.Kind == protocol.Broadcast && a.Payload != radio.MsgM {
			t.Fatal("informed node must broadcast m in step one")
		}
		src.EndSlot(0)
	}
}

func TestAdvStepOneInformsImmediately(t *testing.T) {
	nd := newAdvNode(t, false)
	if nd.cur.Step != 1 {
		t.Fatal("node must start in step one")
	}
	nd.Step(0)
	nd.Deliver(radio.Feedback{Status: radio.Message, Payload: radio.MsgM})
	if nd.Status() != protocol.Informed {
		t.Fatal("step-one message did not inform immediately")
	}
}

func TestAdvStepTwoStatusFrozenUntilPhaseEnd(t *testing.T) {
	nd := newAdvNode(t, false)
	// Skip step one.
	walkStep(t, nd, nil)
	if nd.cur.Step != 2 {
		t.Fatal("expected step two")
	}
	nd.Step(0)
	nd.Deliver(radio.Feedback{Status: radio.Message, Payload: radio.MsgM})
	if nd.Status() != protocol.Uninformed {
		t.Fatal("status changed mid-step-two (pseudocode freezes it)")
	}
	if nd.nm != 1 || nd.nmPrime != 1 {
		t.Fatalf("counters Nm=%d N'm=%d, want 1,1", nd.nm, nd.nmPrime)
	}
	nd.EndSlot(0)
	// Finish the step: the Nm ≥ 1 check then informs the node.
	walkStep(t, nd, nil)
	if nd.Status() != protocol.Informed {
		t.Fatalf("status = %v after phase end, want informed", nd.Status())
	}
}

func TestAdvStepTwoBeaconFromUninformed(t *testing.T) {
	nd := newAdvNode(t, false)
	walkStep(t, nd, nil) // into step two
	sawBeacon := false
	for k := nd.offset; k < nd.cur.Len; k++ {
		if a := nd.Step(0); a.Kind == protocol.Broadcast {
			if a.Payload != radio.Beacon {
				t.Fatal("uninformed node must broadcast ± in step two")
			}
			sawBeacon = true
		}
		nd.EndSlot(0)
	}
	// With p ≈ 0.44 in phase (1,0), ~40% broadcast rate: the step has
	// enough slots that seeing no beacon at all is astronomically unlikely.
	if !sawBeacon && nd.cur.Len > 20 {
		t.Error("uninformed node never broadcast the beacon in step two")
	}
}

func TestAdvCounterTallies(t *testing.T) {
	nd := newAdvNode(t, true)
	walkStep(t, nd, nil) // step one
	if nd.cur.Step != 2 {
		t.Fatal("expected step two")
	}
	seq := []radio.Feedback{
		{Status: radio.Message, Payload: radio.MsgM},
		{Status: radio.Message, Payload: radio.Beacon},
		{Status: radio.Noise},
		{Status: radio.Silence},
		{Status: radio.Message, Payload: radio.MsgM},
		{Status: radio.Noise},
	}
	for i := range seq {
		nd.Step(0)
		nd.Deliver(seq[i])
		nd.EndSlot(0)
	}
	if nd.nm != 2 || nd.nmPrime != 3 || nd.nn != 2 || nd.ns != 1 {
		t.Fatalf("counters Nm=%d N'm=%d Nn=%d Ns=%d, want 2,3,2,1", nd.nm, nd.nmPrime, nd.nn, nd.ns)
	}
}

func TestAdvHelperTransition(t *testing.T) {
	nd := newAdvNode(t, true)
	walkStep(t, nd, nil) // step one of (1,0)
	nmMin, nsMin, nmPrimeMax, _ := thresholds(nd)
	if nmMin > nmPrimeMax {
		t.Fatalf("window too small to satisfy both Nm ≥ %d and N'm ≤ %d", nmMin, nmPrimeMax)
	}
	w := nd.cur
	if nmMin+nsMin > w.Len {
		t.Fatalf("window too small for the plan: need %d+%d of %d", nmMin, nsMin, w.Len)
	}
	walkStep(t, nd, feedbackPlan(nmMin, 0, 0)) // rest silence ⇒ Ns large
	if nd.Status() != protocol.Helper {
		t.Fatalf("status = %v, want helper (Nm=%d Ns=%d N'm=%d)", nd.Status(), nd.nm, nd.ns, nd.nmPrime)
	}
	if i, j := nd.HelperPhase(); i != 1 || j != 0 {
		t.Fatalf("HelperPhase = (%d,%d), want (1,0)", i, j)
	}
}

func TestAdvHelperRejectedByNmPrime(t *testing.T) {
	nd := newAdvNode(t, true)
	walkStep(t, nd, nil)
	nmMin, _, nmPrimeMax, _ := thresholds(nd)
	// Enough messages but too many beacons: N'm exceeds the bound.
	beacons := nmPrimeMax - nmMin + 2
	walkStep(t, nd, feedbackPlan(nmMin, beacons, 0))
	if nd.Status() == protocol.Helper {
		t.Fatalf("became helper despite N'm=%d > %d", nd.nmPrime, nmPrimeMax)
	}
}

func TestAdvHelperRejectedByLowNs(t *testing.T) {
	nd := newAdvNode(t, true)
	walkStep(t, nd, nil)
	nmMin, _, _, _ := thresholds(nd)
	// Messages then noise (no silence): Ns stays zero.
	walkStep(t, nd, func(k int64) *radio.Feedback {
		if k < nmMin {
			return &radio.Feedback{Status: radio.Message, Payload: radio.MsgM}
		}
		return &radio.Feedback{Status: radio.Noise}
	})
	if nd.Status() == protocol.Helper {
		t.Fatal("became helper despite Ns = 0")
	}
}

func TestAdvHelperRejectedByLowNm(t *testing.T) {
	nd := newAdvNode(t, true)
	walkStep(t, nd, nil)
	nmMin, _, _, _ := thresholds(nd)
	walkStep(t, nd, feedbackPlan(nmMin-1, 0, 0))
	if nd.Status() == protocol.Helper {
		t.Fatalf("became helper with Nm=%d < %d", nd.nm, nmMin)
	}
}

// promoteToHelper walks a fresh source node to helper in phase (1,0) and
// returns it.
func promoteToHelper(t *testing.T, nd *advNode) {
	t.Helper()
	walkStep(t, nd, nil)
	nmMin, _, _, _ := thresholds(nd)
	walkStep(t, nd, feedbackPlan(nmMin, 0, 0))
	if nd.Status() != protocol.Helper {
		t.Fatalf("setup: node not helper (status %v)", nd.Status())
	}
}

func TestAdvHaltAfterGapInQuietPhase(t *testing.T) {
	nd := newAdvNode(t, true)
	promoteToHelper(t, nd)
	gap := nd.alg.params.helperGap()
	// Walk forward, all silence. The node must halt exactly at the end of
	// phase (1+gap, 0): same j, i − iˆ ≥ gap, Nn = 0.
	for guard := 0; guard < 10_000 && nd.Status() != protocol.Halted; guard++ {
		walkStep(t, nd, nil)
	}
	if nd.Status() != protocol.Halted {
		t.Fatal("helper never halted in quiet phases")
	}
	if i, j, _ := nd.Phase(); i != 1+gap || j != 0 {
		t.Fatalf("halted in phase (%d,%d), want (%d,0)", i, j, 1+gap)
	}
}

func TestAdvNoHaltBeforeGap(t *testing.T) {
	nd := newAdvNode(t, true)
	promoteToHelper(t, nd)
	gap := nd.alg.params.helperGap()
	for nd.cur.I < 1+gap {
		if nd.Status() == protocol.Halted {
			t.Fatalf("halted in epoch %d, before iˆ+gap = %d", nd.cur.I, 1+gap)
		}
		walkStep(t, nd, nil)
	}
}

func TestAdvNoHaltInWrongPhase(t *testing.T) {
	// Helper with jˆ = 0 must not halt at the end of phases with j ≠ 0
	// even when they are silent; drive j=0 phases noisy so it never halts.
	nd := newAdvNode(t, true)
	promoteToHelper(t, nd)
	noise := &radio.Feedback{Status: radio.Noise}
	for guard := 0; guard < 2000; guard++ {
		if nd.cur.J == 0 && nd.cur.Step == 2 {
			walkStep(t, nd, func(int64) *radio.Feedback { return noise })
		} else {
			walkStep(t, nd, nil)
		}
		if nd.Status() == protocol.Halted {
			i, j, _ := nd.Phase()
			t.Fatalf("halted in phase (%d,%d) although jˆ=0 phases were noisy", i, j)
		}
		// Covering well past iˆ+gap is enough; epoch lengths grow
		// geometrically, so stop before windows get large.
		if nd.cur.I > 1+2*nd.alg.params.helperGap() {
			break
		}
	}
}

func TestAdvHaltBlockedByNoise(t *testing.T) {
	nd := newAdvNode(t, true)
	promoteToHelper(t, nd)
	_, _, _, nnMax := thresholds(nd)
	_ = nnMax
	// All step-two windows get just-above-threshold noise → never halt.
	for guard := 0; guard < 600; guard++ {
		if nd.cur.Step == 2 {
			p := nd.alg.params
			rp := float64(nd.cur.Len) * nd.cur.P
			over := int64(math.Floor(p.HaltNoise*rp)) + 1
			walkStep(t, nd, feedbackPlan(0, 0, over))
		} else {
			walkStep(t, nd, nil)
		}
		if nd.Status() == protocol.Halted {
			t.Fatal("halted despite Nn above the halt threshold")
		}
		if nd.cur.I > 20 {
			return
		}
	}
}

func TestAdvCHelperAtCutoffDropsNmPrime(t *testing.T) {
	// In MultiCastAdv(C), at j = lg C the N'm condition is dropped
	// (Figure 6 line 23): a node flooded with beacons still becomes helper.
	nd := newAdvCNode(t, 1, true) // jCut = 0, so phase (1,0) is a cut-off phase
	walkStep(t, nd, nil)
	nmMin, _, nmPrimeMax, _ := thresholds(nd)
	beacons := nmPrimeMax - nmMin + 5 // would fail the unlimited-channel rule
	walkStep(t, nd, feedbackPlan(nmMin, beacons, 0))
	if nd.Status() != protocol.Helper {
		t.Fatalf("cut-off phase did not drop N'm condition (status %v, N'm=%d > %d)",
			nd.Status(), nd.nmPrime, nmPrimeMax)
	}
}

func TestAdvCNonCutoffPhaseKeepsNmPrime(t *testing.T) {
	// With C = 2 (jCut = 1), phase (2,0) is below the cut-off and must
	// keep the N'm rejection.
	nd := newAdvCNode(t, 2, true)
	// Walk through epoch 1 entirely (phase (1,0)) with noise so no helper.
	noise := &radio.Feedback{Status: radio.Noise}
	for nd.cur.I == 1 {
		walkStep(t, nd, func(int64) *radio.Feedback { return noise })
	}
	if nd.Status() != protocol.Informed {
		t.Fatalf("setup: status %v", nd.Status())
	}
	// Phase (2,0): j=0 < jCut=1 → N'm applies.
	if nd.cur.I != 2 || nd.cur.J != 0 {
		t.Fatalf("setup: in phase (%d,%d)", nd.cur.I, nd.cur.J)
	}
	walkStep(t, nd, nil) // step one
	nmMin, _, nmPrimeMax, _ := thresholds(nd)
	walkStep(t, nd, feedbackPlan(nmMin, nmPrimeMax-nmMin+2, 0))
	if nd.Status() == protocol.Helper {
		t.Fatal("N'm condition not enforced below the cut-off phase")
	}
}

func TestAdvHelperPersistsAcrossPhases(t *testing.T) {
	nd := newAdvNode(t, true)
	promoteToHelper(t, nd)
	iHat, jHat := nd.HelperPhase()
	// Noisy phases cannot demote a helper.
	noise := &radio.Feedback{Status: radio.Noise}
	for k := 0; k < 20; k++ {
		walkStep(t, nd, func(int64) *radio.Feedback { return noise })
	}
	if nd.Status() != protocol.Helper {
		t.Fatalf("helper demoted to %v", nd.Status())
	}
	if i, j := nd.HelperPhase(); i != iHat || j != jHat {
		t.Fatal("helper phase record changed")
	}
}

func TestAdvScheduleAccessor(t *testing.T) {
	alg, _ := NewMultiCastAdv(Sim())
	s1, s2 := alg.Schedule(), alg.Schedule()
	// Independent copies, identical content.
	for k := 0; k < 20; k++ {
		if s1.Window(k) != s2.Window(k) {
			t.Fatal("Schedule() copies disagree")
		}
	}
}
