package core

import (
	"fmt"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// MultiCastAdv is the paper's Figure 4 algorithm. It needs neither n nor T.
// Execution is structured as epochs i = 1, 2, …; epoch i contains phases
// j = 0 … i−1; phase (i,j) guesses n ≈ 2^{j+1}, uses 2^j channels, and runs
// two steps of R(i,j) = ⌈B·2^{2α(i−j)}·i^IExp⌉ slots with listen/broadcast
// probability p(i,j) = 2^{−α(i−j)}/2.
//
// Step one disseminates the message epidemically. Step two is diagnostic:
// nodes broadcast m (or the beacon ± if uninformed) and tally four
// counters — Nm (heard m), N'm (heard m or ±), Nn (noise), Ns (silence).
// At a step-two end, in order (Figure 4 lines 21–23):
//
//  1. an uninformed node with Nm ≥ 1 becomes informed;
//  2. an informed node with Nm ≥ HelperNm·Rp², Ns ≥ HelperNs·Rp and
//     N'm ≤ HelperNmPrime·Rp² becomes a helper and records (iˆ,jˆ) —
//     the three checks together certify 2^j ≈ n/2 (Lemmas 6.1–6.3);
//  3. a helper halts in phases with j = jˆ and i ≥ iˆ + HelperGap iff
//     Nn ≤ HaltNoise·Rp.
//
// The two-stage helper→halt rule makes early terminations harmless: when
// anyone halts, everyone is already a helper (Lemma 6.5), and fewer active
// nodes only lowers the noise others hear.
type MultiCastAdv struct {
	params Params
	jCut   int // -1 for unlimited channels; ⌊lg C⌋ for the (C) variant
	sched  *AdvSchedule
}

// NewMultiCastAdv builds the unlimited-channel algorithm.
func NewMultiCastAdv(params Params) (*MultiCastAdv, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &MultiCastAdv{params: params, jCut: -1, sched: NewAdvSchedule(params)}, nil
}

// NewMultiCastAdvC builds MultiCastAdv(C) (Figure 6) for c ≥ 1 available
// channels: epochs stop at phase j = ⌊lg c⌋, and in that boundary phase the
// helper rule drops the N'm ≤ HelperNmPrime·Rp² condition (the phase with
// the correct guess j = lg n − 1 may not exist, so helpers must be allowed
// to emerge at the cut-off).
func NewMultiCastAdvC(params Params, c int) (*MultiCastAdv, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: MultiCastAdv(C) needs c ≥ 1, got %d", c)
	}
	return &MultiCastAdv{params: params, jCut: lg(c), sched: NewAdvScheduleC(params, c)}, nil
}

// Name implements protocol.Algorithm.
func (a *MultiCastAdv) Name() string {
	if a.jCut >= 0 {
		return "MultiCastAdv(C)"
	}
	return "MultiCastAdv"
}

// Channels implements protocol.Algorithm.
func (a *MultiCastAdv) Channels(slot int64) int { return a.sched.At(slot).Channels }

// ChannelSpan implements protocol.ChannelSpanner: the channel count is
// constant within a step window.
func (a *MultiCastAdv) ChannelSpan(slot int64) (int, int64) {
	w := a.sched.At(slot)
	return w.Channels, w.End
}

// Schedule returns a fresh copy of the algorithm's phase schedule, for
// adversaries and experiment harnesses.
func (a *MultiCastAdv) Schedule() *AdvSchedule { return newAdvSchedule(a.params, a.jCut) }

// NewNode implements protocol.Algorithm. Per the protocol contract, the
// node copies *r; the pointer is not retained.
func (a *MultiCastAdv) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	nd := &advNode{
		alg:   a,
		sched: newAdvSchedule(a.params, a.jCut),
		r:     *r,
		win:   0,
	}
	if source {
		nd.status = protocol.Informed
		nd.knowsM = true
	}
	nd.enterWindow(nd.sched.Window(0))
	return nd
}

// advNode is one node's MultiCastAdv state machine.
type advNode struct {
	alg    *MultiCastAdv
	sched  *AdvSchedule
	r      rng.Source
	status protocol.Status
	knowsM bool

	win    int        // index of the current step window
	cur    StepWindow // the current step window
	offset int64      // slot offset within the window

	// Step-two counters (Figure 4 line 9).
	nm, nmPrime, nn, ns int64

	// Helper bookkeeping (iˆ, jˆ).
	helperI, helperJ int

	// nextOff is the window offset of the node's next action slot,
	// pre-drawn as one geometric gap; cur.Len is the sentinel for "idle
	// until the window boundary".
	nextOff int64
}

func (nd *advNode) enterWindow(w StepWindow) {
	nd.cur = w
	nd.offset = 0
	if w.Step == 2 {
		nd.nm, nd.nmPrime, nd.nn, nd.ns = 0, 0, 0, 0
	}
	nd.drawGap()
}

// drawGap draws the geometric gap to the node's next action slot in the
// current step window. In step one a node acts with probability p
// (uninformed listen, informed broadcast); in step two everyone acts with
// probability 2p (listen or broadcast, equally likely). Becoming informed
// mid-window (a step-one listen) does not change the step's action rate,
// so the rate is a gap invariant; gaps truncate at the window boundary,
// where enterWindow redraws under the next window's rate.
func (nd *advNode) drawGap() {
	q := nd.cur.P
	if nd.cur.Step == 2 {
		q *= 2
	}
	nd.nextOff = nd.offset + nd.r.GeometricCapped(q, nd.cur.Len-nd.offset)
}

func (nd *advNode) Status() protocol.Status { return nd.status }

func (nd *advNode) Informed() bool { return nd.knowsM }

// Phase returns the node's current (epoch, phase, step) — test hook.
func (nd *advNode) Phase() (i, j, step int) { return nd.cur.I, nd.cur.J, nd.cur.Step }

// HelperPhase returns the recorded (iˆ, jˆ) — test hook; valid once the
// node has reached helper status.
func (nd *advNode) HelperPhase() (i, j int) { return nd.helperI, nd.helperJ }

func (nd *advNode) Step(slot int64) protocol.Action {
	if nd.offset != nd.nextOff || nd.status == protocol.Halted {
		return protocol.Action{Kind: protocol.Idle}
	}
	w := &nd.cur
	if w.Step == 1 {
		// Step one (Figure 4 lines 2–8): uninformed listen, informed and
		// helper broadcast m — the action kind is determined by status.
		ch := nd.r.Intn(w.Channels)
		if nd.status == protocol.Uninformed {
			return protocol.Action{Kind: protocol.Listen, Channel: ch}
		}
		return protocol.Action{Kind: protocol.Broadcast, Channel: ch, Payload: radio.MsgM}
	}
	// Step two (lines 10–20): given that the node acts, listening and
	// broadcasting are equally likely; broadcasts carry the message m if
	// informed, the beacon ± otherwise.
	if nd.r.Bernoulli(0.5) {
		return protocol.Action{Kind: protocol.Listen, Channel: nd.r.Intn(w.Channels)}
	}
	payload := radio.MsgM
	if nd.status == protocol.Uninformed {
		payload = radio.Beacon
	}
	return protocol.Action{Kind: protocol.Broadcast, Channel: nd.r.Intn(w.Channels), Payload: payload}
}

func (nd *advNode) Deliver(fb radio.Feedback) {
	if nd.cur.Step == 1 {
		// Step one: only uninformed nodes listen; hearing m informs them
		// immediately (line 6). Noise and silence are ignored here.
		if fb.Status == radio.Message && fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
		return
	}
	// Step two (lines 14–17): update counters; status never changes
	// mid-step, even if an uninformed node hears m.
	switch fb.Status {
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.nm++
			nd.nmPrime++
		} else {
			nd.nmPrime++
		}
	case radio.Noise:
		nd.nn++
	case radio.Silence:
		nd.ns++
	}
}

func (nd *advNode) EndSlot(slot int64) {
	if nd.status == protocol.Halted {
		return
	}
	acted := nd.offset == nd.nextOff
	nd.offset++
	if nd.offset < nd.cur.Len {
		if acted {
			nd.drawGap()
		}
		return
	}
	if nd.cur.Step == 2 {
		nd.endOfPhase()
		if nd.status == protocol.Halted {
			return
		}
	}
	nd.win++
	nd.enterWindow(nd.sched.Window(nd.win))
}

// phaseOutcome computes, without mutating the node, the status and helper
// phase that ending the current step-two window would produce — Figure 4
// lines 21–23 (and Figure 6 lines 21–25 for the cut-off variant) in
// pseudocode order. The split from endOfPhase lets NextActive decide
// whether an idle slot may be absorbed or must wake the engine.
func (nd *advNode) phaseOutcome() (status protocol.Status, helperI, helperJ int) {
	w := &nd.cur
	p := nd.alg.params
	rp := float64(w.Len) * w.P
	rp2 := rp * w.P
	status, helperI, helperJ = nd.status, nd.helperI, nd.helperJ

	if status == protocol.Uninformed && nd.nm >= 1 {
		status = protocol.Informed
	}
	if status == protocol.Informed &&
		float64(nd.nm) >= p.HelperNm*rp2 &&
		float64(nd.ns) >= p.HelperNs*rp {
		// At the cut-off phase j = lg C the N'm condition is dropped
		// (Figure 6 line 23); everywhere else it applies.
		if (nd.alg.jCut >= 0 && w.J == nd.alg.jCut) ||
			float64(nd.nmPrime) <= p.HelperNmPrime*rp2 {
			status = protocol.Helper
			helperI, helperJ = w.I, w.J
		}
	}
	if status == protocol.Helper &&
		w.I-helperI >= p.helperGap() &&
		w.J == helperJ &&
		float64(nd.nn) <= p.HaltNoise*rp {
		status = protocol.Halted
	}
	return status, helperI, helperJ
}

// endOfPhase applies the phase outcome.
func (nd *advNode) endOfPhase() {
	st, hi, hj := nd.phaseOutcome()
	if nd.status == protocol.Uninformed && st != protocol.Uninformed {
		nd.knowsM = true
	}
	nd.status, nd.helperI, nd.helperJ = st, hi, hj
}

// NextActive implements protocol.Sleeper. The next action slot is
// pre-drawn, so fast-forwarding jumps straight to it; a step-two window
// closing with no action left may still change the status, in which case
// the engine is woken at the window's final slot instead (the counters
// are frozen while idle, so the outcome is already decided). Absorbed
// window boundaries run the same bookkeeping — endOfPhase and the next
// window's gap draw — as the dense EndSlot.
func (nd *advNode) NextActive(now int64) int64 {
	for {
		if nd.nextOff < nd.cur.Len {
			now += nd.nextOff - nd.offset
			nd.offset = nd.nextOff
			return now
		}
		if nd.cur.Step == 2 {
			if st, _, _ := nd.phaseOutcome(); st != nd.status {
				now += nd.cur.Len - 1 - nd.offset
				nd.offset = nd.cur.Len - 1
				return now
			}
		}
		now += nd.cur.Len - nd.offset
		if nd.cur.Step == 2 {
			nd.endOfPhase() // status unchanged, checked above
		}
		nd.win++
		nd.enterWindow(nd.sched.Window(nd.win))
	}
}
