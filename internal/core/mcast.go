package core

import (
	"math"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// maxIter caps the iteration index so Rᵢ = Θ(i·4ⁱ) stays well inside int64.
// Iteration 28 alone is ~10¹⁸ slots; reaching the cap means the run was
// unbounded for other reasons and the engine's MaxSlots valve fires first.
const maxIter = 28

// MultiCast is the paper's Figure 2 algorithm: MultiCastCore with growing
// iterations (Rᵢ = ⌈A·i·4ⁱ·lgᴸn⌉) and shrinking probabilities (pᵢ = 2⁻ⁱ),
// which removes the need to know T and improves energy competitiveness to
// O(√(T/n)·√lgT·lgn + lg²n). A node halts at the end of iteration i iff it
// observed fewer than HaltRatio·Rᵢ·pᵢ noisy slots.
type MultiCast struct {
	params   Params
	n        int
	channels int
}

// NewMultiCast builds the algorithm for n nodes (power of two ≥ 2).
func NewMultiCast(params Params, n int) (*MultiCast, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateN(n); err != nil {
		return nil, err
	}
	return &MultiCast{params: params, n: n, channels: maxInt(n/params.channelDiv(), 1)}, nil
}

// Name implements protocol.Algorithm.
func (a *MultiCast) Name() string { return "MultiCast" }

// Channels implements protocol.Algorithm: n/ChannelDiv (paper: n/2) in
// every slot.
func (a *MultiCast) Channels(slot int64) int { return a.channels }

// ChannelSpan implements protocol.ChannelSpanner: the count never changes.
func (a *MultiCast) ChannelSpan(slot int64) (int, int64) {
	return a.channels, math.MaxInt64
}

// IterationLength returns Rᵢ for iteration i.
func (a *MultiCast) IterationLength(i int) int64 {
	if i > maxIter {
		i = maxIter
	}
	return ceilPos(a.params.A * float64(i) * math.Exp2(2*float64(i)) * lgPow(a.n, a.params.LogPow))
}

// ListenProb returns pᵢ = 2⁻ⁱ for iteration i.
func (a *MultiCast) ListenProb(i int) float64 {
	if i > maxIter {
		i = maxIter
	}
	return math.Exp2(-float64(i))
}

// NewNode implements protocol.Algorithm.
func (a *MultiCast) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	nd := &mcastNode{alg: a, r: r}
	if source {
		nd.status = protocol.Informed
		nd.knowsM = true
	}
	nd.startIteration(a.params.StartIter)
	return nd
}

// mcastNode is one node's MultiCast state machine.
type mcastNode struct {
	alg     *MultiCast
	r       *rng.Source
	status  protocol.Status
	knowsM  bool
	iter    int     // current iteration index i
	iterLen int64   // Rᵢ
	p       float64 // pᵢ
	haltMax float64 // halt iff Nn < haltMax at iteration end
	noisy   int64   // Nn
	slotIdx int64   // slot within the iteration

	// pending caches the action NextActive pre-drew for its wake slot.
	pending    protocol.Action
	hasPending bool
}

func (nd *mcastNode) startIteration(i int) {
	nd.iter = i
	nd.iterLen = nd.alg.IterationLength(i)
	nd.p = nd.alg.ListenProb(i)
	nd.haltMax = nd.alg.params.HaltRatio * nd.p * float64(nd.iterLen)
	nd.noisy = 0
	nd.slotIdx = 0
}

func (nd *mcastNode) Status() protocol.Status { return nd.status }

func (nd *mcastNode) Informed() bool { return nd.knowsM }

// Iteration returns the node's current iteration index (test hook).
func (nd *mcastNode) Iteration() int { return nd.iter }

func (nd *mcastNode) Step(slot int64) protocol.Action {
	if nd.hasPending {
		nd.hasPending = false
		return nd.pending
	}
	u := nd.r.Float64()
	switch {
	case u < nd.p:
		return protocol.Action{Kind: protocol.Listen, Channel: nd.r.Intn(nd.alg.channels)}
	case u < 2*nd.p && nd.status == protocol.Informed:
		return protocol.Action{Kind: protocol.Broadcast, Channel: nd.r.Intn(nd.alg.channels), Payload: radio.MsgM}
	default:
		return protocol.Action{Kind: protocol.Idle}
	}
}

func (nd *mcastNode) Deliver(fb radio.Feedback) {
	switch fb.Status {
	case radio.Noise:
		nd.noisy++
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
	}
}

func (nd *mcastNode) EndSlot(slot int64) {
	nd.slotIdx++
	if nd.slotIdx < nd.iterLen {
		return
	}
	if float64(nd.noisy) < nd.haltMax {
		nd.status = protocol.Halted
		return
	}
	nd.startIteration(nd.iter + 1)
}

// NextActive implements protocol.Sleeper; see coreNode.NextActive. The
// only extra wrinkle is that absorbed iteration boundaries advance pᵢ and
// Rᵢ, exactly as the dense EndSlot would — the hoisted loop state is
// reloaded after each boundary.
func (nd *mcastNode) NextActive(now int64) int64 {
	if nd.hasPending {
		return now
	}
	r := nd.r
	informed := nd.status == protocol.Informed
	for {
		var (
			p         = nd.p
			iterLen   = nd.iterLen
			haltAtEnd = float64(nd.noisy) < nd.haltMax
			slotIdx   = nd.slotIdx
		)
		for {
			u := r.Float64()
			if u < p || (u < 2*p && informed) {
				nd.slotIdx = slotIdx
				if u < p {
					nd.pending = protocol.Action{Kind: protocol.Listen, Channel: r.Intn(nd.alg.channels)}
				} else {
					nd.pending = protocol.Action{Kind: protocol.Broadcast, Channel: r.Intn(nd.alg.channels), Payload: radio.MsgM}
				}
				nd.hasPending = true
				return now
			}
			if slotIdx+1 >= iterLen {
				if haltAtEnd {
					nd.slotIdx = slotIdx
					nd.pending = protocol.Action{Kind: protocol.Idle}
					nd.hasPending = true
					return now
				}
				nd.startIteration(nd.iter + 1)
				now++
				break // pᵢ, Rᵢ, haltMax changed: reload the loop state
			}
			slotIdx++
			now++
		}
	}
}

// ---------------------------------------------------------------------------
// MultiCast(C) — Figure 5

// MultiCastC simulates MultiCast in a network with only C channels
// (Figure 5). Iteration i consists of Rᵢ *rounds*; each round spends
// n/(2C) slots simulating one MultiCast slot: a node that picked virtual
// channel ch ∈ [0, n/2) acts only in sub-slot ⌊ch/C⌋ of the round, on
// physical channel ch mod C. Because n/2 is a power of two, C is rounded
// down to the nearest power of two ≤ min(C, n/2) (the paper's "otherwise,
// round down C").
type MultiCastC struct {
	inner     *MultiCast
	c         int   // effective physical channel count
	subSlots  int64 // slots per round = n/(2C)
	requested int   // the C the caller asked for
}

// NewMultiCastC builds the C-channel variant. c ≥ 1 is the number of
// available physical channels.
func NewMultiCastC(params Params, n, c int) (*MultiCastC, error) {
	// The round structure assumes the simulated algorithm uses exactly
	// n/2 virtual channels (Figure 5); the ChannelDiv ablation knob does
	// not apply here.
	params.ChannelDiv = 2
	inner, err := NewMultiCast(params, n)
	if err != nil {
		return nil, err
	}
	requested := c
	if c < 1 {
		c = 1
	}
	if c > n/2 {
		c = maxInt(n/2, 1)
	}
	// Round down to a power of two so C divides n/2 exactly.
	c = 1 << lg(c)
	return &MultiCastC{
		inner:     inner,
		c:         c,
		subSlots:  int64(maxInt(n/2, 1) / c),
		requested: requested,
	}, nil
}

// Name implements protocol.Algorithm.
func (a *MultiCastC) Name() string { return "MultiCast(C)" }

// Channels implements protocol.Algorithm: always the effective C.
func (a *MultiCastC) Channels(slot int64) int { return a.c }

// ChannelSpan implements protocol.ChannelSpanner: the count never changes.
func (a *MultiCastC) ChannelSpan(slot int64) (int, int64) {
	return a.c, math.MaxInt64
}

// EffectiveC returns the power-of-two channel count actually used.
func (a *MultiCastC) EffectiveC() int { return a.c }

// RoundLength returns the number of physical slots per simulated slot.
func (a *MultiCastC) RoundLength() int64 { return a.subSlots }

// NewNode implements protocol.Algorithm.
func (a *MultiCastC) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	nd := &mcastCNode{alg: a, r: r}
	if source {
		nd.status = protocol.Informed
		nd.knowsM = true
	}
	nd.startIteration(a.inner.params.StartIter)
	nd.startRound()
	return nd
}

// mcastCNode is one node's MultiCast(C) state machine.
type mcastCNode struct {
	alg     *MultiCastC
	r       *rng.Source
	status  protocol.Status
	knowsM  bool
	iter    int
	iterLen int64 // Rᵢ in rounds
	p       float64
	haltMax float64
	noisy   int64
	round   int64 // round index within the iteration
	sub     int64 // sub-slot index within the round

	// Per-round draw, made at round start (one virtual MultiCast slot).
	act     protocol.Kind
	virtual int // virtual channel in [0, n/2)
}

func (nd *mcastCNode) startIteration(i int) {
	nd.iter = i
	nd.iterLen = nd.alg.inner.IterationLength(i)
	nd.p = nd.alg.inner.ListenProb(i)
	nd.haltMax = nd.alg.inner.params.HaltRatio * nd.p * float64(nd.iterLen)
	nd.noisy = 0
	nd.round = 0
}

// startRound draws the virtual slot's channel and coin (Figure 5 lines 6).
func (nd *mcastCNode) startRound() {
	nd.sub = 0
	u := nd.r.Float64()
	switch {
	case u < nd.p:
		nd.act = protocol.Listen
	case u < 2*nd.p && nd.status == protocol.Informed:
		nd.act = protocol.Broadcast
	default:
		nd.act = protocol.Idle
		return
	}
	nd.virtual = nd.r.Intn(nd.alg.inner.channels)
}

func (nd *mcastCNode) Status() protocol.Status { return nd.status }

func (nd *mcastCNode) Informed() bool { return nd.knowsM }

// Iteration returns the node's current iteration index (test hook).
func (nd *mcastCNode) Iteration() int { return nd.iter }

func (nd *mcastCNode) Step(slot int64) protocol.Action {
	if nd.act == protocol.Idle {
		return protocol.Action{Kind: protocol.Idle}
	}
	// Act only in the sub-slot that hosts the virtual channel.
	if nd.sub != int64(nd.virtual/nd.alg.c) {
		return protocol.Action{Kind: protocol.Idle}
	}
	physical := nd.virtual % nd.alg.c
	if nd.act == protocol.Listen {
		return protocol.Action{Kind: protocol.Listen, Channel: physical}
	}
	return protocol.Action{Kind: protocol.Broadcast, Channel: physical, Payload: radio.MsgM}
}

func (nd *mcastCNode) Deliver(fb radio.Feedback) {
	switch fb.Status {
	case radio.Noise:
		nd.noisy++
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
	}
}

func (nd *mcastCNode) EndSlot(slot int64) {
	nd.sub++
	if nd.sub < nd.alg.subSlots {
		return
	}
	// Round boundary.
	nd.round++
	if nd.round < nd.iterLen {
		nd.startRound()
		return
	}
	// Iteration boundary (Figure 5 line 17).
	if float64(nd.noisy) < nd.haltMax {
		nd.status = protocol.Halted
		return
	}
	nd.startIteration(nd.iter + 1)
	nd.startRound()
}

// NextActive implements protocol.Sleeper. The node draws once per round,
// not per slot, so fast-forwarding works in round-sized strides: jump to
// the sub-slot hosting the round's virtual channel, or absorb the whole
// round (the boundary's startRound makes the next round's draws exactly
// where the dense EndSlot would). Step needs no pending cache — it is a
// pure function of (act, virtual, sub).
func (nd *mcastCNode) NextActive(now int64) int64 {
	for {
		if nd.act != protocol.Idle {
			target := int64(nd.virtual / nd.alg.c)
			if nd.sub <= target {
				now += target - nd.sub
				nd.sub = target
				return now
			}
		}
		// The rest of the round is idle. If it closes the iteration and
		// the frozen noisy counter is below the halt threshold, the halt
		// lands at the round's final sub-slot; run that slot.
		if nd.round+1 >= nd.iterLen && float64(nd.noisy) < nd.haltMax {
			now += nd.alg.subSlots - 1 - nd.sub
			nd.sub = nd.alg.subSlots - 1
			return now
		}
		// Absorb through the round boundary.
		now += nd.alg.subSlots - nd.sub
		nd.round++
		if nd.round < nd.iterLen {
			nd.startRound()
			continue
		}
		nd.startIteration(nd.iter + 1)
		nd.startRound()
	}
}
