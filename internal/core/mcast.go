package core

import (
	"math"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// maxIter caps the iteration index so Rᵢ = Θ(i·4ⁱ) stays well inside int64.
// Iteration 28 alone is ~10¹⁸ slots; reaching the cap means the run was
// unbounded for other reasons and the engine's MaxSlots valve fires first.
const maxIter = 28

// MultiCast is the paper's Figure 2 algorithm: MultiCastCore with growing
// iterations (Rᵢ = ⌈A·i·4ⁱ·lgᴸn⌉) and shrinking probabilities (pᵢ = 2⁻ⁱ),
// which removes the need to know T and improves energy competitiveness to
// O(√(T/n)·√lgT·lgn + lg²n). A node halts at the end of iteration i iff it
// observed fewer than HaltRatio·Rᵢ·pᵢ noisy slots.
type MultiCast struct {
	params   Params
	n        int
	channels int
}

// NewMultiCast builds the algorithm for n nodes (power of two ≥ 2).
func NewMultiCast(params Params, n int) (*MultiCast, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateN(n); err != nil {
		return nil, err
	}
	return &MultiCast{params: params, n: n, channels: maxInt(n/params.channelDiv(), 1)}, nil
}

// Name implements protocol.Algorithm.
func (a *MultiCast) Name() string { return "MultiCast" }

// Channels implements protocol.Algorithm: n/ChannelDiv (paper: n/2) in
// every slot.
func (a *MultiCast) Channels(slot int64) int { return a.channels }

// ChannelSpan implements protocol.ChannelSpanner: the count never changes.
func (a *MultiCast) ChannelSpan(slot int64) (int, int64) {
	return a.channels, math.MaxInt64
}

// IterationLength returns Rᵢ for iteration i.
func (a *MultiCast) IterationLength(i int) int64 {
	if i > maxIter {
		i = maxIter
	}
	return ceilPos(a.params.A * float64(i) * math.Exp2(2*float64(i)) * lgPow(a.n, a.params.LogPow))
}

// ListenProb returns pᵢ = 2⁻ⁱ for iteration i.
func (a *MultiCast) ListenProb(i int) float64 {
	if i > maxIter {
		i = maxIter
	}
	return math.Exp2(-float64(i))
}

// NewNode implements protocol.Algorithm. Per the protocol contract, the
// node copies *r; the pointer is not retained.
func (a *MultiCast) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	nd := &mcastNode{alg: a, r: *r}
	if source {
		nd.status = protocol.Informed
		nd.knowsM = true
	}
	nd.startIteration(a.params.StartIter)
	return nd
}

// mcastNode is one node's MultiCast state machine.
type mcastNode struct {
	alg     *MultiCast
	r       rng.Source
	status  protocol.Status
	knowsM  bool
	iter    int     // current iteration index i
	iterLen int64   // Rᵢ
	p       float64 // pᵢ
	haltMax float64 // halt iff Nn < haltMax at iteration end
	noisy   int64   // Nn
	slotIdx int64   // slot within the iteration

	// nextIdx is the iteration index of the node's next action slot,
	// pre-drawn as one geometric gap; iterLen is the sentinel for "idle
	// until the iteration boundary".
	nextIdx int64
}

func (nd *mcastNode) startIteration(i int) {
	nd.iter = i
	nd.iterLen = nd.alg.IterationLength(i)
	nd.p = nd.alg.ListenProb(i)
	nd.haltMax = nd.alg.params.HaltRatio * nd.p * float64(nd.iterLen)
	nd.noisy = 0
	nd.slotIdx = 0
	nd.drawGap()
}

// drawGap draws the geometric gap to the node's next action slot at the
// current iteration's rate — pᵢ to listen, plus pᵢ to broadcast when
// informed; see coreNode.drawGap. Gaps truncate at the iteration
// boundary, where startIteration redraws under the new pᵢ₊₁.
func (nd *mcastNode) drawGap() {
	q := nd.p
	if nd.status == protocol.Informed {
		q *= 2
	}
	nd.nextIdx = nd.slotIdx + nd.r.GeometricCapped(q, nd.iterLen-nd.slotIdx)
}

func (nd *mcastNode) Status() protocol.Status { return nd.status }

func (nd *mcastNode) Informed() bool { return nd.knowsM }

// Iteration returns the node's current iteration index (test hook).
func (nd *mcastNode) Iteration() int { return nd.iter }

// Step returns Idle without consuming randomness until the pre-drawn
// action slot; see coreNode.Step.
func (nd *mcastNode) Step(slot int64) protocol.Action {
	if nd.slotIdx != nd.nextIdx || nd.status == protocol.Halted {
		return protocol.Action{Kind: protocol.Idle}
	}
	if nd.status == protocol.Informed && nd.r.Bernoulli(0.5) {
		return protocol.Action{Kind: protocol.Broadcast, Channel: nd.r.Intn(nd.alg.channels), Payload: radio.MsgM}
	}
	return protocol.Action{Kind: protocol.Listen, Channel: nd.r.Intn(nd.alg.channels)}
}

func (nd *mcastNode) Deliver(fb radio.Feedback) {
	switch fb.Status {
	case radio.Noise:
		nd.noisy++
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
	}
}

func (nd *mcastNode) EndSlot(slot int64) {
	if nd.status == protocol.Halted {
		return
	}
	acted := nd.slotIdx == nd.nextIdx
	nd.slotIdx++
	if nd.slotIdx >= nd.iterLen {
		if float64(nd.noisy) < nd.haltMax {
			nd.status = protocol.Halted
			return
		}
		nd.startIteration(nd.iter + 1)
		return
	}
	if acted {
		nd.drawGap()
	}
}

// NextActive implements protocol.Sleeper; see coreNode.NextActive. The
// only extra wrinkle is that absorbed iteration boundaries advance pᵢ and
// Rᵢ, exactly as the dense EndSlot would — startIteration redraws the
// gap under the new rate.
func (nd *mcastNode) NextActive(now int64) int64 {
	for {
		if nd.nextIdx < nd.iterLen {
			now += nd.nextIdx - nd.slotIdx
			nd.slotIdx = nd.nextIdx
			return now
		}
		if float64(nd.noisy) < nd.haltMax {
			now += nd.iterLen - 1 - nd.slotIdx
			nd.slotIdx = nd.iterLen - 1
			return now
		}
		now += nd.iterLen - nd.slotIdx
		nd.startIteration(nd.iter + 1)
	}
}

// ---------------------------------------------------------------------------
// MultiCast(C) — Figure 5

// MultiCastC simulates MultiCast in a network with only C channels
// (Figure 5). Iteration i consists of Rᵢ *rounds*; each round spends
// n/(2C) slots simulating one MultiCast slot: a node that picked virtual
// channel ch ∈ [0, n/2) acts only in sub-slot ⌊ch/C⌋ of the round, on
// physical channel ch mod C. Because n/2 is a power of two, C is rounded
// down to the nearest power of two ≤ min(C, n/2) (the paper's "otherwise,
// round down C").
type MultiCastC struct {
	inner     *MultiCast
	c         int   // effective physical channel count
	subSlots  int64 // slots per round = n/(2C)
	requested int   // the C the caller asked for
}

// NewMultiCastC builds the C-channel variant. c ≥ 1 is the number of
// available physical channels.
func NewMultiCastC(params Params, n, c int) (*MultiCastC, error) {
	// The round structure assumes the simulated algorithm uses exactly
	// n/2 virtual channels (Figure 5); the ChannelDiv ablation knob does
	// not apply here.
	params.ChannelDiv = 2
	inner, err := NewMultiCast(params, n)
	if err != nil {
		return nil, err
	}
	requested := c
	if c < 1 {
		c = 1
	}
	if c > n/2 {
		c = maxInt(n/2, 1)
	}
	// Round down to a power of two so C divides n/2 exactly.
	c = 1 << lg(c)
	return &MultiCastC{
		inner:     inner,
		c:         c,
		subSlots:  int64(maxInt(n/2, 1) / c),
		requested: requested,
	}, nil
}

// Name implements protocol.Algorithm.
func (a *MultiCastC) Name() string { return "MultiCast(C)" }

// Channels implements protocol.Algorithm: always the effective C.
func (a *MultiCastC) Channels(slot int64) int { return a.c }

// ChannelSpan implements protocol.ChannelSpanner: the count never changes.
func (a *MultiCastC) ChannelSpan(slot int64) (int, int64) {
	return a.c, math.MaxInt64
}

// EffectiveC returns the power-of-two channel count actually used.
func (a *MultiCastC) EffectiveC() int { return a.c }

// RoundLength returns the number of physical slots per simulated slot.
func (a *MultiCastC) RoundLength() int64 { return a.subSlots }

// NewNode implements protocol.Algorithm. Per the protocol contract, the
// node copies *r; the pointer is not retained.
func (a *MultiCastC) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	nd := &mcastCNode{alg: a, r: *r}
	if source {
		nd.status = protocol.Informed
		nd.knowsM = true
	}
	nd.startIteration(a.inner.params.StartIter)
	return nd
}

// mcastCNode is one node's MultiCast(C) state machine.
type mcastCNode struct {
	alg     *MultiCastC
	r       rng.Source
	status  protocol.Status
	knowsM  bool
	iter    int
	iterLen int64 // Rᵢ in rounds
	p       float64
	haltMax float64
	noisy   int64
	round   int64 // round index within the iteration
	sub     int64 // sub-slot index within the round

	// nextRound is the iteration index of the node's next active round,
	// pre-drawn as one geometric gap over rounds (iterLen = idle until
	// the iteration boundary), together with that round's action and
	// virtual channel in [0, n/2).
	nextRound int64
	act       protocol.Kind
	virtual   int
}

func (nd *mcastCNode) startIteration(i int) {
	nd.iter = i
	nd.iterLen = nd.alg.inner.IterationLength(i)
	nd.p = nd.alg.inner.ListenProb(i)
	nd.haltMax = nd.alg.inner.params.HaltRatio * nd.p * float64(nd.iterLen)
	nd.noisy = 0
	nd.round = 0
	nd.drawRoundGap()
}

// drawRoundGap draws the geometric gap — in rounds, since the node makes
// one virtual-slot choice per round (Figure 5 line 6) — to its next
// active round, and that round's action kind and virtual channel. The
// status cannot change before the active round (Deliver requires
// listening there), so drawing the action eagerly with the gap keeps the
// stream order gap → kind → channel identical to the slot-level
// MultiCast node, preserving the exact C = n/2 equivalence.
func (nd *mcastCNode) drawRoundGap() {
	q := nd.p
	if nd.status == protocol.Informed {
		q *= 2
	}
	nd.nextRound = nd.round + nd.r.GeometricCapped(q, nd.iterLen-nd.round)
	if nd.nextRound >= nd.iterLen {
		nd.act = protocol.Idle
		return
	}
	if nd.status == protocol.Informed && nd.r.Bernoulli(0.5) {
		nd.act = protocol.Broadcast
	} else {
		nd.act = protocol.Listen
	}
	nd.virtual = nd.r.Intn(nd.alg.inner.channels)
}

func (nd *mcastCNode) Status() protocol.Status { return nd.status }

func (nd *mcastCNode) Informed() bool { return nd.knowsM }

// Iteration returns the node's current iteration index (test hook).
func (nd *mcastCNode) Iteration() int { return nd.iter }

func (nd *mcastCNode) Step(slot int64) protocol.Action {
	if nd.round != nd.nextRound || nd.status == protocol.Halted {
		return protocol.Action{Kind: protocol.Idle}
	}
	// Act only in the sub-slot that hosts the virtual channel.
	if nd.sub != int64(nd.virtual/nd.alg.c) {
		return protocol.Action{Kind: protocol.Idle}
	}
	physical := nd.virtual % nd.alg.c
	if nd.act == protocol.Listen {
		return protocol.Action{Kind: protocol.Listen, Channel: physical}
	}
	return protocol.Action{Kind: protocol.Broadcast, Channel: physical, Payload: radio.MsgM}
}

func (nd *mcastCNode) Deliver(fb radio.Feedback) {
	switch fb.Status {
	case radio.Noise:
		nd.noisy++
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
	}
}

func (nd *mcastCNode) EndSlot(slot int64) {
	if nd.status == protocol.Halted {
		return
	}
	nd.sub++
	if nd.sub < nd.alg.subSlots {
		return
	}
	// Round boundary.
	nd.sub = 0
	acted := nd.round == nd.nextRound
	nd.round++
	if nd.round >= nd.iterLen {
		// Iteration boundary (Figure 5 line 17).
		if float64(nd.noisy) < nd.haltMax {
			nd.status = protocol.Halted
			return
		}
		nd.startIteration(nd.iter + 1)
		return
	}
	if acted {
		nd.drawRoundGap()
	}
}

// NextActive implements protocol.Sleeper. The next active round is
// pre-drawn, so fast-forwarding strides over whole idle rounds with pure
// cursor arithmetic: jump to the sub-slot hosting the active round's
// virtual channel, wake at the iteration's final sub-slot when its
// boundary would halt, and otherwise absorb round and iteration
// boundaries with the same bookkeeping (and gap redraws) as EndSlot.
func (nd *mcastCNode) NextActive(now int64) int64 {
	for {
		if nd.nextRound < nd.iterLen {
			target := int64(nd.virtual / nd.alg.c)
			if nd.round < nd.nextRound || nd.sub <= target {
				now += (nd.nextRound-nd.round)*nd.alg.subSlots + target - nd.sub
				nd.round = nd.nextRound
				nd.sub = target
				return now
			}
			// The action is behind us; the rest of the active round is
			// idle. If it closes the iteration and the boundary would
			// halt, the halt lands at this round's final sub-slot; run
			// that slot so the engine observes the transition.
			if nd.round+1 >= nd.iterLen && float64(nd.noisy) < nd.haltMax {
				now += nd.alg.subSlots - 1 - nd.sub
				nd.sub = nd.alg.subSlots - 1
				return now
			}
			// Absorb through the round boundary, as EndSlot would.
			now += nd.alg.subSlots - nd.sub
			nd.sub = 0
			nd.round++
			if nd.round < nd.iterLen {
				nd.drawRoundGap()
			} else {
				nd.startIteration(nd.iter + 1) // non-halting, checked above
			}
			continue
		}
		// No action before the iteration boundary.
		if float64(nd.noisy) < nd.haltMax {
			now += (nd.iterLen-1-nd.round)*nd.alg.subSlots + nd.alg.subSlots - 1 - nd.sub
			nd.round = nd.iterLen - 1
			nd.sub = nd.alg.subSlots - 1
			return now
		}
		now += (nd.iterLen-nd.round)*nd.alg.subSlots - nd.sub
		nd.sub = 0
		nd.startIteration(nd.iter + 1)
	}
}
