package core

import (
	"math"
	"testing"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// This file cross-validates the production MultiCastCore implementation
// against an independent, deliberately naive transcription of Figure 1:
// integer coins (coin ← rnd(1, 1/p)), unconditional channel draws, and a
// from-scratch channel resolver. The two implementations share no code
// paths beyond the rng package, so statistical agreement of their
// informing/halting dynamics pins the production code to the pseudocode.

// oracleResult mirrors the metrics the comparison needs.
type oracleResult struct {
	allInformed int64
	halted      int64
	maxEnergy   int64
}

// runOracle executes Figure 1 literally for n nodes with no adversary.
func runOracle(params Params, n int, seed uint64, maxSlots int64) oracleResult {
	root := rng.New(seed)
	type node struct {
		r        *rng.Source
		informed bool
		halted   bool
		noisy    int64
		energy   int64
	}
	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i] = &node{r: root.Fork()}
	}
	nodes[0].informed = true

	channels := n / 2
	coinSides := int(math.Round(1 / params.CoreP)) // Figure 1: rnd(1, 64)
	tHat := int64(n)
	iterLen := ceilPos(params.CoreA * lgf(tHat))
	haltMax := params.HaltRatio * params.CoreP * float64(iterLen)

	res := oracleResult{allInformed: -1, halted: -1}
	bcastCount := make([]int, channels)
	listeners := make([][]int, channels)

	slotInIter := int64(0)
	for slot := int64(0); slot < maxSlots; slot++ {
		for ch := 0; ch < channels; ch++ {
			bcastCount[ch] = 0
			listeners[ch] = listeners[ch][:0]
		}
		// Figure 1 lines 6–14: unconditional ch and coin draws.
		for id, nd := range nodes {
			if nd.halted {
				continue
			}
			ch := nd.r.Range(1, channels) - 1
			coin := nd.r.Range(1, coinSides)
			if coin == 1 {
				listeners[ch] = append(listeners[ch], id)
				nd.energy++
			} else if coin == 2 && nd.informed {
				bcastCount[ch]++
				nd.energy++
			}
		}
		// Resolve: 0 broadcasters → silence, 1 → message, ≥2 → noise.
		for ch := 0; ch < channels; ch++ {
			for _, id := range listeners[ch] {
				switch {
				case bcastCount[ch] == 1:
					nodes[id].informed = true
				case bcastCount[ch] >= 2:
					nodes[id].noisy++
				}
			}
		}
		// End of slot / iteration bookkeeping.
		slotInIter++
		if slotInIter == iterLen {
			slotInIter = 0
			for _, nd := range nodes {
				if nd.halted {
					continue
				}
				if float64(nd.noisy) < haltMax {
					nd.halted = true
				}
				nd.noisy = 0
			}
		}
		allInformed, allHalted := true, true
		for _, nd := range nodes {
			if !nd.informed {
				allInformed = false
			}
			if !nd.halted {
				allHalted = false
			}
		}
		if allInformed && res.allInformed < 0 {
			res.allInformed = slot + 1
		}
		if allHalted {
			res.halted = slot + 1
			break
		}
	}
	for _, nd := range nodes {
		if nd.energy > res.maxEnergy {
			res.maxEnergy = nd.energy
		}
	}
	return res
}

// runProduction executes the production implementation with a minimal
// in-test driver (no engine), so the comparison isolates the node logic.
func runProduction(t *testing.T, params Params, n int, seed uint64, maxSlots int64) oracleResult {
	t.Helper()
	alg, err := NewMultiCastCore(params, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(seed + 10_000) // distinct stream: comparison is statistical
	nodes := make([]protocol.Node, n)
	energy := make([]int64, n)
	for i := range nodes {
		nodes[i] = alg.NewNode(i, i == 0, root.Fork())
	}
	channels := alg.Channels(0)
	bcastCount := make([]int, channels)
	listeners := make([][]int, channels)

	res := oracleResult{allInformed: -1, halted: -1}
	active := true
	for slot := int64(0); slot < maxSlots && active; slot++ {
		for ch := 0; ch < channels; ch++ {
			bcastCount[ch] = 0
			listeners[ch] = listeners[ch][:0]
		}
		for id, nd := range nodes {
			if nd.Status() == protocol.Halted {
				continue
			}
			switch a := nd.Step(slot); a.Kind {
			case protocol.Broadcast:
				bcastCount[a.Channel]++
				energy[id]++
			case protocol.Listen:
				listeners[a.Channel] = append(listeners[a.Channel], id)
				energy[id]++
			}
		}
		for ch := 0; ch < channels; ch++ {
			for _, id := range listeners[ch] {
				switch {
				case bcastCount[ch] == 1:
					nodes[id].Deliver(radioMessage())
				case bcastCount[ch] >= 2:
					nodes[id].Deliver(radioNoise())
				default:
					nodes[id].Deliver(radioSilence())
				}
			}
		}
		allInformed, allHalted := true, true
		for _, nd := range nodes {
			if nd.Status() != protocol.Halted {
				nd.EndSlot(slot)
			}
			if !nd.Informed() {
				allInformed = false
			}
			if nd.Status() != protocol.Halted {
				allHalted = false
			}
		}
		if allInformed && res.allInformed < 0 {
			res.allInformed = slot + 1
		}
		if allHalted {
			res.halted = slot + 1
			active = false
		}
	}
	for _, e := range energy {
		if e > res.maxEnergy {
			res.maxEnergy = e
		}
	}
	return res
}

func radioMessage() radio.Feedback {
	return radio.Feedback{Status: radio.Message, Payload: radio.MsgM}
}
func radioNoise() radio.Feedback   { return radio.Feedback{Status: radio.Noise} }
func radioSilence() radio.Feedback { return radio.Feedback{Status: radio.Silence} }

func TestOracleAgreementMultiCastCore(t *testing.T) {
	const (
		n        = 64
		trials   = 40
		maxSlots = 1 << 20
	)
	params := Sim()

	var oInformed, pInformed, oHalt, pHalt, oEnergy, pEnergy float64
	for s := uint64(1); s <= trials; s++ {
		o := runOracle(params, n, s, maxSlots)
		p := runProduction(t, params, n, s, maxSlots)
		if o.allInformed < 0 || p.allInformed < 0 || o.halted < 0 || p.halted < 0 {
			t.Fatalf("seed %d: a run did not finish (oracle %+v, production %+v)", s, o, p)
		}
		oInformed += float64(o.allInformed)
		pInformed += float64(p.allInformed)
		oHalt += float64(o.halted)
		pHalt += float64(p.halted)
		oEnergy += float64(o.maxEnergy)
		pEnergy += float64(p.maxEnergy)
	}
	check := func(name string, a, b float64) {
		rel := math.Abs(a-b) / math.Max(a, b)
		if rel > 0.15 {
			t.Errorf("%s diverges: oracle mean %.1f vs production %.1f (%.0f%%)",
				name, a/trials, b/trials, rel*100)
		} else {
			t.Logf("%s: oracle mean %.1f, production mean %.1f", name, a/trials, b/trials)
		}
	}
	check("all-informed slot", oInformed, pInformed)
	check("halt slot", oHalt, pHalt)
	check("max node energy", oEnergy, pEnergy)
}
