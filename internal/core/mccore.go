package core

import (
	"fmt"
	"math"
	"sync"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// MultiCastCore is the paper's Figure 1 algorithm. It needs both n and T
// as inputs, uses n/2 channels, and runs identical iterations of
// R = ⌈CoreA·lg T̂⌉ slots with T̂ = max{T, n}. In every slot each node hops
// to a uniformly random channel; with probability CoreP it listens, with
// probability CoreP it broadcasts m if informed, and otherwise idles. At
// an iteration end a node halts iff it heard fewer than HaltRatio·R·CoreP
// noisy slots (the paper's R/128).
type MultiCastCore struct {
	params   Params
	n        int
	channels int
	iterLen  int64
	haltMax  float64 // halt iff Nn < haltMax at iteration end
	lnq      float64 // ln(1−CoreP), hoisted out of drawGap
	lnq2     float64 // ln(1−2·CoreP), the informed rate

	// slab batches node allocations: NewNode carves nodes out of
	// n-node chunks instead of allocating each one, so a recycled
	// Executor costs ~1 allocation per trial instead of n. The mutex
	// serialises concurrent trial workers sharing one algorithm value.
	mu   sync.Mutex
	slab []coreNode
}

// NewMultiCastCore builds the algorithm for n nodes and adversary budget
// bound T. n must be a power of two ≥ 2; T must be ≥ 0.
func NewMultiCastCore(params Params, n int, t int64) (*MultiCastCore, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateN(n); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("core: negative adversary budget %d", t)
	}
	tHat := t
	if int64(n) > tHat {
		tHat = int64(n)
	}
	iterLen := ceilPos(params.CoreA * lgf(tHat))
	return &MultiCastCore{
		params:   params,
		n:        n,
		channels: maxInt(n/params.channelDiv(), 1),
		iterLen:  iterLen,
		haltMax:  params.HaltRatio * params.CoreP * float64(iterLen),
		lnq:      math.Log1p(-params.CoreP),
		lnq2:     math.Log1p(-2 * params.CoreP),
	}, nil
}

// lgf returns log₂ v for v ≥ 1 as a float, floored at 1.
func lgf(v int64) float64 {
	l := 0.0
	for x := v; x > 1; x >>= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements protocol.Algorithm.
func (a *MultiCastCore) Name() string { return "MultiCastCore" }

// Channels implements protocol.Algorithm: n/ChannelDiv (paper: n/2) in
// every slot.
func (a *MultiCastCore) Channels(slot int64) int { return a.channels }

// ChannelSpan implements protocol.ChannelSpanner: the count never changes.
func (a *MultiCastCore) ChannelSpan(slot int64) (int, int64) {
	return a.channels, math.MaxInt64
}

// IterationLength returns R, the slots per iteration.
func (a *MultiCastCore) IterationLength() int64 { return a.iterLen }

// NewNode implements protocol.Algorithm. Per the protocol contract, the
// node copies *r; the pointer is not retained.
func (a *MultiCastCore) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	a.mu.Lock()
	if len(a.slab) == cap(a.slab) {
		a.slab = make([]coreNode, 0, maxInt(a.n, 1))
	}
	a.slab = append(a.slab, coreNode{alg: a, r: *r})
	n := &a.slab[len(a.slab)-1]
	a.mu.Unlock()
	if source {
		n.status = protocol.Informed
		n.knowsM = true
	}
	n.drawGap()
	return n
}

// coreNode is one node's MultiCastCore state machine.
type coreNode struct {
	alg    *MultiCastCore
	r      rng.Source
	status protocol.Status
	knowsM bool // whether the node has the message (≠ status: a node
	// can halt uninformed, and Informed() must keep reporting the truth)
	noisy   int64 // Nn: noisy slots this iteration
	slotIdx int64 // slot index within the current iteration

	// nextIdx is the iteration index of the node's next action slot,
	// pre-drawn as one geometric gap; iterLen is the sentinel for "idle
	// until the iteration boundary".
	nextIdx int64
}

// drawGap draws the geometric gap to the node's next action slot. A slot
// is an action slot with probability CoreP (listen) plus, for informed
// nodes, CoreP again (broadcast), so the wait is Geometric in that rate:
// one closed-form draw replaces the per-slot coins. The status cannot
// change before the action slot (Deliver requires listening), so the rate
// is a gap invariant. Gaps truncate at the iteration boundary — exact by
// memorylessness — where the boundary bookkeeping redraws.
func (nd *coreNode) drawGap() {
	lnq := nd.alg.lnq
	if nd.status == protocol.Informed {
		lnq = nd.alg.lnq2
	}
	nd.nextIdx = nd.slotIdx + nd.r.GeometricCappedLn(lnq, nd.alg.iterLen-nd.slotIdx)
}

func (nd *coreNode) Status() protocol.Status { return nd.status }

func (nd *coreNode) Informed() bool { return nd.knowsM }

// Step returns the slot's action: Idle — without consuming randomness —
// until the pre-drawn action slot, where the action kind (for informed
// nodes, listen and broadcast are equally likely given that the node
// acts) and the channel are drawn.
func (nd *coreNode) Step(slot int64) protocol.Action {
	if nd.slotIdx != nd.nextIdx || nd.status == protocol.Halted {
		return protocol.Action{Kind: protocol.Idle}
	}
	if nd.status == protocol.Informed && nd.r.Bernoulli(0.5) {
		return protocol.Action{Kind: protocol.Broadcast, Channel: nd.r.Intn(nd.alg.channels), Payload: radio.MsgM}
	}
	return protocol.Action{Kind: protocol.Listen, Channel: nd.r.Intn(nd.alg.channels)}
}

func (nd *coreNode) Deliver(fb radio.Feedback) {
	switch fb.Status {
	case radio.Noise:
		nd.noisy++
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
	}
}

func (nd *coreNode) EndSlot(slot int64) {
	if nd.status == protocol.Halted {
		return
	}
	acted := nd.slotIdx == nd.nextIdx
	nd.slotIdx++
	if nd.slotIdx >= nd.alg.iterLen {
		// Iteration boundary: halt iff few noisy slots were observed.
		if float64(nd.noisy) < nd.alg.haltMax {
			nd.status = protocol.Halted
			return
		}
		nd.slotIdx = 0
		nd.noisy = 0
		nd.drawGap()
		return
	}
	if acted {
		nd.drawGap()
	}
}

// NextActive implements protocol.Sleeper. The next action slot is already
// pre-drawn, so fast-forwarding is pure cursor arithmetic: jump to the
// action slot, or — when the rest of the iteration is idle — to the
// boundary slot if it would halt (the engine must observe the
// transition), or across the boundary with the same bookkeeping and gap
// redraw the dense EndSlot performs. Status and noisy are frozen while
// idle, so the halt decision is already determined; the loop runs at
// most twice (a fresh iteration's noisy = 0 is always below haltMax).
func (nd *coreNode) NextActive(now int64) int64 {
	for {
		if nd.nextIdx < nd.alg.iterLen {
			now += nd.nextIdx - nd.slotIdx
			nd.slotIdx = nd.nextIdx
			return now
		}
		if float64(nd.noisy) < nd.alg.haltMax {
			now += nd.alg.iterLen - 1 - nd.slotIdx
			nd.slotIdx = nd.alg.iterLen - 1
			return now
		}
		// Absorb the non-halting boundary, exactly as EndSlot would.
		now += nd.alg.iterLen - nd.slotIdx
		nd.slotIdx = 0
		nd.noisy = 0
		nd.drawGap()
	}
}
