package core

import (
	"fmt"
	"math"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// MultiCastCore is the paper's Figure 1 algorithm. It needs both n and T
// as inputs, uses n/2 channels, and runs identical iterations of
// R = ⌈CoreA·lg T̂⌉ slots with T̂ = max{T, n}. In every slot each node hops
// to a uniformly random channel; with probability CoreP it listens, with
// probability CoreP it broadcasts m if informed, and otherwise idles. At
// an iteration end a node halts iff it heard fewer than HaltRatio·R·CoreP
// noisy slots (the paper's R/128).
type MultiCastCore struct {
	params   Params
	n        int
	channels int
	iterLen  int64
	haltMax  float64 // halt iff Nn < haltMax at iteration end
}

// NewMultiCastCore builds the algorithm for n nodes and adversary budget
// bound T. n must be a power of two ≥ 2; T must be ≥ 0.
func NewMultiCastCore(params Params, n int, t int64) (*MultiCastCore, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateN(n); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("core: negative adversary budget %d", t)
	}
	tHat := t
	if int64(n) > tHat {
		tHat = int64(n)
	}
	iterLen := ceilPos(params.CoreA * lgf(tHat))
	return &MultiCastCore{
		params:   params,
		n:        n,
		channels: maxInt(n/params.channelDiv(), 1),
		iterLen:  iterLen,
		haltMax:  params.HaltRatio * params.CoreP * float64(iterLen),
	}, nil
}

// lgf returns log₂ v for v ≥ 1 as a float, floored at 1.
func lgf(v int64) float64 {
	l := 0.0
	for x := v; x > 1; x >>= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements protocol.Algorithm.
func (a *MultiCastCore) Name() string { return "MultiCastCore" }

// Channels implements protocol.Algorithm: n/ChannelDiv (paper: n/2) in
// every slot.
func (a *MultiCastCore) Channels(slot int64) int { return a.channels }

// ChannelSpan implements protocol.ChannelSpanner: the count never changes.
func (a *MultiCastCore) ChannelSpan(slot int64) (int, int64) {
	return a.channels, math.MaxInt64
}

// IterationLength returns R, the slots per iteration.
func (a *MultiCastCore) IterationLength() int64 { return a.iterLen }

// NewNode implements protocol.Algorithm.
func (a *MultiCastCore) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	n := &coreNode{alg: a, r: r}
	if source {
		n.status = protocol.Informed
		n.knowsM = true
	}
	return n
}

// coreNode is one node's MultiCastCore state machine.
type coreNode struct {
	alg    *MultiCastCore
	r      *rng.Source
	status protocol.Status
	knowsM bool // whether the node has the message (≠ status: a node
	// can halt uninformed, and Informed() must keep reporting the truth)
	noisy   int64 // Nn: noisy slots this iteration
	slotIdx int64 // slot index within the current iteration

	// pending caches the action NextActive pre-drew for its wake slot;
	// Step returns it without touching the random stream again.
	pending    protocol.Action
	hasPending bool
}

func (nd *coreNode) Status() protocol.Status { return nd.status }

func (nd *coreNode) Informed() bool { return nd.knowsM }

// Step draws the slot's action. The pseudocode draws the channel and the
// coin independently and unconditionally; drawing the channel lazily (only
// when the coin selects listen or broadcast) yields the same distribution.
func (nd *coreNode) Step(slot int64) protocol.Action {
	if nd.hasPending {
		nd.hasPending = false
		return nd.pending
	}
	p := nd.alg.params.CoreP
	u := nd.r.Float64()
	switch {
	case u < p:
		return protocol.Action{Kind: protocol.Listen, Channel: nd.r.Intn(nd.alg.channels)}
	case u < 2*p && nd.status == protocol.Informed:
		return protocol.Action{Kind: protocol.Broadcast, Channel: nd.r.Intn(nd.alg.channels), Payload: radio.MsgM}
	default:
		return protocol.Action{Kind: protocol.Idle}
	}
}

func (nd *coreNode) Deliver(fb radio.Feedback) {
	switch fb.Status {
	case radio.Noise:
		nd.noisy++
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
	}
}

func (nd *coreNode) EndSlot(slot int64) {
	nd.slotIdx++
	if nd.slotIdx < nd.alg.iterLen {
		return
	}
	// Iteration boundary: halt iff few noisy slots were observed.
	if float64(nd.noisy) < nd.alg.haltMax {
		nd.status = protocol.Halted
	}
	nd.slotIdx = 0
	nd.noisy = 0
}

// NextActive implements protocol.Sleeper: replay the per-slot coin flips
// in a tight loop, absorbing idle slots (including non-halting iteration
// boundaries) until one selects an action or an iteration boundary would
// halt. Draws match the dense per-slot path bit for bit. Status and noisy
// are frozen while idle, so the broadcast eligibility and the boundary
// halt decision are loop invariants; the mutable cursors live in locals
// to keep the per-absorbed-slot cost close to the raw RNG draw.
func (nd *coreNode) NextActive(now int64) int64 {
	if nd.hasPending {
		return now
	}
	var (
		r         = nd.r
		p         = nd.alg.params.CoreP
		iterLen   = nd.alg.iterLen
		informed  = nd.status == protocol.Informed
		haltAtEnd = float64(nd.noisy) < nd.alg.haltMax
		slotIdx   = nd.slotIdx
	)
	for {
		u := r.Float64()
		if u < p || (u < 2*p && informed) {
			nd.slotIdx = slotIdx
			if u < p {
				nd.pending = protocol.Action{Kind: protocol.Listen, Channel: r.Intn(nd.alg.channels)}
			} else {
				nd.pending = protocol.Action{Kind: protocol.Broadcast, Channel: r.Intn(nd.alg.channels), Payload: radio.MsgM}
			}
			nd.hasPending = true
			return now
		}
		// Idle slot. If its iteration boundary would halt, the engine
		// must run the slot to observe the transition.
		if slotIdx+1 >= iterLen {
			if haltAtEnd {
				nd.slotIdx = slotIdx
				nd.pending = protocol.Action{Kind: protocol.Idle}
				nd.hasPending = true
				return now
			}
			// Non-halting boundary: the new iteration starts with
			// noisy = 0, which is always below the halt threshold.
			slotIdx = -1
			nd.noisy = 0
			haltAtEnd = true
		}
		slotIdx++
		now++
	}
}
