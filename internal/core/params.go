// Package core implements the paper's algorithms: MultiCastCore (Figure 1),
// MultiCast (Figure 2), MultiCastAdv (Figure 4), and their limited-channel
// variants MultiCast(C) (Figure 5) and MultiCastAdv(C) (Figure 6).
//
// Every structural element of the pseudocode is kept literally: the n/2
// channel choice, the 4^i iteration growth and 2^{-i} probability decay of
// MultiCast, the epoch/phase lattice, the 2^{2α(i−j)} phase lengths and
// 2^{-α(i−j)}/2 probabilities of MultiCastAdv, the two-step phases, the
// beacon ±, the four counters, and the two-stage helper→halt termination.
// The *constants* (a, b, 1/64, the i³ factor, lg²n factors, threshold
// ratios) are fields of Params: the paper picks them "for the ease of
// analysis" (footnote 4) with margins that would cost >10¹⁰ slots to
// simulate verbatim, so the Sim preset shrinks constant and polylog factors
// while preserving every asymptotic shape. The Paper preset keeps the
// literal pseudocode values for conformance tests.
package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Params collects the tunable constants of all five algorithms. The zero
// value is invalid; start from Sim() or Paper() and override fields.
type Params struct {
	// CoreP is MultiCastCore's listen/broadcast probability.
	// Paper: 1/64 (coin ← rnd(1,64)).
	CoreP float64
	// CoreA scales MultiCastCore's iteration length R = ⌈CoreA·lg T̂⌉.
	// Paper: "a sufficiently large constant".
	CoreA float64

	// A scales MultiCast's iteration length Rᵢ = ⌈A·i·4ⁱ·lgᴸnⁿ⌉.
	// Paper: "a sufficiently large constant".
	A float64
	// StartIter is MultiCast's first iteration index. Paper: 6 (so that
	// pᵢ = 2⁻ⁱ ≤ 1/64 from the start).
	StartIter int
	// LogPow is the exponent L on the lg n factor of Rᵢ. Paper: 2.
	LogPow int

	// HaltRatio: MultiCastCore and MultiCast halt at an iteration end iff
	// Nn < HaltRatio·R·p. Paper: 1/2 (Figure 1's R/128 = R·p/2 with
	// p = 1/64; Figure 2's Rᵢ/2^{i+1} = Rᵢpᵢ/2).
	HaltRatio float64

	// Alpha is MultiCastAdv's tunable constant, 0 < α < 1/4.
	Alpha float64
	// B scales MultiCastAdv's step length R(i,j) = ⌈B·2^{2α(i−j)}·i^IExp⌉.
	// Paper: "b is some sufficiently large constant".
	B float64
	// IExp is the exponent on i in R(i,j). Paper: 3.
	IExp int
	// HelperNm: helper requires Nm ≥ HelperNm·R·p². Paper: 1.5.
	HelperNm float64
	// HelperNs: helper requires Ns ≥ HelperNs·R·p. Paper: 0.9.
	HelperNs float64
	// HelperNmPrime: helper requires N'm ≤ HelperNmPrime·R·p². Paper: 2.2.
	HelperNmPrime float64
	// HaltNoise: a helper halts iff Nn ≤ HaltNoise·R·p in an eligible
	// phase. Paper: 1/3000.
	HaltNoise float64
	// HelperGap is the minimum number of epochs between becoming helper
	// and considering termination (i − iˆ ≥ HelperGap). Paper: 2/α.
	// Zero means "use 2/α".
	HelperGap int

	// ChannelDiv sets the channel count of MultiCastCore and MultiCast to
	// n/ChannelDiv. The paper fixes it to 2 (§4 argues n/2 balances
	// parallelism against meeting probability); other values exist only
	// for the ablation benchmarks. Zero means 2.
	ChannelDiv int
}

// Paper returns the literal pseudocode constants. The paper leaves a and b
// as "sufficiently large"; Paper uses 1 for both so that iteration lengths
// match the pseudocode's structure exactly — conformance tests check slot
// arithmetic, not w.h.p. margins, against this preset.
func Paper(alpha float64) Params {
	return Params{
		CoreP:         1.0 / 64,
		CoreA:         1,
		A:             1,
		StartIter:     6,
		LogPow:        2,
		HaltRatio:     0.5,
		Alpha:         alpha,
		B:             1,
		IExp:          3,
		HelperNm:      1.5,
		HelperNs:      0.9,
		HelperNmPrime: 2.2,
		HaltNoise:     1.0 / 3000,
		HelperGap:     0, // 2/α
	}
}

// Sim returns constants tuned so that laptop-scale executions preserve the
// paper's asymptotic shapes:
//
//   - CoreP = 1/4 and CoreA = 40: epidemic broadcast on n/2 channels still
//     doubles the informed set per O(1) slots and completes an iteration of
//     ⌈40·lg T̂⌉ slots, keeping Theorem 4.4's Θ(T/n + lg T̂) shape.
//   - StartIter = 3 (p₃ = 1/8) and LogPow = 1: Rᵢ = ⌈A·i·4ⁱ·lg n⌉ keeps the
//     4ⁱ/2⁻ⁱ skeleton that yields Theorem 5.4's √(T/n) cost; shrinking the
//     polylog factor only rescales the Õ(·).
//   - IExp = 1 and B = 20: the helper checks compare counters against
//     multiples of R(i,j)·p(i,j)² = B·i/4, so B directly controls the
//     Chernoff margins of Lemmas 6.1–6.3. With B = 20 the counter means
//     the checks must separate — E[Nm] ≈ 2e^{−2p}·Rp² in the good phase
//     j = lg n − 1, ≤ e^{−p}·Rp² at j = lg n, and E[N'm] ≈ 4e^{−4p}·Rp²
//     at j = lg n − 2 — sit ≥ 3 standard deviations from the thresholds
//     once p(i,j) has decayed below ~0.1, keeping false helper phases
//     rare at simulation scale.
//   - HelperNm = 1.4 splits the j = lg n − 1 mean (→2Rp²) from the
//     j = lg n mean (≤ Rp²); HelperNs = 0.75 and HelperNmPrime = 2.2
//     play the same roles as the paper's 0.9 / 2.2 with margins matched
//     to B = 20.
//   - HelperGap = 6 and HaltNoise = 1/16: after six more epochs
//     p(i,jˆ) has decayed by 2^{−6α} ≈ 0.44, covering the straggler spread
//     of helper transitions across nodes and pushing residual collision
//     noise (≈2p² per listen) far below 1/32, while a blocking adversary
//     must still induce a ≥1/16 noise fraction — the same separation the
//     paper gets from 2/α epochs and 1/3000.
func Sim() Params {
	return Params{
		CoreP:         0.25,
		CoreA:         40,
		A:             1,
		StartIter:     3,
		LogPow:        1,
		HaltRatio:     0.5,
		Alpha:         0.20,
		B:             20,
		IExp:          1,
		HelperNm:      1.4,
		HelperNs:      0.75,
		HelperNmPrime: 2.2,
		HaltNoise:     1.0 / 16,
		HelperGap:     6,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case !(p.CoreP > 0 && p.CoreP <= 0.5):
		return fmt.Errorf("core: CoreP = %v out of (0, 0.5]", p.CoreP)
	case p.CoreA <= 0:
		return fmt.Errorf("core: CoreA = %v must be positive", p.CoreA)
	case p.A <= 0:
		return fmt.Errorf("core: A = %v must be positive", p.A)
	case p.StartIter < 1 || p.StartIter > 20:
		return fmt.Errorf("core: StartIter = %d out of [1, 20]", p.StartIter)
	case p.LogPow < 0 || p.LogPow > 3:
		return fmt.Errorf("core: LogPow = %d out of [0, 3]", p.LogPow)
	case !(p.HaltRatio > 0 && p.HaltRatio < 1):
		return fmt.Errorf("core: HaltRatio = %v out of (0, 1)", p.HaltRatio)
	case !(p.Alpha > 0 && p.Alpha < 0.25):
		return fmt.Errorf("core: Alpha = %v out of (0, 1/4)", p.Alpha)
	case p.B <= 0:
		return fmt.Errorf("core: B = %v must be positive", p.B)
	case p.IExp < 0 || p.IExp > 4:
		return fmt.Errorf("core: IExp = %d out of [0, 4]", p.IExp)
	case p.HelperNm <= 0 || p.HelperNs <= 0 || p.HelperNmPrime <= 0:
		return fmt.Errorf("core: helper thresholds must be positive")
	case !(p.HaltNoise > 0 && p.HaltNoise < 1):
		return fmt.Errorf("core: HaltNoise = %v out of (0, 1)", p.HaltNoise)
	case p.HelperGap < 0:
		return fmt.Errorf("core: HelperGap = %d must be ≥ 0", p.HelperGap)
	case p.ChannelDiv < 0:
		return fmt.Errorf("core: ChannelDiv = %d must be ≥ 0", p.ChannelDiv)
	}
	return nil
}

// channelDiv returns the effective channel divisor (paper default 2).
func (p Params) channelDiv() int {
	if p.ChannelDiv > 0 {
		return p.ChannelDiv
	}
	return 2
}

// helperGap returns the epoch gap between helper and first halt check:
// the explicit override, or the paper's ⌈2/α⌉.
func (p Params) helperGap() int {
	if p.HelperGap > 0 {
		return p.HelperGap
	}
	return int(math.Ceil(2 / p.Alpha))
}

// ValidateN checks the network-size assumption shared by all algorithms:
// the paper assumes n is a power of two, n ≥ 2.
func ValidateN(n int) error {
	if n < 2 || n&(n-1) != 0 {
		return fmt.Errorf("core: n = %d must be a power of two ≥ 2", n)
	}
	return nil
}

// lg returns ⌊log₂ n⌋ for n ≥ 1.
func lg(n int) int {
	if n < 1 {
		panic("core: lg of non-positive value")
	}
	return bits.Len(uint(n)) - 1
}

// lgPow returns (lg n)^pow as a float, with lg n floored at 1 so that tiny
// networks still get positive iteration lengths.
func lgPow(n, pow int) float64 {
	l := lg(n)
	if l < 1 {
		l = 1
	}
	return math.Pow(float64(l), float64(pow))
}

// ceilPos rounds x up to an int64, with a floor of 1.
func ceilPos(x float64) int64 {
	v := int64(math.Ceil(x))
	if v < 1 {
		return 1
	}
	return v
}
