package core

import (
	"math"
	"testing"
	"testing/quick"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

func TestMultiCastConstructor(t *testing.T) {
	alg, err := NewMultiCast(Sim(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "MultiCast" {
		t.Errorf("Name = %q", alg.Name())
	}
	if alg.Channels(0) != 256 {
		t.Errorf("Channels = %d, want 256", alg.Channels(0))
	}
	if _, err := NewMultiCast(Sim(), 48); err == nil {
		t.Error("accepted non-power-of-two n")
	}
}

func TestMultiCastPaperIterationArithmetic(t *testing.T) {
	// Figure 2: Rᵢ = a·i·4ⁱ·lg²n, pᵢ = 2⁻ⁱ, starting at i = 6.
	alg, err := NewMultiCast(Paper(0.1), 256)
	if err != nil {
		t.Fatal(err)
	}
	// R₆ = 1·6·4096·64 = 1,572,864.
	if got := alg.IterationLength(6); got != 1_572_864 {
		t.Errorf("R₆ = %d, want 1572864", got)
	}
	if got := alg.ListenProb(6); got != 1.0/64 {
		t.Errorf("p₆ = %v, want 1/64", got)
	}
	if got := alg.ListenProb(10); got != 1.0/1024 {
		t.Errorf("p₁₀ = %v, want 2⁻¹⁰", got)
	}
}

func TestMultiCastIterationGrowth(t *testing.T) {
	alg, _ := NewMultiCast(Sim(), 256)
	for i := 3; i < 12; i++ {
		ratio := float64(alg.IterationLength(i+1)) / float64(alg.IterationLength(i))
		// Rᵢ₊₁/Rᵢ = 4·(i+1)/i ∈ (4, 5.34].
		if ratio < 4 || ratio > 5.4 {
			t.Errorf("R_%d/R_%d = %v, want ≈ 4·(i+1)/i", i+1, i, ratio)
		}
		if alg.ListenProb(i+1) != alg.ListenProb(i)/2 {
			t.Errorf("p_%d != p_%d/2", i+1, i)
		}
	}
}

func TestMultiCastIterationCapAvoidsOverflow(t *testing.T) {
	alg, _ := NewMultiCast(Sim(), 256)
	l1 := alg.IterationLength(maxIter)
	l2 := alg.IterationLength(maxIter + 10)
	if l1 != l2 {
		t.Errorf("iteration cap not applied: %d vs %d", l1, l2)
	}
	if l1 <= 0 {
		t.Errorf("capped iteration length overflowed: %d", l1)
	}
	if alg.ListenProb(maxIter+10) != alg.ListenProb(maxIter) {
		t.Error("listen probability not capped alongside length")
	}
}

func TestMultiCastNodeStartsAtStartIter(t *testing.T) {
	p := Sim()
	alg, _ := NewMultiCast(p, 64)
	nd := alg.NewNode(0, true, rng.New(1)).(*mcastNode)
	if nd.Iteration() != p.StartIter {
		t.Errorf("start iteration = %d, want %d", nd.Iteration(), p.StartIter)
	}
}

func TestMultiCastAdvancesIterationWhenNoisy(t *testing.T) {
	alg, _ := NewMultiCast(Sim(), 64)
	nd := alg.NewNode(0, true, rng.New(1)).(*mcastNode)
	i0 := nd.Iteration()
	r := alg.IterationLength(i0)
	for s := int64(0); s < r; s++ {
		nd.Step(s)
		nd.Deliver(radio.Feedback{Status: radio.Noise})
		nd.EndSlot(s)
	}
	if nd.Status() == protocol.Halted {
		t.Fatal("halted despite constant noise")
	}
	if nd.Iteration() != i0+1 {
		t.Fatalf("iteration = %d after noisy iteration, want %d", nd.Iteration(), i0+1)
	}
}

func TestMultiCastHaltsWhenQuiet(t *testing.T) {
	alg, _ := NewMultiCast(Sim(), 64)
	nd := alg.NewNode(0, true, rng.New(1))
	r := alg.IterationLength(Sim().StartIter)
	for s := int64(0); s < r; s++ {
		nd.Step(s)
		nd.EndSlot(s)
	}
	if nd.Status() != protocol.Halted {
		t.Fatal("did not halt after quiet first iteration")
	}
}

func TestMultiCastListenRateMatchesIteration(t *testing.T) {
	p := Sim()
	alg, _ := NewMultiCast(p, 64)
	nd := alg.NewNode(0, true, rng.New(42)).(*mcastNode)
	// Track listen rates per iteration while noise keeps the node active;
	// each iteration's rate must match its pᵢ.
	for target := p.StartIter; target <= p.StartIter+2; target++ {
		want := alg.ListenProb(target)
		listens, inIter := 0, 0
		for nd.Iteration() == target {
			s := int64(inIter)
			if nd.Step(s).Kind == protocol.Listen {
				listens++
			}
			nd.Deliver(radio.Feedback{Status: radio.Noise})
			nd.EndSlot(s)
			inIter++
		}
		rate := float64(listens) / float64(inIter)
		// Tolerance scales with the binomial std of the iteration length.
		tol := 5 * math.Sqrt(want/float64(inIter))
		if math.Abs(rate-want) > tol {
			t.Errorf("listen rate in iteration %d = %v over %d slots, want %v ± %v",
				target, rate, inIter, want, tol)
		}
	}
}

// ---------------------------------------------------------------------------
// MultiCast(C)

func TestMultiCastCEffectiveC(t *testing.T) {
	cases := []struct{ n, c, want int }{
		{256, 128, 128}, // C = n/2 exactly
		{256, 200, 128}, // clamped to n/2
		{256, 100, 64},  // rounded down to a power of two
		{256, 1, 1},
		{256, 0, 1},  // floor at 1
		{256, -5, 1}, // floor at 1
		{64, 24, 16},
		{4, 7, 2},
	}
	for _, tc := range cases {
		alg, err := NewMultiCastC(Sim(), tc.n, tc.c)
		if err != nil {
			t.Errorf("NewMultiCastC(%d,%d): %v", tc.n, tc.c, err)
			continue
		}
		if alg.EffectiveC() != tc.want {
			t.Errorf("EffectiveC(n=%d,c=%d) = %d, want %d", tc.n, tc.c, alg.EffectiveC(), tc.want)
		}
		if alg.Channels(12345) != tc.want {
			t.Errorf("Channels ≠ EffectiveC")
		}
		if got := alg.RoundLength(); got != int64(tc.n/2/tc.want) {
			t.Errorf("RoundLength(n=%d,C=%d) = %d, want %d", tc.n, tc.want, got, tc.n/2/tc.want)
		}
	}
}

func TestMultiCastCName(t *testing.T) {
	alg, _ := NewMultiCastC(Sim(), 64, 8)
	if alg.Name() != "MultiCast(C)" {
		t.Errorf("Name = %q", alg.Name())
	}
}

func TestMultiCastCActsOnlyInOwnSubSlot(t *testing.T) {
	// With n = 64, C = 8: rounds of 4 sub-slots; a node acting on virtual
	// channel ch must act exactly in sub-slot ⌊ch/8⌋ on physical ch mod 8.
	alg, _ := NewMultiCastC(Sim(), 64, 8)
	nd := alg.NewNode(0, true, rng.New(9)).(*mcastCNode)
	sub := alg.RoundLength()
	actions := 0
	for s := int64(0); s < 40_000; s++ {
		a := nd.Step(s)
		if a.Kind != protocol.Idle {
			actions++
			if a.Channel < 0 || a.Channel >= 8 {
				t.Fatalf("physical channel %d out of range", a.Channel)
			}
			wantSub := int64(nd.virtual / 8)
			if nd.sub != wantSub {
				t.Fatalf("acted in sub-slot %d, want %d (virtual %d)", nd.sub, wantSub, nd.virtual)
			}
			if a.Channel != nd.virtual%8 {
				t.Fatalf("physical channel %d, want %d", a.Channel, nd.virtual%8)
			}
		}
		nd.Deliver(radio.Feedback{Status: radio.Noise}) // stay active
		nd.EndSlot(s)
	}
	if actions == 0 {
		t.Fatal("node never acted")
	}
	_ = sub
}

func TestMultiCastCAtMostOneActionPerRound(t *testing.T) {
	alg, _ := NewMultiCastC(Sim(), 64, 8)
	nd := alg.NewNode(0, true, rng.New(11)).(*mcastCNode)
	sub := alg.RoundLength()
	for round := 0; round < 5000; round++ {
		acts := 0
		for k := int64(0); k < sub; k++ {
			s := int64(round)*sub + k
			if nd.Step(s).Kind != protocol.Idle {
				acts++
			}
			nd.Deliver(radio.Feedback{Status: radio.Noise})
			nd.EndSlot(s)
		}
		if acts > 1 {
			t.Fatalf("round %d: %d actions, max is 1 (one virtual slot per round)", round, acts)
		}
	}
}

func TestMultiCastCHaltsWhenQuiet(t *testing.T) {
	p := Sim()
	alg, _ := NewMultiCastC(p, 64, 8)
	nd := alg.NewNode(0, true, rng.New(1))
	slots := alg.inner.IterationLength(p.StartIter) * alg.RoundLength()
	for s := int64(0); s < slots; s++ {
		nd.Step(s)
		nd.EndSlot(s)
	}
	if nd.Status() != protocol.Halted {
		t.Fatal("did not halt after quiet first iteration")
	}
}

func TestMultiCastCUninformedNeverBroadcasts(t *testing.T) {
	alg, _ := NewMultiCastC(Sim(), 64, 8)
	nd := alg.NewNode(1, false, rng.New(13))
	for s := int64(0); s < 50_000; s++ {
		if a := nd.Step(s); a.Kind == protocol.Broadcast {
			t.Fatal("uninformed node broadcast")
		}
		nd.Deliver(radio.Feedback{Status: radio.Noise})
		nd.EndSlot(s)
	}
}

// Property: effective C is always a power of two dividing n/2.
func TestQuickMultiCastCDivisibility(t *testing.T) {
	f := func(nExp uint8, c uint16) bool {
		n := 1 << (2 + nExp%9) // 4 … 1024
		alg, err := NewMultiCastC(Sim(), n, int(c))
		if err != nil {
			return false
		}
		eff := alg.EffectiveC()
		if eff < 1 || eff > n/2 {
			return false
		}
		if eff&(eff-1) != 0 {
			return false
		}
		return (n/2)%eff == 0 && alg.RoundLength() == int64(n/2/eff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
