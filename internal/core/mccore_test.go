package core

import (
	"math"
	"testing"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

func TestMultiCastCoreConstructor(t *testing.T) {
	p := Sim()
	alg, err := NewMultiCastCore(p, 256, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "MultiCastCore" {
		t.Errorf("Name = %q", alg.Name())
	}
	if alg.Channels(0) != 128 || alg.Channels(1<<40) != 128 {
		t.Errorf("Channels = %d, want n/2 = 128 in every slot", alg.Channels(0))
	}
}

func TestMultiCastCoreConstructorErrors(t *testing.T) {
	p := Sim()
	if _, err := NewMultiCastCore(p, 100, 0); err == nil {
		t.Error("accepted non-power-of-two n")
	}
	if _, err := NewMultiCastCore(p, 256, -1); err == nil {
		t.Error("accepted negative T")
	}
	bad := p
	bad.CoreP = 0
	if _, err := NewMultiCastCore(bad, 256, 0); err == nil {
		t.Error("accepted invalid params")
	}
}

func TestMultiCastCoreIterationLength(t *testing.T) {
	p := Sim()
	// T̂ = max{T, n}: with T < n the length is driven by n.
	algSmallT, _ := NewMultiCastCore(p, 256, 1)
	algZeroT, _ := NewMultiCastCore(p, 256, 0)
	if algSmallT.IterationLength() != algZeroT.IterationLength() {
		t.Error("T < n must not change T̂")
	}
	wantN := ceilPos(p.CoreA * 8) // lg 256 = 8
	if got := algZeroT.IterationLength(); got != wantN {
		t.Errorf("IterationLength(T=0) = %d, want %d", got, wantN)
	}
	// With T = 2^20 > n the length is driven by T.
	algBigT, _ := NewMultiCastCore(p, 256, 1<<20)
	wantT := ceilPos(p.CoreA * 20)
	if got := algBigT.IterationLength(); got != wantT {
		t.Errorf("IterationLength(T=2^20) = %d, want %d", got, wantT)
	}
}

func TestMultiCastCorePaperIterationArithmetic(t *testing.T) {
	// Figure 1: R = a·lg T̂ with a = 1 in the Paper preset.
	alg, err := NewMultiCastCore(Paper(0.1), 256, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if got := alg.IterationLength(); got != 16 {
		t.Errorf("Paper preset R = %d, want lg 2^16 = 16", got)
	}
}

func TestMultiCastCoreSourceStartsInformed(t *testing.T) {
	alg, _ := NewMultiCastCore(Sim(), 64, 0)
	src := alg.NewNode(0, true, rng.New(1))
	other := alg.NewNode(1, false, rng.New(2))
	if !src.Informed() || src.Status() != protocol.Informed {
		t.Error("source not informed at start")
	}
	if other.Informed() || other.Status() != protocol.Uninformed {
		t.Error("non-source informed at start")
	}
}

func TestMultiCastCoreActionDistribution(t *testing.T) {
	p := Sim()
	alg, _ := NewMultiCastCore(p, 64, 0)
	src := alg.NewNode(0, true, rng.New(7))
	un := alg.NewNode(1, false, rng.New(8))
	const slots = 100_000
	noise := radio.Feedback{Status: radio.Noise}
	var srcListen, srcBcast, unListen, unBcast int
	for s := int64(0); s < slots; s++ {
		switch a := src.Step(s); a.Kind {
		case protocol.Listen:
			srcListen++
		case protocol.Broadcast:
			srcBcast++
			if a.Payload != radio.MsgM {
				t.Fatal("informed node must broadcast m")
			}
		}
		switch un.Step(s).Kind {
		case protocol.Listen:
			unListen++
		case protocol.Broadcast:
			unBcast++
		}
		// Advance the slot cycle; noise keeps the nodes from halting at
		// iteration boundaries without changing action statistics.
		src.Deliver(noise)
		src.EndSlot(s)
		un.Deliver(noise)
		un.EndSlot(s)
	}
	tol := 0.02
	if got := float64(srcListen) / slots; math.Abs(got-p.CoreP) > tol {
		t.Errorf("informed listen rate %v, want %v", got, p.CoreP)
	}
	if got := float64(srcBcast) / slots; math.Abs(got-p.CoreP) > tol {
		t.Errorf("informed broadcast rate %v, want %v", got, p.CoreP)
	}
	if unBcast != 0 {
		t.Errorf("uninformed node broadcast %d times", unBcast)
	}
}

func TestMultiCastCoreChannelsUniform(t *testing.T) {
	alg, _ := NewMultiCastCore(Sim(), 64, 0)
	nd := alg.NewNode(1, true, rng.New(3))
	noise := radio.Feedback{Status: radio.Noise}
	seen := map[int]bool{}
	for s := int64(0); s < 50_000; s++ {
		a := nd.Step(s)
		nd.Deliver(noise) // keep the node active across iterations
		nd.EndSlot(s)
		if a.Kind == protocol.Idle {
			continue
		}
		if a.Channel < 0 || a.Channel >= 32 {
			t.Fatalf("channel %d out of [0,32)", a.Channel)
		}
		seen[a.Channel] = true
	}
	if len(seen) != 32 {
		t.Errorf("only %d of 32 channels used in 50k slots", len(seen))
	}
}

func TestMultiCastCoreInformedOnMessage(t *testing.T) {
	alg, _ := NewMultiCastCore(Sim(), 64, 0)
	nd := alg.NewNode(1, false, rng.New(1))
	nd.Deliver(radio.Feedback{Status: radio.Silence})
	nd.Deliver(radio.Feedback{Status: radio.Noise})
	if nd.Informed() {
		t.Fatal("informed by silence/noise")
	}
	nd.Deliver(radio.Feedback{Status: radio.Message, Payload: radio.MsgM})
	if !nd.Informed() {
		t.Fatal("not informed by message m")
	}
}

func TestMultiCastCoreHaltsWhenQuiet(t *testing.T) {
	alg, _ := NewMultiCastCore(Sim(), 64, 0)
	nd := alg.NewNode(0, true, rng.New(1))
	r := alg.IterationLength()
	for s := int64(0); s < r; s++ {
		nd.Step(s)
		nd.EndSlot(s) // no noise delivered at all
	}
	if nd.Status() != protocol.Halted {
		t.Fatalf("node did not halt after a quiet iteration (status %v)", nd.Status())
	}
}

func TestMultiCastCoreKeepsGoingWhenNoisy(t *testing.T) {
	alg, _ := NewMultiCastCore(Sim(), 64, 0)
	nd := alg.NewNode(0, true, rng.New(1))
	r := alg.IterationLength()
	// Deliver noise every slot: far above the halting threshold.
	for s := int64(0); s < 3*r; s++ {
		nd.Step(s)
		nd.Deliver(radio.Feedback{Status: radio.Noise})
		nd.EndSlot(s)
	}
	if nd.Status() == protocol.Halted {
		t.Fatal("node halted despite constant noise")
	}
}

func TestMultiCastCoreHaltThresholdBoundary(t *testing.T) {
	// Exactly at the threshold the pseudocode requires Nn < R/128
	// (strict), i.e. Nn == threshold must NOT halt.
	p := Sim()
	alg, _ := NewMultiCastCore(p, 64, 0)
	r := alg.IterationLength()
	thresh := int64(p.HaltRatio * p.CoreP * float64(r)) // ⌊·⌋

	run := func(noisy int64) protocol.Status {
		nd := alg.NewNode(0, true, rng.New(5))
		for s := int64(0); s < r; s++ {
			nd.Step(s)
			if s < noisy {
				nd.Deliver(radio.Feedback{Status: radio.Noise})
			}
			nd.EndSlot(s)
		}
		return nd.Status()
	}
	if run(thresh-1) != protocol.Halted {
		t.Errorf("Nn=%d (below threshold) did not halt", thresh-1)
	}
	if float64(thresh) >= p.HaltRatio*p.CoreP*float64(r) {
		if run(thresh) == protocol.Halted {
			t.Errorf("Nn=%d (at/above threshold) halted", thresh)
		}
	}
}

func TestMultiCastCoreCountersResetEachIteration(t *testing.T) {
	alg, _ := NewMultiCastCore(Sim(), 64, 0)
	nd := alg.NewNode(0, true, rng.New(1))
	r := alg.IterationLength()
	// Iteration 1: noisy → no halt.
	for s := int64(0); s < r; s++ {
		nd.Step(s)
		nd.Deliver(radio.Feedback{Status: radio.Noise})
		nd.EndSlot(s)
	}
	if nd.Status() == protocol.Halted {
		t.Fatal("halted after noisy iteration")
	}
	// Iteration 2: quiet → must halt, proving Nn was reset.
	for s := r; s < 2*r; s++ {
		nd.Step(s)
		nd.EndSlot(s)
	}
	if nd.Status() != protocol.Halted {
		t.Fatal("Nn not reset between iterations")
	}
}
