package core

import (
	"testing"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// benchNode measures one node's Step+EndSlot cost (the engine hot path).
func benchNode(b *testing.B, nd protocol.Node) {
	b.Helper()
	fb := radio.Feedback{Status: radio.Noise}
	for i := 0; i < b.N; i++ {
		slot := int64(i)
		if a := nd.Step(slot); a.Kind == protocol.Listen {
			nd.Deliver(fb) // noise keeps counters busy and nodes active
		}
		nd.EndSlot(slot)
		if nd.Status() == protocol.Halted {
			b.Fatal("node halted mid-benchmark despite constant noise")
		}
	}
}

func BenchmarkNodeStepMultiCastCore(b *testing.B) {
	alg, err := NewMultiCastCore(Sim(), 256, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	benchNode(b, alg.NewNode(0, true, rng.New(1)))
}

func BenchmarkNodeStepMultiCast(b *testing.B) {
	alg, err := NewMultiCast(Sim(), 256)
	if err != nil {
		b.Fatal(err)
	}
	benchNode(b, alg.NewNode(0, true, rng.New(1)))
}

func BenchmarkNodeStepMultiCastC(b *testing.B) {
	alg, err := NewMultiCastC(Sim(), 256, 16)
	if err != nil {
		b.Fatal(err)
	}
	benchNode(b, alg.NewNode(0, true, rng.New(1)))
}

func BenchmarkNodeStepMultiCastAdv(b *testing.B) {
	alg, err := NewMultiCastAdv(Sim())
	if err != nil {
		b.Fatal(err)
	}
	benchNode(b, alg.NewNode(0, true, rng.New(1)))
}

func BenchmarkAdvScheduleAt(b *testing.B) {
	s := NewAdvSchedule(Sim())
	end := s.Window(400).End
	var sink StepWindow
	for i := 0; i < b.N; i++ {
		sink = s.At(int64(i) % end)
	}
	_ = sink
}
