package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleWindowSequence(t *testing.T) {
	s := NewAdvSchedule(Sim())
	// Epoch 1 has one phase (j=0) → windows 0,1 are its steps 1,2;
	// epoch 2 has phases j=0,1 → windows 2..5; epoch 3 → 6..11; etc.
	wantPhases := []struct{ i, j, step int }{
		{1, 0, 1}, {1, 0, 2},
		{2, 0, 1}, {2, 0, 2}, {2, 1, 1}, {2, 1, 2},
		{3, 0, 1}, {3, 0, 2}, {3, 1, 1}, {3, 1, 2}, {3, 2, 1}, {3, 2, 2},
		{4, 0, 1},
	}
	for k, want := range wantPhases {
		w := s.Window(k)
		if w.I != want.i || w.J != want.j || w.Step != want.step {
			t.Fatalf("window %d = (%d,%d,step%d), want (%d,%d,step%d)",
				k, w.I, w.J, w.Step, want.i, want.j, want.step)
		}
	}
}

func TestScheduleContiguousCoverage(t *testing.T) {
	s := NewAdvSchedule(Sim())
	var at int64
	for k := 0; k < 200; k++ {
		w := s.Window(k)
		if w.Start != at {
			t.Fatalf("window %d starts at %d, want %d (gap/overlap)", k, w.Start, at)
		}
		if w.End != w.Start+w.Len || w.Len < 1 {
			t.Fatalf("window %d has inconsistent extent %+v", k, w)
		}
		at = w.End
	}
}

func TestScheduleStepLenFormula(t *testing.T) {
	p := Paper(0.2)
	s := NewAdvSchedule(p)
	// R(i,j) = ⌈b·2^{2α(i−j)}·i³⌉ with b = 1.
	cases := []struct {
		i, j int
		want int64
	}{
		{1, 0, int64(math.Ceil(math.Exp2(0.4) * 1))},
		{5, 2, int64(math.Ceil(math.Exp2(0.4*3) * 125))},
		{10, 0, int64(math.Ceil(math.Exp2(0.4*10) * 1000))},
	}
	for _, tc := range cases {
		if got := s.StepLen(tc.i, tc.j); got != tc.want {
			t.Errorf("StepLen(%d,%d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestScheduleProbFormula(t *testing.T) {
	s := NewAdvSchedule(Paper(0.2))
	// p(i,j) = 2^{−α(i−j)}/2.
	if got := s.Prob(5, 5); got != 0.5 {
		t.Errorf("Prob(i=j) = %v, want 1/2", got)
	}
	want := math.Exp2(-0.2*4) / 2
	if got := s.Prob(9, 5); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob(9,5) = %v, want %v", got, want)
	}
	// p decays by 2^{−α} per epoch at fixed j.
	r := s.Prob(10, 5) / s.Prob(11, 5)
	if math.Abs(r-math.Exp2(0.2)) > 1e-12 {
		t.Errorf("per-epoch decay = %v, want 2^α", r)
	}
}

func TestScheduleChannels(t *testing.T) {
	s := NewAdvSchedule(Sim())
	for j, want := range []int{1, 2, 4, 8, 16} {
		if got := s.ChannelsFor(j); got != want {
			t.Errorf("ChannelsFor(%d) = %d, want %d", j, got, want)
		}
	}
	if got := s.ChannelsFor(40); got != DefaultChannelCap {
		t.Errorf("ChannelsFor(40) = %d, want cap %d", got, DefaultChannelCap)
	}
	if got := s.ChannelsFor(16); got != DefaultChannelCap {
		t.Errorf("ChannelsFor(16) = %d, want cap %d", got, DefaultChannelCap)
	}
}

func TestScheduleCutOff(t *testing.T) {
	// MultiCastAdv(C) with C = 8: phases stop at j = lg 8 = 3.
	s := NewAdvScheduleC(Sim(), 8)
	maxJSeen := 0
	for k := 0; k < 400; k++ {
		w := s.Window(k)
		if w.J > maxJSeen {
			maxJSeen = w.J
		}
		if w.J > 3 {
			t.Fatalf("window %d has phase j=%d beyond cut-off 3", k, w.J)
		}
	}
	if maxJSeen != 3 {
		t.Fatalf("cut-off schedule never reached j=3 (max %d)", maxJSeen)
	}
	// Epochs i ≥ 5 must have exactly 4 phases (j=0..3): windows per epoch = 8.
	w := s.At(s.EpochStart(6))
	if w.I != 6 || w.J != 0 || w.Step != 1 {
		t.Fatalf("EpochStart(6) lands at (%d,%d,step%d)", w.I, w.J, w.Step)
	}
}

func TestScheduleCutOffNonPowerOfTwo(t *testing.T) {
	// C = 100 → ⌊lg 100⌋ = 6.
	s := NewAdvScheduleC(Sim(), 100)
	if s.jCut != 6 {
		t.Errorf("jCut = %d, want 6", s.jCut)
	}
	s = NewAdvScheduleC(Sim(), 1)
	if s.jCut != 0 {
		t.Errorf("jCut(C=1) = %d, want 0", s.jCut)
	}
	s = NewAdvScheduleC(Sim(), 0) // clamped
	if s.jCut != 0 {
		t.Errorf("jCut(C=0) = %d, want 0", s.jCut)
	}
}

func TestScheduleAtMatchesWindows(t *testing.T) {
	s := NewAdvSchedule(Sim())
	probe := NewAdvSchedule(Sim())
	for k := 0; k < 60; k++ {
		w := s.Window(k)
		for _, slot := range []int64{w.Start, w.Start + w.Len/2, w.End - 1} {
			got := probe.At(slot)
			if got != w {
				t.Fatalf("At(%d) = %+v, want window %d %+v", slot, got, k, w)
			}
		}
	}
}

func TestScheduleAtRandomAccess(t *testing.T) {
	// Backwards and jumping access must agree with sequential access.
	seq := NewAdvSchedule(Sim())
	rnd := NewAdvSchedule(Sim())
	last := seq.Window(80).End - 1
	for _, slot := range []int64{last, 0, last / 2, 7, last - 3, 1} {
		w := rnd.At(slot)
		if slot < w.Start || slot >= w.End {
			t.Fatalf("At(%d) returned non-covering window %+v", slot, w)
		}
	}
}

func TestScheduleAtNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(-1) did not panic")
		}
	}()
	NewAdvSchedule(Sim()).At(-1)
}

func TestScheduleEpochStart(t *testing.T) {
	s := NewAdvSchedule(Sim())
	for i := 1; i <= 8; i++ {
		start := s.EpochStart(i)
		w := s.At(start)
		if w.I != i || w.J != 0 || w.Step != 1 {
			t.Errorf("EpochStart(%d) → (%d,%d,step%d)", i, w.I, w.J, w.Step)
		}
		if start > 0 {
			prev := s.At(start - 1)
			if prev.I != i-1 {
				t.Errorf("slot before EpochStart(%d) is in epoch %d", i, prev.I)
			}
		}
	}
}

func TestScheduleActiveFunc(t *testing.T) {
	s := NewAdvSchedule(Sim())
	// Predicate: step two of phases with j == 1.
	active := s.ActiveFunc(func(w StepWindow) bool { return w.J == 1 && w.Step == 2 })
	probe := NewAdvSchedule(Sim())
	end := probe.Window(60).End
	for slot := int64(0); slot < end; slot++ {
		w := probe.At(slot)
		want := w.J == 1 && w.Step == 2
		if active(slot) != want {
			t.Fatalf("ActiveFunc(%d) = %v, want %v (window %+v)", slot, active(slot), want, w)
		}
	}
}

// Property: windows tile the timeline with the formula lengths and the
// right channel counts, for random α and cut-offs.
func TestQuickScheduleConsistent(t *testing.T) {
	f := func(alphaRaw uint8, cutRaw uint8) bool {
		p := Sim()
		p.Alpha = 0.01 + 0.23*float64(alphaRaw)/255
		var s *AdvSchedule
		if cutRaw%2 == 0 {
			s = NewAdvSchedule(p)
		} else {
			s = NewAdvScheduleC(p, 1+int(cutRaw))
		}
		var at int64
		for k := 0; k < 80; k++ {
			w := s.Window(k)
			if w.Start != at || w.Len != s.StepLen(w.I, w.J) {
				return false
			}
			if w.P != s.Prob(w.I, w.J) || w.Channels != s.ChannelsFor(w.J) {
				return false
			}
			if w.J > w.I-1 {
				return false
			}
			at = w.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
