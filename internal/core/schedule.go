package core

import (
	"math"
	"sort"
)

// DefaultChannelCap bounds the number of *simulated* channels. The paper
// assumes unlimited channels; MultiCastAdv's phase j uses 2^j of them and j
// grows without bound in every epoch, which no simulator can allocate.
// Capping at 2^16 preserves the behaviour the analysis relies on — in
// phases with far more channels than nodes, nodes (almost) never meet, so
// Nm stays far below the helper threshold (Lemma 6.2) — as long as the cap
// is ≫ n. See DESIGN.md §4.
const DefaultChannelCap = 1 << 16

// StepWindow describes one step of one (i,j)-phase as a slot interval.
type StepWindow struct {
	Start, End int64 // slot interval [Start, End)
	I, J       int   // epoch and phase numbers
	Step       int   // 1 (message dissemination) or 2 (status adjustment)
	Len        int64 // End - Start = R(i,j)
	Channels   int   // simulated channels in use (min(2^j, cap))
	P          float64
}

// AdvSchedule materialises the epoch/phase/step lattice of MultiCastAdv
// (and, with a cut-off, MultiCastAdv(C)) as a lazily extended sequence of
// StepWindows. It is a pure function of Params and the cut-off: every node,
// the engine, and the (oblivious) adversary can derive the same schedule
// independently. Not safe for concurrent use; create one per consumer.
type AdvSchedule struct {
	params     Params
	jCut       int // inclusive max phase number; <0 means no cut-off
	channelCap int

	windows []StepWindow
	curI    int
	curJ    int
	curStep int
	nextAt  int64
	lastHit int // cursor cache for sequential At calls
}

// NewAdvSchedule returns the schedule for MultiCastAdv. params must be valid.
func NewAdvSchedule(params Params) *AdvSchedule {
	return newAdvSchedule(params, -1)
}

// NewAdvScheduleC returns the schedule for MultiCastAdv(C): epochs skip
// phases with j > ⌊lg c⌋ (Figure 6 line 4).
func NewAdvScheduleC(params Params, c int) *AdvSchedule {
	if c < 1 {
		c = 1
	}
	return newAdvSchedule(params, lg(c))
}

func newAdvSchedule(params Params, jCut int) *AdvSchedule {
	return &AdvSchedule{
		params:     params,
		jCut:       jCut,
		channelCap: DefaultChannelCap,
		curI:       1,
		curJ:       0,
		curStep:    1,
	}
}

// StepLen returns R(i,j) = ⌈B·2^{2α(i−j)}·i^IExp⌉.
func (s *AdvSchedule) StepLen(i, j int) int64 {
	p := s.params
	return ceilPos(p.B * math.Exp2(2*p.Alpha*float64(i-j)) * math.Pow(float64(i), float64(p.IExp)))
}

// Prob returns p(i,j) = 2^{−α(i−j)}/2.
func (s *AdvSchedule) Prob(i, j int) float64 {
	return math.Exp2(-s.params.Alpha*float64(i-j)) / 2
}

// ChannelsFor returns the simulated channel count for phase j.
func (s *AdvSchedule) ChannelsFor(j int) int {
	if j >= 31 || 1<<j > s.channelCap {
		return s.channelCap
	}
	return 1 << j
}

// maxJ returns the largest phase number in epoch i.
func (s *AdvSchedule) maxJ(i int) int {
	m := i - 1
	if s.jCut >= 0 && s.jCut < m {
		m = s.jCut
	}
	return m
}

// extend appends the next step window.
func (s *AdvSchedule) extend() {
	i, j, step := s.curI, s.curJ, s.curStep
	l := s.StepLen(i, j)
	s.windows = append(s.windows, StepWindow{
		Start:    s.nextAt,
		End:      s.nextAt + l,
		I:        i,
		J:        j,
		Step:     step,
		Len:      l,
		Channels: s.ChannelsFor(j),
		P:        s.Prob(i, j),
	})
	s.nextAt += l
	// Advance the (i, j, step) cursor.
	if step == 1 {
		s.curStep = 2
		return
	}
	s.curStep = 1
	if j < s.maxJ(i) {
		s.curJ = j + 1
		return
	}
	s.curI = i + 1
	s.curJ = 0
}

// Window returns the k-th step window (0-based), generating as needed.
func (s *AdvSchedule) Window(k int) StepWindow {
	for len(s.windows) <= k {
		s.extend()
	}
	return s.windows[k]
}

// At returns the window covering the given slot. Sequential access is O(1)
// amortised; random access costs a binary search.
func (s *AdvSchedule) At(slot int64) StepWindow {
	if slot < 0 {
		panic("core: negative slot")
	}
	for s.nextAt <= slot {
		s.extend()
	}
	// Fast path: the cached cursor or its successor covers the slot.
	if s.lastHit < len(s.windows) {
		if w := s.windows[s.lastHit]; w.Start <= slot && slot < w.End {
			return w
		}
		if s.lastHit+1 < len(s.windows) {
			if w := s.windows[s.lastHit+1]; w.Start <= slot && slot < w.End {
				s.lastHit++
				return w
			}
		}
	}
	k := sort.Search(len(s.windows), func(k int) bool { return s.windows[k].End > slot })
	s.lastHit = k
	return s.windows[k]
}

// EpochStart returns the first slot of epoch i ≥ 1.
func (s *AdvSchedule) EpochStart(i int) int64 {
	var at int64
	for e := 1; e < i; e++ {
		for j := 0; j <= s.maxJ(e); j++ {
			at += 2 * s.StepLen(e, j)
		}
	}
	return at
}

// ActiveFunc returns a pure slot predicate that reports whether the slot
// falls in a window matched by match. The returned closure owns a private
// schedule cursor, so it is independent of other consumers and safe to
// hand to an (oblivious) adversary.
func (s *AdvSchedule) ActiveFunc(match func(w StepWindow) bool) func(slot int64) bool {
	priv := newAdvSchedule(s.params, s.jCut)
	return func(slot int64) bool {
		return match(priv.At(slot))
	}
}
