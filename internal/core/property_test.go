package core

// Property-based tests on the node state machines: for arbitrary feedback
// sequences, statuses move monotonically through the protocol order,
// knowledge is never lost, counters respect their containment relations,
// and halted nodes stay halted.

import (
	"testing"
	"testing/quick"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// feedbackFromByte maps a fuzz byte to a feedback value (or nil = no listen).
func feedbackFromByte(b byte) *radio.Feedback {
	switch b % 5 {
	case 0:
		return nil
	case 1:
		return &radio.Feedback{Status: radio.Silence}
	case 2:
		return &radio.Feedback{Status: radio.Noise}
	case 3:
		return &radio.Feedback{Status: radio.Message, Payload: radio.MsgM}
	default:
		return &radio.Feedback{Status: radio.Message, Payload: radio.Beacon}
	}
}

// driveNode feeds a node an arbitrary script and checks universal
// state-machine invariants, returning false on any violation.
func driveNode(nd protocol.Node, script []byte) bool {
	prevStatus := nd.Status()
	prevKnown := nd.Informed()
	for slot, b := range script {
		if nd.Status() == protocol.Halted {
			return true // engine stops stepping halted nodes
		}
		nd.Step(int64(slot))
		if fb := feedbackFromByte(b); fb != nil {
			nd.Deliver(*fb)
		}
		nd.EndSlot(int64(slot))

		status := nd.Status()
		known := nd.Informed()
		// Status is monotone in the protocol order.
		if status < prevStatus {
			return false
		}
		// Knowledge of m is never lost.
		if prevKnown && !known {
			return false
		}
		// Helpers and beyond must know m (they heard it to get there) —
		// except a node can halt uninformed (the improbable Lemma 4.2
		// event), so only Helper implies knowledge.
		if status == protocol.Helper && !known {
			return false
		}
		prevStatus, prevKnown = status, known
	}
	return true
}

func TestQuickNodeStateMachines(t *testing.T) {
	params := Sim()
	makers := map[string]func(seed uint64, source bool) protocol.Node{
		"core": func(seed uint64, source bool) protocol.Node {
			alg, _ := NewMultiCastCore(params, 64, 1000)
			return alg.NewNode(1, source, rng.New(seed))
		},
		"mcast": func(seed uint64, source bool) protocol.Node {
			alg, _ := NewMultiCast(params, 64)
			return alg.NewNode(1, source, rng.New(seed))
		},
		"mcastC": func(seed uint64, source bool) protocol.Node {
			alg, _ := NewMultiCastC(params, 64, 8)
			return alg.NewNode(1, source, rng.New(seed))
		},
		"adv": func(seed uint64, source bool) protocol.Node {
			alg, _ := NewMultiCastAdv(params)
			return alg.NewNode(1, source, rng.New(seed))
		},
		"advC": func(seed uint64, source bool) protocol.Node {
			alg, _ := NewMultiCastAdvC(params, 4)
			return alg.NewNode(1, source, rng.New(seed))
		},
	}
	for name, mk := range makers {
		mk := mk
		f := func(seed uint64, source bool, script []byte) bool {
			return driveNode(mk(seed, source), script)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: MultiCastAdv counters obey Nm ≤ N'm and all counters are
// bounded by the number of delivered feedbacks in the step.
func TestQuickAdvCounterContainment(t *testing.T) {
	params := Sim()
	f := func(seed uint64, script []byte) bool {
		alg, _ := NewMultiCastAdv(params)
		nd := alg.NewNode(1, false, rng.New(seed)).(*advNode)
		delivered := int64(0)
		for slot, b := range script {
			if nd.Status() == protocol.Halted {
				return true
			}
			stepBefore := nd.cur.Step
			nd.Step(int64(slot))
			if fb := feedbackFromByte(b); fb != nil {
				nd.Deliver(*fb)
				if stepBefore == 2 {
					delivered++
				}
			}
			offsetBefore := nd.offset
			nd.EndSlot(int64(slot))
			if nd.cur.Step == 2 && nd.offset > offsetBefore {
				// Mid-step-two: containment must hold.
				if nd.nm > nd.nmPrime {
					return false
				}
				if nd.nm+nd.nn+nd.ns > delivered {
					return false
				}
			}
			if nd.offset == 0 && nd.cur.Step == 2 {
				// Fresh step two: counters reset.
				if nd.nm != 0 || nd.nmPrime != 0 || nd.nn != 0 || nd.ns != 0 {
					return false
				}
				delivered = 0
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a halted node's Status and Informed answers are stable even if
// the engine (incorrectly) kept invoking it — defensive determinism.
func TestQuickHaltedNodesStayHalted(t *testing.T) {
	params := Sim()
	f := func(seed uint64) bool {
		alg, _ := NewMultiCastCore(params, 64, 0)
		nd := alg.NewNode(0, true, rng.New(seed))
		// Quiet iteration → halt.
		r, _ := alg.IterationLength(), 0
		for s := int64(0); s < r; s++ {
			nd.Step(s)
			nd.EndSlot(s)
		}
		if nd.Status() != protocol.Halted {
			return false
		}
		informed := nd.Informed()
		for s := r; s < r+50; s++ {
			nd.Step(s)
			nd.EndSlot(s)
			if nd.Status() != protocol.Halted || nd.Informed() != informed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
