package predict

import (
	"context"
	"math"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/rng"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

func TestGoodChannelsBasics(t *testing.T) {
	// One informed node broadcasting w.p. 1 on 1 channel, unjammed:
	// exactly one good channel.
	if got := GoodChannels(1, 1, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("GoodChannels(1,1,1,1) = %v, want 1", got)
	}
	// Degenerate inputs.
	if GoodChannels(0, 0.5, 4, 4) != 0 || GoodChannels(1, 0.5, 0, 0) != 0 {
		t.Error("degenerate inputs must be 0")
	}
	// Jamming scales linearly: half the channels clear → half the goods.
	full := GoodChannels(32, 0.25, 64, 64)
	half := GoodChannels(32, 0.25, 64, 32)
	if math.Abs(full-2*half) > 1e-9 {
		t.Errorf("good channels not linear in unjammed: %v vs 2×%v", full, half)
	}
}

func TestGoodChannelsMonteCarlo(t *testing.T) {
	// Claim 4.1.1's E[F] against a direct Monte Carlo of the process.
	const (
		tInformed = 100
		c         = 128
		p         = 0.25
		trials    = 20000
	)
	r := rng.New(7)
	var sum float64
	counts := make([]int, c)
	for trial := 0; trial < trials; trial++ {
		for i := range counts {
			counts[i] = 0
		}
		for node := 0; node < tInformed; node++ {
			if r.Bernoulli(p) {
				counts[r.Intn(c)]++
			}
		}
		good := 0
		for _, k := range counts {
			if k == 1 {
				good++
			}
		}
		sum += float64(good)
	}
	mc := sum / trials
	want := GoodChannels(tInformed, p, c, c)
	if math.Abs(mc-want)/want > 0.02 {
		t.Errorf("Monte Carlo %v vs formula %v", mc, want)
	}
}

func TestInformProbMonotonicity(t *testing.T) {
	// More jamming, lower probability; more collisions at huge t, lower
	// probability than the sweet spot.
	base := InformProb(64, 256, 0.125, 128, 0)
	if jammed := InformProb(64, 256, 0.125, 128, 0.9); jammed >= base {
		t.Errorf("jamming did not reduce inform probability: %v vs %v", jammed, base)
	}
	if InformProb(0, 256, 0.125, 128, 0) != 0 {
		t.Error("t=0 must give probability 0")
	}
	if InformProb(256, 256, 0.5, 128, 0) != 0 {
		t.Error("t=n must give probability 0")
	}
}

func TestEpidemicSlotsAgainstSimulation(t *testing.T) {
	// The mean-field estimate must land within a factor ~2.5 of the
	// simulated jam-free informing time of MultiCastCore.
	const n = 256
	params := core.Sim()
	want := EpidemicSlots(n, params.CoreP, n/2)

	ms, err := runner.All(context.Background(), sim.Config{
		N: n,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCastCore(params, n, 0)
		},
		Seed: 3,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, m := range ms {
		mean += float64(m.AllInformedSlot)
	}
	mean /= float64(len(ms))
	lo, hi := mean/2.5, mean*2.5
	if float64(want) < lo || float64(want) > hi {
		t.Errorf("EpidemicSlots = %d, simulated mean informing time %v (accept [%v, %v])",
			want, mean, lo, hi)
	}
}

func TestStepTwoExpectationsAgainstNodeCounters(t *testing.T) {
	// Drive a real MultiCastAdv population through one step two and
	// compare a node's counters with the closed forms. Use phase (i, j)
	// with every node informed.
	const n = 64
	params := core.Sim()
	sched := core.NewAdvSchedule(params)
	const i, j = 12, 5
	r := float64(sched.StepLen(i, j))
	p := sched.Prob(i, j)
	c := sched.ChannelsFor(j)
	want := StepTwoExpectations(n, n, p, c, r)

	// Monte Carlo of the step-two process itself (all informed).
	const trials = 400
	src := rng.New(11)
	var nm, nmPrime, ns, nn float64
	counts := make([]int, c)
	for trial := 0; trial < trials; trial++ {
		for slot := int64(0); slot < int64(r); slot++ {
			for i := range counts {
				counts[i] = 0
			}
			// n−1 peers act.
			for peer := 0; peer < n-1; peer++ {
				u := src.Float64()
				if u >= p && u < 2*p {
					counts[src.Intn(c)]++
				}
			}
			// The observed node listens w.p. p.
			if !src.Bernoulli(p) {
				continue
			}
			ch := src.Intn(c)
			switch {
			case counts[ch] == 0:
				ns++
			case counts[ch] == 1:
				nm++
				nmPrime++
			default:
				nn++
			}
		}
	}
	nm /= trials
	nmPrime /= trials
	ns /= trials
	nn /= trials
	close := func(name string, got, want float64) {
		// Tolerances scale with the Poisson std of the counter.
		tol := 5 * math.Sqrt(want/trials)
		if tol < 0.5 {
			tol = 0.5
		}
		if math.Abs(got-want) > tol {
			t.Errorf("%s: Monte Carlo %v vs formula %v (tol %v)", name, got, want, tol)
		}
	}
	close("Nm", nm, want.Nm)
	close("N'm", nmPrime, want.NmPrime)
	close("Ns", ns, want.Ns)
	close("Nn", nn, want.Nn)
}

func TestHelperEpochOrdering(t *testing.T) {
	params := core.Sim()
	he := HelperEpoch(params, 64, 0.05)
	if he <= lg(64) {
		t.Fatalf("HelperEpoch = %d, must exceed lg n (Lemma 6.1)", he)
	}
	ha := HaltEpoch(params, 64, 0.05)
	if ha < he+params.HelperGap {
		t.Fatalf("HaltEpoch = %d < HelperEpoch %d + gap %d", ha, he, params.HelperGap)
	}
}

func TestHelperEpochPredictsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full MultiCastAdv execution")
	}
	const n = 64
	params := core.Sim()
	m, err := sim.Run(sim.Config{
		N: n,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCastAdv(params)
		},
		Seed:     31,
		MaxSlots: 1 << 26,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first simulated helper must appear within ±3 epochs of the
	// mean-field prediction (individual nodes cross the thresholds a few
	// epochs around the expectation crossing).
	he := HelperEpoch(params, n, 0)
	sched := core.NewAdvSchedule(params)
	lo, hi := sched.EpochStart(he-3), sched.EpochStart(he+4)
	if m.FirstHelperSlot < lo || m.FirstHelperSlot > hi {
		t.Errorf("first helper at slot %d, prediction epoch %d → window [%d, %d]",
			m.FirstHelperSlot, he, lo, hi)
	}
	// And the whole run must end within a couple of epochs of HaltEpoch.
	ha := HaltEpoch(params, n, 0)
	if end := sched.EpochStart(ha + 4); m.Slots > end {
		t.Errorf("run ended at slot %d, past predicted halt epoch %d (slot %d)", m.Slots, ha, end)
	}
}

func TestCoreSlotsPrediction(t *testing.T) {
	const n = 256
	params := core.Sim()
	for _, budget := range []int64{0, 10_000, 100_000} {
		m, err := sim.Run(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastCore(params, n, budget)
			},
			Adversary: adversary.FullBurst(0),
			Budget:    budget,
			Seed:      17,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := CoreSlots(params, n, budget)
		ratio := float64(m.Slots) / float64(want)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("T=%d: simulated %d slots vs predicted %d (ratio %.2f)",
				budget, m.Slots, want, ratio)
		}
	}
}

func TestMultiCastPredictions(t *testing.T) {
	const n = 256
	params := core.Sim()
	for _, budget := range []int64{10_000, 100_000, 1_000_000} {
		m, err := sim.Run(sim.Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(params, n)
			},
			Adversary: adversary.FullBurst(0),
			Budget:    budget,
			Seed:      19,
			MaxSlots:  1 << 26,
		})
		if err != nil {
			t.Fatal(err)
		}
		slots := MultiCastSlots(params, n, budget)
		if r := float64(m.Slots) / float64(slots); r < 0.3 || r > 3 {
			t.Errorf("T=%d: simulated %d slots vs predicted %d", budget, m.Slots, slots)
		}
		cost := MultiCastCost(params, n, budget)
		if r := float64(m.MaxNodeEnergy) / cost; r < 0.3 || r > 3 {
			t.Errorf("T=%d: simulated cost %d vs predicted %.0f", budget, m.MaxNodeEnergy, cost)
		}
	}
}

func TestMultiCastLastIterationMonotone(t *testing.T) {
	params := core.Sim()
	prev := -1
	for _, budget := range []int64{0, 1000, 10_000, 100_000, 1_000_000, 10_000_000} {
		l := MultiCastLastIteration(params, 256, budget)
		if l < prev {
			t.Fatalf("last blockable iteration decreased with budget: %d after %d", l, prev)
		}
		prev = l
	}
	if prev < core.Sim().StartIter {
		t.Fatal("large budgets must block at least the first iteration")
	}
}
