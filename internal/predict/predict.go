// Package predict computes the closed-form expectations the paper's
// analysis is built on, so experiments and tests can compare simulated
// counter statistics against the quantities the lemmas manipulate:
//
//   - the expected number of "good" channels per slot (Claim 4.1.1);
//   - per-slot rendezvous probabilities of epidemic broadcast (Lemma 5.1);
//   - the step-two counter expectations E[Nm], E[N'm], E[Ns] of
//     MultiCastAdv as functions of (n, 2^j, p, R) (Lemmas 6.1–6.5);
//   - the epochs at which helper and halt transitions become feasible for
//     a given Params (the machinery behind Theorem 6.10's τ term);
//   - theorem-level slots/cost predictions for MultiCastCore and MultiCast
//     under a full-burst adversary.
//
// All formulas use the same (1 − p/c)^k ≈ e^{−pk/c} algebra as the paper,
// but keep the exact binomial forms where cheap.
package predict

import (
	"math"

	"multicast/internal/core"
)

// GoodChannels returns E[F]: the expected number of channels carrying
// exactly one informed broadcaster and no jamming, with t informed nodes
// broadcasting w.p. p on c channels of which unjammed are clear
// (Claim 4.1.1's quantity).
func GoodChannels(t int, p float64, c, unjammed int) float64 {
	if t < 1 || c < 1 || unjammed < 1 {
		return 0
	}
	// P(exactly one of t informed picks this channel and broadcasts) =
	// t·(p/c)·(1−p/c)^{t−1}.
	pc := p / float64(c)
	single := float64(t) * pc * math.Pow(1-pc, float64(t-1))
	return single * float64(unjammed)
}

// InformProb returns the probability that a fixed uninformed node becomes
// informed in one slot, with t informed among n nodes on c channels and a
// (1 − jam) fraction of channels clear (the Lemma 5.1 per-slot rate).
func InformProb(t, n int, p float64, c int, jam float64) float64 {
	if t < 1 || n <= t || c < 1 {
		return 0
	}
	pc := p / float64(c)
	// Listener listens (p), exactly one informed node is on its channel
	// broadcasting (t·pc·(1−pc)^{t−1}), channel clear (1−jam).
	return p * float64(t) * pc * math.Pow(1-pc, float64(t-1)) * (1 - jam)
}

// EpidemicSlots estimates the jam-free slots for epidemic broadcast to
// inform all n nodes on c channels at probability p, by iterating the
// mean-field growth map. It is the quantity Lemma 4.1 bounds by O(lg T̂).
func EpidemicSlots(n int, p float64, c int) int64 {
	t := 1.0
	var slots int64
	// Mean-field threshold: fewer than half an expected node uninformed
	// counts as "everyone informed" (the discrete process has no
	// fractional stragglers).
	for t < float64(n)-0.5 && slots < 1<<30 {
		growth := (float64(n) - t) * InformProb(int(t), n, p, c, 0)
		if growth < 1e-9 {
			return math.MaxInt64 // degenerate parameters
		}
		t += growth
		slots++
	}
	return slots
}

// StepTwo holds the step-two counter expectations of one MultiCastAdv
// phase for a fixed listening node.
type StepTwo struct {
	Nm      float64 // slots hearing the message m
	NmPrime float64 // slots hearing m or the beacon ±
	Ns      float64 // silent slots
	Nn      float64 // noisy slots (collisions only; no jamming)
}

// StepTwoExpectations returns the counter expectations for a node in step
// two of a phase using c channels with probability p and R slots, when
// informed of the n−1 other nodes broadcast m w.p. p and uninformed nodes
// broadcast ± w.p. p (Lemmas 6.1–6.3 compute these under informed = n).
func StepTwoExpectations(n, informed int, p float64, c int, r float64) StepTwo {
	if informed > n {
		informed = n
	}
	pc := p / float64(c)
	others := n - 1
	// A fixed listener hears m iff exactly one other node is broadcasting
	// on its channel and that node is informed.
	pSingle := float64(others) * pc * math.Pow(1-pc, float64(others-1))
	fracInformed := float64(informed) / float64(n)
	pSilence := math.Pow(1-pc, float64(others))
	pNoise := 1 - pSilence - pSingle

	listen := p * r
	return StepTwo{
		Nm:      listen * pSingle * fracInformed,
		NmPrime: listen * pSingle,
		Ns:      listen * pSilence,
		Nn:      listen * pNoise,
	}
}

// HelperFeasible reports whether the helper checks of MultiCastAdv can
// pass *in expectation* in phase (i, j) for network size n: the means of
// Nm, Ns and N'm sit on the accepting side of the thresholds with the
// given relative margin (e.g. 0.05 = 5% slack for concentration).
func HelperFeasible(params core.Params, n, i, j int, margin float64) bool {
	sched := core.NewAdvSchedule(params)
	r := float64(sched.StepLen(i, j))
	p := sched.Prob(i, j)
	c := sched.ChannelsFor(j)
	exp := StepTwoExpectations(n, n, p, c, r)
	rp := r * p
	rp2 := rp * p
	return exp.Nm >= params.HelperNm*rp2*(1+margin) &&
		exp.Ns >= params.HelperNs*rp*(1+margin) &&
		exp.NmPrime <= params.HelperNmPrime*rp2*(1-margin)
}

// HelperEpoch returns the first epoch i at which the helper checks are
// feasible in expectation at the good phase j = lg n − 1 (with the given
// margin), or -1 if none is found below the search cap. This is the
// mechanism behind the τ = Õ(n^2α) term of Theorem 6.10.
func HelperEpoch(params core.Params, n int, margin float64) int {
	j := lg(n) - 1
	if j < 0 {
		j = 0
	}
	for i := j + 1; i < 200; i++ {
		if HelperFeasible(params, n, i, j, margin) {
			return i
		}
	}
	return -1
}

// HaltEpoch returns the first epoch at which a helper from HelperEpoch can
// pass the halt check in expectation: the helper gap has elapsed and
// residual collision noise sits below the HaltNoise threshold with the
// given margin. Returns -1 if not found below the cap.
func HaltEpoch(params core.Params, n int, margin float64) int {
	he := HelperEpoch(params, n, margin)
	if he < 0 {
		return -1
	}
	j := lg(n) - 1
	if j < 0 {
		j = 0
	}
	gap := params.HelperGap
	if gap == 0 {
		gap = int(math.Ceil(2 / params.Alpha))
	}
	sched := core.NewAdvSchedule(params)
	for i := he + gap; i < 300; i++ {
		r := float64(sched.StepLen(i, j))
		p := sched.Prob(i, j)
		c := sched.ChannelsFor(j)
		exp := StepTwoExpectations(n, n, p, c, r)
		if exp.Nn <= params.HaltNoise*r*p*(1-margin) {
			return i
		}
	}
	return -1
}

// AdvSlotsThrough returns the total schedule slots from the start of
// execution through the end of epoch i (inclusive) for MultiCastAdv.
func AdvSlotsThrough(params core.Params, i int) int64 {
	sched := core.NewAdvSchedule(params)
	return sched.EpochStart(i + 1)
}

// CoreSlots predicts MultiCastCore's termination time against a
// full-burst adversary of budget T on n nodes: Eve buys ⌈T/(n/2)⌉ fully
// jammed slots, nodes halt at the first iteration boundary whose iteration
// saw little noise (Theorem 4.4's Θ(T/n + lg T̂) with explicit constants).
func CoreSlots(params core.Params, n int, budget int64) int64 {
	tHat := budget
	if int64(n) > tHat {
		tHat = int64(n)
	}
	r := int64(math.Ceil(params.CoreA * math.Log2(float64(tHat))))
	if r < 1 {
		r = 1
	}
	jammedSlots := budget / int64(maxInt(n/2, 1))
	// Nodes halt at the end of the first iteration mostly clear of
	// jamming; quantize up to iteration boundaries, plus the final quiet
	// iteration.
	iterations := jammedSlots/r + 1
	return (iterations + 1) * r
}

// MultiCastLastIteration predicts the last iteration a full-burst
// adversary of budget T can block for MultiCast on n nodes: blocking
// iteration i requires keeping the per-listener noise fraction above
// HaltRatio for most of Rᵢ, which costs about (n/2)·Rᵢ·HaltRatio energy.
func MultiCastLastIteration(params core.Params, n int, budget int64) int {
	alg, err := core.NewMultiCast(params, n)
	if err != nil {
		return -1
	}
	last := params.StartIter - 1
	for i := params.StartIter; i < 28; i++ {
		blockCost := float64(n/2) * float64(alg.IterationLength(i)) * params.HaltRatio
		if float64(budget) < blockCost {
			break
		}
		last = i
	}
	return last
}

// MultiCastSlots predicts MultiCast's termination slot under a full-burst
// budget-T adversary: all iterations through the last blockable one, plus
// the first unblocked iteration.
func MultiCastSlots(params core.Params, n int, budget int64) int64 {
	alg, err := core.NewMultiCast(params, n)
	if err != nil {
		return -1
	}
	last := MultiCastLastIteration(params, n, budget)
	var slots int64
	for i := params.StartIter; i <= last+1; i++ {
		slots += alg.IterationLength(i)
	}
	return slots
}

// MultiCastCost predicts the expected per-node cost of MultiCast under a
// full-burst budget-T adversary: 2·Rᵢ·pᵢ per executed iteration (the
// √(T/n) law with explicit constants).
func MultiCastCost(params core.Params, n int, budget int64) float64 {
	alg, err := core.NewMultiCast(params, n)
	if err != nil {
		return -1
	}
	last := MultiCastLastIteration(params, n, budget)
	var cost float64
	for i := params.StartIter; i <= last+1; i++ {
		cost += 2 * float64(alg.IterationLength(i)) * alg.ListenProb(i)
	}
	return cost
}

func lg(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
