package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

func mcast(n int) func() (protocol.Algorithm, error) {
	return func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), n) }
}

// testPoints is a two-point workload grid with distinct populations and
// adversaries, so cross-point mixups cannot cancel out.
func testPoints() []sim.Config {
	return []sim.Config{
		{N: 32, Algorithm: mcast(32), Adversary: adversary.RandomFraction(0.4), Budget: 10_000, Seed: 7},
		{N: 64, Algorithm: mcast(64), Adversary: adversary.FullBurst(0), Budget: 15_000, Seed: 7},
	}
}

// template builds the campaign summary skeleton the test points belong
// to (seed must match the points' base seed).
func template(trials int) *Summary {
	return New("test-sweep", 7, trials, []Point{
		{Label: "n=32", Workload: "mcast n=32 adv=random seed=7"},
		{Label: "n=64", Workload: "mcast n=64 adv=burst seed=7"},
	})
}

// runShard executes shard i/k of the test grid into a fresh shard
// summary, optionally through a Checkpointer.
func runShard(t *testing.T, trials, i, k int) *Summary {
	t.Helper()
	s := template(trials).CloneEmpty()
	s.ShardIndex, s.ShardCount = i, k
	err := runner.RunSweep(context.Background(), testPoints(),
		runner.SweepPlan{Trials: trials, Shard: runner.Shard{Index: i, Count: k}, Workers: 2},
		func(p, tr int, m sim.Metrics) error { return s.Points[p].Collector.Add(tr, m) })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := runShard(t, 5, 1, 3)
	path := filepath.Join(dir, "s1.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Identity() != s.Identity() {
		t.Errorf("identity changed across the round trip:\n got %q\nwant %q", got.Identity(), s.Identity())
	}
	if got.ShardIndex != 1 || got.ShardCount != 3 {
		t.Errorf("shard %d/%d, want 1/3", got.ShardIndex, got.ShardCount)
	}
	if got.Cells() != s.Cells() {
		t.Errorf("cells %d, want %d", got.Cells(), s.Cells())
	}
	// The strong form: re-marshalling the decoded summary reproduces the
	// original bytes, so nothing was dropped or reordered.
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("round-tripped summary re-marshals differently")
	}
}

// Artifacts from a future (or pre-versioned legacy) tool must be
// refused by version, naming both versions — not silently decoded with
// their unknown fields dropped.
func TestReadRefusesUnknownSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	s := runShard(t, 2, 0, 1)
	for _, tc := range []struct {
		name    string
		version int
	}{
		{"future", 99},
		{"legacy-unversioned", 0},
	} {
		var raw map[string]any
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &raw); err != nil {
			t.Fatal(err)
		}
		if tc.version == 0 {
			delete(raw, "schema_version")
		} else {
			raw["schema_version"] = tc.version
		}
		data, err = json.Marshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, tc.name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Read(path)
		if err == nil {
			t.Fatalf("%s: accepted schema version %d", tc.name, tc.version)
		}
		for _, want := range []string{
			"schema version", strconv.Itoa(tc.version), strconv.Itoa(SchemaVersion),
		} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, want)
			}
		}
	}
}

// Merging the k shard artifacts of one campaign must reproduce the
// unsharded run's summaries bit for bit — through the JSON round trip,
// exactly as the cross-machine flow ships them.
func TestMergeMatchesUnsharded(t *testing.T) {
	const trials, k = 7, 3
	dir := t.TempDir()
	whole := runShard(t, trials, 0, 1)
	var in []Input
	for i := 0; i < k; i++ {
		path := filepath.Join(dir, "s.json")
		if err := runShard(t, trials, i, k).Write(path); err != nil {
			t.Fatal(err)
		}
		s, err := Read(path)
		if err != nil {
			t.Fatal(err)
		}
		in = append(in, Input{Name: path, Sum: s})
	}
	merged, err := Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ShardIndex != 0 || merged.ShardCount != 1 {
		t.Errorf("merged summary is shard %d/%d, want 0/1", merged.ShardIndex, merged.ShardCount)
	}
	if merged.Identity() != whole.Identity() {
		t.Errorf("merged identity %q != unsharded %q", merged.Identity(), whole.Identity())
	}
	for p := range whole.Points {
		got, want := merged.Points[p].Collector, whole.Points[p].Collector
		if got.Trials() != want.Trials() {
			t.Fatalf("point %d: %d trials, want %d", p, got.Trials(), want.Trials())
		}
		if got.Slots() != want.Slots() || got.MaxEnergy() != want.MaxEnergy() ||
			got.SourceEnergy() != want.SourceEnergy() || got.MeanEnergy() != want.MeanEnergy() ||
			got.EveEnergy() != want.EveEnergy() || got.AllInformed() != want.AllInformed() {
			t.Errorf("point %d: merged summaries diverge from the unsharded run", p)
		}
		if got.Invariants() != want.Invariants() {
			t.Errorf("point %d: invariant counts diverge", p)
		}
	}
}

func TestMergeRefusals(t *testing.T) {
	const trials = 3
	shard := func(i, k int) *Summary { return runShard(t, trials, i, k) }
	input := func(name string, s *Summary) Input { return Input{Name: name, Sum: s} }

	t.Run("identity mismatch", func(t *testing.T) {
		other := shard(1, 2)
		other.Seed++ // a different campaign
		_, err := Merge([]Input{input("a", shard(0, 2)), input("b", other)})
		if err == nil || !strings.Contains(err.Error(), "different campaign") {
			t.Errorf("err = %v, want a different-campaign refusal", err)
		}
	})
	t.Run("missing shard", func(t *testing.T) {
		_, err := Merge([]Input{input("a", shard(0, 3)), input("b", shard(1, 3))})
		if err == nil || !strings.Contains(err.Error(), "missing shard") {
			t.Errorf("err = %v, want a missing-shard refusal", err)
		}
	})
	t.Run("duplicate shard", func(t *testing.T) {
		_, err := Merge([]Input{input("a", shard(0, 2)), input("b", shard(0, 2))})
		if err == nil || !strings.Contains(err.Error(), "duplicates shard") {
			t.Errorf("err = %v, want a duplicate-shard refusal", err)
		}
	})
	t.Run("mixed split counts", func(t *testing.T) {
		_, err := Merge([]Input{input("a", shard(0, 2)), input("b", shard(1, 3))})
		if err == nil || !strings.Contains(err.Error(), "-way split") {
			t.Errorf("err = %v, want a mixed-split refusal", err)
		}
	})
	t.Run("single vs sweep", func(t *testing.T) {
		single := New("", 7, trials, []Point{{Label: "multicast", Workload: "mcast n=64"}})
		_, err := Merge([]Input{input("a", shard(0, 1)), input("b", single)})
		if err == nil || !strings.Contains(err.Error(), "different campaign") {
			t.Errorf("err = %v, want a different-campaign refusal", err)
		}
	})
	t.Run("corrupt trial coverage", func(t *testing.T) {
		short := shard(0, 1)
		short.Trials++ // claims more trials than its collectors hold
		_, err := Merge([]Input{input("a", short)})
		if err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Errorf("err = %v, want a corrupt-coverage refusal", err)
		}
	})
}
