package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicast/internal/runner"
	"multicast/internal/sim"
)

// An interrupted shard worker must resume at its next undone cell and
// finish with an artifact byte-identical to an uninterrupted run's —
// for every interruption point, including before the first cell and
// after the last.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const trials, shardIdx, shardCount = 4, 1, 2
	dir := t.TempDir()
	points := testPoints()
	shardTemplate := func() *Summary {
		s := template(trials).CloneEmpty()
		s.ShardIndex, s.ShardCount = shardIdx, shardCount
		return s
	}
	plan := func(skip int) runner.SweepPlan {
		return runner.SweepPlan{
			Trials:  trials,
			Shard:   runner.Shard{Index: shardIdx, Count: shardCount},
			Skip:    skip,
			Workers: 2,
		}
	}

	// Reference: the uninterrupted shard artifact.
	want := shardTemplate()
	err := runner.RunSweep(context.Background(), points, plan(0),
		func(p, tr int, m sim.Metrics) error { return want.Points[p].Collector.Add(tr, m) })
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	local := int(want.Cells()) // cells on this shard

	errStop := fmt.Errorf("injected crash")
	for stop := 0; stop <= local; stop++ {
		path := filepath.Join(dir, fmt.Sprintf("stop%d.ckpt", stop))

		// First attempt: die (sink error — the worker never flushes
		// anything beyond its checkpoint) after `stop` cells. stop=0 is
		// a crash before the first cell: no checkpoint exists at all.
		if stop > 0 {
			ck := NewCheckpointer(path, shardTemplate(), 1)
			err := runner.RunSweep(context.Background(), points, plan(0),
				func(p, tr int, m sim.Metrics) error {
					if err := ck.Add(p, tr, m); err != nil {
						return err
					}
					if ck.Done() == stop {
						return errStop
					}
					return nil
				})
			if stop < local && err == nil {
				t.Fatalf("stop=%d: first attempt did not crash", stop)
			}
		}

		// Second attempt: fresh checkpointer, resume, finish.
		ck := NewCheckpointer(path, shardTemplate(), 1)
		done, err := ck.Resume()
		if err != nil {
			t.Fatalf("stop=%d: resume: %v", stop, err)
		}
		if done != stop {
			t.Fatalf("stop=%d: resumed at %d cells", stop, done)
		}
		err = runner.RunSweep(context.Background(), points, plan(done),
			func(p, tr int, m sim.Metrics) error { return ck.Add(p, tr, m) })
		if err != nil {
			t.Fatalf("stop=%d: resumed run: %v", stop, err)
		}
		if ck.Done() != local {
			t.Fatalf("stop=%d: finished with %d of %d cells", stop, ck.Done(), local)
		}
		gotJSON, err := json.Marshal(ck.Summary())
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("stop=%d: resumed artifact differs from the uninterrupted run's", stop)
		}
		if err := ck.Remove(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("stop=%d: checkpoint not removed", stop)
		}
	}
}

// Resuming over a checkpoint that belongs to a different campaign or a
// different shard slice must be refused, not silently folded in.
func TestCheckpointResumeRefusesMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.ckpt")
	tmpl := func(i, k int) *Summary {
		s := template(3).CloneEmpty()
		s.ShardIndex, s.ShardCount = i, k
		return s
	}

	ck := NewCheckpointer(path, tmpl(0, 2), 1)
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}

	other := template(3)
	other.Seed++
	otherTmpl := other.CloneEmpty()
	otherTmpl.ShardIndex, otherTmpl.ShardCount = 0, 2
	if _, err := NewCheckpointer(path, otherTmpl, 1).Resume(); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Errorf("err = %v, want a different-campaign refusal", err)
	}

	if _, err := NewCheckpointer(path, tmpl(1, 2), 1).Resume(); err == nil ||
		!strings.Contains(err.Error(), "shard") {
		t.Errorf("err = %v, want a wrong-shard refusal", err)
	}

	// A missing checkpoint is a clean cold start, not an error.
	if done, err := NewCheckpointer(filepath.Join(dir, "absent.ckpt"), tmpl(0, 2), 1).Resume(); err != nil || done != 0 {
		t.Errorf("missing checkpoint: done=%d err=%v, want 0, nil", done, err)
	}
}

// The schedule field is additive: a static checkpointer (Schedule
// empty) writes a sidecar without the key at all, so pre-field sidecars
// and their checksums are unchanged; a stamped sidecar round-trips and
// resumes under either schedule, because the folded prefix is the lease
// regardless of who computed it; and because the checksum covers the
// field, tampering with it is refused as corrupt.
func TestCheckpointScheduleField(t *testing.T) {
	dir := t.TempDir()
	tmpl := func() *Summary { return template(3).CloneEmpty() }

	// Empty schedule: no "schedule" key in the encoding (omitempty), so
	// the bytes — and therefore the checksum scheme — match what the
	// field-free layout produced.
	static := filepath.Join(dir, "static.ckpt")
	if err := NewCheckpointer(static, tmpl(), 1).Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(static)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "schedule") {
		t.Errorf("static sidecar mentions schedule: %s", data)
	}

	// Stamped sidecar: field present, resume succeeds — including under
	// the other schedule — and reports the folded prefix.
	points := testPoints()
	stolen := filepath.Join(dir, "steal.ckpt")
	ck := NewCheckpointer(stolen, tmpl(), 1)
	ck.Schedule = "steal"
	err = runner.RunSweep(context.Background(), points, runner.SweepPlan{Trials: 3},
		func(p, tr int, m sim.Metrics) error {
			if err := ck.Add(p, tr, m); err != nil {
				return err
			}
			if ck.Done() == 2 {
				return fmt.Errorf("injected crash")
			}
			return nil
		})
	if err == nil {
		t.Fatal("seeding run did not crash")
	}
	data, err = os.ReadFile(stolen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schedule":"steal"`) {
		t.Errorf("stamped sidecar lacks the schedule field: %s", data)
	}
	for _, resumer := range []string{"", "steal"} {
		rck := NewCheckpointer(stolen, tmpl(), 1)
		rck.Schedule = resumer
		if done, err := rck.Resume(); err != nil || done != 2 {
			t.Errorf("resume as %q: done=%d err=%v, want 2, nil", resumer, done, err)
		}
	}

	// Tampering with the field breaks the checksum.
	tampered := strings.Replace(string(data), `"schedule":"steal"`, `"schedule":"static"`, 1)
	if tampered == string(data) {
		t.Fatal("tamper substitution did not apply")
	}
	if err := os.WriteFile(stolen, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCheckpointer(stolen, tmpl(), 1).Resume(); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("tampered schedule: err = %v, want ErrCorruptCheckpoint", err)
	}
}

// A checkpoint whose cell count disagrees with its collector state is
// corrupt and must be refused.
func TestCheckpointResumeRefusesCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.ckpt")
	tmpl := template(3).CloneEmpty()
	ck := NewCheckpointer(path, tmpl, 1)
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["done_cells"] = 5
	data, err = json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCheckpointer(path, template(3).CloneEmpty(), 1).Resume(); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Errorf("err = %v, want a corrupt-checkpoint refusal", err)
	}
}
