package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"multicast/internal/sim"
)

// checkpointFile is the sidecar progress artifact a shard worker
// updates as it runs: the partial shard summary plus how many of the
// shard's grid cells it covers. Because the runner delivers cells in
// ascending grid order, the covered cells are always the first
// DoneCells of the shard's slice, so resuming is "skip that many cells
// and keep folding into the restored collectors" — which replays the
// exact accumulator insertion order and keeps the finished artifact
// bit-identical to an uninterrupted run's.
type checkpointFile struct {
	SchemaVersion int `json:"schema_version"`
	// Checksum is the hex sha256 of the file's compact JSON encoding
	// with this field empty — same scheme as Summary.Checksum, so a
	// torn or bit-flipped sidecar reads as ErrCorruptCheckpoint instead
	// of resuming from damaged state.
	Checksum  string   `json:"checksum"`
	DoneCells int      `json:"done_cells"`
	Summary   *Summary `json:"summary"`
	// Schedule names the scheduler that wrote the sidecar ("steal" for
	// the driver's work-stealing pool; empty means the static mod-k
	// layout). Additive — older sidecars decode with the field empty and
	// their checksums still verify, so no schema bump. The field is
	// informational: the lease a resumed worker needs is exactly the
	// folded prefix DoneCells records, because both schedulers fold a
	// shard's cells in ascending grid order — which is why a campaign
	// interrupted under one schedule resumes exactly under the other.
	Schedule string `json:"schedule,omitempty"`
}

// digest returns f's content checksum (hex sha256 of the compact
// encoding with the Checksum field empty).
func (f *checkpointFile) digest() (string, error) {
	c := *f
	c.Checksum = ""
	data, err := json.Marshal(&c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Checkpointer folds a shard's grid cells into its summary and persists
// a checkpoint at grid-cell granularity, atomically, so the worker can
// die at any instant and resume at its next undone cell. A checkpoint
// lagging behind the truth is harmless: the re-run cells are
// deterministic and their metrics are folded into a state that does not
// contain them yet.
type Checkpointer struct {
	path  string
	every int
	done  int
	dirty int // cells folded in since the last flush
	sum   *Summary

	// Fault, when non-nil, sees every flush's payload bytes and may
	// inject a storage failure in their place (see FaultPoint) — the
	// chaos harness's torn-flush seam. Set it before the first Add;
	// production checkpointers leave it nil.
	Fault FaultPoint

	// Schedule, when non-empty, is stamped into every flushed sidecar
	// (the additive schedule field) naming the scheduler driving this
	// shard. Resume ignores the stored value — prefix semantics are
	// schedule-agnostic — so set it for observability, not correctness.
	Schedule string
}

// NewCheckpointer returns a checkpointer persisting to path, starting
// from template's identity and shard layout with fresh collectors.
// every is the number of cells between flushes; 0 or 1 checkpoints
// after every cell.
func NewCheckpointer(path string, template *Summary, every int) *Checkpointer {
	if every < 1 {
		every = 1
	}
	return &Checkpointer{path: path, every: every, sum: template.CloneEmpty()}
}

// Resume loads the checkpoint file if it exists and adopts its state,
// returning the number of cells already done (0 when there is no
// checkpoint yet). A checkpoint from a different campaign or shard or
// with an unknown schema version is an error, and a torn, truncated,
// checksum-failing, or internally inconsistent sidecar is a wrapped
// ErrCorruptCheckpoint — resuming over either would corrupt the
// artifact silently. The refusals are deterministic: retrying replays
// them, so internal/driver treats them as terminal.
func (c *Checkpointer) Resume() (int, error) {
	data, err := os.ReadFile(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var probe struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, fmt.Errorf("checkpoint %s: %w: %v", c.path, ErrCorruptCheckpoint, err)
	}
	if err := checkVersion(probe.SchemaVersion); err != nil {
		return 0, fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("checkpoint %s: %w: %v", c.path, ErrCorruptCheckpoint, err)
	}
	want, err := f.digest()
	if err != nil {
		return 0, fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	if f.Checksum != want {
		return 0, fmt.Errorf("checkpoint %s: %w: checksum %q does not match content digest %q",
			c.path, ErrCorruptCheckpoint, f.Checksum, want)
	}
	if f.Summary == nil {
		return 0, fmt.Errorf("checkpoint %s: %w: no summary payload", c.path, ErrCorruptCheckpoint)
	}
	if err := f.Summary.Validate(); err != nil {
		return 0, fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	if got, want := f.Summary.Identity(), c.sum.Identity(); got != want {
		return 0, fmt.Errorf("checkpoint %s is from a different campaign:\n  %s\nvs this campaign:\n  %s",
			c.path, indent(got), indent(want))
	}
	if f.Summary.ShardIndex != c.sum.ShardIndex || f.Summary.ShardCount != c.sum.ShardCount {
		return 0, fmt.Errorf("checkpoint %s is for shard %d/%d, not %d/%d",
			c.path, f.Summary.ShardIndex, f.Summary.ShardCount, c.sum.ShardIndex, c.sum.ShardCount)
	}
	if f.DoneCells < 0 || f.Summary.Cells() != int64(f.DoneCells) {
		return 0, fmt.Errorf("checkpoint %s: %w: %d cells recorded but collectors hold %d",
			c.path, ErrCorruptCheckpoint, f.DoneCells, f.Summary.Cells())
	}
	c.sum = f.Summary
	c.done = f.DoneCells
	c.dirty = 0
	return c.done, nil
}

// Add folds one grid cell's metrics into the shard summary and flushes
// the checkpoint if one is due. It has the runner.SweepSink signature.
func (c *Checkpointer) Add(point, trial int, m sim.Metrics) error {
	if point < 0 || point >= len(c.sum.Points) {
		return fmt.Errorf("checkpoint %s: cell for point %d of %d", c.path, point, len(c.sum.Points))
	}
	if err := c.sum.Points[point].Collector.Add(trial, m); err != nil {
		return err
	}
	c.done++
	c.dirty++
	if c.dirty >= c.every {
		return c.Flush()
	}
	return nil
}

// Flush persists the current state, checksummed and atomically
// (write-then-rename): a crash mid-flush leaves the previous checkpoint
// intact. A configured Fault point may tear or corrupt the write
// instead.
func (c *Checkpointer) Flush() error {
	f := checkpointFile{
		SchemaVersion: SchemaVersion,
		DoneCells:     c.done,
		Summary:       c.sum,
		Schedule:      c.Schedule,
	}
	sum, err := f.digest()
	if err != nil {
		return err
	}
	f.Checksum = sum
	data, err := json.Marshal(&f)
	if err != nil {
		return err
	}
	if c.Fault != nil {
		if flt := c.Fault(data); flt != nil {
			return flt.apply(c.path)
		}
	}
	if err := writeAtomic(c.path, data); err != nil {
		return err
	}
	c.dirty = 0
	return nil
}

// Done returns the number of grid cells folded in so far — the Skip
// value a resumed runner plan needs.
func (c *Checkpointer) Done() int { return c.done }

// Summary returns the shard summary under accumulation. The caller owns
// writing it as the shard artifact once the shard's slice is complete.
func (c *Checkpointer) Summary() *Summary { return c.sum }

// Remove deletes the checkpoint file (after the shard artifact is
// safely written); a missing file is not an error.
func (c *Checkpointer) Remove() error {
	if err := os.Remove(c.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}
