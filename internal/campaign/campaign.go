// Package campaign is the artifact layer of the trial stack: the single
// source of truth for the mergeable summary files that sharded
// statistical campaigns write, ship across machines, and merge back
// into exactly the summary one machine would have produced.
//
// One versioned schema covers both campaign shapes. A campaign is a
// list of workload points — a scenario sweep names its scenario and
// carries one point per sweep point; a single-workload campaign has an
// empty scenario name and exactly one point. Every point pairs its
// workload identity string (scenario.Config.Describe) with a mergeable
// runner.Collector, so the merge rules, coverage accounting, and
// campaign-identity checks are one code path for both shapes.
//
// Files carry a schema_version field and readers refuse any version
// they do not know (including pre-versioned legacy files, which read as
// version 0): silently decoding a future tool's artifact would drop its
// unknown fields and corrupt a merge. Since version 2 every file also
// carries a content checksum, so an artifact damaged in flight — torn,
// truncated, or bit-flipped anywhere that matters — reads as
// ErrCorruptArtifact instead of being folded into a merge.
//
// The package also owns per-shard checkpointing (see Checkpointer): a
// sidecar progress file updated at grid-cell granularity, so an
// interrupted shard worker resumes at its next undone cell and still
// produces a bit-identical artifact — the mechanism under
// internal/driver's crash recovery and cmd/mcast -resume.
//
// Both write paths expose fault points (Fault, FaultPoint) so the
// chaos harness (internal/chaos) can deterministically tear a
// checkpoint flush or corrupt an artifact write; production writes pass
// a nil fault point and are untouched.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"multicast/internal/runner"
)

// SchemaVersion is the artifact schema this package reads and writes.
// Bump it on any incompatible change to the file layout; readers refuse
// other versions by name. Version 2 added the mandatory content
// checksum.
const SchemaVersion = 2

// ErrCorruptArtifact marks a summary artifact whose bytes cannot be
// trusted: truncated mid-JSON, failing its content checksum, or
// otherwise undecodable. Wrapped into Read errors; test with errors.Is.
// Distinct from a schema-version refusal (an intact file from another
// tool) and from an identity mismatch (an intact file from another
// campaign).
var ErrCorruptArtifact = errors.New("corrupt campaign artifact")

// ErrCorruptCheckpoint is ErrCorruptArtifact's sibling for checkpoint
// sidecars: a torn, truncated, or internally inconsistent progress
// file. Resuming over one would corrupt the shard artifact silently, so
// Checkpointer.Resume refuses it; internal/driver treats the refusal as
// terminal (deterministic — retrying replays it).
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint sidecar")

// Tool is the tool name stamped into artifacts (informational; not part
// of the campaign identity).
const Tool = "mcast"

// Point is one workload point's slice of a campaign summary.
type Point struct {
	// Label distinguishes the point within the campaign (e.g. "C=8"; a
	// single-workload campaign uses its algorithm name).
	Label string `json:"label"`
	// Workload is the point's full identity string
	// (scenario.Config.Describe): every parameter that determines trial
	// outcomes. Merging refuses points whose identities differ.
	Workload string `json:"workload"`
	// Collector holds the point's mergeable summary state.
	Collector *runner.Collector `json:"collector"`
}

// Summary is the versioned mergeable artifact written by one shard of a
// campaign (or by an unsharded run, shard 0 of 1). The campaign
// identity — everything that determines results, nothing that must not
// (shard layout, workers, engine) — is Scenario, Trials, Seed, and the
// points' labels and workload strings.
type Summary struct {
	// SchemaVersion is the artifact schema; Write stamps SchemaVersion
	// and Read refuses files with any other value.
	SchemaVersion int `json:"schema_version"`
	// Tool names the writing tool (informational).
	Tool string `json:"tool"`
	// Checksum is the hex sha256 of the summary's compact JSON encoding
	// with this field empty. Write stamps it; Read recomputes and
	// refuses a mismatch as ErrCorruptArtifact, so silent damage (a
	// flipped bit, a surviving truncation) cannot reach a merge.
	Checksum string `json:"checksum"`
	// Scenario is the registry scenario name; empty for single-workload
	// campaigns.
	Scenario string `json:"scenario,omitempty"`
	// Seed is the campaign's base seed (cell (p, t) runs with the
	// point's seed + t; see internal/runner).
	Seed uint64 `json:"seed"`
	// Trials is the campaign's trial count per point.
	Trials int `json:"trials"`
	// ShardIndex/ShardCount name this artifact's slice of the flattened
	// (point × trial) grid: cells g ≡ ShardIndex (mod ShardCount).
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	// Points carries every point's collector — points this shard ran no
	// cells of included, with zero trials — so merging is positional.
	Points []Point `json:"points"`
}

// New returns an unsharded summary for the given campaign: a
// single-workload campaign when scenario is "" (then points must have
// length 1), a sweep otherwise. Points keep their collectors; a nil
// collector is replaced with a fresh empty one.
func New(scenario string, seed uint64, trials int, points []Point) *Summary {
	s := &Summary{
		SchemaVersion: SchemaVersion,
		Tool:          Tool,
		Scenario:      scenario,
		Seed:          seed,
		Trials:        trials,
		ShardIndex:    0,
		ShardCount:    1,
		Points:        append([]Point(nil), points...),
	}
	for i := range s.Points {
		if s.Points[i].Collector == nil {
			s.Points[i].Collector = runner.NewCollector()
		}
	}
	return s
}

// CloneEmpty returns a summary with the same campaign identity and
// shard layout as s but fresh, empty collectors — the starting state of
// a shard worker.
func (s *Summary) CloneEmpty() *Summary {
	out := *s
	out.Checksum = "" // content digest of a different payload
	out.Points = make([]Point, len(s.Points))
	for i, p := range s.Points {
		out.Points[i] = Point{Label: p.Label, Workload: p.Workload, Collector: runner.NewCollector()}
	}
	return &out
}

// Single reports whether s is a single-workload campaign (no scenario,
// one point).
func (s *Summary) Single() bool { return s.Scenario == "" && len(s.Points) == 1 }

// Identity renders the campaign identity two artifacts must share to
// merge: scenario, trials, seed, and every point's label and workload
// string — everything that determines results. Shard layout, workers,
// and engine are deliberately excluded: they must not change results,
// so they may differ per machine.
func (s *Summary) Identity() string {
	var b strings.Builder
	if s.Scenario != "" {
		fmt.Fprintf(&b, "scenario=%s ", s.Scenario)
	}
	fmt.Fprintf(&b, "trials=%d seed=%d", s.Trials, s.Seed)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "\n  %s: %s", p.Label, p.Workload)
	}
	return b.String()
}

// Cells returns the number of grid cells folded into s across its
// points.
func (s *Summary) Cells() int64 {
	var n int64
	for _, p := range s.Points {
		n += p.Collector.Trials()
	}
	return n
}

// checkVersion refuses any schema version this package does not know,
// naming both versions. Pre-versioned legacy files decode as version 0.
func checkVersion(v int) error {
	if v != SchemaVersion {
		return fmt.Errorf("unsupported summary schema version %d (this tool reads version %d; regenerate the artifact with a matching tool)",
			v, SchemaVersion)
	}
	return nil
}

// Validate checks the structural invariants of a decoded summary.
func (s *Summary) Validate() error {
	if err := checkVersion(s.SchemaVersion); err != nil {
		return err
	}
	if s.Trials <= 0 {
		return fmt.Errorf("trials = %d must be positive", s.Trials)
	}
	if s.ShardCount < 1 || s.ShardIndex < 0 || s.ShardIndex >= s.ShardCount {
		return fmt.Errorf("invalid shard %d/%d", s.ShardIndex, s.ShardCount)
	}
	if len(s.Points) == 0 {
		return fmt.Errorf("no workload points")
	}
	if s.Scenario == "" && len(s.Points) != 1 {
		return fmt.Errorf("single-workload summary has %d points, want 1", len(s.Points))
	}
	for i, p := range s.Points {
		if p.Workload == "" {
			return fmt.Errorf("point %d (%s) has no workload identity", i, p.Label)
		}
		if p.Collector == nil {
			return fmt.Errorf("point %d (%s) has no collector payload", i, p.Label)
		}
	}
	return nil
}

// checksum returns the hex sha256 content digest of s: the compact JSON
// encoding with the Checksum field empty. Stable under decode→encode
// round trips (pinned by the artifact round-trip test), so Read can
// verify what Write stamped.
func (s *Summary) checksum() (string, error) {
	c := *s
	c.Checksum = ""
	data, err := json.Marshal(&c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Read loads and validates one summary artifact. The schema version is
// probed before the payload decodes, so a future tool's intact file
// fails with the version message; undecodable bytes (truncated
// mid-JSON) and checksum mismatches fail with a wrapped
// ErrCorruptArtifact.
func Read(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w: %v", path, ErrCorruptArtifact, err)
	}
	if err := checkVersion(probe.SchemaVersion); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w: %v", path, ErrCorruptArtifact, err)
	}
	want, err := s.checksum()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Checksum != want {
		return nil, fmt.Errorf("%s: %w: checksum %q does not match content digest %q",
			path, ErrCorruptArtifact, s.Checksum, want)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// Write stamps the schema version, tool name, and content checksum and
// writes s as indented JSON, atomically (write-then-rename), so a crash
// mid-write never leaves a torn artifact for -resume or -merge to trip
// over.
func (s *Summary) Write(path string) error { return s.WriteWithFault(path, nil) }

// WriteWithFault is Write with a fault point: fp (if non-nil) sees the
// exact bytes about to be written and may inject a storage failure in
// their place. The chaos harness's artifact-corruption seam; production
// callers use Write.
func (s *Summary) WriteWithFault(path string, fp FaultPoint) error {
	s.SchemaVersion = SchemaVersion
	if s.Tool == "" {
		s.Tool = Tool
	}
	sum, err := s.checksum()
	if err != nil {
		return err
	}
	s.Checksum = sum
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if fp != nil {
		if f := fp(data); f != nil {
			return f.apply(path)
		}
	}
	return writeAtomic(path, data)
}

// Fault is one injected storage failure at a campaign fault point,
// describing what lands on disk instead of the real payload and what
// the writer is told about it.
type Fault struct {
	// Data is written in place of the real payload (typically a
	// truncated or bit-flipped copy of it).
	Data []byte
	// Err is returned to the writer after the faulty write — the
	// simulated crash. A nil Err is silent corruption: the writer
	// believes the write succeeded.
	Err error
	// Torn writes Data directly over the destination file — an in-place
	// tear, as a failing disk would leave it. Without Torn, Data lands
	// only in the write-then-rename temp file and the rename never runs
	// (a crash between write and rename), leaving any previous file
	// intact.
	Torn bool
}

// FaultPoint inspects the payload about to be written and returns the
// fault to inject, or nil to let the write proceed untouched.
type FaultPoint func(data []byte) *Fault

// apply lands the fault on disk and returns its injected error.
func (f *Fault) apply(path string) error {
	dst := path + ".tmp"
	if f.Torn {
		dst = path
	}
	if err := os.WriteFile(dst, f.Data, 0o644); err != nil {
		return err
	}
	return f.Err
}

// writeAtomic writes data to a same-directory temp file and renames it
// into place.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Input names one summary for Merge — Name (usually the file path) only
// feeds error messages.
type Input struct {
	Name string
	Sum  *Summary
}

// Merge combines the shard artifacts of one campaign into its full
// summary, enforcing the exact-coverage rules: every input validates,
// all inputs share one campaign identity and one k-way shard split, all
// k distinct shards are present (no duplicates, no gaps), and the
// merged cells cover every point's full trial count. A merge that would
// silently produce a thinner or mixed sample is an error. The result is
// unsharded (shard 0 of 1) and bit-identical to the unsharded run's
// summary while per-point trial counts stay within the stats sample
// cap.
func Merge(in []Input) (*Summary, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("merge needs at least one summary")
	}
	var first *Summary
	var merged []*runner.Collector
	var cover shardCoverage
	for i, input := range in {
		name, s := input.Name, input.Sum
		if name == "" {
			name = fmt.Sprintf("summary %d", i)
		}
		if s == nil {
			return nil, fmt.Errorf("%s: nil summary", name)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if err := cover.add(name, s.Identity(), s.ShardIndex, s.ShardCount); err != nil {
			return nil, err
		}
		if i == 0 {
			first = s
			merged = make([]*runner.Collector, len(s.Points))
			for p := range merged {
				merged[p] = runner.NewCollector()
			}
		}
		for p := range s.Points {
			merged[p].Merge(s.Points[p].Collector)
		}
	}
	if err := cover.complete(); err != nil {
		return nil, err
	}
	for p := range merged {
		if merged[p].Trials() != int64(first.Trials) {
			return nil, fmt.Errorf("point %s: merged shards cover %d of %d trials — corrupt shard files",
				first.Points[p].Label, merged[p].Trials(), first.Trials)
		}
	}
	out := New(first.Scenario, first.Seed, first.Trials, nil)
	out.Tool = first.Tool
	out.Points = make([]Point, len(first.Points))
	for p := range first.Points {
		out.Points[p] = Point{
			Label:     first.Points[p].Label,
			Workload:  first.Points[p].Workload,
			Collector: merged[p],
		}
	}
	return out, nil
}

// MergeFiles reads the given artifact files and merges them; error
// messages name the offending paths.
func MergeFiles(paths []string) (*Summary, error) {
	in := make([]Input, 0, len(paths))
	for _, path := range paths {
		s, err := Read(path)
		if err != nil {
			return nil, err
		}
		in = append(in, Input{Name: path, Sum: s})
	}
	return Merge(in)
}

// shardCoverage enforces the exact-coverage merge rules: one campaign
// identity, one k-way split, all k distinct shards present. Trial
// counts alone can balance out even when a shard is merged twice and
// another dropped — hence the index bookkeeping.
type shardCoverage struct {
	firstName, firstIdentity string
	count                    int
	seen                     map[int]string
}

// add validates one shard's identity and layout against those merged so
// far.
func (c *shardCoverage) add(name, identity string, index, count int) error {
	if count < 1 || index < 0 || index >= count {
		return fmt.Errorf("%s: invalid shard %d/%d", name, index, count)
	}
	if c.seen == nil {
		c.seen = make(map[int]string)
		c.firstName, c.firstIdentity, c.count = name, identity, count
	} else {
		if identity != c.firstIdentity {
			return fmt.Errorf("%s is from a different campaign:\n  %s\nvs %s:\n  %s",
				name, indent(identity), c.firstName, indent(c.firstIdentity))
		}
		if count != c.count {
			return fmt.Errorf("%s is shard %d/%d but %s is of a %d-way split",
				name, index, count, c.firstName, c.count)
		}
	}
	if prev, dup := c.seen[index]; dup {
		return fmt.Errorf("%s duplicates shard %d/%d already merged from %s",
			name, index, count, prev)
	}
	c.seen[index] = name
	return nil
}

// complete checks that every shard of the split was merged.
func (c *shardCoverage) complete() error {
	if len(c.seen) != c.count {
		return fmt.Errorf("got %d of %d shards — missing shard files", len(c.seen), c.count)
	}
	return nil
}

func indent(s string) string { return strings.ReplaceAll(s, "\n", "\n  ") }
