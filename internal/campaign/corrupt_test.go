package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multicast/internal/runner"
	"multicast/internal/sim"
)

// A summary artifact truncated at any byte boundary must either read
// back exactly (the cut only removed trailing whitespace) or fail with
// a wrapped ErrCorruptArtifact — never decode to a wrong-but-accepted
// summary, and never surface as a raw decode error.
func TestReadRejectsTruncatedArtifact(t *testing.T) {
	dir := t.TempDir()
	s := runShard(t, 3, 0, 2)
	path := filepath.Join(dir, "s.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.json")
	corrupt, intact := 0, 0
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(cut, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Read(cut)
		if err == nil {
			// Only a cut inside trailing whitespace can decode — and then
			// it must decode to the identical summary.
			rt, merr := json.Marshal(got)
			if merr != nil {
				t.Fatal(merr)
			}
			if string(rt) != string(want) {
				t.Fatalf("cut at byte %d of %d accepted with different content", n, len(data))
			}
			intact++
			continue
		}
		if !errors.Is(err, ErrCorruptArtifact) {
			t.Fatalf("cut at byte %d of %d: err = %v, want ErrCorruptArtifact", n, len(data), err)
		}
		corrupt++
	}
	// Sanity: the loop exercised the corrupt path (everything except the
	// final cut, which only drops the trailing newline).
	if corrupt < len(data)-1 || intact > 1 {
		t.Errorf("%d corrupt / %d intact cuts of %d bytes — truncation sweep looks wrong", corrupt, intact, len(data))
	}
}

// No single bit flip anywhere in an artifact may be silently accepted
// with changed content: it must fail Read (as corruption, a version
// refusal when it hits the version digits, or a validation error) or
// decode to the identical summary (a flip in insignificant whitespace).
func TestReadRejectsBitFlippedArtifact(t *testing.T) {
	dir := t.TempDir()
	s := runShard(t, 2, 1, 2)
	path := filepath.Join(dir, "s.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	flip := filepath.Join(dir, "flip.json")
	for n := range data {
		mut := append([]byte(nil), data...)
		mut[n] ^= 1 << (n % 8) // vary the flipped bit with position
		if err := os.WriteFile(flip, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Read(flip)
		if err != nil {
			continue // refused — any named refusal is a safe outcome
		}
		rt, merr := json.Marshal(got)
		if merr != nil {
			t.Fatal(merr)
		}
		if string(rt) != string(want) {
			t.Fatalf("flipping bit %d of byte %d was accepted with changed content", n%8, n)
		}
	}
}

// The checksum pins the whole content: semantically valid tampering
// (bump a count, reorder nothing) that plain decoding would accept must
// read as ErrCorruptArtifact.
func TestReadRejectsTamperedContent(t *testing.T) {
	dir := t.TempDir()
	s := runShard(t, 2, 0, 1)
	path := filepath.Join(dir, "s.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["seed"] = 9999 // decodes fine; checksum must catch it
	data, err = json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); !errors.Is(err, ErrCorruptArtifact) {
		t.Errorf("err = %v, want ErrCorruptArtifact", err)
	}
}

// A checkpoint sidecar torn at any byte boundary must either resume
// cleanly from the exact prefix state it persists or be refused as a
// wrapped ErrCorruptCheckpoint — never resume into a wrong-but-accepted
// state. The sidecar is compact JSON with a content checksum, so every
// proper prefix is a refusal and only an intact file resumes.
func TestCheckpointResumeTornSidecarEveryByte(t *testing.T) {
	const trials, shardIdx, shardCount = 4, 0, 2
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.ckpt")
	points := testPoints()
	shardTemplate := func() *Summary {
		s := template(trials).CloneEmpty()
		s.ShardIndex, s.ShardCount = shardIdx, shardCount
		return s
	}

	// Run two cells through a checkpointer to get a real mid-campaign
	// sidecar, keeping the bytes of both flush generations.
	var flush1, flush2 []byte
	ck := NewCheckpointer(path, shardTemplate(), 1)
	errStop := fmt.Errorf("stop")
	err := runner.RunSweep(context.Background(), points,
		runner.SweepPlan{Trials: trials, Shard: runner.Shard{Index: shardIdx, Count: shardCount}, Workers: 1},
		func(p, tr int, m sim.Metrics) error {
			if err := ck.Add(p, tr, m); err != nil {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			switch ck.Done() {
			case 1:
				flush1 = data
			case 2:
				flush2 = data
				return errStop
			}
			return nil
		})
	if !errors.Is(err, errStop) {
		t.Fatalf("seed run: %v", err)
	}

	// Every proper prefix of the current sidecar is a clean refusal.
	for cut := 0; cut < len(flush2); cut++ {
		if err := os.WriteFile(path, flush2[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		done, err := NewCheckpointer(path, shardTemplate(), 1).Resume()
		if err == nil {
			t.Fatalf("cut at byte %d of %d resumed with done=%d — wrong-but-accepted", cut, len(flush2), done)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("cut at byte %d of %d: err = %v, want ErrCorruptCheckpoint", cut, len(flush2), err)
		}
	}

	// The intact current and previous flush generations both resume
	// cleanly from exactly the state they persist — the
	// resume-from-prefix half of the contract (a torn write-then-rename
	// leaves the previous generation behind).
	for wantDone, data := range map[int][]byte{1: flush1, 2: flush2} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		done, err := NewCheckpointer(path, shardTemplate(), 1).Resume()
		if err != nil {
			t.Fatalf("flush %d: resume: %v", wantDone, err)
		}
		if done != wantDone {
			t.Errorf("flush %d: resumed at %d cells", wantDone, done)
		}
	}
}
