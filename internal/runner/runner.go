// Package runner is the trial execution layer: it fans a batch of
// independently seeded sim executions out over a worker pool and streams
// each trial's Metrics to a sink, so million-trial campaigns need O(1)
// memory and can span machines.
//
// Determinism contract (the trial-layer analogue of the engines'
// bit-identity): trial t always runs with seed cfg.Seed + t, derived
// purely from the trial index — never from worker identity, scheduling,
// or shard layout. Shard i of k runs exactly the trials t ≡ i (mod k),
// so the union of any shard partition's trials is the same multiset of
// executions as the unsharded run, bit for bit, regardless of Workers or
// machine count. The sink receives metrics in ascending trial order
// (workers run ahead out of order; a bounded reorder window puts results
// back in sequence), which makes streaming accumulation deterministic
// too.
//
// Failure semantics: the first error in trial order aborts the batch —
// the context is cancelled, queued trials are never started, and
// in-flight executions are interrupted via sim.Config.Interrupt. Nothing
// drains the queue after a failure.
//
// RunSweep lifts the same contract one level up, to multi-point
// experiment sweeps: the full (point × trial) grid is flattened into a
// single global index space (g = point·Trials + trial, cell seed =
// point's Seed + trial) and sharded across machines by g mod k, so a
// sweep sharded k ways and merged per point is bit-identical to the
// unsharded sweep. Both entry points share one worker-pool core
// (runGrid), so in-order delivery, cancellation, and first-error
// semantics are identical.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"multicast/internal/sim"
)

// Shard names one slice of a trial batch: Index of Count machines. The
// zero value means unsharded (the whole batch).
type Shard struct {
	// Index identifies this shard, 0 ≤ Index < Count.
	Index int
	// Count is the total number of shards. Zero means 1.
	Count int
}

// normalize resolves the zero value and validates.
func (s Shard) normalize() (Shard, error) {
	if s.Count == 0 && s.Index == 0 {
		return Shard{Index: 0, Count: 1}, nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return s, fmt.Errorf("runner: invalid shard %d/%d", s.Index, s.Count)
	}
	return s, nil
}

// Cells returns the number of grid cells in this shard's slice of a
// total-cell grid: indices g ≡ Index (mod Count) in [0, total). This is
// the one definition of the slice size — checkpoint and artifact
// completeness checks (internal/driver) must agree with the execution
// loop about it.
func (s Shard) Cells(total int) int {
	n, err := s.normalize()
	if err != nil || total <= n.Index {
		return 0
	}
	return (total - n.Index + n.Count - 1) / n.Count
}

// Plan describes one batch of trials.
type Plan struct {
	// Trials is the total number of trials across all shards. Seeds are
	// cfg.Seed + t for t ∈ [0, Trials).
	Trials int
	// Shard selects this machine's slice: trials t ≡ Shard.Index
	// (mod Shard.Count). The zero value runs everything.
	Shard Shard
	// Skip omits the first Skip trials of this shard's slice — trials a
	// resumed worker already completed and checkpointed (see
	// internal/campaign). Delivery continues, still in ascending order,
	// with the shard's (Skip+1)-th trial; skipping the whole slice runs
	// nothing and succeeds.
	Skip int
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Sink consumes one trial's metrics. It is called from a single
// goroutine in ascending trial order; returning an error aborts the
// batch like a trial failure.
type Sink func(trial int, m sim.Metrics) error

// result carries one finished trial to the in-order emitter.
type result struct {
	m   sim.Metrics
	err error
}

// Run executes plan's share of the trial batch of cfg and streams each
// trial's Metrics to sink in ascending trial order. It returns the first
// error in trial order (trial failure or sink error), or ctx.Err() if
// the context is cancelled first; either way queued trials are not
// started and in-flight executions are interrupted.
func Run(ctx context.Context, cfg sim.Config, plan Plan, sink Sink) error {
	if plan.Trials <= 0 {
		return fmt.Errorf("runner: trials = %d must be positive", plan.Trials)
	}
	return runGrid(ctx, plan.Trials, plan.Shard, plan.Skip, plan.Workers,
		func(done <-chan struct{}, exec *sim.Executor, t int) result {
			c := cfg
			c.Interrupt = done
			c.Seed = cfg.Seed + uint64(t)
			m, err := exec.Run(c)
			return result{m: m, err: err}
		},
		func(t int, r result) error {
			if r.err != nil {
				// An interrupt caused by the surrounding cancellation is
				// the context's error, not the trial's.
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("runner: trial %d (seed %d): %w", t, cfg.Seed+uint64(t), r.err)
			}
			return sink(t, r.m)
		})
}

// runGrid is the shared execution core of Run and RunSweep: it walks the
// global index space [0, total), restricted to this shard's slice
// (idx ≡ shard.Index mod shard.Count) minus its first skip cells, fans
// indices out over a worker pool, and hands each result to deliver in
// ascending index order. exec receives the cancellation channel to wire
// into sim.Config.Interrupt and a worker-local sim.Executor — each pool
// worker recycles one execution context across all the cells it runs, so
// a long campaign's steady-state trials reuse the engine's buffers
// instead of reallocating them (results are bit-identical either way).
// deliver owns error translation and the sink call, and its first error
// (in index order) cancels all outstanding work.
func runGrid(ctx context.Context, total int, reqShard Shard, skip, reqWorkers int,
	exec func(done <-chan struct{}, ex *sim.Executor, idx int) result,
	deliver func(idx int, r result) error) error {
	shard, err := reqShard.normalize()
	if err != nil {
		return err
	}
	if skip < 0 {
		return fmt.Errorf("runner: skip = %d must not be negative", skip)
	}
	// This shard's grid cells, minus those a resumed worker already
	// completed.
	local := shard.Cells(total) - skip
	if local <= 0 {
		return ctx.Err()
	}
	start := shard.Index + skip*shard.Count
	workers := reqWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > local {
		workers = local
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := runCtx.Done()

	if workers == 1 {
		// Serial fast path: no goroutines, same semantics.
		ex := sim.NewExecutor()
		for idx := start; idx < total; idx += shard.Count {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := deliver(idx, exec(done, ex, idx)); err != nil {
				return err
			}
		}
		return nil
	}

	type job struct {
		idx int
		out chan result
	}
	jobs := make(chan job)
	// futures carries each cell's result slot in dispatch (= index)
	// order; its capacity bounds how far workers run ahead of the
	// in-order emitter, so reorder memory is O(workers), not O(total).
	futures := make(chan chan result, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := sim.NewExecutor() // recycled across this worker's cells
			for j := range jobs {
				j.out <- exec(done, ex, j.idx) // buffered: never blocks
			}
		}()
	}
	go func() {
		defer close(jobs)
		defer close(futures)
		for idx := start; idx < total; idx += shard.Count {
			out := make(chan result, 1)
			select {
			case futures <- out:
			case <-runCtx.Done():
				return
			}
			select {
			case jobs <- job{idx: idx, out: out}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	next := start
	var firstErr error
	for out := range futures {
		if firstErr != nil {
			continue // drain closed-over futures after cancellation
		}
		var r result
		select {
		case r = <-out:
		case <-runCtx.Done():
			firstErr = ctx.Err()
			if firstErr == nil {
				firstErr = runCtx.Err()
			}
			cancel()
			continue
		}
		if err := deliver(next, r); err != nil {
			firstErr = err
			cancel()
			continue
		}
		next += shard.Count
	}
	cancel()
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// All runs the whole batch unsharded and buffers every trial's metrics
// in trial order — the compatibility shape of the old sim.RunTrials.
// Prefer Run with a streaming sink for large batches.
func All(ctx context.Context, cfg sim.Config, trials int) ([]sim.Metrics, error) {
	ms := make([]sim.Metrics, 0, max(trials, 0))
	err := Run(ctx, cfg, Plan{Trials: trials}, func(_ int, m sim.Metrics) error {
		ms = append(ms, m)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ms, nil
}
