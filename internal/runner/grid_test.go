package runner

import (
	"context"
	"strings"
	"testing"

	"multicast/internal/sim"
)

// Grid.RunCell is the cell-granular entry point schedulers build on: a
// cell run alone must be bit-identical to the same cell delivered by
// RunSweep, for every cell of the grid — otherwise a scheduler that
// hands out cells one at a time (the driver's work-stealing pool) would
// diverge from the static layout.
func TestGridRunCellMatchesSweep(t *testing.T) {
	points := sweepPoints()
	const trials = 3
	grid, err := NewGrid(points, trials)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Total() != len(points)*trials {
		t.Fatalf("Total() = %d, want %d", grid.Total(), len(points)*trials)
	}

	want := make([]sim.Metrics, grid.Total())
	err = RunSweep(context.Background(), points, SweepPlan{Trials: trials, Workers: 2},
		func(p, tr int, m sim.Metrics) error {
			want[p*trials+tr] = m
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	ex := sim.NewExecutor()
	// Walk the cells in a scrambled order: cell identity must not depend
	// on execution order or on which executor ran the previous cell.
	for off := grid.Total() - 1; off >= 0; off-- {
		g := (off * 5) % grid.Total() // 5 ⊥ 9: a permutation of the grid
		m, err := grid.RunCell(nil, ex, g)
		if err != nil {
			t.Fatalf("cell %d: %v", g, err)
		}
		if m != want[g] {
			t.Errorf("cell %d: RunCell %+v != sweep %+v", g, m, want[g])
		}
		p, tr := grid.Split(g)
		if p != g/trials || tr != g%trials {
			t.Errorf("Split(%d) = (%d,%d), want (%d,%d)", g, p, tr, g/trials, g%trials)
		}
		if got, want := grid.Seed(g), points[p].Seed+uint64(tr); got != want {
			t.Errorf("Seed(%d) = %d, want %d", g, got, want)
		}
	}
}

// NewGrid guards the same shapes RunSweep refuses.
func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(nil, 3); err == nil || !strings.Contains(err.Error(), "at least one point") {
		t.Errorf("nil points: err = %v", err)
	}
	if _, err := NewGrid(sweepPoints(), 0); err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Errorf("zero trials: err = %v", err)
	}
	if _, err := NewGrid(sweepPoints(), int(^uint(0)>>1)); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Errorf("overflow: err = %v", err)
	}
}

// A failing cell names itself: global index, point, trial, and seed.
func TestGridRunCellErrorNamesCell(t *testing.T) {
	points := sweepPoints()
	grid, err := NewGrid(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	interrupt := make(chan struct{})
	close(interrupt) // every execution aborts immediately
	_, err = grid.RunCell(interrupt, sim.NewExecutor(), 3)
	if err == nil || !strings.Contains(err.Error(), "cell 3 (point 1 trial 1") {
		t.Errorf("err = %v, want the cell named", err)
	}
}
