package runner

import (
	"fmt"
	"math"

	"multicast/internal/sim"
)

// Grid is the flattened (point × trial) index space of a sweep — the
// cell-granular execution entry point under RunSweep and the campaign
// driver's schedulers. Cell g = p·Trials + t runs point p's workload
// with seed points[p].Seed + t, the same determinism contract RunSweep
// states; Grid just exposes it one cell at a time, so a scheduler that
// hands out arbitrary cell ranges (e.g. internal/driver's work-stealing
// pool) computes exactly the executions the static mod-k layout would.
type Grid struct {
	// Points are the workload points, in sweep order.
	Points []sim.Config
	// Trials is the trial count per point.
	Trials int
	// Cache, when non-nil, is consulted before a cell simulates and
	// fed after it does — the content-addressed result cache seam. A
	// hit must return exactly the metrics the simulation would have
	// produced (the cache layer's checksum discipline guarantees a
	// damaged entry reads as a miss instead), so a cached cell is
	// indistinguishable from a computed one to every layer above.
	Cache CellCache
}

// CellCache is the lookup/store seam Grid.RunCell threads cell results
// through, keyed by global grid index. Implementations (see
// internal/driver) map the index to a content address derived from the
// cell's identity. Load and Store are called concurrently from worker
// goroutines.
type CellCache interface {
	// Load returns the cached metrics of cell idx, or ok == false to
	// make the cell simulate. It must never return damaged data.
	Load(idx int) (m sim.Metrics, ok bool)
	// Store records cell idx's freshly computed metrics, best-effort:
	// a failed store may only cost a future re-simulation.
	Store(idx int, m sim.Metrics)
}

// NewGrid validates the grid shape: at least one point, a positive
// per-point trial count, and a total cell count that fits in an int.
func NewGrid(points []sim.Config, trials int) (Grid, error) {
	if len(points) == 0 {
		return Grid{}, fmt.Errorf("runner: grid needs at least one point")
	}
	if trials <= 0 {
		return Grid{}, fmt.Errorf("runner: trials per point = %d must be positive", trials)
	}
	if trials > math.MaxInt/len(points) {
		return Grid{}, fmt.Errorf("runner: grid %d×%d overflows", len(points), trials)
	}
	return Grid{Points: points, Trials: trials}, nil
}

// Total is the number of grid cells, len(Points) · Trials.
func (g Grid) Total() int { return len(g.Points) * g.Trials }

// Split resolves global index idx into its (point, trial) pair.
func (g Grid) Split(idx int) (point, trial int) {
	return idx / g.Trials, idx % g.Trials
}

// Seed is the seed cell idx runs with: its point's base seed plus its
// trial index — exactly the seed the trial uses when the point runs
// alone through Run.
func (g Grid) Seed(idx int) uint64 {
	p, t := g.Split(idx)
	return g.Points[p].Seed + uint64(t)
}

// RunCell executes one grid cell on the given executor, wiring
// interrupt into the execution's cancellation hook. Which goroutine or
// machine calls it never affects the result — the cell is a pure
// function of (point workload, seed). Failures name the cell.
func (g Grid) RunCell(interrupt <-chan struct{}, ex *sim.Executor, idx int) (sim.Metrics, error) {
	m, err := g.run(interrupt, ex, idx)
	if err != nil {
		p, t := g.Split(idx)
		return m, fmt.Errorf("runner: cell %d (point %d trial %d, seed %d): %w",
			idx, p, t, g.Seed(idx), err)
	}
	return m, nil
}

// run executes one cell and returns the engine's error untouched — the
// shared core of RunCell and RunSweep, which wrap failures in their own
// vocabularies. With a Cache attached, a hit short-circuits the
// simulation entirely and a computed result is stored back; cells are
// pure functions of their identity, so either path yields the same
// metrics.
func (g Grid) run(interrupt <-chan struct{}, ex *sim.Executor, idx int) (sim.Metrics, error) {
	if g.Cache != nil {
		if m, ok := g.Cache.Load(idx); ok {
			return m, nil
		}
	}
	p, t := g.Split(idx)
	c := g.Points[p]
	c.Interrupt = interrupt
	c.Seed += uint64(t)
	m, err := ex.Run(c)
	if err == nil && g.Cache != nil {
		g.Cache.Store(idx, m)
	}
	return m, err
}
