package runner

import (
	"fmt"
	"math"

	"multicast/internal/sim"
)

// Grid is the flattened (point × trial) index space of a sweep — the
// cell-granular execution entry point under RunSweep and the campaign
// driver's schedulers. Cell g = p·Trials + t runs point p's workload
// with seed points[p].Seed + t, the same determinism contract RunSweep
// states; Grid just exposes it one cell at a time, so a scheduler that
// hands out arbitrary cell ranges (e.g. internal/driver's work-stealing
// pool) computes exactly the executions the static mod-k layout would.
type Grid struct {
	// Points are the workload points, in sweep order.
	Points []sim.Config
	// Trials is the trial count per point.
	Trials int
}

// NewGrid validates the grid shape: at least one point, a positive
// per-point trial count, and a total cell count that fits in an int.
func NewGrid(points []sim.Config, trials int) (Grid, error) {
	if len(points) == 0 {
		return Grid{}, fmt.Errorf("runner: grid needs at least one point")
	}
	if trials <= 0 {
		return Grid{}, fmt.Errorf("runner: trials per point = %d must be positive", trials)
	}
	if trials > math.MaxInt/len(points) {
		return Grid{}, fmt.Errorf("runner: grid %d×%d overflows", len(points), trials)
	}
	return Grid{Points: points, Trials: trials}, nil
}

// Total is the number of grid cells, len(Points) · Trials.
func (g Grid) Total() int { return len(g.Points) * g.Trials }

// Split resolves global index idx into its (point, trial) pair.
func (g Grid) Split(idx int) (point, trial int) {
	return idx / g.Trials, idx % g.Trials
}

// Seed is the seed cell idx runs with: its point's base seed plus its
// trial index — exactly the seed the trial uses when the point runs
// alone through Run.
func (g Grid) Seed(idx int) uint64 {
	p, t := g.Split(idx)
	return g.Points[p].Seed + uint64(t)
}

// RunCell executes one grid cell on the given executor, wiring
// interrupt into the execution's cancellation hook. Which goroutine or
// machine calls it never affects the result — the cell is a pure
// function of (point workload, seed). Failures name the cell.
func (g Grid) RunCell(interrupt <-chan struct{}, ex *sim.Executor, idx int) (sim.Metrics, error) {
	m, err := g.run(interrupt, ex, idx)
	if err != nil {
		p, t := g.Split(idx)
		return m, fmt.Errorf("runner: cell %d (point %d trial %d, seed %d): %w",
			idx, p, t, g.Seed(idx), err)
	}
	return m, nil
}

// run executes one cell and returns the engine's error untouched — the
// shared core of RunCell and RunSweep, which wrap failures in their own
// vocabularies.
func (g Grid) run(interrupt <-chan struct{}, ex *sim.Executor, idx int) (sim.Metrics, error) {
	p, t := g.Split(idx)
	c := g.Points[p]
	c.Interrupt = interrupt
	c.Seed += uint64(t)
	return ex.Run(c)
}
