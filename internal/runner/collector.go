package runner

import (
	"encoding/json"
	"fmt"

	"multicast/internal/sim"
	"multicast/internal/stats"
)

// Collector streams the headline per-trial metrics into mergeable
// accumulators: the standard sink for statistical campaigns. Shards fill
// one Collector each (in trial order — Run guarantees that), marshal it
// to JSON, and any machine can Merge the artifacts into the summary the
// unsharded run would have produced (bit-identical while the total trial
// count stays within the accumulators' sample cap; see stats.Accumulator
// for the above-cap approximation).
type Collector struct {
	trials       int64
	slots        *stats.Accumulator
	maxEnergy    *stats.Accumulator
	sourceEnergy *stats.Accumulator
	meanEnergy   *stats.Accumulator
	eveEnergy    *stats.Accumulator
	allInformed  *stats.Accumulator
	invariants   sim.InvariantCounts
}

// NewCollector returns an empty collector with the default sample cap.
func NewCollector() *Collector { return NewCollectorCap(stats.DefaultSampleCap) }

// NewCollectorCap returns an empty collector whose accumulators retain
// up to capSamples raw samples each.
func NewCollectorCap(capSamples int) *Collector {
	return &Collector{
		slots:        stats.NewAccumulatorCap(capSamples),
		maxEnergy:    stats.NewAccumulatorCap(capSamples),
		sourceEnergy: stats.NewAccumulatorCap(capSamples),
		meanEnergy:   stats.NewAccumulatorCap(capSamples),
		eveEnergy:    stats.NewAccumulatorCap(capSamples),
		allInformed:  stats.NewAccumulatorCap(capSamples),
	}
}

// Add folds one trial's metrics in; it has the Sink signature.
func (c *Collector) Add(_ int, m sim.Metrics) error {
	c.trials++
	c.slots.AddInt64(m.Slots)
	c.maxEnergy.AddInt64(m.MaxNodeEnergy)
	c.sourceEnergy.AddInt64(m.SourceEnergy)
	c.meanEnergy.Add(m.MeanNodeEnergy)
	c.eveEnergy.AddInt64(m.EveEnergy)
	c.allInformed.AddInt64(m.AllInformedSlot)
	c.invariants.Add(m.Invariants)
	return nil
}

// Merge folds other into c, as if other's trials had been added here.
func (c *Collector) Merge(other *Collector) {
	c.trials += other.trials
	c.slots.Merge(other.slots)
	c.maxEnergy.Merge(other.maxEnergy)
	c.sourceEnergy.Merge(other.sourceEnergy)
	c.meanEnergy.Merge(other.meanEnergy)
	c.eveEnergy.Merge(other.eveEnergy)
	c.allInformed.Merge(other.allInformed)
	c.invariants.Add(other.invariants)
}

// Trials returns the number of trials folded in (across merges).
func (c *Collector) Trials() int64 { return c.trials }

// Invariants returns the summed safety-violation counts.
func (c *Collector) Invariants() sim.InvariantCounts { return c.invariants }

// Slots summarizes the per-trial slot counts.
func (c *Collector) Slots() stats.Summary { return c.slots.Summary() }

// MaxEnergy summarizes the per-trial max node energies.
func (c *Collector) MaxEnergy() stats.Summary { return c.maxEnergy.Summary() }

// SourceEnergy summarizes the per-trial source energies.
func (c *Collector) SourceEnergy() stats.Summary { return c.sourceEnergy.Summary() }

// MeanEnergy summarizes the per-trial mean node energies.
func (c *Collector) MeanEnergy() stats.Summary { return c.meanEnergy.Summary() }

// EveEnergy summarizes the per-trial adversary spends.
func (c *Collector) EveEnergy() stats.Summary { return c.eveEnergy.Summary() }

// AllInformed summarizes the per-trial all-informed slots (-1 = never).
func (c *Collector) AllInformed() stats.Summary { return c.allInformed.Summary() }

// collectorJSON is the Collector wire format (the payload of shard
// summary files written by cmd/mcast -summary-out).
type collectorJSON struct {
	Trials       int64               `json:"trials"`
	Slots        *stats.Accumulator  `json:"slots"`
	MaxEnergy    *stats.Accumulator  `json:"max_node_energy"`
	SourceEnergy *stats.Accumulator  `json:"source_energy"`
	MeanEnergy   *stats.Accumulator  `json:"mean_node_energy"`
	EveEnergy    *stats.Accumulator  `json:"eve_energy"`
	AllInformed  *stats.Accumulator  `json:"all_informed_slot"`
	Invariants   sim.InvariantCounts `json:"invariants"`
}

// MarshalJSON encodes the full collector state for cross-machine merges.
func (c *Collector) MarshalJSON() ([]byte, error) {
	return json.Marshal(collectorJSON{
		Trials:       c.trials,
		Slots:        c.slots,
		MaxEnergy:    c.maxEnergy,
		SourceEnergy: c.sourceEnergy,
		MeanEnergy:   c.meanEnergy,
		EveEnergy:    c.eveEnergy,
		AllInformed:  c.allInformed,
		Invariants:   c.invariants,
	})
}

// UnmarshalJSON restores a collector marshalled by MarshalJSON.
func (c *Collector) UnmarshalJSON(data []byte) error {
	j := collectorJSON{
		Slots:        stats.NewAccumulator(),
		MaxEnergy:    stats.NewAccumulator(),
		SourceEnergy: stats.NewAccumulator(),
		MeanEnergy:   stats.NewAccumulator(),
		EveEnergy:    stats.NewAccumulator(),
		AllInformed:  stats.NewAccumulator(),
	}
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	// An explicit JSON null overwrites the pre-seeded accumulators with
	// nil; reject that as corrupt rather than crashing later.
	for _, a := range []*stats.Accumulator{
		j.Slots, j.MaxEnergy, j.SourceEnergy, j.MeanEnergy, j.EveEnergy, j.AllInformed,
	} {
		if a == nil {
			return fmt.Errorf("runner: collector state is missing an accumulator")
		}
	}
	if j.Trials < 0 || j.Trials != j.Slots.Count() {
		return fmt.Errorf("runner: inconsistent collector state (trials=%d, slots count=%d)",
			j.Trials, j.Slots.Count())
	}
	*c = Collector{
		trials:       j.Trials,
		slots:        j.Slots,
		maxEnergy:    j.MaxEnergy,
		sourceEnergy: j.SourceEnergy,
		meanEnergy:   j.MeanEnergy,
		eveEnergy:    j.EveEnergy,
		allInformed:  j.AllInformed,
		invariants:   j.Invariants,
	}
	return nil
}
