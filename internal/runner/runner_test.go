package runner

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
	"multicast/internal/stats"
)

func mcCore(n int, t int64) func() (protocol.Algorithm, error) {
	return func() (protocol.Algorithm, error) { return core.NewMultiCastCore(core.Sim(), n, t) }
}

func mcast(n int) func() (protocol.Algorithm, error) {
	return func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), n) }
}

func baseCfg() sim.Config {
	return sim.Config{
		N: 64, Algorithm: mcast(64),
		Adversary: adversary.RandomFraction(0.3), Budget: 20_000, Seed: 7,
	}
}

// The runner must deliver exactly the serial per-seed metrics, in
// ascending trial order, whatever the worker count.
func TestRunMatchesSerialInOrder(t *testing.T) {
	cfg := baseCfg()
	const trials = 8
	want := make([]sim.Metrics, trials)
	for i := range want {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		m, err := sim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}
	for _, workers := range []int{1, 2, 5} {
		var got []sim.Metrics
		var order []int
		err := Run(context.Background(), cfg, Plan{Trials: trials, Workers: workers},
			func(trial int, m sim.Metrics) error {
				order = append(order, trial)
				got = append(got, m)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != trials {
			t.Fatalf("workers=%d: %d trials delivered, want %d", workers, len(got), trials)
		}
		for i := range got {
			if order[i] != i {
				t.Fatalf("workers=%d: sink order %v not ascending", workers, order)
			}
			if got[i] != want[i] {
				t.Fatalf("workers=%d trial %d: %+v != serial %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := sim.Config{N: 64, Algorithm: mcCore(64, 0)}
	nop := func(int, sim.Metrics) error { return nil }
	if err := Run(context.Background(), cfg, Plan{Trials: 0}, nop); err == nil {
		t.Error("accepted zero trials")
	}
	for _, s := range []Shard{{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: -1}} {
		if err := Run(context.Background(), cfg, Plan{Trials: 4, Shard: s}, nop); err == nil {
			t.Errorf("accepted shard %+v", s)
		}
	}
}

func TestRunEmptyShard(t *testing.T) {
	called := false
	err := Run(context.Background(), baseCfg(), Plan{Trials: 2, Shard: Shard{Index: 5, Count: 7}},
		func(int, sim.Metrics) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("empty shard: err=%v called=%v", err, called)
	}
}

// Shard determinism: for any partition into k shards, each run with its
// own worker count, the merged summaries are bit-identical to the
// unsharded run's — the trial-layer extension of the engine-equivalence
// philosophy. Also round-trips every shard through JSON, the
// cross-machine path.
func TestShardMergeBitIdentical(t *testing.T) {
	cfg := baseCfg()
	const trials = 21
	whole := NewCollector()
	if err := Run(context.Background(), cfg, Plan{Trials: trials, Workers: 3}, whole.Add); err != nil {
		t.Fatal(err)
	}
	type summaries struct {
		slots, maxE, srcE, meanE, eveE, informed stats.Summary
	}
	wholeSum := summaries{
		whole.Slots(), whole.MaxEnergy(), whole.SourceEnergy(),
		whole.MeanEnergy(), whole.EveEnergy(), whole.AllInformed(),
	}
	for _, k := range []int{1, 2, 3, 7} {
		merged := NewCollector()
		for i := 0; i < k; i++ {
			shard := NewCollector()
			err := Run(context.Background(), cfg,
				Plan{Trials: trials, Shard: Shard{Index: i, Count: k}, Workers: i%3 + 1},
				shard.Add)
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, i, err)
			}
			// Cross-machine path: shard → JSON → merge.
			data, err := json.Marshal(shard)
			if err != nil {
				t.Fatalf("k=%d shard %d: marshal: %v", k, i, err)
			}
			restored := NewCollector()
			if err := json.Unmarshal(data, restored); err != nil {
				t.Fatalf("k=%d shard %d: unmarshal: %v", k, i, err)
			}
			merged.Merge(restored)
		}
		if merged.Trials() != trials {
			t.Fatalf("k=%d: merged %d trials, want %d", k, merged.Trials(), trials)
		}
		got := summaries{
			merged.Slots(), merged.MaxEnergy(), merged.SourceEnergy(),
			merged.MeanEnergy(), merged.EveEnergy(), merged.AllInformed(),
		}
		if got != wholeSum {
			t.Errorf("k=%d: merged summaries diverge from unsharded run:\n got %+v\nwant %+v",
				k, got, wholeSum)
		}
		if merged.Invariants() != whole.Invariants() {
			t.Errorf("k=%d: invariant counts diverge", k)
		}
	}
}

// A failing trial mid-batch must abort promptly: the error reported is
// the first in trial order, and the runner does not drain the queue.
func TestFirstErrorAbortsWithoutDraining(t *testing.T) {
	const trials = 500
	var started atomic.Int64
	cfg := sim.Config{
		N: 64,
		Algorithm: func() (protocol.Algorithm, error) {
			started.Add(1)
			return core.NewMultiCastCore(core.Sim(), 64, 1<<40)
		},
		// A full burst against an unbounded budget blocks MultiCastCore
		// past any horizon, so every trial fails at MaxSlots.
		Adversary: adversary.FullBurst(0), Budget: 1 << 40,
		Seed: 1, MaxSlots: 2000,
	}
	var delivered int
	err := Run(context.Background(), cfg, Plan{Trials: trials, Workers: 4},
		func(int, sim.Metrics) error { delivered++; return nil })
	if !errors.Is(err, sim.ErrMaxSlots) {
		t.Fatalf("err = %v, want ErrMaxSlots", err)
	}
	if !strings.Contains(err.Error(), "trial 0 (seed 1)") {
		t.Errorf("error %q does not name the first failing trial in seed order", err)
	}
	if delivered != 0 {
		t.Errorf("%d results delivered after first-trial failure", delivered)
	}
	if n := started.Load(); n >= trials/2 {
		t.Errorf("runner drained the queue: %d of %d trials started after the failure", n, trials)
	}
}

// A sink error behaves like a trial failure: abort, don't drain.
func TestSinkErrorAborts(t *testing.T) {
	const trials = 400
	var started atomic.Int64
	cfg := baseCfg()
	inner := cfg.Algorithm
	cfg.Algorithm = func() (protocol.Algorithm, error) {
		started.Add(1)
		return inner()
	}
	sinkErr := errors.New("sink full")
	var delivered []int
	err := Run(context.Background(), cfg, Plan{Trials: trials, Workers: 4},
		func(trial int, _ sim.Metrics) error {
			if trial == 8 {
				return sinkErr
			}
			delivered = append(delivered, trial)
			return nil
		})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if len(delivered) != 8 {
		t.Errorf("delivered %v, want exactly trials 0..7", delivered)
	}
	if n := started.Load(); n >= trials/2 {
		t.Errorf("runner drained the queue after sink error: %d trials started", n)
	}
}

// Cancelling the context mid-batch must interrupt in-flight executions
// (which would otherwise run ~10⁸ slots each) and return promptly.
func TestContextCancelInterruptsInFlight(t *testing.T) {
	cfg := sim.Config{
		N: 64, Algorithm: mcCore(64, 1<<40),
		Adversary: adversary.FullBurst(0), Budget: 1 << 40,
		Seed: 1, MaxSlots: 1 << 27,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	startedAt := time.Now()
	err := Run(ctx, cfg, Plan{Trials: 100, Workers: 2},
		func(int, sim.Metrics) error { return nil })
	elapsed := time.Since(startedAt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: without the interrupt hook each in-flight trial
	// would grind through 2²⁷ jammed slots (tens of seconds).
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — in-flight trials were not interrupted", elapsed)
	}
}

func TestAllCompat(t *testing.T) {
	cfg := baseCfg()
	ms, err := All(context.Background(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d metrics", len(ms))
	}
	c := cfg
	c.Seed = cfg.Seed + 3
	want, err := sim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if ms[3] != want {
		t.Fatalf("All()[3] = %+v, want %+v", ms[3], want)
	}
}

func TestCollectorJSONRejectsInconsistent(t *testing.T) {
	c := NewCollector()
	if err := c.Add(0, sim.Metrics{Slots: 10, MaxNodeEnergy: 3, MeanNodeEnergy: 1.5}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(data), `"trials":1`, `"trials":5`, 1)
	var d Collector
	if err := json.Unmarshal([]byte(corrupt), &d); err == nil {
		t.Error("accepted collector with trials ≠ accumulator count")
	}
}

// BenchmarkRunTrialsParallel measures trial-level scaling across cores
// (successor of the old sim.RunTrials benchmark).
func BenchmarkRunTrialsParallel(b *testing.B) {
	const n = 128
	cfg := sim.Config{
		N:         n,
		Algorithm: mcast(n),
		Adversary: adversary.FullBurst(0),
		Budget:    20_000,
		Seed:      1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := All(context.Background(), cfg, 16); err != nil {
			b.Fatal(err)
		}
	}
}
