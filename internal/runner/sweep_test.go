package runner

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/sim"
	"multicast/internal/stats"
)

// sweepPoints builds a small three-point workload grid with distinct
// populations and adversaries, so cross-point mixups cannot cancel out.
func sweepPoints() []sim.Config {
	return []sim.Config{
		{N: 32, Algorithm: mcast(32), Adversary: adversary.RandomFraction(0.3), Budget: 10_000, Seed: 7},
		{N: 64, Algorithm: mcast(64), Adversary: adversary.FullBurst(0), Budget: 15_000, Seed: 101},
		{N: 64, Algorithm: mcCore(64, 8_000), Adversary: adversary.BlockFraction(0.5), Budget: 8_000, Seed: 3},
	}
}

// Every sweep cell must be bit-identical to the same trial run through
// the single-point runner, and cells must arrive in global grid order.
func TestSweepMatchesPerPointRuns(t *testing.T) {
	points := sweepPoints()
	const trials = 4
	want := make([][]sim.Metrics, len(points))
	for p, cfg := range points {
		ms, err := All(context.Background(), cfg, trials)
		if err != nil {
			t.Fatalf("point %d: %v", p, err)
		}
		want[p] = ms
	}
	for _, workers := range []int{1, 3} {
		var lastG = -1
		got := make([][]sim.Metrics, len(points))
		err := RunSweep(context.Background(), points, SweepPlan{Trials: trials, Workers: workers},
			func(p, tr int, m sim.Metrics) error {
				g := p*trials + tr
				if g <= lastG {
					t.Fatalf("workers=%d: cell (%d,%d) delivered out of grid order", workers, p, tr)
				}
				lastG = g
				got[p] = append(got[p], m)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for p := range points {
			if len(got[p]) != trials {
				t.Fatalf("workers=%d point %d: %d trials, want %d", workers, p, len(got[p]), trials)
			}
			for tr := range got[p] {
				if got[p][tr] != want[p][tr] {
					t.Errorf("workers=%d cell (%d,%d): sweep %+v != single-point %+v",
						workers, p, tr, got[p][tr], want[p][tr])
				}
			}
		}
	}
}

// Sweep-shard determinism (the sweep-level mirror of the PR 3
// trial-level test): shard the flattened grid k ways at mixed worker
// counts, merge the per-point collectors across shards through JSON,
// and require per-point summaries bit-identical to the unsharded sweep.
func TestSweepShardMergeBitIdentical(t *testing.T) {
	points := sweepPoints()
	const trials = 7
	collect := func() []*Collector {
		cols := make([]*Collector, len(points))
		for i := range cols {
			cols[i] = NewCollector()
		}
		return cols
	}
	whole := collect()
	err := RunSweep(context.Background(), points, SweepPlan{Trials: trials, Workers: 3},
		func(p, tr int, m sim.Metrics) error { return whole[p].Add(tr, m) })
	if err != nil {
		t.Fatal(err)
	}
	type summaries struct {
		slots, maxE, srcE, meanE, eveE, informed stats.Summary
	}
	sumOf := func(c *Collector) summaries {
		return summaries{
			c.Slots(), c.MaxEnergy(), c.SourceEnergy(),
			c.MeanEnergy(), c.EveEnergy(), c.AllInformed(),
		}
	}
	for _, k := range []int{1, 3} {
		merged := collect()
		for i := 0; i < k; i++ {
			shard := collect()
			err := RunSweep(context.Background(), points,
				SweepPlan{Trials: trials, Shard: Shard{Index: i, Count: k}, Workers: i%3 + 1},
				func(p, tr int, m sim.Metrics) error { return shard[p].Add(tr, m) })
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, i, err)
			}
			// Cross-machine path: per-point collector → JSON → merge.
			for p := range points {
				data, err := json.Marshal(shard[p])
				if err != nil {
					t.Fatalf("k=%d shard %d point %d: marshal: %v", k, i, p, err)
				}
				restored := NewCollector()
				if err := json.Unmarshal(data, restored); err != nil {
					t.Fatalf("k=%d shard %d point %d: unmarshal: %v", k, i, p, err)
				}
				merged[p].Merge(restored)
			}
		}
		for p := range points {
			if merged[p].Trials() != trials {
				t.Fatalf("k=%d point %d: merged %d trials, want %d", k, p, merged[p].Trials(), trials)
			}
			if got, want := sumOf(merged[p]), sumOf(whole[p]); got != want {
				t.Errorf("k=%d point %d: merged summaries diverge from unsharded sweep:\n got %+v\nwant %+v",
					k, p, got, want)
			}
			if merged[p].Invariants() != whole[p].Invariants() {
				t.Errorf("k=%d point %d: invariant counts diverge", k, p)
			}
		}
	}
}

func TestSweepValidation(t *testing.T) {
	nop := func(int, int, sim.Metrics) error { return nil }
	if err := RunSweep(context.Background(), nil, SweepPlan{Trials: 3}, nop); err == nil {
		t.Error("accepted an empty point list")
	}
	points := sweepPoints()[:1]
	if err := RunSweep(context.Background(), points, SweepPlan{Trials: 0}, nop); err == nil {
		t.Error("accepted zero trials per point")
	}
	bad := SweepPlan{Trials: 2, Shard: Shard{Index: 3, Count: 2}}
	if err := RunSweep(context.Background(), points, bad, nop); err == nil {
		t.Error("accepted an out-of-range shard")
	}
}

// Skip is the checkpoint-resume hook: a sweep resumed with Skip=d must
// deliver exactly the shard's cells after its first d, in the same order
// and bit-identical to the uninterrupted run — and skipping the whole
// slice must run nothing and succeed.
func TestSweepSkipResumesAtNextUndoneCell(t *testing.T) {
	points := sweepPoints()
	const trials, k = 5, 2
	for i := 0; i < k; i++ {
		sh := Shard{Index: i, Count: k}
		type cell struct {
			p, t int
			m    sim.Metrics
		}
		var whole []cell
		err := RunSweep(context.Background(), points, SweepPlan{Trials: trials, Shard: sh, Workers: 2},
			func(p, tr int, m sim.Metrics) error { whole = append(whole, cell{p, tr, m}); return nil })
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		for _, skip := range []int{0, 1, 3, len(whole), len(whole) + 7} {
			var got []cell
			err := RunSweep(context.Background(), points,
				SweepPlan{Trials: trials, Shard: sh, Skip: skip, Workers: 2},
				func(p, tr int, m sim.Metrics) error { got = append(got, cell{p, tr, m}); return nil })
			if err != nil {
				t.Fatalf("shard %d skip %d: %v", i, skip, err)
			}
			want := whole[min(skip, len(whole)):]
			if len(got) != len(want) {
				t.Fatalf("shard %d skip %d: %d cells, want %d", i, skip, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("shard %d skip %d cell %d: %+v != %+v", i, skip, j, got[j], want[j])
				}
			}
		}
	}
	nop := func(int, int, sim.Metrics) error { return nil }
	if err := RunSweep(context.Background(), points, SweepPlan{Trials: 2, Skip: -1}, nop); err == nil {
		t.Error("accepted a negative skip")
	}
}

// Plan.Skip must give the single-config runner the same resume
// semantics as SweepPlan.Skip: the shard's trial stream minus its first
// d trials, bit-identical and in order.
func TestRunSkipResumesAtNextUndoneTrial(t *testing.T) {
	cfg := baseCfg()
	const trials = 9
	sh := Shard{Index: 1, Count: 2}
	type cell struct {
		t int
		m sim.Metrics
	}
	var whole []cell
	err := Run(context.Background(), cfg, Plan{Trials: trials, Shard: sh, Workers: 2},
		func(tr int, m sim.Metrics) error { whole = append(whole, cell{tr, m}); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, skip := range []int{0, 2, len(whole), len(whole) + 3} {
		var got []cell
		err := Run(context.Background(), cfg, Plan{Trials: trials, Shard: sh, Skip: skip, Workers: 2},
			func(tr int, m sim.Metrics) error { got = append(got, cell{tr, m}); return nil })
		if err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		want := whole[min(skip, len(whole)):]
		if len(got) != len(want) {
			t.Fatalf("skip %d: %d trials, want %d", skip, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("skip %d trial %d: %+v != %+v", skip, j, got[j], want[j])
			}
		}
	}
	if err := Run(context.Background(), cfg, Plan{Trials: 2, Skip: -1},
		func(int, sim.Metrics) error { return nil }); err == nil {
		t.Error("accepted a negative skip")
	}
}

// A failing cell must surface its point and trial coordinates — an
// operator debugging a 40-point sweep needs to know which workload died.
func TestSweepErrorNamesPointAndTrial(t *testing.T) {
	points := sweepPoints()
	// Point 1 is a full burst with an enormous budget and a tiny slot
	// horizon: every one of its cells fails at MaxSlots.
	points[1].Budget = 1 << 40
	points[1].MaxSlots = 500
	err := RunSweep(context.Background(), points, SweepPlan{Trials: 2, Workers: 2},
		func(int, int, sim.Metrics) error { return nil })
	if !errors.Is(err, sim.ErrMaxSlots) {
		t.Fatalf("err = %v, want ErrMaxSlots", err)
	}
	if !strings.Contains(err.Error(), "point 1 trial 0") {
		t.Errorf("error %q does not name the first failing cell in grid order", err)
	}
}
