package runner

import (
	"context"
	"fmt"

	"multicast/internal/sim"
)

// SweepPlan describes a multi-point experiment sweep: Trials executions
// of every point, flattened into one global (point × trial) grid that
// shards across machines exactly like a single point's trial batch.
type SweepPlan struct {
	// Trials is the number of trials per point (the same for every
	// point); cell (p, t) runs with seed points[p].Seed + t.
	Trials int
	// Shard selects this machine's slice of the flattened grid: global
	// indices g ≡ Shard.Index (mod Shard.Count), where g = p·Trials + t.
	// The zero value runs the whole sweep.
	Shard Shard
	// Skip omits the first Skip cells of this shard's slice — cells a
	// resumed worker already completed and checkpointed (see
	// internal/campaign). Delivery continues, still in ascending
	// global-index order, with the shard's (Skip+1)-th cell; skipping the
	// whole slice runs nothing and succeeds.
	Skip int
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, is the grid's cell result cache (see
	// Grid.Cache): hits skip the simulation, misses store their result
	// back, and delivery order, seeds, and sink semantics are untouched
	// either way.
	Cache CellCache
}

// SweepSink consumes one grid cell's metrics. It is called from a single
// goroutine in ascending global-index order (all of point 0's local
// trials, then point 1's, …); returning an error aborts the sweep.
type SweepSink func(point, trial int, m sim.Metrics) error

// RunSweep executes plan's share of the (point × trial) grid over the
// given workload points and streams each cell's Metrics to sink.
//
// This is the sweep-level lift of Run's determinism contract: cell
// (p, t) always runs with seed points[p].Seed + t — exactly the seed
// trial t uses when point p runs alone through Run — and the shard
// layout only decides which machine executes a cell, never what the
// cell computes. Shard i of k runs the cells g ≡ i (mod k) of the
// flattened index space g = p·Trials + t, so the union of any shard
// partition is the same multiset of executions as the unsharded sweep,
// and per-point summaries merged across shards (e.g. stats.Accumulator
// keyed by point) are bit-identical to the unsharded sweep's while
// each point's trial count stays within the accumulators' sample cap.
//
// Failure semantics match Run: the first error in grid order (named by
// point and trial) aborts the sweep, queued cells never start, and
// in-flight executions are interrupted.
func RunSweep(ctx context.Context, points []sim.Config, plan SweepPlan, sink SweepSink) error {
	grid, err := NewGrid(points, plan.Trials)
	if err != nil {
		return err
	}
	grid.Cache = plan.Cache
	return runGrid(ctx, grid.Total(), plan.Shard, plan.Skip, plan.Workers,
		func(done <-chan struct{}, exec *sim.Executor, g int) result {
			m, err := grid.run(done, exec, g)
			return result{m: m, err: err}
		},
		func(g int, r result) error {
			p, t := grid.Split(g)
			if r.err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("runner: sweep point %d trial %d (seed %d): %w",
					p, t, grid.Seed(g), r.err)
			}
			return sink(p, t, r.m)
		})
}
