package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation (Vigna).
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("splitmix64(seed=0) draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed streams diverge at draw %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws out of 100", same)
	}
}

func TestReseedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream diverges at draw %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(42)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestRangeInclusive(t *testing.T) {
	r := New(9)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Range(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("Range(3,6) = %d out of bounds", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Errorf("Range(3,6) never produced %d in 10k draws", v)
		}
	}
}

func TestRangeSingleton(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if v := r.Range(5, 5); v != 5 {
			t.Fatalf("Range(5,5) = %d", v)
		}
	}
}

func TestRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(2,1) did not panic")
		}
	}()
	New(1).Range(2, 1)
}

func TestCoinMatchesPseudocodeConvention(t *testing.T) {
	r := New(3)
	counts := make([]int, 65)
	for i := 0; i < 64_000; i++ {
		c := r.Coin(64)
		if c < 1 || c > 64 {
			t.Fatalf("Coin(64) = %d out of [1,64]", c)
		}
		counts[c]++
	}
	// Each face has expectation 1000; allow generous slack.
	for face := 1; face <= 64; face++ {
		if counts[face] < 700 || counts[face] > 1300 {
			t.Errorf("Coin(64) face %d count %d far from 1000", face, counts[face])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	var sum float64
	const draws = 100_000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(17)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		hits := 0
		const draws = 200_000
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) rate = %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	dst := make([]int, 100)
	for trial := 0; trial < 50; trial++ {
		r.Perm(dst)
		seen := make([]bool, len(dst))
		for _, v := range dst {
			if v < 0 || v >= len(dst) || seen[v] {
				t.Fatalf("Perm produced invalid permutation: %v", dst)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Fork()
	// Child stream should not simply replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream mirrors parent: %d/100 identical draws", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	ca, cb := a.Fork(), b.Fork()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Fork is not deterministic across identical parents")
		}
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// 16-bucket chi-square test on Uint64n(16); df=15, crit(0.999)≈37.7.
	r := New(1234)
	const draws = 160_000
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64n(16)]++
	}
	expected := float64(draws) / 16
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Errorf("chi-square = %.1f exceeds 0.999 critical value 37.7 (buckets %v)", chi2, buckets)
	}
}

// Property: Uint64n(n) < n for arbitrary seeds and moduli.
func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds produce identical prefixes regardless of seed.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 32; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Range(lo, hi) stays within [lo, hi].
func TestQuickRangeBounds(t *testing.T) {
	f := func(seed uint64, lo int16, span uint8) bool {
		l, h := int(lo), int(lo)+int(span)
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Range(l, h)
			if v < l || v > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64n(12345)
	}
	_ = sink
}

func BenchmarkCoin64(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Coin(64)
	}
	_ = sink
}
