package rng

import (
	"math"
	"testing"
)

func TestGeometricEdgeCases(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
		if g := r.Geometric(1.5); g != 0 {
			t.Fatalf("Geometric(1.5) = %d, want 0", g)
		}
		if g := r.Geometric(0); g != MaxGap {
			t.Fatalf("Geometric(0) = %d, want MaxGap", g)
		}
		if g := r.Geometric(-0.25); g != MaxGap {
			t.Fatalf("Geometric(-0.25) = %d, want MaxGap", g)
		}
	}
}

func TestGeometricEdgesConsumeNoDraw(t *testing.T) {
	// The degenerate edges must leave the stream untouched, mirroring
	// Bernoulli: engines rely on draw-for-draw stream alignment.
	a, b := New(9), New(9)
	a.Geometric(0)
	a.Geometric(1)
	a.Geometric(2)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("edge-case Geometric consumed random draws (diverged at %d)", i)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(3)
	for _, p := range []float64{0.5, 0.25, 1.0 / 64, 1.0 / 1024} {
		const draws = 200_000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(r.Geometric(p))
		}
		want := (1 - p) / p
		got := sum / draws
		// Std of the sample mean is √(1−p)/(p·√draws); allow 5σ.
		tol := 5 * math.Sqrt(1-p) / (p * math.Sqrt(draws))
		if math.Abs(got-want) > tol {
			t.Errorf("Geometric(%v) mean = %.4f, want %.4f ± %.4f", p, got, want, tol)
		}
	}
}

func TestGeometricCapped(t *testing.T) {
	r := New(31)
	// The cap must bind exactly with the tail probability (1−p)^limit:
	// at p = 0.5, limit = 2, P(capped) = 0.25.
	const (
		p     = 0.5
		limit = int64(2)
		draws = 100_000
	)
	capped := 0
	for i := 0; i < draws; i++ {
		g := r.GeometricCapped(p, limit)
		if g < 0 || g > limit {
			t.Fatalf("GeometricCapped(%v, %d) = %d out of [0, %d]", p, limit, g, limit)
		}
		if g == limit {
			capped++
		}
	}
	want := math.Pow(1-p, float64(limit))
	got := float64(capped) / draws
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(gap = limit) = %.4f, want (1−p)^limit = %.4f", got, want)
	}
	// Stream discipline: capped and uncapped draws consume one uniform.
	a, b := New(33), New(33)
	a.GeometricCapped(0.25, 1)
	b.Geometric(0.25)
	if a.Uint64() != b.Uint64() {
		t.Fatal("GeometricCapped consumes a different number of draws than Geometric")
	}
}

// TestGeometricLnMatchesGeometric pins the cached-log variants to the
// originals draw for draw: GeometricLn(Log1p(-p)) must return the same
// gap as Geometric(p) from the same stream state, across regular rates
// and every degenerate edge (p > 1 → NaN, p = 1 → −Inf, p = 0 → 0,
// p < 0 → positive lnQ). The engines precompute lnQ once per window and
// rely on this exactness for dense/sparse/event bit-identity.
func TestGeometricLnMatchesGeometric(t *testing.T) {
	ps := []float64{0.5, 0.25, 1.0 / 32, 1.0 / 64, 1.0 / 4096, 0, 1, 1.5, -0.25}
	a, b := New(17), New(17)
	for i := 0; i < 1000; i++ {
		p := ps[i%len(ps)]
		lnQ := math.Log1p(-p)
		ga, gb := a.Geometric(p), b.GeometricLn(lnQ)
		if ga != gb {
			t.Fatalf("draw %d: Geometric(%v) = %d, GeometricLn(%v) = %d", i, p, ga, lnQ, gb)
		}
	}
	// The streams must still be aligned after the mixed-edge sequence.
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged after equal gaps (draw %d)", i)
		}
	}
	// Capped variant, including the cap binding and not binding.
	a, b = New(19), New(19)
	for i := 0; i < 1000; i++ {
		p := ps[i%len(ps)]
		limit := int64(1 + i%7)
		ga, gb := a.GeometricCapped(p, limit), b.GeometricCappedLn(math.Log1p(-p), limit)
		if ga != gb {
			t.Fatalf("draw %d: GeometricCapped(%v,%d) = %d, Ln variant = %d", i, p, limit, ga, gb)
		}
	}
}

// chiSquareGeometric bins observed gap samples against the analytic
// geometric pmf — bins 0 … cut−1 plus one tail bin P(G ≥ cut) = (1−p)^cut
// — and returns the chi-square statistic (df = cut).
func chiSquareGeometric(samples []int64, p float64, cut int) float64 {
	counts := make([]float64, cut+1)
	for _, g := range samples {
		if g >= int64(cut) {
			counts[cut]++
		} else {
			counts[g]++
		}
	}
	n := float64(len(samples))
	var chi2 float64
	for k := 0; k < cut; k++ {
		exp := n * p * math.Pow(1-p, float64(k))
		d := counts[k] - exp
		chi2 += d * d / exp
	}
	expTail := n * math.Pow(1-p, float64(cut))
	d := counts[cut] - expTail
	chi2 += d * d / expTail
	return chi2
}

// TestGeometricChiSquareGOF checks the closed-form sampler against the
// analytic pmf at several rates, including the slot-loop regimes the
// engines use (CoreP·2 = 1/32 on the benchmark scenario).
func TestGeometricChiSquareGOF(t *testing.T) {
	// Critical values of chi² at 0.999 for the dfs used below.
	crit := map[int]float64{10: 29.6, 15: 37.7, 20: 45.3}
	cases := []struct {
		p   float64
		cut int
	}{
		{0.5, 10},
		{0.25, 15},
		{1.0 / 32, 20},
		{1.0 / 64, 20},
	}
	r := New(7)
	const draws = 100_000
	for _, tc := range cases {
		samples := make([]int64, draws)
		for i := range samples {
			samples[i] = r.Geometric(tc.p)
		}
		chi2 := chiSquareGeometric(samples, tc.p, tc.cut)
		if chi2 > crit[tc.cut] {
			t.Errorf("Geometric(%v): chi² = %.1f exceeds 0.999 critical value %.1f (df=%d)",
				tc.p, chi2, crit[tc.cut], tc.cut)
		}
	}
}

// TestGeometricMatchesBernoulliReplay is the exactness check behind the
// engines' skip-sampling refactor: at small p, gaps drawn in closed form
// and gaps obtained by replaying per-slot Bernoulli(p) coins (the old
// slot-loop discipline) must agree in distribution. A two-sample
// chi-square over binned gap lengths pins that down.
func TestGeometricMatchesBernoulliReplay(t *testing.T) {
	const (
		p     = 1.0 / 64 // the paper's coin ← rnd(1,64) regime
		draws = 60_000
		cut   = 20
	)
	gap := New(11)
	coin := New(12)

	binOf := func(g int64) int {
		// Geometric mass spreads thin at small p; bins of width mean/4
		// keep every expected count well above the chi-square minimum.
		width := int64(1 / (4 * p))
		b := int(g / width)
		if b > cut {
			b = cut
		}
		return b
	}
	var a, b [cut + 1]float64
	for i := 0; i < draws; i++ {
		a[binOf(gap.Geometric(p))]++
		g := int64(0)
		for !coin.Bernoulli(p) {
			g++
		}
		b[binOf(g)]++
	}
	// Two-sample chi-square with equal sample sizes:
	// Σ (aᵢ − bᵢ)² / (aᵢ + bᵢ), df ≈ cut. crit(0.999, df=20) ≈ 45.3.
	var chi2 float64
	for k := range a {
		if a[k]+b[k] == 0 {
			continue
		}
		d := a[k] - b[k]
		chi2 += d * d / (a[k] + b[k])
	}
	if chi2 > 45.3 {
		t.Errorf("closed-form vs Bernoulli-replay gaps: two-sample chi² = %.1f exceeds 45.3\n closed-form %v\n replay      %v",
			chi2, a, b)
	}
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = r.Geometric(1.0 / 64)
	}
	_ = sink
}

// BenchmarkBernoulliReplayGap measures what one gap used to cost under
// the per-slot discipline Geometric replaces (E[G] ≈ 63 draws at p=1/64).
func BenchmarkBernoulliReplayGap(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		g := int64(0)
		for !r.Bernoulli(1.0 / 64) {
			g++
		}
		sink = g
	}
	_ = sink
}
