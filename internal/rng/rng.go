// Package rng provides small, fast, deterministic pseudo-random number
// generators for the simulator.
//
// The paper's model lets every honest node "independently generate random
// bits"; the simulator realises this with one xoshiro256** stream per node,
// all derived from a single trial seed via splitmix64 so that an entire
// execution is reproducible from one uint64. xoshiro256** is not
// cryptographic; it is chosen for speed (the slot loop draws one or two
// values per node per slot) and for well-studied statistical quality.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is the seeding generator recommended by the xoshiro authors.
// It is used to expand a single trial seed into independent per-node seeds.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the splitmix64 sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. The zero value is invalid; use New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed. Seeds map to well-mixed internal
// states via splitmix64, so adjacent seeds yield unrelated streams.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the generator to the stream identified by seed.
func (r *Source) Seed(seed uint64) {
	sm := NewSplitMix64(seed)
	r.s0 = sm.Next()
	r.s1 = sm.Next()
	r.s2 = sm.Next()
	r.s3 = sm.Next()
	// xoshiro256** must not start in the all-zero state; splitmix64 output
	// of four consecutive zeros is impossible, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
}

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method: one multiplication in the
// common case, exact uniformity always.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Range returns a uniform int in [lo, hi], mirroring the paper's
// rnd(x, y) helper (inclusive bounds). It panics if hi < lo.
func (r *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range called with hi < lo")
	}
	return lo + int(r.Uint64n(uint64(hi-lo+1)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values of p outside [0, 1]
// clamp to always-false / always-true.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// MaxGap is the ceiling on Geometric results. It is far beyond any slot
// count the simulator can reach (the engine's MaxSlots valve is ~2²⁷), so
// the clamp only protects downstream slot arithmetic from overflowing.
const MaxGap = int64(1) << 62

// Geometric returns the number of consecutive failures before the first
// success in a sequence of independent Bernoulli(p) trials — the pmf
// P(G = k) = (1−p)ᵏ·p on k = 0, 1, 2, … — drawn in closed form by
// inverting the CDF: G = ⌊ln U / ln(1−p)⌋ for one uniform U ∈ (0, 1].
// A single uniform replaces the E[G] = (1−p)/p draws of a per-trial
// Bernoulli loop, which is what makes per-gap skip-sampling cheaper than
// per-slot coins. Like Bernoulli, the degenerate edges consume no draw:
// p ≥ 1 returns 0 (success is immediate) and p ≤ 0 returns MaxGap
// (success never comes). Results clamp to MaxGap.
func (r *Source) Geometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return MaxGap
	}
	// 1 − Float64() lies in (0, 1], keeping the logarithm finite;
	// log1p(-p) is the accurate form of ln(1−p) for small p.
	g := math.Log(1-r.Float64()) / math.Log1p(-p)
	if g >= float64(MaxGap) {
		return MaxGap
	}
	return int64(g)
}

// GeometricCapped returns min(Geometric(p), limit). The capped draw is
// how the slot engines truncate a gap at a window boundary: the result
// equals limit with probability P(G ≥ limit) = (1−p)^limit — exactly the
// probability that no action occurs in the limit remaining slots — so
// "gap == limit" doubles as the no-action-before-the-boundary sentinel.
func (r *Source) GeometricCapped(p float64, limit int64) int64 {
	if g := r.Geometric(p); g < limit {
		return g
	}
	return limit
}

// GeometricLn is Geometric with the denominator precomputed: lnQ must be
// math.Log1p(-p) for the success probability p. The division by lnQ uses
// the same expression tree as Geometric, so for equal p the two functions
// return bit-identical results from identical draws — GeometricLn exists
// so per-draw callers can hoist the Log1p out of their hot loop. The
// degenerate edges mirror Geometric's and consume no draw: p ≥ 1 maps to
// lnQ = −Inf (p = 1) or NaN (p > 1) and returns 0; p ≤ 0 maps to
// lnQ ≥ 0 and returns MaxGap.
func (r *Source) GeometricLn(lnQ float64) int64 {
	if math.IsInf(lnQ, -1) || math.IsNaN(lnQ) {
		return 0
	}
	if lnQ >= 0 {
		return MaxGap
	}
	g := math.Log(1-r.Float64()) / lnQ
	if g >= float64(MaxGap) {
		return MaxGap
	}
	return int64(g)
}

// GeometricCappedLn is GeometricCapped with the denominator precomputed,
// under the same lnQ contract as GeometricLn.
func (r *Source) GeometricCappedLn(lnQ float64, limit int64) int64 {
	if g := r.GeometricLn(lnQ); g < limit {
		return g
	}
	return limit
}

// Coin returns a uniform value in [1, sides], mirroring the pseudocode's
// coin ← rnd(1, k) draws. It panics if sides <= 0.
func (r *Source) Coin(sides int) int {
	if sides <= 0 {
		panic("rng: Coin called with sides <= 0")
	}
	return 1 + r.Intn(sides)
}

// Perm fills dst with a uniform random permutation of [0, len(dst)).
func (r *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Fork returns a new Source whose stream is a deterministic function of
// this source's current state, advancing this source by one draw. It is
// the mechanism used to hand independent streams to nodes and adversaries.
func (r *Source) Fork() *Source {
	return New(r.Uint64())
}
