package cache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"multicast/internal/sim"
)

// testMetrics carries values that stress JSON round-tripping: a
// non-terminating binary fraction, negatives, sentinel -1s, and an
// int64 beyond float64's contiguous integer range.
func testMetrics() sim.Metrics {
	m := sim.Metrics{
		Slots:           9007199254740993, // 2^53 + 1: float64 would corrupt it
		MaxNodeEnergy:   123456789,
		SourceEnergy:    42,
		MeanNodeEnergy:  1.0 / 3.0,
		EveEnergy:       987654321,
		AllInformedSlot: -1,
		FirstHelperSlot: -1,
		FirstHaltSlot:   77,
	}
	m.Invariants.HaltedUninformed = 3
	m.HelperJCounts[5] = 11
	m.HelperJCounts[sim.MaxHelperJBucket] = 2
	return m
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A stored entry must load back as exactly the metrics that went in —
// the cache's whole value rests on hits being bit-identical to
// re-simulation.
func TestPutLoadRoundTrip(t *testing.T) {
	s := openStore(t)
	key := Key("n=32", "mcast n=32 adv=random seed=7", 9)
	want := testMetrics()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(key)
	if !ok {
		t.Fatal("stored entry did not load")
	}
	if got != want {
		t.Fatalf("round trip diverged:\n got  %+v\n want %+v", got, want)
	}
	// A second Put of the same result must be idempotent.
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Load(key); !ok || got != want {
		t.Fatalf("re-put entry diverged: ok=%v", ok)
	}
}

// Key must separate every identity dimension — two cells agreeing on
// all but one of (label, workload, seed) must never share an address.
func TestKeySeparatesIdentities(t *testing.T) {
	base := Key("n=32", "mcast n=32 adv=random seed=7", 9)
	if base != Key("n=32", "mcast n=32 adv=random seed=7", 9) {
		t.Fatal("key is not deterministic")
	}
	for name, other := range map[string]string{
		"label":    Key("n=64", "mcast n=32 adv=random seed=7", 9),
		"workload": Key("n=32", "mcast n=32 adv=burst seed=7", 9),
		"seed":     Key("n=32", "mcast n=32 adv=random seed=7", 10),
	} {
		if other == base {
			t.Errorf("keys collide when only %s differs", name)
		}
	}
}

// An absent entry — or a cache rooted in a since-deleted directory —
// is a miss, never an error.
func TestLoadMissesOnAbsence(t *testing.T) {
	s := openStore(t)
	key := Key("a", "b", 1)
	if _, ok := s.Load(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(key, testMetrics()); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(s.Dir()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("evicted store reported a hit")
	}
}

// corpus writes one entry and returns its path and pristine bytes.
func corpus(t *testing.T) (*Store, string, string, []byte) {
	t.Helper()
	s := openStore(t)
	key := Key("n=32", "mcast n=32 adv=random seed=7", 9)
	if err := s.Put(key, testMetrics()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.EntryPath(key))
	if err != nil {
		t.Fatal(err)
	}
	return s, key, s.EntryPath(key), data
}

// Every possible truncation of an entry must read as a miss — a torn
// cache write may cost a re-simulation but can never surface damaged
// metrics. (Mirrors campaign.TestReadRejectsTruncatedArtifact, with
// miss in place of ErrCorruptArtifact.) Cutting only the trailing
// newline leaves the content bit-for-bit intact, so a hit there must
// equal the original exactly.
func TestLoadRejectsTruncatedEntry(t *testing.T) {
	s, key, path, data := corpus(t)
	want := testMetrics()
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m, ok := s.Load(key)
		if ok && m != want {
			t.Fatalf("truncation to %d of %d bytes loaded altered metrics", cut, len(data))
		}
	}
}

// No single-bit flip anywhere in an entry may load with changed
// content: most flips must miss, and the ones that decode at all must
// load exactly the original metrics. Two flip classes survive
// decoding — a case flip inside a JSON key name (Go matches field
// names case-insensitively) and any flip inside the name of a
// zero-valued field (the mangled name is ignored as unknown, leaving
// the zero in place) — and in both the canonical re-encoding equals
// the original, so the checksum rightly verifies. (Mirrors
// campaign.TestReadRejectsBitFlippedArtifact.)
func TestLoadRejectsBitFlippedEntry(t *testing.T) {
	s, key, path, data := corpus(t)
	want := testMetrics()
	misses := 0
	for n := range data {
		mut := append([]byte(nil), data...)
		mut[n] ^= 1 << (n % 8) // vary the flipped bit with position
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		m, ok := s.Load(key)
		if !ok {
			misses++
			continue
		}
		if m != want {
			t.Fatalf("bit flip at byte %d (of %d) was accepted with changed content", n, len(data))
		}
	}
	if misses < len(data)/2 {
		t.Errorf("only %d of %d flips missed — the checksum sweep looks wrong", misses, len(data))
	}
	// The pristine bytes still hit — the loop's misses were the damage,
	// not a latent verification bug.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); !ok {
		t.Fatal("pristine entry no longer loads")
	}
}

// An intact entry delivered at the wrong address — a renamed file, a
// colliding copy — must miss: the stored key pins the identity the
// bytes answer for.
func TestLoadRejectsMiskeyedEntry(t *testing.T) {
	s, _, path, data := corpus(t)
	other := Key("n=64", "mcast n=64 adv=burst seed=7", 3)
	otherPath := s.EntryPath(other)
	if err := os.MkdirAll(filepath.Dir(otherPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(otherPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(other); ok {
		t.Fatal("entry misdelivered to another key was accepted")
	}
	_ = path
}

// An entry from another cache schema version must miss even when its
// checksum verifies — the version gate runs first, so a format change
// can never be misdecoded.
func TestLoadRejectsForeignSchemaVersion(t *testing.T) {
	s, key, path, _ := corpus(t)
	e := entry{SchemaVersion: SchemaVersion + 1, Key: key, Metrics: testMetrics()}
	sum, err := e.checksum()
	if err != nil {
		t.Fatal(err)
	}
	e.Checksum = sum
	data, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("foreign schema version was accepted")
	}
}
