// Package cache is a content-addressed, on-disk store of folded
// per-cell results — the dedup-before-compute layer under driven
// campaigns. A grid cell is a pure function of (point workload, cell
// seed) on a fixed artifact schema, so the sha256 of exactly those
// identity fields addresses "this cell's result, forever": overlapping
// campaigns (re-runs, widened sweeps, added trials, CI smokes) replay
// hits instead of simulating, and a warm identical re-run simulates
// nothing at all.
//
// The store inherits the campaign artifact layer's integrity
// discipline — every entry carries a schema version and a content
// checksum over its compact JSON encoding, and writes are atomic
// (write-then-rename) — but inverts its failure posture: an artifact
// that fails its checksum is an ErrCorruptArtifact the operator must
// see, while a cache entry that is missing, truncated, bit-flipped,
// mis-keyed, or from another schema version is silently a miss. A
// cache can only ever cost a re-simulation, never a wrong answer and
// never a failed campaign; the byte-identity contracts are enforced by
// the checksum refusing any damaged entry, not by trusting the disk.
//
// Layout under the cache directory: entries live at
// <key[:2]>/<key[2:]>.json (256-way fan-out keeps directories small at
// campaign scale). Entries are immutable once written — eviction is
// the operator deleting files (or the whole directory), which reads as
// misses, and a schema bump orphans old entries by changing every key.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"multicast/internal/campaign"
	"multicast/internal/sim"
)

// SchemaVersion is the cache entry format version. It is folded into
// every key, so bumping it (or campaign.SchemaVersion, which keys also
// fold in) silently orphans all previous entries instead of risking a
// cross-version decode.
const SchemaVersion = 1

// Key derives the content address of one grid cell's result: the hex
// sha256 over a canonical rendering of everything that determines the
// cell's metrics — the cache and campaign schema versions, the point's
// label and full workload identity string (scenario.Config.Describe:
// every outcome-determining parameter), and the cell's absolute seed
// (point base seed + trial index). Campaign-level trial counts, shard
// layouts, schedules, and worker counts are deliberately absent: they
// never change what a cell computes, so an extended or re-sharded sweep
// hits every cell it shares with a previous one.
func Key(label, workload string, seed uint64) string {
	material := fmt.Sprintf("cache=%d campaign=%d label=%q workload=%q seed=%d",
		SchemaVersion, campaign.SchemaVersion, label, workload, seed)
	sum := sha256.Sum256([]byte(material))
	return hex.EncodeToString(sum[:])
}

// entry is the on-disk cache record. Checksum is the hex sha256 of the
// entry's compact JSON encoding with the Checksum field empty — the
// campaign artifact discipline. Key is stored redundantly so a file
// renamed into the wrong address reads as a miss, not as another
// cell's result.
type entry struct {
	SchemaVersion int         `json:"schema_version"`
	Checksum      string      `json:"checksum"`
	Key           string      `json:"key"`
	Metrics       sim.Metrics `json:"metrics"`
}

// checksum returns the entry's content digest: compact JSON with the
// Checksum field empty. sim.Metrics is a flat struct of integers and
// one float64, both of which Go JSON round-trips exactly, so the digest
// is stable under decode→encode.
func (e *entry) checksum() (string, error) {
	c := *e
	c.Checksum = ""
	data, err := json.Marshal(&c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Store is one on-disk cell result cache rooted at a directory.
// Load and Put are safe for concurrent use from any number of
// goroutines or processes: entries are immutable, written atomically,
// and verified on read, so the worst concurrent outcome is two workers
// writing the same bytes to the same address.
type Store struct {
	dir string
}

// Open roots a store at dir, creating the directory if needed. This is
// the only call that surfaces filesystem errors eagerly — an unusable
// cache directory is an operator mistake worth naming, while individual
// damaged entries later are just misses.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// EntryPath returns the on-disk path of the entry addressed by key —
// exported so tests and chaos drills can truncate or bit-flip the exact
// file a campaign will consult.
func (s *Store) EntryPath(key string) string {
	return filepath.Join(s.dir, key[:2], key[2:]+".json")
}

// Load returns the metrics cached under key. Every failure mode —
// missing file, unreadable file, truncated or otherwise undecodable
// JSON, wrong schema version, mis-keyed entry, checksum mismatch — is
// reported as a miss (ok == false) and never an error: a damaged cache
// may cost a re-simulation but can never fail a campaign or corrupt a
// result.
func (s *Store) Load(key string) (m sim.Metrics, ok bool) {
	data, err := os.ReadFile(s.EntryPath(key))
	if err != nil {
		return sim.Metrics{}, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return sim.Metrics{}, false
	}
	if e.SchemaVersion != SchemaVersion || e.Key != key {
		return sim.Metrics{}, false
	}
	want, err := e.checksum()
	if err != nil || e.Checksum != want {
		return sim.Metrics{}, false
	}
	return e.Metrics, true
}

// Put records m under key, atomically (write to a same-directory temp
// file, then rename), so a crash mid-write leaves either the previous
// entry or none — never a torn one for Load to trip over. Errors are
// returned for observability, but callers treat them as non-fatal: a
// cache that cannot be written is just a cache that will miss.
func (s *Store) Put(key string, m sim.Metrics) error {
	e := entry{SchemaVersion: SchemaVersion, Key: key, Metrics: m}
	sum, err := e.checksum()
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	e.Checksum = sum
	data, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	data = append(data, '\n')
	path := s.EntryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}
