// Package scenario is the workload registry: a catalog of named,
// parameterized experiment scenarios, each of which expands into a list
// of concrete workload points (algorithm, population, adversary,
// budget, seed). The registry is the single source of truth for "what
// do we run" — the CLIs (`mcast -scenario`, `mcbench -matrix`), the
// reproduction experiments, and the examples all enumerate through it,
// so a workload added here is immediately sweepable, shardable, and
// listed by `mcast -list-scenarios`.
//
// Determinism contract: expansion is pure. Points(opts) depends only on
// opts — never on time, host, or global state — and every point carries
// an explicit Seed (the base seed; trial t of the point runs with
// Seed + t, the trial runner's seed-by-trial-index contract). All
// points of one expansion share the same base seed, so cross-point
// comparisons are seed-paired. Consequence: a sweep over an expansion
// can be sharded across machines by global (point × trial) index and
// the merged per-point summaries are bit-identical to the unsharded
// sweep (see internal/runner.RunSweep).
package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Options parameterize a scenario expansion. The zero value asks for
// every scenario's defaults.
type Options struct {
	// N overrides the node population where the scenario varies other
	// axes (0 = scenario default). Scenarios whose point list IS the
	// population axis (population-ladder) and fixed benchmarks
	// (engine-matrix) ignore it; their descriptions say so.
	N int
	// Budget overrides Eve's energy budget T (0 = scenario default).
	// Fixed benchmarks (engine-matrix) ignore it.
	Budget int64
	// Seed is the base seed given to every point; trial t of a point
	// runs with Seed + t. Zero is a valid seed.
	Seed uint64
	// Quick trims point lists to smoke-test size (CI and -quick runs).
	Quick bool
}

// Point is one concrete workload of an expanded scenario.
type Point struct {
	// Label distinguishes the point within the sweep, e.g. "C=8" or
	// "adv=pulse". Labels are unique within a scenario.
	Label string
	// Config is the workload; Build it into an engine config.
	Config Config
}

// Scenario is a named, parameterized workload generator.
type Scenario struct {
	// Name is the registry key (lowercase, hyphenated).
	Name string
	// Description is a one-line summary for -list-scenarios and docs.
	Description string
	// Points expands the scenario into concrete workloads. Must be pure
	// (see the package documentation's determinism contract).
	Points func(opts Options) []Point
}

// registry maps Name → Scenario; populated by catalog.go's init.
var registry = map[string]Scenario{}

// Register adds a scenario to the registry. It panics on duplicate or
// malformed names and on missing fields — registration happens in init
// functions, where failing loudly beats a silently absent workload.
func Register(s Scenario) {
	if s.Name == "" || s.Name != strings.ToLower(s.Name) || strings.ContainsAny(s.Name, " \t\n") {
		panic(fmt.Sprintf("scenario: invalid name %q (want lowercase, no spaces)", s.Name))
	}
	if s.Description == "" || s.Points == nil {
		panic(fmt.Sprintf("scenario: %q is missing a description or Points func", s.Name))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// All returns every registered scenario sorted by name.
func All() []Scenario {
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the scenario with the given name (case-insensitive).
func Get(name string) (Scenario, bool) {
	s, ok := registry[strings.ToLower(name)]
	return s, ok
}

// Names returns every registered scenario name in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
