package scenario

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// Every registered scenario must expand to a usable, deterministic,
// internally consistent point list at default and quick options.
func TestCatalogExpands(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("registry has %d scenarios, want the full catalog", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Name < all[j].Name }) {
		t.Error("All() is not sorted by name")
	}
	for _, s := range all {
		for _, opts := range []Options{{}, {Quick: true}, {Seed: 42}} {
			pts := s.Points(opts)
			if len(pts) == 0 {
				t.Errorf("%s: expands to zero points at %+v", s.Name, opts)
				continue
			}
			labels := map[string]bool{}
			for _, p := range pts {
				if p.Label == "" {
					t.Errorf("%s: point with empty label", s.Name)
				}
				if labels[p.Label] {
					t.Errorf("%s: duplicate label %q", s.Name, p.Label)
				}
				labels[p.Label] = true
				if p.Config.Seed != opts.Seed {
					t.Errorf("%s %s: seed %d, want base seed %d", s.Name, p.Label, p.Config.Seed, opts.Seed)
				}
				if _, err := p.Config.Build(); err != nil {
					t.Errorf("%s %s: Build: %v", s.Name, p.Label, err)
				}
			}
		}
		full, quick := s.Points(Options{}), s.Points(Options{Quick: true})
		if len(quick) > len(full) {
			t.Errorf("%s: quick expansion (%d points) larger than full (%d)", s.Name, len(quick), len(full))
		}
	}
}

// Expansion must be pure: two calls with equal options yield equal
// labels and workload identities.
func TestExpansionDeterministic(t *testing.T) {
	for _, s := range All() {
		opts := Options{N: 64, Budget: 30_000, Seed: 5}
		a, b := s.Points(opts), s.Points(opts)
		if len(a) != len(b) {
			t.Fatalf("%s: expansion sizes differ: %d vs %d", s.Name, len(a), len(b))
		}
		for i := range a {
			if a[i].Label != b[i].Label || a[i].Config.Describe() != b[i].Config.Describe() {
				t.Errorf("%s point %d: expansions differ:\n  %s %s\n  %s %s",
					s.Name, i, a[i].Label, a[i].Config.Describe(), b[i].Label, b[i].Config.Describe())
			}
		}
	}
}

// Describe must separate points that run different workloads — the
// shard-merge refusal logic keys on it.
func TestDescribeSeparatesPoints(t *testing.T) {
	for _, s := range All() {
		pts := s.Points(Options{Seed: 1})
		seen := map[string]string{}
		for _, p := range pts {
			d := p.Config.Describe()
			if prev, dup := seen[d]; dup {
				t.Errorf("%s: points %q and %q share identity %q", s.Name, prev, p.Label, d)
			}
			seen[d] = p.Label
		}
	}
}

func TestOptionOverrides(t *testing.T) {
	ladder, ok := Get("channel-ladder")
	if !ok {
		t.Fatal("channel-ladder not registered")
	}
	for _, p := range ladder.Points(Options{N: 64, Budget: 12_345}) {
		if p.Config.N != 64 || p.Config.Budget != 12_345 {
			t.Errorf("%s: overrides not applied: n=%d budget=%d", p.Label, p.Config.N, p.Config.Budget)
		}
		if p.Config.Channels > 32 {
			t.Errorf("%s: C=%d exceeds n/2=32", p.Label, p.Config.Channels)
		}
	}

	pop, ok := Get("population-ladder")
	if !ok {
		t.Fatal("population-ladder not registered")
	}
	ns := map[int]bool{}
	for _, p := range pop.Points(Options{N: 64}) {
		ns[p.Config.N] = true
	}
	if len(ns) < 2 {
		t.Errorf("population-ladder collapsed to %d populations under an N override — n is its axis", len(ns))
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	if _, ok := Get("DUEL"); !ok {
		t.Error("Get is case-sensitive")
	}
	if _, ok := Get("no-such-scenario"); ok {
		t.Error("Get found a scenario that does not exist")
	}
}

func TestNamesMatchAll(t *testing.T) {
	var fromAll []string
	for _, s := range All() {
		fromAll = append(fromAll, s.Name)
	}
	if !reflect.DeepEqual(fromAll, Names()) {
		t.Errorf("Names() %v != All() names %v", Names(), fromAll)
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	bad := []Scenario{
		{Name: "", Description: "d", Points: func(Options) []Point { return nil }},
		{Name: "Has Space", Description: "d", Points: func(Options) []Point { return nil }},
		{Name: "UPPER", Description: "d", Points: func(Options) []Point { return nil }},
		{Name: "no-desc", Points: func(Options) []Point { return nil }},
		{Name: "no-points", Description: "d"},
		{Name: "duel", Description: "dup", Points: func(Options) []Point { return nil }},
	}
	for _, s := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register accepted invalid scenario %+v", s.Name)
				}
			}()
			Register(s)
		}()
	}
}

func TestNormalizeAlgorithm(t *testing.T) {
	for _, name := range AlgorithmNames() {
		got, err := NormalizeAlgorithm(strings.ToUpper(name))
		if err != nil || got != name {
			t.Errorf("NormalizeAlgorithm(%q) = %q, %v", strings.ToUpper(name), got, err)
		}
	}
	if _, err := NormalizeAlgorithm("quantum"); err == nil {
		t.Error("NormalizeAlgorithm accepted an unknown algorithm")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := (Config{N: 64, Algorithm: AlgoMultiCastC}).Build(); err == nil {
		t.Error("Build accepted multicast-c without Channels")
	}
	if _, err := (Config{N: 64, Algorithm: "quantum"}).Build(); err == nil {
		t.Error("Build accepted an unknown algorithm")
	}
	if _, err := (Config{N: 64}).Build(); err != nil {
		t.Errorf("Build rejected the default algorithm: %v", err)
	}
}
