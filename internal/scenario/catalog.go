package scenario

import (
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
)

// The built-in catalog. Every scenario here must be described in
// docs/OPERATIONS.md — a root-package test and a CI check compare the
// registry against the docs, so an undocumented scenario fails the
// build, not a user.

// resolve applies the option overrides to a scenario's defaults.
func resolve(opts Options, defN int, defBudget int64) (n int, budget int64) {
	n, budget = defN, defBudget
	if opts.N > 0 {
		n = opts.N
	}
	if opts.Budget > 0 {
		budget = opts.Budget
	}
	return n, budget
}

func init() {
	Register(Scenario{
		Name: "density-spectrum",
		Description: "MultiCastCore across listen/broadcast densities p ∈ {1/8…1/64} " +
			"under half-spectrum jamming — the axis that separates the dense engine from the sparse and event ones",
		Points: func(opts Options) []Point {
			n, budget := resolve(opts, 128, 100_000)
			dens := []int{8, 16, 64} // p = 1/d
			if opts.Quick {
				dens = []int{8, 64}
			}
			pts := make([]Point, 0, len(dens))
			for _, d := range dens {
				params := core.Sim()
				params.CoreP = 1 / float64(d)
				// Iteration length scales inversely with p so every density
				// runs the same expected per-iteration action count.
				params.CoreA = 10 * float64(d)
				pts = append(pts, Point{
					Label: fmt.Sprintf("p=1/%d", d),
					Config: Config{
						N: n, Algorithm: AlgoMultiCastCore, Params: params,
						Adversary: adversary.BlockFraction(0.5),
						Budget:    budget, Seed: opts.Seed,
					},
				})
			}
			return pts
		},
	})

	Register(Scenario{
		Name: "channel-ladder",
		Description: "MultiCast(C) across physical channel counts C under a full-burst jammer: " +
			"time trades as T/C while per-node cost stays put (Corollary 7.1)",
		Points: func(opts Options) []Point {
			n, budget := resolve(opts, 256, 200_000)
			chans := []int{2, 8, 32, 128}
			if opts.Quick {
				// The historical E6/E12 -quick pair; spans 8× so quick
				// slope fits stay comparable with pre-registry runs.
				chans = []int{8, 64}
			}
			pts := make([]Point, 0, len(chans))
			for _, c := range chans {
				if c > n/2 { // MultiCast(C) needs C ≤ n/2
					continue
				}
				pts = append(pts, Point{
					Label: fmt.Sprintf("C=%d", c),
					Config: Config{
						N: n, Algorithm: AlgoMultiCastC, Channels: c,
						Adversary: adversary.FullBurst(0),
						Budget:    budget, Seed: opts.Seed, MaxSlots: 1 << 26,
					},
				})
			}
			return pts
		},
	})

	Register(Scenario{
		Name: "jammer-gauntlet",
		Description: "MultiCast against the whole jammer roster — oblivious, composed " +
			"(burst-then-quiet), and adaptive (reactive, camper) schedules at one budget",
		Points: func(opts Options) []Point {
			n, budget := resolve(opts, 256, 100_000)
			roster := []struct {
				label string
				adv   adversary.Factory
			}{
				{"none", adversary.None()},
				{"full-burst", adversary.FullBurst(0)},
				{"fraction-0.5", adversary.BlockFraction(0.5)},
				{"random-0.5", adversary.RandomFraction(0.5)},
				{"sweep-8", adversary.Sweep(8)},
				{"pulse", adversary.Pulse(128, 64, 0.9, 0)},
				{"bursty", adversary.Bursty(0.8, 200, 200)},
				{"burst-then-quiet", adversary.StopAfter(adversary.FullBurst(0), 2000)},
				{"reactive-0.5", adversary.Reactive(0.5)},
				{"camper", adversary.Camper(64, 64)},
			}
			if opts.Quick {
				roster = roster[:3]
			}
			pts := make([]Point, 0, len(roster))
			for _, r := range roster {
				pts = append(pts, Point{
					Label: "adv=" + r.label,
					Config: Config{
						N: n, Algorithm: AlgoMultiCast,
						Adversary: r.adv,
						Budget:    budget, Seed: opts.Seed,
					},
				})
			}
			return pts
		},
	})

	Register(Scenario{
		Name: "population-ladder",
		Description: "MultiCast across node populations n ∈ {16…1024} (one point per epoch's " +
			"population) under half-spectrum jamming; ignores the N override — n is the axis",
		Points: func(opts Options) []Point {
			_, budget := resolve(opts, 0, 100_000)
			ns := []int{16, 64, 256, 1024}
			if opts.Quick {
				ns = []int{16, 64}
			}
			pts := make([]Point, 0, len(ns))
			for _, n := range ns {
				pts = append(pts, Point{
					Label: fmt.Sprintf("n=%d", n),
					Config: Config{
						N: n, Algorithm: AlgoMultiCast,
						Adversary: adversary.RandomFraction(0.5),
						Budget:    budget, Seed: opts.Seed,
					},
				})
			}
			return pts
		},
	})

	Register(Scenario{
		Name: "alpha-regimes",
		Description: "MultiCastAdv across the paper's α parameter regimes (time " +
			"Θ̃(T/n^(1−2α) + n^2α), simulation constants) under half-spectrum jamming",
		Points: func(opts Options) []Point {
			n, budget := resolve(opts, 64, 20_000)
			alphas := []float64{0.05, 0.10, 0.20}
			if opts.Quick {
				alphas = []float64{0.10}
			}
			pts := make([]Point, 0, len(alphas))
			for _, a := range alphas {
				params := core.Sim()
				params.Alpha = a
				pts = append(pts, Point{
					Label: fmt.Sprintf("alpha=%.2f", a),
					Config: Config{
						N: n, Algorithm: AlgoMultiCastAdv, Params: params,
						Adversary: adversary.BlockFraction(0.5),
						Budget:    budget, Seed: opts.Seed, MaxSlots: 1 << 26,
					},
				})
			}
			return pts
		},
	})

	Register(Scenario{
		Name: "engine-matrix",
		Description: "the fixed engine benchmark grid — dense vs sparse vs event (algorithms × schedule densities, " +
			"n=128, half spectrum jammed); ignores overrides to stay comparable across PRs",
		Points: func(opts Options) []Point {
			const n = 128
			jam := adversary.BlockFraction(0.5)
			coreP := func(d int) core.Params {
				params := core.Sim()
				params.CoreP = 1 / float64(d)
				params.CoreA = 10 * float64(d)
				return params
			}
			return []Point{
				{Label: "multicastcore p=1/8", Config: Config{
					N: n, Algorithm: AlgoMultiCastCore, Params: coreP(8),
					Adversary: jam, Budget: 100_000, Seed: opts.Seed,
				}},
				{Label: "multicastcore p=1/64", Config: Config{
					N: n, Algorithm: AlgoMultiCastCore, Params: coreP(64),
					Adversary: jam, Budget: 100_000, Seed: opts.Seed,
				}},
				{Label: "multicast", Config: Config{
					N: n, Algorithm: AlgoMultiCast,
					Adversary: jam, Budget: 100_000, Seed: opts.Seed,
				}},
				{Label: "multicast-c C=8", Config: Config{
					N: n, Algorithm: AlgoMultiCastC, Channels: 8,
					Adversary: jam, Budget: 100_000, Seed: opts.Seed,
				}},
				// One channel: T/C is the whole delay, so the budget shrinks
				// to keep the cell comparable in wall time.
				{Label: "singlechannel", Config: Config{
					N: n, Algorithm: AlgoSingleChannel,
					Adversary: jam, Budget: 20_000, Seed: opts.Seed,
				}},
			}
		},
	})

	Register(Scenario{
		Name: "duel",
		Description: "the paper's headline comparison: single-channel baseline [GKPPSY14] vs " +
			"MultiCast on n/2 channels, same full-burst jammer and budget",
		Points: func(opts Options) []Point {
			n, budget := resolve(opts, 128, 100_000)
			return []Point{
				{Label: "singlechannel", Config: Config{
					N: n, Algorithm: AlgoSingleChannel,
					Adversary: adversary.FullBurst(0),
					Budget:    budget, Seed: opts.Seed, MaxSlots: 1 << 26,
				}},
				{Label: "multicast n/2", Config: Config{
					N: n, Algorithm: AlgoMultiCast,
					Adversary: adversary.FullBurst(0),
					Budget:    budget, Seed: opts.Seed, MaxSlots: 1 << 26,
				}},
			}
		},
	})
}
