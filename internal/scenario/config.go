package scenario

import (
	"fmt"
	"strings"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/sim"
	"multicast/internal/singlechan"
)

// Algorithm names, shared with the public multicast.AlgorithmKind
// constants (this package owns the canonical list so the registry, the
// experiments, and the public API cannot drift apart).
const (
	AlgoMultiCastCore = "multicastcore"
	AlgoMultiCast     = "multicast"
	AlgoMultiCastC    = "multicast-c"
	AlgoMultiCastAdv  = "multicastadv"
	AlgoMultiCastAdvC = "multicastadv-c"
	AlgoSingleChannel = "singlechannel"
)

// AlgorithmNames lists every selectable algorithm in presentation order.
func AlgorithmNames() []string {
	return []string{
		AlgoMultiCastCore, AlgoMultiCast, AlgoMultiCastC,
		AlgoMultiCastAdv, AlgoMultiCastAdvC, AlgoSingleChannel,
	}
}

// NormalizeAlgorithm resolves a case-insensitive algorithm name to its
// canonical form.
func NormalizeAlgorithm(s string) (string, error) {
	for _, k := range AlgorithmNames() {
		if strings.EqualFold(k, s) {
			return k, nil
		}
	}
	return "", fmt.Errorf("multicast: unknown algorithm %q (have %v)", s, AlgorithmNames())
}

// Config is the workload description a scenario point expands to: the
// internal mirror of the public multicast.Config, minus instrumentation
// (Observer, Engine), which callers attach after Build. Zero values mean
// the same defaults as the public type: empty Algorithm is MultiCast,
// zero Params is the Sim preset, zero KnownT is Budget.
type Config struct {
	// N is the number of nodes (a power of two ≥ 2; node 0 is the source).
	N int
	// Algorithm names the protocol (see the Algo* constants); empty means
	// AlgoMultiCast.
	Algorithm string
	// Params are the algorithm constants; the zero value means core.Sim().
	Params core.Params
	// KnownT is the T input of MultiCastCore (ignored by the others);
	// zero defaults to Budget.
	KnownT int64
	// Channels is the physical channel count for the (C) variants.
	Channels int
	// Adversary is Eve's strategy; nil means no jamming.
	Adversary adversary.Factory
	// Budget is Eve's energy budget T.
	Budget int64
	// Seed determines all randomness; trial t of a batch runs with
	// Seed + t (the runner's seed-by-trial-index contract).
	Seed uint64
	// MaxSlots aborts runaway executions (0 = engine default).
	MaxSlots int64
}

// Build resolves the workload into an engine config. The algorithm
// switch lives here — the public multicast.Config and every registry
// scenario funnel through this one resolver.
func (cfg Config) Build() (sim.Config, error) {
	params := cfg.Params
	if params == (core.Params{}) {
		params = core.Sim()
	}
	kind := cfg.Algorithm
	if kind == "" {
		kind = AlgoMultiCast
	}
	knownT := cfg.KnownT
	if knownT == 0 {
		knownT = cfg.Budget
	}
	n := cfg.N

	var builder func() (protocol.Algorithm, error)
	switch kind {
	case AlgoMultiCastCore:
		builder = func() (protocol.Algorithm, error) { return core.NewMultiCastCore(params, n, knownT) }
	case AlgoMultiCast:
		builder = func() (protocol.Algorithm, error) { return core.NewMultiCast(params, n) }
	case AlgoMultiCastC:
		if cfg.Channels < 1 {
			return sim.Config{}, fmt.Errorf("multicast: %s needs Channels ≥ 1", kind)
		}
		builder = func() (protocol.Algorithm, error) { return core.NewMultiCastC(params, n, cfg.Channels) }
	case AlgoMultiCastAdv:
		builder = func() (protocol.Algorithm, error) { return core.NewMultiCastAdv(params) }
	case AlgoMultiCastAdvC:
		if cfg.Channels < 1 {
			return sim.Config{}, fmt.Errorf("multicast: %s needs Channels ≥ 1", kind)
		}
		builder = func() (protocol.Algorithm, error) { return core.NewMultiCastAdvC(params, cfg.Channels) }
	case AlgoSingleChannel:
		builder = func() (protocol.Algorithm, error) {
			return singlechan.New(singlechan.DefaultParams(), n)
		}
	default:
		return sim.Config{}, fmt.Errorf("multicast: unknown algorithm %q", kind)
	}

	return sim.Config{
		N:         cfg.N,
		Algorithm: builder,
		Adversary: cfg.Adversary,
		Budget:    cfg.Budget,
		Seed:      cfg.Seed,
		MaxSlots:  cfg.MaxSlots,
	}, nil
}

// Describe renders the workload identity as a flat, human-readable
// string: the fields that determine trial outcomes, in a fixed order.
// Two points with equal Describe strings run the same executions, so
// shard-merge tooling uses it to refuse mixing different campaigns.
func (cfg Config) Describe() string {
	alg := cfg.Algorithm
	if alg == "" {
		alg = AlgoMultiCast
	}
	adv := "none"
	if cfg.Adversary != nil {
		adv = cfg.Adversary.Name()
	}
	params := "sim"
	if cfg.Params != (core.Params{}) && cfg.Params != core.Sim() {
		params = fmt.Sprintf("%v", cfg.Params)
	}
	return fmt.Sprintf("%s n=%d channels=%d adv=%s budget=%d known-t=%d max-slots=%d seed=%d params=%s",
		alg, cfg.N, cfg.Channels, adv, cfg.Budget, cfg.KnownT, cfg.MaxSlots, cfg.Seed, params)
}
