package singlechan

import (
	"math"
	"testing"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

func TestConstructor(t *testing.T) {
	alg, err := New(DefaultParams(), 256)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() == "" {
		t.Error("empty name")
	}
	if alg.Channels(0) != 1 || alg.Channels(1<<40) != 1 {
		t.Error("baseline must use exactly one channel")
	}
	if alg.StartEpoch() != 4 { // ⌈lg₄ 256⌉ = ⌈8/2⌉
		t.Errorf("StartEpoch = %d, want 4", alg.StartEpoch())
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := New(DefaultParams(), 100); err == nil {
		t.Error("accepted non-power-of-two n")
	}
	if _, err := New(Params{A: 0, HaltNoise: 0.3}, 64); err == nil {
		t.Error("accepted A = 0")
	}
	if _, err := New(Params{A: 1, HaltNoise: 1.5}, 64); err == nil {
		t.Error("accepted HaltNoise ≥ 1")
	}
}

func TestEpochGeometry(t *testing.T) {
	alg, _ := New(DefaultParams(), 256)
	// Lᵢ = ⌈A·4ⁱ·lg n⌉ quadruples per epoch.
	for i := alg.StartEpoch(); i < alg.StartEpoch()+6; i++ {
		ratio := float64(alg.EpochLength(i+1)) / float64(alg.EpochLength(i))
		if math.Abs(ratio-4) > 0.01 {
			t.Errorf("L_%d/L_%d = %v, want 4", i+1, i, ratio)
		}
	}
	// First epoch is Ω(n): L_{i₀} = 4^{⌈lg₄ n⌉}·lg n ≥ n·lg n / 4.
	if got := alg.EpochLength(alg.StartEpoch()); got < 256*8/4 {
		t.Errorf("first epoch length %d too small", got)
	}
}

func TestEpochCap(t *testing.T) {
	alg, _ := New(DefaultParams(), 64)
	if alg.EpochLength(maxEpoch) != alg.EpochLength(maxEpoch+5) {
		t.Error("epoch cap not applied")
	}
	if alg.EpochLength(maxEpoch) <= 0 {
		t.Error("capped epoch length overflowed")
	}
}

func TestListenProbShape(t *testing.T) {
	alg, _ := New(DefaultParams(), 256)
	i0 := alg.StartEpoch()
	// lᵢ = √(lg n/(n·Lᵢ)) halves per epoch (Lᵢ quadruples).
	for i := i0; i < i0+5; i++ {
		r := alg.ListenProb(i) / alg.ListenProb(i+1)
		if math.Abs(r-2) > 0.02 {
			t.Errorf("l_%d/l_%d = %v, want 2", i, i+1, r)
		}
	}
	// Expected broadcasters per slot n·bᵢ ≤ 1 from the first epoch on.
	if load := float64(256) * alg.BroadcastProb(i0); load > 1.01 {
		t.Errorf("aggregate broadcast load %v > 1 in first epoch", load)
	}
	// Listeners are boosted by a constant relative to broadcasters.
	if r := alg.ListenProb(i0) / alg.BroadcastProb(i0); math.Abs(r-DefaultParams().ListenBoost) > 0.01 {
		t.Errorf("listen/broadcast ratio %v, want ListenBoost %v", r, DefaultParams().ListenBoost)
	}
}

func TestSourceInformed(t *testing.T) {
	alg, _ := New(DefaultParams(), 64)
	src := alg.NewNode(0, true, rng.New(1))
	other := alg.NewNode(1, false, rng.New(2))
	if !src.Informed() || other.Informed() {
		t.Fatal("initial informedness wrong")
	}
}

func TestUninformedNeverBroadcasts(t *testing.T) {
	alg, _ := New(DefaultParams(), 64)
	nd := alg.NewNode(1, false, rng.New(3))
	for s := int64(0); s < 100_000; s++ {
		if nd.Step(s).Kind == protocol.Broadcast {
			t.Fatal("uninformed node broadcast")
		}
		nd.Deliver(radio.Feedback{Status: radio.Noise})
		nd.EndSlot(s)
	}
}

func TestAllActionsOnChannelZero(t *testing.T) {
	alg, _ := New(DefaultParams(), 64)
	nd := alg.NewNode(0, true, rng.New(4))
	for s := int64(0); s < 50_000; s++ {
		if a := nd.Step(s); a.Kind != protocol.Idle && a.Channel != 0 {
			t.Fatalf("action on channel %d, baseline has only channel 0", a.Channel)
		}
		nd.Deliver(radio.Feedback{Status: radio.Noise})
		nd.EndSlot(s)
	}
}

func TestHaltsWhenQuiet(t *testing.T) {
	alg, _ := New(DefaultParams(), 64)
	nd := alg.NewNode(0, true, rng.New(5))
	l := alg.EpochLength(alg.StartEpoch())
	for s := int64(0); s < l && nd.Status() != protocol.Halted; s++ {
		nd.Step(s)
		nd.EndSlot(s)
	}
	if nd.Status() != protocol.Halted {
		t.Fatal("did not halt after a quiet epoch")
	}
}

func TestAdvancesEpochWhenNoisy(t *testing.T) {
	alg, _ := New(DefaultParams(), 64)
	nd := alg.NewNode(0, true, rng.New(6)).(*node)
	i0 := nd.Epoch()
	l := alg.EpochLength(i0)
	for s := int64(0); s < l; s++ {
		nd.Step(s)
		nd.Deliver(radio.Feedback{Status: radio.Noise})
		nd.EndSlot(s)
	}
	if nd.Status() == protocol.Halted {
		t.Fatal("halted despite constant noise")
	}
	if nd.Epoch() != i0+1 {
		t.Fatalf("epoch = %d, want %d", nd.Epoch(), i0+1)
	}
}

func TestInformedOnMessage(t *testing.T) {
	alg, _ := New(DefaultParams(), 64)
	nd := alg.NewNode(1, false, rng.New(7))
	nd.Deliver(radio.Feedback{Status: radio.Message, Payload: radio.MsgM})
	if !nd.Informed() {
		t.Fatal("message did not inform")
	}
}
