// Package singlechan implements the single-channel resource-competitive
// broadcast baseline the paper compares against: Gilbert, King, Pettie,
// Porat, Saia and Young, "(Near) Optimal Resource-competitive Broadcast
// with Jamming", SPAA 2014 — Õ(T + n) time and Õ(√(T/n) + 1) energy per
// node, on one channel.
//
// The authors' implementation is unavailable, so this package provides a
// protocol with the same structure and the same asymptotic shape (which is
// what the paper's comparison uses — see DESIGN.md §4):
//
//   - Execution proceeds in epochs i = i₀, i₀+1, … of geometrically growing
//     length Lᵢ = ⌈A·4ⁱ·lg n⌉, with i₀ = ⌈lg₄ n⌉ so that L_{i₀} = Ω(n·lg n).
//   - In epoch i every informed node broadcasts in each slot with
//     probability bᵢ = min(1/2, √(lg n / (n·Lᵢ))). Aggregate broadcast load
//     is therefore ≤ n·bᵢ = √(n·lg n/Lᵢ) ≤ 1 expected broadcasters per
//     slot, so single transmissions get through. Every node listens with
//     probability lᵢ = ListenBoost·bᵢ; each success is heard by ≈ n·lᵢ
//     listeners at once, which multiplies the informed set by
//     (1 + Θ(lg n)) per epoch.
//   - Per-node cost per epoch is ≈ 2Lᵢlᵢ = Θ(√(Lᵢ·lg n/n)); summed over
//     epochs up to the one that out-lasts Eve (Lᵢ ≈ T̂) this telescopes to
//     Θ(√(T̂/n)·lg n) — the [GKPPSY14] energy bound.
//   - Termination mirrors the paper's noisy-slot criterion: an informed
//     node halts at an epoch end iff it observed fewer than HaltNoise·Lᵢlᵢ
//     noisy slots. Eve must keep the noise fraction above that constant,
//     which on one channel costs her Θ(Lᵢ) per blocked epoch, forcing Θ(T)
//     time but no more — the Õ(T + n) bound.
//
// Scope note: this package reproduces [GKPPSY14]'s time/energy *shape*,
// which is what the paper's §1 comparison cites. The original's full Monte
// Carlo termination analysis (their analogue of Lemma 4.2) is not
// reproduced; under some adversaries an informed node may rarely halt an
// epoch before the last straggler hears m. Stragglers still get informed:
// halting requires a quiet epoch, and a quiet channel delivers.
package singlechan

import (
	"fmt"
	"math"

	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// Params holds the baseline's tunable constants.
type Params struct {
	// A scales the epoch length Lᵢ = ⌈A·4ⁱ·lg n⌉.
	A float64
	// HaltNoise: halt at an epoch end iff Nn < HaltNoise·Lᵢ·lᵢ (and the
	// node already knows m — a broadcast node cannot deliver without it).
	HaltNoise float64
	// ListenBoost multiplies lᵢ. The √(lg n/(n·Lᵢ)) base rate gives only
	// Θ(lg n) listens per epoch; early epochs need a constant boost so
	// the noisy-slot counter concentrates (the [GKPPSY14] "sufficiently
	// large" constants play the same role).
	ListenBoost float64
}

// DefaultParams returns simulation-scale constants analogous to core.Sim().
func DefaultParams() Params {
	return Params{A: 1, HaltNoise: 0.3, ListenBoost: 4}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.A <= 0 {
		return fmt.Errorf("singlechan: A = %v must be positive", p.A)
	}
	if !(p.HaltNoise > 0 && p.HaltNoise < 1) {
		return fmt.Errorf("singlechan: HaltNoise = %v out of (0, 1)", p.HaltNoise)
	}
	if p.ListenBoost <= 0 {
		return fmt.Errorf("singlechan: ListenBoost = %v must be positive", p.ListenBoost)
	}
	return nil
}

// maxEpoch caps the epoch index so Lᵢ stays inside int64.
const maxEpoch = 28

// Broadcast is the single-channel baseline algorithm.
type Broadcast struct {
	params Params
	n      int
	start  int
}

// New builds the baseline for n nodes (power of two ≥ 2, matching the
// assumption shared with the multi-channel algorithms).
func New(params Params, n int) (*Broadcast, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("singlechan: n = %d must be a power of two ≥ 2", n)
	}
	// i₀ = ⌈lg₄ n⌉ so the first epoch has length Ω(n·lg n).
	start := int(math.Ceil(math.Log2(float64(n)) / 2))
	if start < 1 {
		start = 1
	}
	return &Broadcast{params: params, n: n, start: start}, nil
}

// Name implements protocol.Algorithm.
func (a *Broadcast) Name() string { return "SingleChannel[GKPPSY14-shape]" }

// Channels implements protocol.Algorithm: always exactly one.
func (a *Broadcast) Channels(slot int64) int { return 1 }

// ChannelSpan implements protocol.ChannelSpanner: always one channel.
func (a *Broadcast) ChannelSpan(slot int64) (int, int64) {
	return 1, math.MaxInt64
}

// StartEpoch returns i₀.
func (a *Broadcast) StartEpoch() int { return a.start }

// EpochLength returns Lᵢ.
func (a *Broadcast) EpochLength(i int) int64 {
	if i > maxEpoch {
		i = maxEpoch
	}
	lgn := math.Log2(float64(a.n))
	if lgn < 1 {
		lgn = 1
	}
	v := int64(math.Ceil(a.params.A * math.Exp2(2*float64(i)) * lgn))
	if v < 1 {
		v = 1
	}
	return v
}

// BroadcastProb returns bᵢ = min(1/2, √(lg n/(n·Lᵢ))).
func (a *Broadcast) BroadcastProb(i int) float64 {
	lgn := math.Log2(float64(a.n))
	if lgn < 1 {
		lgn = 1
	}
	b := math.Sqrt(lgn / (float64(a.n) * float64(a.EpochLength(i))))
	if b > 0.5 {
		b = 0.5
	}
	return b
}

// ListenProb returns lᵢ = min(1/2, ListenBoost·bᵢ).
func (a *Broadcast) ListenProb(i int) float64 {
	l := a.params.ListenBoost * a.BroadcastProb(i)
	if l > 0.5 {
		l = 0.5
	}
	return l
}

// NewNode implements protocol.Algorithm. Per the protocol contract, the
// node copies *r; the pointer is not retained.
func (a *Broadcast) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	nd := &node{alg: a, r: *r}
	if source {
		nd.status = protocol.Informed
		nd.knowsM = true
	}
	nd.startEpoch(a.start)
	return nd
}

// node is one node's baseline state machine.
type node struct {
	alg     *Broadcast
	r       rng.Source
	status  protocol.Status
	knowsM  bool
	epoch   int
	length  int64
	lp, bp  float64 // lᵢ and bᵢ
	lfrac   float64 // P(listen | act) = lᵢ/(lᵢ+bᵢ) for informed nodes
	haltMax float64
	noisy   int64
	slotIdx int64

	// nextIdx is the epoch index of the node's next action slot,
	// pre-drawn as one geometric gap; length is the sentinel for "idle
	// until the epoch boundary".
	nextIdx int64
}

func (nd *node) startEpoch(i int) {
	nd.epoch = i
	nd.length = nd.alg.EpochLength(i)
	nd.lp = nd.alg.ListenProb(i)
	nd.bp = nd.alg.BroadcastProb(i)
	nd.lfrac = nd.lp / (nd.lp + nd.bp)
	nd.haltMax = nd.alg.params.HaltNoise * nd.lp * float64(nd.length)
	nd.noisy = 0
	nd.slotIdx = 0
	nd.drawGap()
}

// drawGap draws the geometric gap to the node's next action slot at the
// epoch's rate — lᵢ to listen, plus bᵢ to broadcast when informed. The
// status cannot change before the action slot (Deliver requires
// listening), so the rate is a gap invariant; gaps truncate at the epoch
// boundary, where startEpoch redraws under the next epoch's rates.
func (nd *node) drawGap() {
	q := nd.lp
	if nd.status == protocol.Informed {
		q += nd.bp
	}
	nd.nextIdx = nd.slotIdx + nd.r.GeometricCapped(q, nd.length-nd.slotIdx)
}

func (nd *node) Status() protocol.Status { return nd.status }

func (nd *node) Informed() bool { return nd.knowsM }

// Epoch returns the node's current epoch index (test hook).
func (nd *node) Epoch() int { return nd.epoch }

// Step returns Idle without consuming randomness until the pre-drawn
// action slot, where informed nodes split listen/broadcast as lᵢ : bᵢ.
func (nd *node) Step(slot int64) protocol.Action {
	if nd.slotIdx != nd.nextIdx || nd.status == protocol.Halted {
		return protocol.Action{Kind: protocol.Idle}
	}
	if nd.status == protocol.Informed && !nd.r.Bernoulli(nd.lfrac) {
		return protocol.Action{Kind: protocol.Broadcast, Channel: 0, Payload: radio.MsgM}
	}
	return protocol.Action{Kind: protocol.Listen, Channel: 0}
}

func (nd *node) Deliver(fb radio.Feedback) {
	switch fb.Status {
	case radio.Noise:
		nd.noisy++
	case radio.Message:
		if fb.Payload == radio.MsgM {
			nd.status = protocol.Informed
			nd.knowsM = true
		}
	}
}

func (nd *node) EndSlot(slot int64) {
	if nd.status == protocol.Halted {
		return
	}
	acted := nd.slotIdx == nd.nextIdx
	nd.slotIdx++
	if nd.slotIdx >= nd.length {
		// Halt requires low noise (jamming has stopped) AND possession of
		// m (a broadcast node terminates by delivering the message).
		if nd.status == protocol.Informed && float64(nd.noisy) < nd.haltMax {
			nd.status = protocol.Halted
			return
		}
		nd.startEpoch(nd.epoch + 1)
		return
	}
	if acted {
		nd.drawGap()
	}
}

// NextActive implements protocol.Sleeper; see the multi-channel nodes.
// The next action slot is pre-drawn, so fast-forwarding is cursor
// arithmetic: jump to it, wake at the epoch's final slot when its
// boundary would halt (only an informed node below the frozen noise
// threshold can), and otherwise absorb the boundary with the same
// bookkeeping — including the gap redraw — as EndSlot.
func (nd *node) NextActive(now int64) int64 {
	for {
		if nd.nextIdx < nd.length {
			now += nd.nextIdx - nd.slotIdx
			nd.slotIdx = nd.nextIdx
			return now
		}
		if nd.status == protocol.Informed && float64(nd.noisy) < nd.haltMax {
			now += nd.length - 1 - nd.slotIdx
			nd.slotIdx = nd.length - 1
			return now
		}
		now += nd.length - nd.slotIdx
		nd.startEpoch(nd.epoch + 1)
	}
}
