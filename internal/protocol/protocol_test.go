package protocol

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		Idle:      "idle",
		Listen:    "listen",
		Broadcast: "broadcast",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind %d String = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown Kind must render")
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		Uninformed: "uninformed",
		Informed:   "informed",
		Helper:     "helper",
		Halted:     "halted",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status %d String = %q, want %q", s, got, want)
		}
	}
	if Status(200).String() == "" {
		t.Error("unknown Status must render")
	}
}

func TestStatusOrdering(t *testing.T) {
	// The engine relies on the zero value being Uninformed and on the
	// progression order for invariant checks.
	if Uninformed != 0 {
		t.Error("zero value must be Uninformed")
	}
	if !(Uninformed < Informed && Informed < Helper && Helper < Halted) {
		t.Error("status constants must be ordered by protocol progression")
	}
}
