// Package protocol defines the interface between the simulation engine and
// the broadcast algorithms. Algorithms are synchronous state machines: in
// every slot each active node chooses an action (idle, listen, broadcast),
// the shared medium resolves, listeners receive feedback, and the node
// performs end-of-slot bookkeeping (counter updates, iteration-boundary
// termination checks, status transitions).
package protocol

import (
	"fmt"

	"multicast/internal/radio"
	"multicast/internal/rng"
)

// Kind enumerates the per-slot choices the model offers a node.
type Kind uint8

const (
	// Idle costs nothing and observes nothing.
	Idle Kind = iota
	// Listen observes one channel for one energy unit.
	Listen
	// Broadcast transmits on one channel for one energy unit, with no
	// feedback to the broadcaster.
	Broadcast
)

// String returns a human-readable action kind.
func (k Kind) String() string {
	switch k {
	case Idle:
		return "idle"
	case Listen:
		return "listen"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Action is a node's choice for one slot. Channel is 0-based and must be
// below the schedule's channel count for the slot; it is ignored for Idle.
// Payload is used only for Broadcast.
type Action struct {
	Kind    Kind
	Channel int
	Payload radio.Payload
}

// Status is a node's protocol state, following the paper's terminology.
// MultiCastCore and MultiCast only use Uninformed/Informed/Halted;
// MultiCastAdv adds the intermediate Helper stage.
type Status uint8

const (
	// Uninformed nodes do not yet know the message m.
	Uninformed Status = iota
	// Informed nodes know m and participate in dissemination.
	Informed
	// Helper nodes (MultiCastAdv) know m, have passed the helper checks,
	// and are waiting for a quiet phase to halt.
	Helper
	// Halted nodes have terminated and take no further actions.
	Halted
)

// String returns the paper's name for the status.
func (s Status) String() string {
	switch s {
	case Uninformed:
		return "uninformed"
	case Informed:
		return "informed"
	case Helper:
		return "helper"
	case Halted:
		return "halted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Node is one honest node's protocol state machine. The engine calls, in
// slot order: Step (once, while not halted), then Deliver (iff Step chose
// Listen), then EndSlot (once). After EndSlot returns, the engine reads
// Status() to detect halting and status transitions.
type Node interface {
	// Step returns the node's action for the given slot.
	Step(slot int64) Action
	// Deliver hands the node the feedback for its Listen in this slot.
	Deliver(fb radio.Feedback)
	// EndSlot finishes the slot; termination and status changes happen here.
	EndSlot(slot int64)
	// Status returns the node's current protocol state.
	Status() Status
	// Informed reports whether the node knows the message m (true for
	// Informed, Helper, and for Halted nodes that knew m when halting).
	Informed() bool
}

// Sleeper is an optional Node extension that enables the engine's sparse
// fast path. NextActive returns the next slot ≥ now at which the node
// needs to be stepped — the next slot where Step would return a non-Idle
// action, or where EndSlot's bookkeeping could change Status().
//
// Randomness discipline (gap draws): the protocols are memoryless inside
// a step window — each slot is an i.i.d. Bernoulli(q) choice to act — so
// implementations pre-draw the *gap* to their next action as one
// closed-form geometric sample (rng.Source.Geometric) instead of flipping
// one coin per slot. A gap that would cross a window/iteration boundary
// is truncated there and redrawn under the new window's rate after the
// boundary's bookkeeping, which is distribution-exact by memorylessness.
// Idle slots therefore consume no randomness at all: Step returns Idle
// without touching the stream, and a node's private stream advances only
// at gap-draw points (node creation, after an action's EndSlot, and at
// absorbed boundaries) and at action slots (action kind and channel).
// Both engines run this same node code, so dense and sparse executions
// consume each node's stream identically by construction.
//
// Contract:
//
//   - The engine calls NextActive(now) only when the node has fully
//     processed every slot < now (Step/Deliver/EndSlot or a previous
//     NextActive fast-forward) and only while the node is not Halted.
//   - The returned slot s satisfies s ≥ now. The engine will then call
//     Step(s), possibly Deliver, and EndSlot(s) as usual; the node must
//     behave at s exactly as if it had been stepped through (now, s)
//     slot by slot — in particular, boundary bookkeeping (and its gap
//     redraws) for absorbed boundaries happens inside NextActive, in the
//     same stream order the dense per-slot path produces via EndSlot.
//   - Status() must remain constant and accurate throughout the sleep:
//     any slot whose end-of-slot bookkeeping would change the status
//     (halting at an iteration boundary, helper transitions, …) must be
//     returned as a wake slot, not absorbed, even if Step is Idle there.
type Sleeper interface {
	// NextActive fast-forwards the node through idle slots starting at
	// now and returns the first slot that needs engine attention.
	NextActive(now int64) int64
}

// Algorithm builds the per-node state machines for one execution and
// exposes the channel schedule. All algorithms in the paper are
// channel-uniform (Section 7): the set of channels potentially in use in a
// slot is the same for every active node and depends only on the slot
// index, so the engine and the (oblivious) adversary may query it without
// observing the execution.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// NewNode returns the state machine for node id. Exactly one node per
	// execution is the source. r is the node's private random stream; the
	// pointer is only valid during the call — implementations must copy
	// the Source value (the caller may reuse the backing storage for the
	// next node's stream).
	NewNode(id int, source bool, r *rng.Source) Node
	// Channels returns the number of channels the algorithm may use in
	// the given slot (≥ 1).
	Channels(slot int64) int
}

// ChannelSpanner is an optional Algorithm extension used by the sparse
// engine. ChannelSpan returns the channel count at slot together with the
// first later slot at which the count may change, so that a skipped slot
// range can be charged to the adversary in constant-channel chunks instead
// of one Channels query per slot. until must be > slot; math.MaxInt64
// means "constant forever". Returning a conservative (smaller) until is
// always correct.
type ChannelSpanner interface {
	// ChannelSpan reports the channel count for [slot, until).
	ChannelSpan(slot int64) (channels int, until int64)
}
