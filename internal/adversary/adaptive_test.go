package adversary

import (
	"testing"

	"multicast/internal/bitset"
	"multicast/internal/rng"
)

func TestActivityStrings(t *testing.T) {
	for a, want := range map[Activity]string{
		Quiet: "quiet", Delivered: "delivered", Collided: "collided", Jammed: "jammed",
	} {
		if a.String() != want {
			t.Errorf("Activity %d = %q, want %q", a, a.String(), want)
		}
	}
	if Activity(9).String() == "" {
		t.Error("unknown activity must render")
	}
}

func TestReactiveJamsPreviouslyBusyChannels(t *testing.T) {
	s := Reactive(1.0).New(rng.New(1)).(Adaptive)
	// Nothing observed yet → nothing jammed.
	mask := bitset.New(8)
	if n := s.Fill(0, 8, mask); n != 0 {
		t.Fatalf("reactive jammed %d channels with no history", n)
	}
	// Observe: channels 2 (delivered) and 5 (collided) busy; 3 jammed-only.
	s.Observe(0, []Activity{Quiet, Quiet, Delivered, Jammed, Quiet, Collided, Quiet, Quiet})
	mask.Reset()
	n := s.Fill(1, 8, mask)
	if n != 2 || !mask.Test(2) || !mask.Test(5) {
		t.Fatalf("reactive jammed %d (%v %v), want channels 2 and 5", n, mask.Test(2), mask.Test(5))
	}
	// Next slot quiet → jam set empties.
	s.Observe(1, make([]Activity, 8))
	mask.Reset()
	if n := s.Fill(2, 8, mask); n != 0 {
		t.Fatalf("reactive kept jamming after a quiet slot (%d)", n)
	}
}

func TestReactiveRespectsCap(t *testing.T) {
	s := Reactive(0.25).New(rng.New(1)).(Adaptive)
	act := make([]Activity, 16)
	for i := range act {
		act[i] = Collided
	}
	s.Observe(0, act)
	mask := bitset.New(16)
	if n := s.Fill(1, 16, mask); n != 4 {
		t.Fatalf("reactive jammed %d of 16, cap is 25%% = 4", n)
	}
}

func TestReactiveCopiesObservation(t *testing.T) {
	// The engine reuses the activity buffer; the strategy must not alias it.
	s := Reactive(1.0).New(rng.New(1)).(Adaptive)
	act := []Activity{Delivered, Quiet}
	s.Observe(0, act)
	act[0] = Quiet // engine reuses the buffer
	act[1] = Delivered
	mask := bitset.New(2)
	n := s.Fill(1, 2, mask)
	if n != 1 || !mask.Test(0) {
		t.Fatal("reactive aliased the engine's observation buffer")
	}
}

func TestCamperDwellsAndExpires(t *testing.T) {
	s := Camper(3, 4).New(rng.New(1)).(Adaptive)
	s.Observe(10, []Activity{Quiet, Delivered, Quiet, Quiet})
	for slot := int64(11); slot <= 13; slot++ {
		mask := bitset.New(4)
		if n := s.Fill(slot, 4, mask); n != 1 || !mask.Test(1) {
			t.Fatalf("slot %d: camper not camping on channel 1 (n=%d)", slot, n)
		}
	}
	mask := bitset.New(4)
	if n := s.Fill(14, 4, mask); n != 0 {
		t.Fatalf("camper did not release channel after dwell (n=%d)", n)
	}
}

func TestCamperTracksAtMostMaxChans(t *testing.T) {
	s := Camper(100, 2).New(rng.New(1)).(Adaptive)
	s.Observe(0, []Activity{Delivered, Delivered, Delivered, Delivered})
	mask := bitset.New(4)
	if n := s.Fill(1, 4, mask); n != 2 {
		t.Fatalf("camper tracks %d channels, cap is 2", n)
	}
}

func TestCamperIgnoresNonDeliveries(t *testing.T) {
	s := Camper(10, 4).New(rng.New(1)).(Adaptive)
	s.Observe(0, []Activity{Collided, Jammed, Quiet, Quiet})
	mask := bitset.New(4)
	if n := s.Fill(1, 4, mask); n != 0 {
		t.Fatalf("camper chased non-delivery activity (n=%d)", n)
	}
}

func TestCamperValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero dwell": func() { Camper(0, 1) },
		"zero max":   func() { Camper(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAdaptiveInterfaceAssertions(t *testing.T) {
	var _ Adaptive = Reactive(0.5).New(rng.New(1)).(Adaptive)
	var _ Adaptive = Camper(5, 2).New(rng.New(1)).(Adaptive)
	// Oblivious strategies must NOT satisfy Adaptive.
	if _, ok := BlockFraction(0.5).New(rng.New(1)).(Adaptive); ok {
		t.Error("oblivious strategy satisfies Adaptive")
	}
}
