// Package adversary implements oblivious jamming strategies for Eve.
//
// Eve is the paper's adversary (Section 3): in every slot she may jam any
// set of channels, paying one energy unit per channel per slot, subject
// only to her total budget T. She is *oblivious*: she knows the algorithm
// (including its channel-uniform schedule) but cannot observe execution.
// The interface enforces obliviousness by construction — strategies see
// only the slot index and the channel count, never node actions or
// feedback. Budget enforcement is done by the simulation engine via
// Truncate, so a strategy may simply describe its ideal jamming pattern.
package adversary

import (
	"fmt"
	"math"

	"multicast/internal/bitset"
	"multicast/internal/rng"
)

// Strategy produces Eve's jam set for each slot.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Fill sets, in mask, the channels Eve wants to jam in the given slot,
	// given that channels channels are in use. mask arrives cleared with
	// capacity ≥ channels; only bits < channels may be set. Fill returns
	// the number of bits it set.
	Fill(slot int64, channels int, mask *bitset.Set) int
}

// Factory builds a per-trial Strategy instance. Randomised strategies draw
// from r (fixed before execution, preserving obliviousness); deterministic
// ones may ignore it.
type Factory interface {
	// Name identifies the strategy family in reports.
	Name() string
	// New returns a fresh Strategy drawing randomness from r.
	New(r *rng.Source) Strategy
}

// RangeSpender is an optional Strategy extension used by the engine's
// sparse fast path. When no node acts in [from, to), the jam *set* is
// unobservable — only its size matters, because Eve still pays one unit
// per jammed channel per slot. SpendRange returns the total energy the
// strategy would spend over slots [from, to), all with the same channel
// count, exactly equal to the sum of Fill counts the per-slot path would
// produce (ignoring budget truncation, which the engine applies on top).
//
// Implementations must advance any internal state — including random
// draws — exactly as the equivalent sequence of per-slot Fill calls
// would, so that sparse and dense executions stay bit-identical.
// Strategies without this method fall back to per-slot Fill against a
// scratch mask.
type RangeSpender interface {
	// SpendRange returns Σ_{s∈[from,to)} Fill(s, channels, ·).
	SpendRange(from, to int64, channels int) int64
}

// PrefixJammer is an optional Strategy extension for deterministic
// strategies whose jam set in every slot is a channel prefix [0, k).
// JamPrefix returns that k: it must equal what Fill would return for the
// slot, with Fill's mask being exactly the channels [0, k), and it must
// not consume randomness or mutate state. Engines use it to answer
// jam-membership queries (is channel ch jammed?) in closed form, without
// materialising a mask — note that truncating a prefix jam set to a
// smaller budget (Truncate clears from the highest channel down) yields
// the shorter prefix [0, budget), so budget enforcement stays closed-form
// too. Randomised strategies must not implement this interface: their
// Fill draws are part of the reproducible stream.
type PrefixJammer interface {
	// JamPrefix returns the slot's jammed-prefix length k.
	JamPrefix(slot int64, channels int) int
}

// factoryFunc adapts a closure to Factory.
type factoryFunc struct {
	name string
	fn   func(r *rng.Source) Strategy
}

func (f factoryFunc) Name() string               { return f.name }
func (f factoryFunc) New(r *rng.Source) Strategy { return f.fn(r) }

// NewFactory wraps a constructor closure as a Factory.
func NewFactory(name string, fn func(r *rng.Source) Strategy) Factory {
	return factoryFunc{name: name, fn: fn}
}

// Truncate reduces the number of set bits in mask (within [0, channels)) to
// at most keep by clearing bits from the highest channel downward, and
// returns the resulting count. The engine uses it to cap a slot's jamming
// at Eve's remaining budget. Clearing from the top is a fixed,
// execution-independent rule, so truncation cannot leak adaptivity.
func Truncate(mask *bitset.Set, channels, count, keep int) int {
	if keep < 0 {
		keep = 0
	}
	if count <= keep {
		return count
	}
	for ch := channels - 1; ch >= 0 && count > keep; ch-- {
		if mask.Test(ch) {
			mask.Clear(ch)
			count--
		}
	}
	return count
}

// ---------------------------------------------------------------------------
// None

type none struct{}

func (none) Name() string                       { return "none" }
func (none) Fill(int64, int, *bitset.Set) int   { return 0 }
func (none) SpendRange(int64, int64, int) int64 { return 0 }
func (none) JamPrefix(int64, int) int           { return 0 }

// None returns the absent adversary (T = 0).
func None() Factory {
	return NewFactory("none", func(*rng.Source) Strategy { return none{} })
}

// ---------------------------------------------------------------------------
// FullBurst

type fullBurst struct{ start int64 }

func (b fullBurst) Name() string { return fmt.Sprintf("full-burst(start=%d)", b.start) }

func (b fullBurst) Fill(slot int64, channels int, mask *bitset.Set) int {
	if slot < b.start {
		return 0
	}
	mask.SetRange(0, channels)
	return channels
}

// SpendRange implements RangeSpender: channels units per slot ≥ start.
func (b fullBurst) SpendRange(from, to int64, channels int) int64 {
	if from < b.start {
		from = b.start
	}
	if from >= to {
		return 0
	}
	return (to - from) * int64(channels)
}

// JamPrefix implements PrefixJammer: the whole spectrum from slot start.
func (b fullBurst) JamPrefix(slot int64, channels int) int {
	if slot < b.start {
		return 0
	}
	return channels
}

// FullBurst jams every channel in every slot from slot start until the
// budget runs out. Against a c-channel algorithm it buys ~T/c fully-blocked
// slots — the strategy behind the Ω(T/C) time lower bound (Section 7).
func FullBurst(start int64) Factory {
	return NewFactory(fmt.Sprintf("full-burst(start=%d)", start),
		func(*rng.Source) Strategy { return fullBurst{start: start} })
}

// ---------------------------------------------------------------------------
// BlockFraction

type blockFraction struct{ f float64 }

func (b blockFraction) Name() string { return fmt.Sprintf("block-fraction(%.2f)", b.f) }

func (b blockFraction) Fill(slot int64, channels int, mask *bitset.Set) int {
	k := int(math.Ceil(b.f * float64(channels)))
	if k > channels {
		k = channels
	}
	if k <= 0 {
		return 0
	}
	mask.SetRange(0, k)
	return k
}

// SpendRange implements RangeSpender: ⌈f·c⌉ units per slot.
func (b blockFraction) SpendRange(from, to int64, channels int) int64 {
	k := int(math.Ceil(b.f * float64(channels)))
	if k > channels {
		k = channels
	}
	if k <= 0 || from >= to {
		return 0
	}
	return (to - from) * int64(k)
}

// JamPrefix implements PrefixJammer: the fixed ⌈f·c⌉-channel block.
func (b blockFraction) JamPrefix(slot int64, channels int) int {
	k := int(math.Ceil(b.f * float64(channels)))
	if k > channels {
		k = channels
	}
	if k < 0 {
		k = 0
	}
	return k
}

// BlockFraction jams a fixed ⌈f·c⌉-channel block every slot. Because honest
// nodes pick channels uniformly at random each slot, jamming a fixed block
// is distributionally identical to jamming a random f-fraction, at lower
// simulation cost. This is the canonical "jam y fraction of channels every
// slot" workload of Lemmas 4.1/5.1/6.7.
func BlockFraction(f float64) Factory {
	return NewFactory(fmt.Sprintf("block-fraction(%.2f)", f),
		func(*rng.Source) Strategy { return blockFraction{f: f} })
}

// ---------------------------------------------------------------------------
// RandomFraction

type randomFraction struct {
	f float64
	r *rng.Source
}

func (s *randomFraction) Name() string { return fmt.Sprintf("random-fraction(%.2f)", s.f) }

func (s *randomFraction) Fill(slot int64, channels int, mask *bitset.Set) int {
	count := 0
	for ch := 0; ch < channels; ch++ {
		if s.r.Bernoulli(s.f) {
			mask.Set(ch)
			count++
		}
	}
	return count
}

// SpendRange implements RangeSpender. The strategy is randomised, so the
// aggregate count still costs one Bernoulli draw per channel per slot —
// the per-slot draws must be consumed to keep the stream aligned with a
// dense run — but it skips all mask writes.
func (s *randomFraction) SpendRange(from, to int64, channels int) int64 {
	var total int64
	for slot := from; slot < to; slot++ {
		for ch := 0; ch < channels; ch++ {
			if s.r.Bernoulli(s.f) {
				total++
			}
		}
	}
	return total
}

// RandomFraction jams each channel independently with probability f every
// slot; the per-slot jam count is Binomial(c, f). The randomness is drawn
// from a pre-committed stream, so the strategy remains oblivious.
func RandomFraction(f float64) Factory {
	return NewFactory(fmt.Sprintf("random-fraction(%.2f)", f),
		func(r *rng.Source) Strategy { return &randomFraction{f: f, r: r} })
}

// ---------------------------------------------------------------------------
// Sweep

type sweep struct{ width int }

func (s sweep) Name() string { return fmt.Sprintf("sweep(width=%d)", s.width) }

func (s sweep) Fill(slot int64, channels int, mask *bitset.Set) int {
	w := s.width
	if w > channels {
		w = channels
	}
	if w <= 0 {
		return 0
	}
	start := int(slot % int64(channels))
	for i := 0; i < w; i++ {
		mask.Set((start + i) % channels)
	}
	return w
}

// SpendRange implements RangeSpender: min(width, channels) units per slot.
func (s sweep) SpendRange(from, to int64, channels int) int64 {
	w := s.width
	if w > channels {
		w = channels
	}
	if w <= 0 || from >= to {
		return 0
	}
	return (to - from) * int64(w)
}

// Sweep jams a contiguous window of width channels that rotates by one
// channel per slot — a model of a frequency-sweeping jammer.
func Sweep(width int) Factory {
	return NewFactory(fmt.Sprintf("sweep(width=%d)", width),
		func(*rng.Source) Strategy { return sweep{width: width} })
}

// ---------------------------------------------------------------------------
// Pulse

type pulse struct {
	period, duty int64
	f            float64
	stopAfter    int64
}

func (p pulse) Name() string {
	return fmt.Sprintf("pulse(period=%d,duty=%d,f=%.2f)", p.period, p.duty, p.f)
}

func (p pulse) Fill(slot int64, channels int, mask *bitset.Set) int {
	if p.stopAfter > 0 && slot >= p.stopAfter {
		return 0
	}
	if slot%p.period >= p.duty {
		return 0
	}
	k := int(math.Ceil(p.f * float64(channels)))
	if k > channels {
		k = channels
	}
	if k <= 0 {
		return 0
	}
	mask.SetRange(0, k)
	return k
}

// JamPrefix implements PrefixJammer: the f-fraction block on duty slots.
func (p pulse) JamPrefix(slot int64, channels int) int {
	if p.stopAfter > 0 && slot >= p.stopAfter {
		return 0
	}
	if slot%p.period >= p.duty {
		return 0
	}
	k := int(math.Ceil(p.f * float64(channels)))
	if k > channels {
		k = channels
	}
	if k < 0 {
		k = 0
	}
	return k
}

// SpendRange implements RangeSpender: k units for every on-duty slot in
// the range, counted in closed form.
func (p pulse) SpendRange(from, to int64, channels int) int64 {
	if p.stopAfter > 0 && to > p.stopAfter {
		to = p.stopAfter
	}
	if from >= to {
		return 0
	}
	k := int(math.Ceil(p.f * float64(channels)))
	if k > channels {
		k = channels
	}
	if k <= 0 {
		return 0
	}
	// onBefore(x) = number of on-duty slots in [0, x).
	onBefore := func(x int64) int64 {
		n := (x / p.period) * p.duty
		if rem := x % p.period; rem < p.duty {
			n += rem
		} else {
			n += p.duty
		}
		return n
	}
	return (onBefore(to) - onBefore(from)) * int64(k)
}

// Pulse jams an f-fraction block during the first duty slots of every
// period-slot cycle, and stops entirely at slot stopAfter (0 = never).
// Used by the fast-shutdown experiment (E8): Eve pulses, then goes silent,
// and we measure how quickly nodes halt after the silence begins.
func Pulse(period, duty int64, f float64, stopAfter int64) Factory {
	if period <= 0 {
		panic("adversary: pulse period must be positive")
	}
	if duty < 0 || duty > period {
		panic("adversary: pulse duty must be within [0, period]")
	}
	return NewFactory(fmt.Sprintf("pulse(period=%d,duty=%d,f=%.2f,stop=%d)", period, duty, f, stopAfter),
		func(*rng.Source) Strategy { return pulse{period: period, duty: duty, f: f, stopAfter: stopAfter} })
}

// ---------------------------------------------------------------------------
// Bursty

type bursty struct {
	f       float64
	meanOn  float64
	meanOff float64
	r       *rng.Source
	on      bool
	next    int64 // slot at which the current burst state flips
}

func (s *bursty) Name() string {
	return fmt.Sprintf("bursty(f=%.2f,on=%.0f,off=%.0f)", s.f, s.meanOn, s.meanOff)
}

// geometric draws a geometric duration with the given mean (≥ 1): the
// number of Bernoulli(1/mean) trials up to and including the first
// success, drawn as one closed-form inverse-CDF sample. The old per-slot
// loop cost E[mean] draws and capped durations at 2²⁰ slots, silently
// truncating (and so biasing) long bursts; the closed form costs one
// draw and is exact.
func geometric(r *rng.Source, mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	return 1 + r.Geometric(1/mean)
}

func (s *bursty) Fill(slot int64, channels int, mask *bitset.Set) int {
	for slot >= s.next {
		s.on = !s.on
		if s.on {
			s.next += geometric(s.r, s.meanOn)
		} else {
			s.next += geometric(s.r, s.meanOff)
		}
	}
	if !s.on {
		return 0
	}
	k := int(math.Ceil(s.f * float64(channels)))
	if k > channels {
		k = channels
	}
	if k <= 0 {
		return 0
	}
	mask.SetRange(0, k)
	return k
}

// SpendRange implements RangeSpender: walk the on/off flips across the
// range in burst-sized chunks. Flip boundaries draw from the same
// pre-committed stream as per-slot Fill calls would, in the same order,
// so the strategy state stays bit-identical to a dense run.
func (s *bursty) SpendRange(from, to int64, channels int) int64 {
	k := int(math.Ceil(s.f * float64(channels)))
	if k > channels {
		k = channels
	}
	var total int64
	for slot := from; slot < to; {
		for slot >= s.next {
			s.on = !s.on
			if s.on {
				s.next += geometric(s.r, s.meanOn)
			} else {
				s.next += geometric(s.r, s.meanOff)
			}
		}
		end := s.next
		if end > to {
			end = to
		}
		if s.on && k > 0 {
			total += (end - slot) * int64(k)
		}
		slot = end
	}
	return total
}

// Bursty is a two-state Markov (on/off) jammer: bursts of f-fraction
// jamming with geometric durations of the given means, separated by
// geometric quiet gaps — a standard model of environmental interference
// (e.g. microwave ovens, §1). Burst boundaries come from a pre-committed
// stream, so the strategy is oblivious.
func Bursty(f float64, meanOn, meanOff float64) Factory {
	if meanOn < 1 || meanOff < 1 {
		panic("adversary: bursty durations must be ≥ 1")
	}
	return NewFactory(fmt.Sprintf("bursty(f=%.2f,on=%.0f,off=%.0f)", f, meanOn, meanOff),
		func(r *rng.Source) Strategy {
			// Starts in the off state with next = 0, so the first Fill call
			// flips it on: executions begin inside a burst.
			return &bursty{f: f, meanOn: meanOn, meanOff: meanOff, r: r}
		})
}

// ---------------------------------------------------------------------------
// Windowed

type windowed struct {
	inner  Strategy
	active func(slot int64) bool
	label  string
}

func (w windowed) Name() string { return w.label }

func (w windowed) Fill(slot int64, channels int, mask *bitset.Set) int {
	if !w.active(slot) {
		return 0
	}
	return w.inner.Fill(slot, channels, mask)
}

// windowedRanged is a windowed strategy whose inner strategy also supports
// aggregate spending. The gate predicate is per-slot, so the range walk is
// slot-by-slot, but it calls the inner strategy only on active slots —
// matching dense Fill gating — and never touches a mask.
type windowedRanged struct {
	windowed
	rs RangeSpender
}

func (w windowedRanged) SpendRange(from, to int64, channels int) int64 {
	var total int64
	for s := from; s < to; s++ {
		if w.active(s) {
			total += w.rs.SpendRange(s, s+1, channels)
		}
	}
	return total
}

// wrapWindowed builds the windowed wrapper, promoting to windowedRanged
// when the inner strategy implements RangeSpender.
func wrapWindowed(name string, inner Strategy, active func(slot int64) bool) Strategy {
	w := windowed{inner: inner, active: active, label: name}
	if rs, ok := inner.(RangeSpender); ok {
		return windowedRanged{windowed: w, rs: rs}
	}
	return w
}

// Windowed gates an inner strategy by a slot predicate. The predicate must
// be a pure function of the slot index (e.g. derived from the published
// algorithm schedule), which keeps the strategy oblivious. It is the
// building block for the paper's worst-case MultiCastAdv attack: jam only
// the phases with j = lg n − 1, where epidemic broadcast can succeed.
//
// The predicate is shared by every trial's strategy instance; if it keeps
// mutable state (e.g. a schedule cursor), build per-trial instances with
// NewFactory + NewWindowed instead.
func Windowed(name string, inner Factory, active func(slot int64) bool) Factory {
	return NewFactory(name, func(r *rng.Source) Strategy {
		return wrapWindowed(name, inner.New(r), active)
	})
}

// NewWindowed wraps an already-built strategy with a slot predicate. Use it
// inside a NewFactory closure when the predicate carries per-trial state.
func NewWindowed(name string, inner Strategy, active func(slot int64) bool) Strategy {
	return wrapWindowed(name, inner, active)
}

// ---------------------------------------------------------------------------
// StopAfter

// StopAfter wraps a factory so all jamming ceases at slot stop.
func StopAfter(inner Factory, stop int64) Factory {
	name := fmt.Sprintf("%s-until(%d)", inner.Name(), stop)
	return Windowed(name, inner, func(slot int64) bool { return slot < stop })
}
