package adversary

import (
	"testing"

	"multicast/internal/bitset"
	"multicast/internal/rng"
)

// TestSpendRangeMatchesFill checks the RangeSpender contract for every
// built-in oblivious strategy: over identically seeded twin instances,
// SpendRange on chunked ranges (odd sizes, spanning burst and pulse
// boundaries) must return exactly the sum of the per-slot Fill counts —
// and leave any internal state (burst phase, random stream) positioned
// identically for the rest of the execution.
func TestSpendRangeMatchesFill(t *testing.T) {
	factories := []Factory{
		None(),
		FullBurst(37),
		BlockFraction(0.3),
		BlockFraction(0),
		RandomFraction(0.45),
		Sweep(5),
		Sweep(0),
		Pulse(97, 13, 0.6, 1_000),
		Pulse(8, 8, 1.0, 0),
		Bursty(0.7, 30, 70),
		StopAfter(BlockFraction(0.9), 500),
		Windowed("even-slots", RandomFraction(0.5), func(slot int64) bool { return slot%2 == 0 }),
	}
	chunks := []int64{1, 5, 64, 250, 999, 3}
	for _, f := range factories {
		for _, channels := range []int{1, 7, 64, 129} {
			ranged := f.New(rng.New(42))
			perSlot := f.New(rng.New(42))
			rs, ok := ranged.(RangeSpender)
			if !ok {
				t.Errorf("%s: strategy does not implement RangeSpender", f.Name())
				continue
			}
			mask := bitset.New(channels)
			var slot int64
			for _, chunk := range chunks {
				var want int64
				for s := slot; s < slot+chunk; s++ {
					c := perSlot.Fill(s, channels, mask)
					want += int64(c)
					if c > 0 {
						mask.Reset()
					}
				}
				got := rs.SpendRange(slot, slot+chunk, channels)
				if got != want {
					t.Errorf("%s channels=%d range [%d,%d): SpendRange = %d, Σ Fill = %d",
						f.Name(), channels, slot, slot+chunk, got, want)
				}
				slot += chunk
			}
		}
	}
}

// TestSpendRangeEmpty: empty and inverted ranges spend nothing and leave
// state untouched.
func TestSpendRangeEmpty(t *testing.T) {
	for _, f := range []Factory{FullBurst(0), Bursty(0.5, 10, 10), RandomFraction(0.5)} {
		s := f.New(rng.New(7)).(RangeSpender)
		if got := s.SpendRange(100, 100, 8); got != 0 {
			t.Errorf("%s: empty range spent %d", f.Name(), got)
		}
	}
}

// TestWindowedRangedPromotion: Windowed promotes to a RangeSpender iff the
// inner strategy is one.
func TestWindowedRangedPromotion(t *testing.T) {
	always := func(int64) bool { return true }
	if _, ok := Windowed("w", BlockFraction(0.5), always).New(rng.New(1)).(RangeSpender); !ok {
		t.Error("windowed over a RangeSpender lost the SpendRange capability")
	}
	bare := NewFactory("bare", func(*rng.Source) Strategy { return bareStrategy{} })
	if _, ok := Windowed("w", bare, always).New(rng.New(1)).(RangeSpender); ok {
		t.Error("windowed over a plain strategy invented a SpendRange capability")
	}
}

type bareStrategy struct{}

func (bareStrategy) Name() string                     { return "bare" }
func (bareStrategy) Fill(int64, int, *bitset.Set) int { return 0 }
