package adversary

import (
	"math"
	"testing"
	"testing/quick"

	"multicast/internal/bitset"
	"multicast/internal/rng"
)

func fill(t *testing.T, f Factory, slot int64, channels int) (*bitset.Set, int) {
	t.Helper()
	mask := bitset.New(channels)
	s := f.New(rng.New(1))
	n := s.Fill(slot, channels, mask)
	if got := mask.CountRange(channels); got != n {
		t.Fatalf("%s: Fill returned %d but mask has %d bits", s.Name(), n, got)
	}
	return mask, n
}

func TestNone(t *testing.T) {
	mask, n := fill(t, None(), 5, 64)
	if n != 0 || mask.Count() != 0 {
		t.Fatal("None jammed channels")
	}
}

func TestFullBurst(t *testing.T) {
	f := FullBurst(10)
	if _, n := fill(t, f, 9, 32); n != 0 {
		t.Fatal("full burst jammed before start")
	}
	mask, n := fill(t, f, 10, 32)
	if n != 32 {
		t.Fatalf("full burst jammed %d of 32", n)
	}
	for ch := 0; ch < 32; ch++ {
		if !mask.Test(ch) {
			t.Fatalf("channel %d not jammed", ch)
		}
	}
}

func TestBlockFraction(t *testing.T) {
	cases := []struct {
		f        float64
		channels int
		want     int
	}{
		{0, 64, 0},
		{0.5, 64, 32},
		{0.9, 64, 58}, // ceil(57.6)
		{1.0, 64, 64},
		{1.5, 64, 64}, // clamped
		{0.1, 3, 1},   // ceil(0.3)
	}
	for _, tc := range cases {
		_, n := fill(t, BlockFraction(tc.f), 0, tc.channels)
		if n != tc.want {
			t.Errorf("BlockFraction(%v) on %d channels jammed %d, want %d", tc.f, tc.channels, n, tc.want)
		}
	}
}

func TestBlockFractionDeterministicAcrossSlots(t *testing.T) {
	s := BlockFraction(0.25).New(rng.New(7))
	for slot := int64(0); slot < 10; slot++ {
		mask := bitset.New(16)
		if n := s.Fill(slot, 16, mask); n != 4 {
			t.Fatalf("slot %d jammed %d, want 4", slot, n)
		}
	}
}

func TestRandomFractionRate(t *testing.T) {
	s := RandomFraction(0.3).New(rng.New(99))
	total := 0
	const slots, channels = 2000, 64
	for slot := int64(0); slot < slots; slot++ {
		mask := bitset.New(channels)
		total += s.Fill(slot, channels, mask)
	}
	got := float64(total) / float64(slots*channels)
	if got < 0.27 || got > 0.33 {
		t.Fatalf("random fraction rate = %v, want ~0.3", got)
	}
}

func TestRandomFractionObliviousReplay(t *testing.T) {
	// Same stream seed → identical jam schedule (obliviousness means the
	// schedule is fixed before execution).
	a := RandomFraction(0.5).New(rng.New(5))
	b := RandomFraction(0.5).New(rng.New(5))
	for slot := int64(0); slot < 50; slot++ {
		ma, mb := bitset.New(32), bitset.New(32)
		a.Fill(slot, 32, ma)
		b.Fill(slot, 32, mb)
		for ch := 0; ch < 32; ch++ {
			if ma.Test(ch) != mb.Test(ch) {
				t.Fatalf("slot %d channel %d differs between replays", slot, ch)
			}
		}
	}
}

func TestSweepRotatesAndWraps(t *testing.T) {
	s := Sweep(4).New(rng.New(1))
	mask := bitset.New(8)
	if n := s.Fill(0, 8, mask); n != 4 {
		t.Fatalf("sweep width = %d, want 4", n)
	}
	for _, ch := range []int{0, 1, 2, 3} {
		if !mask.Test(ch) {
			t.Fatalf("slot 0: channel %d not jammed", ch)
		}
	}
	mask.Reset()
	s.Fill(6, 8, mask) // window [6,7,0,1]
	for _, ch := range []int{6, 7, 0, 1} {
		if !mask.Test(ch) {
			t.Fatalf("slot 6: channel %d not jammed (wrap)", ch)
		}
	}
	for _, ch := range []int{2, 3, 4, 5} {
		if mask.Test(ch) {
			t.Fatalf("slot 6: channel %d spuriously jammed", ch)
		}
	}
}

func TestSweepWidthClamped(t *testing.T) {
	_, n := fill(t, Sweep(100), 0, 8)
	if n != 8 {
		t.Fatalf("sweep jammed %d of 8", n)
	}
}

func TestPulseDutyCycle(t *testing.T) {
	f := Pulse(10, 3, 1.0, 0)
	s := f.New(rng.New(1))
	for slot := int64(0); slot < 40; slot++ {
		mask := bitset.New(16)
		n := s.Fill(slot, 16, mask)
		inDuty := slot%10 < 3
		if inDuty && n != 16 {
			t.Fatalf("slot %d in duty jammed %d", slot, n)
		}
		if !inDuty && n != 0 {
			t.Fatalf("slot %d off duty jammed %d", slot, n)
		}
	}
}

func TestPulseStopAfter(t *testing.T) {
	s := Pulse(4, 4, 0.5, 100).New(rng.New(1))
	mask := bitset.New(16)
	if n := s.Fill(99, 16, mask); n == 0 {
		t.Fatal("pulse silent before stopAfter")
	}
	mask.Reset()
	if n := s.Fill(100, 16, mask); n != 0 {
		t.Fatal("pulse active at stopAfter")
	}
	mask.Reset()
	if n := s.Fill(1_000_000, 16, mask); n != 0 {
		t.Fatal("pulse active long after stopAfter")
	}
}

func TestPulseValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero period":   func() { Pulse(0, 0, 1, 0) },
		"negative duty": func() { Pulse(10, -1, 1, 0) },
		"duty > period": func() { Pulse(10, 11, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWindowed(t *testing.T) {
	// Jam only even slots.
	f := Windowed("even-only", FullBurst(0), func(slot int64) bool { return slot%2 == 0 })
	s := f.New(rng.New(1))
	for slot := int64(0); slot < 10; slot++ {
		mask := bitset.New(8)
		n := s.Fill(slot, 8, mask)
		if slot%2 == 0 && n != 8 {
			t.Fatalf("even slot %d jammed %d", slot, n)
		}
		if slot%2 == 1 && n != 0 {
			t.Fatalf("odd slot %d jammed %d", slot, n)
		}
	}
	if s.Name() != "even-only" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestStopAfter(t *testing.T) {
	s := StopAfter(FullBurst(0), 5).New(rng.New(1))
	mask := bitset.New(4)
	if n := s.Fill(4, 4, mask); n != 4 {
		t.Fatal("StopAfter silent too early")
	}
	mask.Reset()
	if n := s.Fill(5, 4, mask); n != 0 {
		t.Fatal("StopAfter still jamming at stop slot")
	}
}

func TestTruncate(t *testing.T) {
	mask := bitset.New(16)
	mask.SetRange(0, 10)
	got := Truncate(mask, 16, 10, 4)
	if got != 4 || mask.CountRange(16) != 4 {
		t.Fatalf("Truncate → %d bits (reported %d), want 4", mask.CountRange(16), got)
	}
	// Keeps the lowest channels (clears from the top).
	for ch := 0; ch < 4; ch++ {
		if !mask.Test(ch) {
			t.Fatalf("Truncate cleared low channel %d", ch)
		}
	}
	for ch := 4; ch < 16; ch++ {
		if mask.Test(ch) {
			t.Fatalf("Truncate left high channel %d", ch)
		}
	}
}

func TestTruncateNoopWhenWithinBudget(t *testing.T) {
	mask := bitset.New(8)
	mask.Set(1)
	mask.Set(7)
	if got := Truncate(mask, 8, 2, 5); got != 2 || mask.Count() != 2 {
		t.Fatal("Truncate modified a within-budget mask")
	}
}

func TestTruncateToZero(t *testing.T) {
	mask := bitset.New(8)
	mask.SetRange(0, 8)
	if got := Truncate(mask, 8, 8, 0); got != 0 || mask.Count() != 0 {
		t.Fatal("Truncate to zero failed")
	}
	mask.SetRange(0, 8)
	if got := Truncate(mask, 8, 8, -3); got != 0 {
		t.Fatal("negative keep must clamp to zero")
	}
}

// Property: Truncate never increases the count and result ≤ keep.
func TestQuickTruncate(t *testing.T) {
	f := func(bitsIn []bool, keep uint8) bool {
		channels := len(bitsIn)
		if channels == 0 {
			return true
		}
		mask := bitset.New(channels)
		count := 0
		for i, b := range bitsIn {
			if b {
				mask.Set(i)
				count++
			}
		}
		got := Truncate(mask, channels, count, int(keep))
		if got != mask.CountRange(channels) {
			return false
		}
		return got <= count && (got <= int(keep) || count <= int(keep))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every built-in strategy respects the channel bound and reports
// its count correctly for arbitrary slots and channel counts.
func TestQuickStrategiesConsistent(t *testing.T) {
	factories := []Factory{
		None(), FullBurst(0), FullBurst(100), BlockFraction(0.37),
		RandomFraction(0.5), Sweep(7), Pulse(13, 5, 0.8, 200),
	}
	f := func(slotRaw uint16, chRaw uint8, seed uint64) bool {
		slot := int64(slotRaw)
		channels := 1 + int(chRaw)%256
		for _, fac := range factories {
			s := fac.New(rng.New(seed))
			mask := bitset.New(channels)
			n := s.Fill(slot, channels, mask)
			if n != mask.CountRange(channels) || n > channels {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFactoryNames(t *testing.T) {
	for _, fac := range []Factory{
		None(), FullBurst(3), BlockFraction(0.9), RandomFraction(0.1),
		Sweep(2), Pulse(8, 2, 0.5, 99),
	} {
		if fac.Name() == "" {
			t.Error("factory with empty name")
		}
		if fac.New(rng.New(1)).Name() == "" {
			t.Error("strategy with empty name")
		}
	}
}

func TestBurstyAlternates(t *testing.T) {
	s := Bursty(1.0, 50, 50).New(rng.New(3))
	on, off := 0, 0
	const slots = 5000
	for slot := int64(0); slot < slots; slot++ {
		mask := bitset.New(16)
		if n := s.Fill(slot, 16, mask); n > 0 {
			if n != 16 {
				t.Fatalf("bursty jammed %d of 16 during a burst", n)
			}
			on++
		} else {
			off++
		}
	}
	// Mean on == mean off → roughly half the slots jammed.
	frac := float64(on) / slots
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("bursty on-fraction = %v, want ~0.5", frac)
	}
	if on == 0 || off == 0 {
		t.Fatal("bursty never alternated")
	}
}

func TestBurstyStartsOn(t *testing.T) {
	s := Bursty(1.0, 100, 100).New(rng.New(1))
	mask := bitset.New(8)
	if n := s.Fill(0, 8, mask); n != 8 {
		t.Fatalf("first slot not jammed (n=%d); bursts must start immediately", n)
	}
}

func TestBurstyFractionWithinBurst(t *testing.T) {
	s := Bursty(0.25, 1000000, 1).New(rng.New(9))
	mask := bitset.New(64)
	if n := s.Fill(0, 64, mask); n != 16 {
		t.Fatalf("burst jam count = %d, want 16 (25%% of 64)", n)
	}
}

func TestGeometricDurationUnbiased(t *testing.T) {
	// The closed-form draw must reproduce the geometric mean without the
	// old loop's 2²⁰ cap, which truncated (and so biased) long bursts.
	r := rng.New(21)
	for _, mean := range []float64{1, 2, 64, 4096, 1 << 21} {
		const draws = 50_000
		var sum float64
		var max int64
		for i := 0; i < draws; i++ {
			d := geometric(r, mean)
			if d < 1 {
				t.Fatalf("geometric(mean=%v) = %d < 1", mean, d)
			}
			if d > max {
				max = d
			}
			sum += float64(d)
		}
		got := sum / draws
		// Duration = 1 + Geometric(1/mean): mean is `mean`, std ≈ mean.
		tol := 5 * mean / math.Sqrt(draws)
		if math.Abs(got-mean) > tol {
			t.Errorf("geometric(mean=%v) sample mean = %.2f, want %.2f ± %.2f", mean, got, mean, tol)
		}
		// At mean = 2²¹ the longest of 50k draws exceeds the old 2²⁰ cap
		// except with probability ≈ (1−e^{−1/2})^50000 ≈ 0: the capped
		// loop could never produce this, so the assertion pins its removal.
		if mean > 1<<20 && max <= 1<<20 {
			t.Errorf("geometric(mean=%v) max duration %d never exceeded the old 2^20 cap", mean, max)
		}
	}
}

func TestBurstyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bursty with mean < 1 did not panic")
		}
	}()
	Bursty(0.5, 0, 10)
}

func TestBurstyDeterministicReplay(t *testing.T) {
	a := Bursty(0.5, 20, 20).New(rng.New(5))
	b := Bursty(0.5, 20, 20).New(rng.New(5))
	for slot := int64(0); slot < 500; slot++ {
		ma, mb := bitset.New(8), bitset.New(8)
		if a.Fill(slot, 8, ma) != b.Fill(slot, 8, mb) {
			t.Fatalf("bursty replay diverged at slot %d", slot)
		}
	}
}
