package adversary

import (
	"fmt"

	"multicast/internal/bitset"
	"multicast/internal/rng"
)

// The paper proves its guarantees for an *oblivious* Eve and conjectures
// (§8, future work) that MultiCast and MultiCastAdv survive an *adaptive*
// one "with few (or even no) modifications". This file implements that
// stronger adversary so the conjecture can be tested empirically (E13).
//
// Model: an adaptive Eve observes, after every slot, the activity on every
// channel (silent / message delivered / collision, and whether she jammed
// it) and may condition the NEXT slot's jam set on the entire history.
// She still cannot predict the honest nodes' future coins — they re-draw
// channels and roles every slot — which is exactly why the algorithms are
// conjectured to survive: last slot's activity carries no information
// about this slot's rendezvous.

// Activity is what Eve senses on one channel after a slot.
type Activity uint8

const (
	// Quiet: no broadcaster on the channel.
	Quiet Activity = iota
	// Delivered: exactly one broadcaster and Eve did not jam — a message
	// (or beacon) got through.
	Delivered
	// Collided: two or more broadcasters.
	Collided
	// Jammed: Eve jammed the channel (whatever else happened on it).
	Jammed
)

// String returns a readable activity name.
func (a Activity) String() string {
	switch a {
	case Quiet:
		return "quiet"
	case Delivered:
		return "delivered"
	case Collided:
		return "collided"
	case Jammed:
		return "jammed"
	default:
		return fmt.Sprintf("Activity(%d)", uint8(a))
	}
}

// Adaptive is an adversary strategy that additionally receives per-slot
// channel observations. The engine calls Observe exactly once per slot,
// after the slot resolves and before the next slot's Fill.
type Adaptive interface {
	Strategy
	// Observe reports the activity of every channel used in the slot.
	// The slice is reused between calls; implementations must copy what
	// they keep.
	Observe(slot int64, activity []Activity)
}

// ---------------------------------------------------------------------------
// Reactive

// reactive is the classic reactive jammer (cf. Richa et al.): it jams, in
// each slot, the channels on which it sensed broadcast activity in the
// previous slot, up to a budget-rate cap of maxFraction of all channels.
type reactive struct {
	maxFraction float64
	busy        []int // channels active in the previous slot
}

func (s *reactive) Name() string { return fmt.Sprintf("reactive(max=%.2f)", s.maxFraction) }

func (s *reactive) Fill(slot int64, channels int, mask *bitset.Set) int {
	cap := int(s.maxFraction * float64(channels))
	count := 0
	for _, ch := range s.busy {
		if ch >= channels || count >= cap {
			break
		}
		mask.Set(ch)
		count++
	}
	return count
}

func (s *reactive) Observe(slot int64, activity []Activity) {
	s.busy = s.busy[:0]
	for ch, a := range activity {
		if a == Delivered || a == Collided {
			s.busy = append(s.busy, ch)
		}
	}
}

// Reactive returns the adaptive reactive jammer: jam every channel that
// carried transmissions one slot ago, capped at maxFraction of the
// spectrum per slot.
func Reactive(maxFraction float64) Factory {
	return NewFactory(fmt.Sprintf("reactive(max=%.2f)", maxFraction),
		func(*rng.Source) Strategy { return &reactive{maxFraction: maxFraction} })
}

// ---------------------------------------------------------------------------
// Camper

// camper locks onto channels that recently delivered a message and camps
// on them for dwell slots — a "follower" jammer chasing successful
// rendezvous points.
type camper struct {
	dwell    int64
	maxChans int
	expiry   map[int]int64 // channel → last slot to jam
}

func (s *camper) Name() string {
	return fmt.Sprintf("camper(dwell=%d,max=%d)", s.dwell, s.maxChans)
}

func (s *camper) Fill(slot int64, channels int, mask *bitset.Set) int {
	count := 0
	for ch, until := range s.expiry {
		if slot > until {
			delete(s.expiry, ch)
			continue
		}
		if ch < channels {
			mask.Set(ch)
			count++
		}
	}
	return count
}

func (s *camper) Observe(slot int64, activity []Activity) {
	for ch, a := range activity {
		if a != Delivered {
			continue
		}
		if len(s.expiry) >= s.maxChans {
			if _, tracked := s.expiry[ch]; !tracked {
				continue
			}
		}
		s.expiry[ch] = slot + s.dwell
	}
}

// Camper returns the adaptive follower jammer: whenever a channel delivers
// a message, camp on it for dwell slots, tracking at most maxChans
// channels at a time.
func Camper(dwell int64, maxChans int) Factory {
	if dwell < 1 || maxChans < 1 {
		panic("adversary: camper needs dwell ≥ 1 and maxChans ≥ 1")
	}
	return NewFactory(fmt.Sprintf("camper(dwell=%d,max=%d)", dwell, maxChans),
		func(*rng.Source) Strategy {
			return &camper{dwell: dwell, maxChans: maxChans, expiry: make(map[int]int64)}
		})
}
