package sim

import (
	"errors"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

func mcCore(n int, t int64) func() (protocol.Algorithm, error) {
	return func() (protocol.Algorithm, error) { return core.NewMultiCastCore(core.Sim(), n, t) }
}

func mcast(n int) func() (protocol.Algorithm, error) {
	return func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), n) }
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{N: 1, Algorithm: mcCore(64, 0)}); err == nil {
		t.Error("accepted N = 1")
	}
	if _, err := Run(Config{N: 64}); err == nil {
		t.Error("accepted nil Algorithm")
	}
	if _, err := Run(Config{N: 64, Algorithm: mcCore(64, 0), Budget: -1}); err == nil {
		t.Error("accepted negative budget")
	}
	if _, err := Run(Config{N: 64, Algorithm: mcCore(63, 0)}); err == nil {
		t.Error("algorithm constructor error not propagated")
	}
}

func TestRunNoAdversaryCompletes(t *testing.T) {
	m, err := Run(Config{N: 64, Algorithm: mcCore(64, 0), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots <= 0 {
		t.Error("no slots recorded")
	}
	if m.AllInformedSlot <= 0 || m.AllInformedSlot > m.Slots {
		t.Errorf("AllInformedSlot = %d out of (0, %d]", m.AllInformedSlot, m.Slots)
	}
	if m.FirstHaltSlot <= 0 || m.FirstHaltSlot > m.Slots {
		t.Errorf("FirstHaltSlot = %d invalid", m.FirstHaltSlot)
	}
	if m.EveEnergy != 0 {
		t.Errorf("Eve spent %d with no adversary", m.EveEnergy)
	}
	if m.MaxNodeEnergy <= 0 || m.MeanNodeEnergy <= 0 || m.MeanNodeEnergy > float64(m.MaxNodeEnergy) {
		t.Errorf("energy metrics inconsistent: max=%d mean=%v", m.MaxNodeEnergy, m.MeanNodeEnergy)
	}
	if m.FirstHelperSlot != -1 {
		t.Error("two-status algorithm reported a helper")
	}
	if m.Invariants.Any() {
		t.Errorf("invariant violations: %+v", m.Invariants)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	cfg := Config{N: 64, Algorithm: mcast(64), Adversary: adversary.RandomFraction(0.5), Budget: 30_000, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	cfg := Config{N: 64, Algorithm: mcast(64), Seed: 1}
	a, _ := Run(cfg)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if a.Slots == b.Slots && a.MaxNodeEnergy == b.MaxNodeEnergy && a.AllInformedSlot == b.AllInformedSlot {
		t.Fatal("different seeds produced identical executions (suspicious)")
	}
}

func TestEveBudgetEnforced(t *testing.T) {
	const budget = 5000
	m, err := Run(Config{
		N: 64, Algorithm: mcCore(64, budget),
		Adversary: adversary.FullBurst(0), Budget: budget, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.EveEnergy > budget {
		t.Fatalf("Eve spent %d > budget %d", m.EveEnergy, budget)
	}
	// A full-burst jammer against 32 channels burns its whole budget.
	if m.EveEnergy < budget-32 {
		t.Fatalf("Eve spent only %d of %d (truncation too aggressive)", m.EveEnergy, budget)
	}
}

func TestJammingDelaysTermination(t *testing.T) {
	quiet, err := Run(Config{N: 64, Algorithm: mcCore(64, 0), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	jammed, err := Run(Config{
		N: 64, Algorithm: mcCore(64, 50_000),
		Adversary: adversary.FullBurst(0), Budget: 50_000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if jammed.Slots <= quiet.Slots {
		t.Fatalf("jamming did not delay termination: %d vs %d", jammed.Slots, quiet.Slots)
	}
	if jammed.MaxNodeEnergy <= quiet.MaxNodeEnergy {
		t.Fatalf("jamming did not raise node cost: %d vs %d", jammed.MaxNodeEnergy, quiet.MaxNodeEnergy)
	}
}

func TestMaxSlotsValve(t *testing.T) {
	// An unbounded jammer with an enormous budget blocks MultiCastCore
	// long past a tiny MaxSlots.
	_, err := Run(Config{
		N: 64, Algorithm: mcCore(64, 1<<40),
		Adversary: adversary.FullBurst(0), Budget: 1 << 40,
		Seed: 1, MaxSlots: 2000,
	})
	if !errors.Is(err, ErrMaxSlots) {
		t.Fatalf("err = %v, want ErrMaxSlots", err)
	}
}

func TestSafetyInvariantsAcrossSeeds(t *testing.T) {
	// Lemmas 4.2/5.2: no premature halts for Core and MultiCast across
	// seeds and adversaries.
	algs := map[string]func() (protocol.Algorithm, error){
		"core":  mcCore(64, 10_000),
		"mcast": mcast(64),
	}
	advs := map[string]adversary.Factory{
		"none":   adversary.None(),
		"burst":  adversary.FullBurst(0),
		"rand":   adversary.RandomFraction(0.5),
		"pulse":  adversary.Pulse(64, 32, 0.9, 0),
		"sweep":  adversary.Sweep(16),
		"window": adversary.StopAfter(adversary.BlockFraction(0.95), 3000),
	}
	for an, alg := range algs {
		for vn, adv := range advs {
			for i := 0; i < 6; i++ {
				m, err := Run(Config{
					N: 64, Algorithm: alg, Adversary: adv, Budget: 10_000, Seed: 100 + uint64(i),
				})
				if err != nil {
					t.Errorf("%s/%s trial %d: %v", an, vn, i, err)
					continue
				}
				if m.Invariants.Any() {
					t.Errorf("%s/%s trial %d: invariants violated: %+v", an, vn, i, m.Invariants)
				}
				if m.AllInformedSlot < 0 {
					t.Errorf("%s/%s trial %d: some node never informed", an, vn, i)
				}
			}
		}
	}
}

func TestInterruptAborts(t *testing.T) {
	// A pre-fired interrupt must stop either engine near-immediately,
	// long before the jammed execution would end on its own.
	interrupt := make(chan struct{})
	close(interrupt)
	for _, eng := range []Engine{EngineDense, EngineSparse} {
		m, err := Run(Config{
			N: 64, Algorithm: mcCore(64, 1<<40),
			Adversary: adversary.FullBurst(0), Budget: 1 << 40,
			Seed: 1, Engine: eng, Interrupt: interrupt,
		})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("engine %v: err = %v, want ErrInterrupted", eng, err)
		}
		if m.Slots > interruptStride {
			t.Errorf("engine %v: ran %d slots after interrupt (stride %d)", eng, m.Slots, interruptStride)
		}
	}
}

func TestInterruptNilIsNoop(t *testing.T) {
	cfg := Config{N: 64, Algorithm: mcast(64), Adversary: adversary.RandomFraction(0.5), Budget: 30_000, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Interrupt = make(chan struct{}) // open channel: never fires
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("an idle Interrupt channel changed the execution")
	}
}

// countingObserver checks the observer plumbing.
type countingObserver struct {
	slots    int64
	lastSlot int64
	maxJam   int
	informed int
	channels int
}

func (o *countingObserver) Slot(slot int64, channels, jammed, listeners, broadcasters, informed, halted int) {
	o.slots++
	o.lastSlot = slot
	if jammed > o.maxJam {
		o.maxJam = jammed
	}
	o.informed = informed
	o.channels = channels
}

func TestObserverCallbacks(t *testing.T) {
	obs := &countingObserver{}
	m, err := Run(Config{
		N: 64, Algorithm: mcCore(64, 2000),
		Adversary: adversary.BlockFraction(0.5), Budget: 2000,
		Seed: 9, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.slots != m.Slots {
		t.Errorf("observer saw %d slots, metrics say %d", obs.slots, m.Slots)
	}
	if obs.lastSlot != m.Slots-1 {
		t.Errorf("last observed slot %d, want %d", obs.lastSlot, m.Slots-1)
	}
	if obs.maxJam != 16 { // half of 32 channels
		t.Errorf("max jam seen %d, want 16", obs.maxJam)
	}
	if obs.informed != 64 {
		t.Errorf("final informed count %d, want 64", obs.informed)
	}
	if obs.channels != 32 {
		t.Errorf("channels %d, want n/2 = 32", obs.channels)
	}
}

func TestAdvEndToEndWithHelpers(t *testing.T) {
	if testing.Short() {
		t.Skip("MultiCastAdv end-to-end is slow")
	}
	m, err := Run(Config{
		N: 64,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCastAdv(core.Sim())
		},
		Seed: 11, MaxSlots: 1 << 26,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FirstHelperSlot <= 0 {
		t.Error("MultiCastAdv never produced a helper")
	}
	if !(m.AllInformedSlot <= m.FirstHelperSlot && m.FirstHelperSlot <= m.FirstHaltSlot) {
		t.Errorf("event order violated: informed@%d helper@%d halt@%d",
			m.AllInformedSlot, m.FirstHelperSlot, m.FirstHaltSlot)
	}
	if m.Invariants.Any() {
		t.Errorf("invariants violated: %+v", m.Invariants)
	}
}

func TestAdvCEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("MultiCastAdv(C) end-to-end is slow")
	}
	m, err := Run(Config{
		N: 64,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCastAdvC(core.Sim(), 16)
		},
		Seed: 13, MaxSlots: 1 << 26,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Invariants.Any() {
		t.Errorf("invariants violated: %+v", m.Invariants)
	}
	if m.FirstHelperSlot <= 0 {
		t.Error("no helper appeared")
	}
}

func TestSingleNodeEnergyAudit(t *testing.T) {
	// Cross-check the engine's MaxNodeEnergy against an independent count
	// of listen/broadcast actions using an instrumented algorithm.
	inner, err := core.NewMultiCastCore(core.Sim(), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	counter := &countingAlg{inner: inner, counts: make(map[int]int64)}
	m, err := Run(Config{
		N:         64,
		Algorithm: func() (protocol.Algorithm, error) { return counter, nil },
		Seed:      21,
	})
	if err != nil {
		t.Fatal(err)
	}
	var max int64
	for _, c := range counter.counts {
		if c > max {
			max = c
		}
	}
	if max != m.MaxNodeEnergy {
		t.Fatalf("independent action count %d != metered MaxNodeEnergy %d", max, m.MaxNodeEnergy)
	}
}

// countingAlg wraps an algorithm and counts non-idle actions per node.
type countingAlg struct {
	inner  protocol.Algorithm
	counts map[int]int64
}

func (c *countingAlg) Name() string            { return c.inner.Name() }
func (c *countingAlg) Channels(slot int64) int { return c.inner.Channels(slot) }
func (c *countingAlg) NewNode(id int, source bool, r *rng.Source) protocol.Node {
	return &countingNode{Node: c.inner.NewNode(id, source, r), id: id, counts: c.counts}
}

type countingNode struct {
	protocol.Node
	id     int
	counts map[int]int64
}

func (n *countingNode) Step(slot int64) protocol.Action {
	a := n.Node.Step(slot)
	if a.Kind != protocol.Idle {
		n.counts[n.id]++
	}
	return a
}

var _ radio.Payload // keep the import for documentation cross-references

func TestAdaptiveEveReceivesObservations(t *testing.T) {
	// The reactive jammer must actually spend energy: it can only do so
	// if the engine feeds it channel observations.
	m, err := Run(Config{
		N: 64, Algorithm: mcCore(64, 10_000),
		Adversary: adversary.Reactive(1.0), Budget: 10_000, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.EveEnergy == 0 {
		t.Fatal("reactive Eve never jammed — observations not delivered")
	}
	if m.Invariants.Any() {
		t.Fatalf("invariants violated under adaptive Eve: %+v", m.Invariants)
	}
	if m.AllInformedSlot < 0 {
		t.Fatal("reactive Eve prevented broadcast entirely (conjecture §8 violated badly)")
	}
}

func TestAdaptiveEveBudgetStillEnforced(t *testing.T) {
	const budget = 300
	m, err := Run(Config{
		N: 64, Algorithm: mcCore(64, budget),
		Adversary: adversary.Camper(50, 32), Budget: budget, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.EveEnergy > budget {
		t.Fatalf("adaptive Eve spent %d > budget %d", m.EveEnergy, budget)
	}
}
