// Package sim is the synchronous execution engine: it advances the slot
// loop of one execution (adversary → node actions → channel resolution →
// feedback → end-of-slot bookkeeping), enforces Eve's budget, audits the
// paper's safety invariants, and collects the metrics the experiments
// report.
//
// Three slot-loop implementations exist (Config.Engine): the dense
// reference loop steps every non-halted node every slot; the sparse
// fast path (sparse.go) uses the protocol.Sleeper contract to skip slots
// in which no node acts, charging Eve for skipped jamming in aggregate;
// and the event engine (event.go) replaces the 64-slot wake ring with a
// global event calendar and resolves low-contention slots without the
// radio bookkeeping. Node randomness follows the gap-draw discipline
// (see protocol.Sleeper): each node pre-draws the geometric gap to its
// next action, so idle slots consume no RNG in any engine — the dense
// loop makes the identical gap draws through the shared node code, which
// is what keeps the engines bit-identical by construction. All three
// produce bit-identical Metrics; the dense loop is retained as the
// equivalence oracle.
//
// One goroutine drives one execution; statistical replication (parallel
// seeded trials, sharding, streaming sinks) is the job of
// multicast/internal/runner, which derives trial seeds from Config.Seed
// and cancels in-flight executions through Config.Interrupt. The engine
// is deterministic given (Config, Seed): parallel and serial trial runs
// produce identical per-trial metrics.
package sim

import (
	"errors"
	"fmt"
	"strings"

	"multicast/internal/adversary"
	"multicast/internal/bitset"
	"multicast/internal/protocol"
	"multicast/internal/radio"
	"multicast/internal/rng"
)

// Engine selects the slot-loop implementation.
type Engine uint8

const (
	// EngineAuto (the zero value) picks a skip-capable engine when every
	// node implements protocol.Sleeper, the adversary is oblivious, and no
	// Observer is attached — Event when the schedule is low-density (mean
	// first-wake gap ≥ eventAutoGap), Sparse otherwise — and falls back to
	// Dense when those conditions fail.
	EngineAuto Engine = iota
	// EngineDense is the reference implementation: every non-halted node
	// is stepped in every slot. It is retained as the equivalence oracle
	// for the fast paths.
	EngineDense
	// EngineSparse runs the wake-list fast path: nodes that declare their
	// next non-idle slot via protocol.Sleeper are skipped in bulk, and
	// slot ranges in which no node acts are fast-forwarded with aggregate
	// adversary accounting. Executions are bit-identical to EngineDense;
	// adaptive adversaries and Observers disable range skipping (every
	// slot still resolves) but idle nodes are still not stepped.
	EngineSparse
	// EngineEvent runs the global event-calendar loop (event.go): wakes
	// live in a 4096-slot calendar keyed by the next network event, and
	// slots with no contention for the engine's bookkeeping resolve
	// through a lean step that bypasses the radio.Network slot machinery
	// (energy metering still lands in the network's meters). Executions
	// are bit-identical to EngineDense; the same degradations as
	// EngineSparse apply to adaptive adversaries and Observers.
	EngineEvent
)

// ParseEngine resolves an engine name ("auto", "dense", "sparse",
// "event", case-insensitive) to an Engine.
func ParseEngine(s string) (Engine, error) {
	for _, e := range []Engine{EngineAuto, EngineDense, EngineSparse, EngineEvent} {
		if strings.EqualFold(s, e.String()) {
			return e, nil
		}
	}
	return EngineAuto, fmt.Errorf("sim: unknown engine %q (have auto, dense, sparse, event)", s)
}

// String returns the engine name.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineDense:
		return "dense"
	case EngineSparse:
		return "sparse"
	case EngineEvent:
		return "event"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// Config describes one execution (or one family of trials).
type Config struct {
	// N is the number of honest nodes; node 0 is the source.
	N int
	// Algorithm builds a fresh protocol instance per trial. Instances may
	// keep mutable schedule caches, so they must not be shared.
	Algorithm func() (protocol.Algorithm, error)
	// Adversary is Eve's strategy family. Nil means no adversary.
	Adversary adversary.Factory
	// Budget is Eve's energy budget T.
	Budget int64
	// Seed determines all randomness of the trial.
	Seed uint64
	// MaxSlots is a hard safety valve: executions exceeding it fail with
	// ErrMaxSlots. Zero means DefaultMaxSlots.
	MaxSlots int64
	// Observer, if non-nil, receives per-slot callbacks (tracing). It
	// slows the hot loop; leave nil for measurements.
	Observer Observer
	// Engine selects the slot-loop implementation; the zero value (Auto)
	// uses the sparse fast path whenever it applies. Dense and Sparse
	// produce bit-identical Metrics for every configuration.
	Engine Engine
	// Interrupt, if non-nil, aborts the execution with ErrInterrupted
	// shortly after the channel is closed. Both engines poll it every
	// interruptStride slots (and the sparse engine once per wake), so
	// the hot loop pays nothing measurable for it. The trial runner
	// wires a context's Done channel here to cancel in-flight work.
	Interrupt <-chan struct{}
	// NodeWorkers partitions each slot's node-stepping phases across this
	// many goroutines (0 or 1: serial, today's behavior). The reduction is
	// deterministic — per-partition buffers merge in ascending node id
	// order — so Metrics are bit-identical for every worker count, on
	// either engine. Worth it only when many nodes act per slot (large N,
	// dense engine, or high-activity workloads); the sparse engine's
	// typical few-woken-nodes slots gain nothing. Negative values are
	// rejected.
	NodeWorkers int
}

// DefaultMaxSlots bounds runaway executions (~1.3·10⁸ slots).
const DefaultMaxSlots = int64(1) << 27

// ErrMaxSlots reports that an execution did not terminate within MaxSlots.
var ErrMaxSlots = errors.New("sim: execution exceeded MaxSlots without terminating")

// ErrInterrupted reports that an execution was aborted via Config.Interrupt.
var ErrInterrupted = errors.New("sim: execution interrupted")

// interruptStride is how many slots pass between Interrupt polls: rare
// enough to be free, frequent enough that cancellation lands within
// microseconds at measured engine throughput.
const interruptStride = 1 << 12

// Observer receives tracing callbacks. All slots of one execution are
// reported from a single goroutine.
type Observer interface {
	// Slot is called after each slot resolves.
	Slot(slot int64, channels, jammed, listeners, broadcasters, informed, halted int)
}

// Metrics summarises one execution.
type Metrics struct {
	// Slots is the number of slots until the last node halted.
	Slots int64
	// MaxNodeEnergy is max_u cost(u) — the quantity bounded by
	// resource-competitiveness (Definition 3.1).
	MaxNodeEnergy int64
	// SourceEnergy is the source node's cost.
	SourceEnergy int64
	// MeanNodeEnergy is the average node cost.
	MeanNodeEnergy float64
	// EveEnergy is T(π): what Eve actually spent.
	EveEnergy int64
	// AllInformedSlot is the number of slots until every node knew m
	// (-1 if never).
	AllInformedSlot int64
	// FirstHelperSlot is the number of slots until some node reached
	// helper status (-1 if never; always -1 for Core/MultiCast).
	FirstHelperSlot int64
	// FirstHaltSlot is the number of slots until the first halt
	// (-1 if none halted).
	FirstHaltSlot int64
	// Invariants records safety-property violations (all zero in a
	// correct execution; the paper proves them w.h.p.).
	Invariants InvariantCounts
	// HelperJCounts histograms the phase number jˆ at which nodes became
	// helpers (MultiCastAdv variants only; index = jˆ, capped at the last
	// bucket). Lemmas 6.1–6.3 predict all mass at jˆ = lg n − 1; the
	// cut-off variant (Corollary C.1) predicts jˆ = lg C.
	HelperJCounts [MaxHelperJBucket + 1]int32
}

// MaxHelperJBucket is the largest tracked jˆ; larger values clamp into it.
const MaxHelperJBucket = 23

// helperPhaser is implemented by MultiCastAdv nodes: it reports the phase
// (iˆ, jˆ) recorded at the helper transition.
type helperPhaser interface {
	HelperPhase() (i, j int)
}

// InvariantCounts tallies violations of the paper's safety lemmas.
type InvariantCounts struct {
	// HaltedUninformed counts nodes that halted without knowing m
	// (violates Lemma 4.2 / 5.2 / Theorem 6.10(a)).
	HaltedUninformed int
	// HaltBeforeAllInformed counts halt events that happened while some
	// node was still uninformed at the end of the slot (Lemmas 4.2/5.2).
	HaltBeforeAllInformed int
	// HelperBeforeAllInformed counts helper transitions while some node
	// was still uninformed (Lemma 6.4).
	HelperBeforeAllInformed int
	// HaltBeforeAllHelpers counts halts of helper nodes while some
	// active node had not reached helper status (Lemma 6.5); it only
	// applies to MultiCastAdv variants.
	HaltBeforeAllHelpers int
}

// Add accumulates counts (used when aggregating trials).
func (c *InvariantCounts) Add(other InvariantCounts) {
	c.HaltedUninformed += other.HaltedUninformed
	c.HaltBeforeAllInformed += other.HaltBeforeAllInformed
	c.HelperBeforeAllInformed += other.HelperBeforeAllInformed
	c.HaltBeforeAllHelpers += other.HaltBeforeAllHelpers
}

// Any reports whether any invariant was violated.
func (c InvariantCounts) Any() bool {
	return c.HaltedUninformed != 0 || c.HaltBeforeAllInformed != 0 ||
		c.HelperBeforeAllInformed != 0 || c.HaltBeforeAllHelpers != 0
}

// Run executes one trial to completion.
func Run(cfg Config) (Metrics, error) {
	var e Executor
	return e.Run(cfg)
}

// Executor is a reusable execution context: one Executor runs many trials
// back to back, recycling the node table, wake ring, network meters, and
// metric buffers, so a steady-state trial allocates only what the
// algorithm's per-trial node constructors need — the slot loop itself
// allocates nothing (pinned by TestSlotLoopAllocFree). The zero value is
// ready to use. An Executor is not safe for concurrent use; the trial
// runner keeps one per worker goroutine.
type Executor struct {
	ex execution
}

// NewExecutor returns an empty Executor. Buffers are grown by the first
// Run and recycled by every Run after it.
func NewExecutor() *Executor { return &Executor{} }

// Run executes one trial to completion, exactly like the package-level
// Run — same validation, same Metrics, bit-identical results — but
// reuses the Executor's buffers across calls.
func (e *Executor) Run(cfg Config) (Metrics, error) {
	if err := e.ex.reset(cfg); err != nil {
		return Metrics{}, err
	}
	return e.ex.run()
}

// transition records a node's status change within one slot.
type transition struct {
	id            int
	before, after protocol.Status
}

// execution is the mutable state of one trial. All slice fields and the
// network are pooled: reset reuses their capacity across trials, which is
// what makes the Executor path allocation-free in steady state.
type execution struct {
	cfg      Config
	alg      protocol.Algorithm
	nodes    []protocol.Node
	sleepers []protocol.Sleeper // per-node Sleeper view, nil where unimplemented
	adv      adversary.Strategy
	adaptive adversary.Adaptive     // non-nil iff adv is adaptive (§8 extension)
	ranged   adversary.RangeSpender // non-nil iff adv supports closed-form range spends
	prefix   adversary.PrefixJammer // non-nil iff adv jams deterministic channel prefixes
	activity []adversary.Activity   // reusable observation buffer

	spanner     protocol.ChannelSpanner // non-nil iff alg exposes channel spans
	allSleepers bool                    // every node implements protocol.Sleeper

	net       *radio.Network
	mask      *bitset.Set
	remaining int64 // Eve's remaining budget

	active      []int // ids of non-halted nodes
	listeners   []int // ids that listen this slot
	channels    []int // channel per listener, parallel to listeners
	prevStatus  []protocol.Status
	transitions []transition

	ring  *wakeRing // sparse engine's wake list, recycled across trials
	awake []int     // sparse/event engines' per-slot wake buffer

	wheel      *eventWheel        // event engine's calendar, recycled across trials
	firstWakes []int64            // one-shot NextActive(0) results, indexed by id
	haveWakes  bool               // firstWakes is valid for this trial
	bcasts     []pendingBroadcast // lean step's broadcast buffer
	listens    []pendingListen    // lean step's listener buffer

	// forkBuf is the scratch stream handed to NewNode: seeding it in
	// place is state-identical to root.Fork() without the allocation
	// (nodes copy the Source value per the protocol contract).
	forkBuf rng.Source

	pool      *nodePool // non-nil while a NodeWorkers > 1 run is in flight
	poolCache *nodePool // retired pool kept so its buffers recycle across trials

	informedCount int
	helperSeen    bool
	haltedCount   int

	metrics Metrics
}

// reset rebuilds the execution for cfg, reusing every buffer whose
// capacity suffices. A fresh execution and a recycled one are
// indistinguishable to the trial: all randomness re-derives from
// cfg.Seed, all meters restart at zero.
func (ex *execution) reset(cfg Config) error {
	if cfg.N < 2 {
		return fmt.Errorf("sim: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.Algorithm == nil {
		return errors.New("sim: Config.Algorithm is required")
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("sim: negative budget %d", cfg.Budget)
	}
	if cfg.Engine > EngineEvent {
		return fmt.Errorf("sim: unknown engine %v", cfg.Engine)
	}
	if cfg.NodeWorkers < 0 {
		return fmt.Errorf("sim: negative NodeWorkers %d", cfg.NodeWorkers)
	}
	alg, err := cfg.Algorithm()
	if err != nil {
		return err
	}
	root := rng.New(cfg.Seed)
	advFactory := cfg.Adversary
	if advFactory == nil {
		advFactory = adversary.None()
	}

	ex.cfg = cfg
	ex.alg = alg
	ex.adv = advFactory.New(root.Fork())
	ex.remaining = cfg.Budget
	ex.metrics = Metrics{
		AllInformedSlot: -1,
		FirstHelperSlot: -1,
		FirstHaltSlot:   -1,
	}
	ex.informedCount = 0
	ex.helperSeen = false
	ex.haltedCount = 0

	ex.nodes = growSlice(ex.nodes, cfg.N)
	ex.sleepers = growSlice(ex.sleepers, cfg.N)
	ex.prevStatus = growSlice(ex.prevStatus, cfg.N)
	ex.active = growSlice(ex.active, cfg.N)[:0]
	ex.allSleepers = true
	ex.haveWakes = false
	for id := 0; id < cfg.N; id++ {
		// Seeding the scratch stream from root's next draw is exactly
		// root.Fork() without the allocation; NewNode copies the value.
		ex.forkBuf.Seed(root.Uint64())
		ex.nodes[id] = alg.NewNode(id, id == 0, &ex.forkBuf)
		ex.active = append(ex.active, id)
		if ex.nodes[id].Informed() {
			ex.informedCount++
		}
		ex.sleepers[id], _ = ex.nodes[id].(protocol.Sleeper)
		if ex.sleepers[id] == nil {
			ex.allSleepers = false
		}
	}
	ex.spanner, _ = alg.(protocol.ChannelSpanner)
	// The paper's theorems assume an oblivious Eve; adaptive strategies
	// (the §8 future-work extension) opt in via the Adaptive interface
	// and receive per-slot channel observations.
	ex.adaptive, _ = ex.adv.(adversary.Adaptive)
	ex.ranged, _ = ex.adv.(adversary.RangeSpender)
	ex.prefix, _ = ex.adv.(adversary.PrefixJammer)
	if ex.net == nil {
		ex.net = radio.NewNetwork(cfg.N, alg.Channels(0))
	} else {
		ex.net.Reset(cfg.N, alg.Channels(0))
	}
	if ex.mask == nil {
		ex.mask = bitset.New(alg.Channels(0))
	} else {
		ex.mask.Reset()
		ex.mask.Grow(alg.Channels(0))
	}
	ex.listeners = growSlice(ex.listeners, cfg.N)[:0]
	ex.channels = growSlice(ex.channels, cfg.N)[:0]
	ex.transitions = growSlice(ex.transitions, cfg.N)[:0]
	return nil
}

// growSlice returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// run dispatches to the selected engine. Both engines produce bit-identical
// Metrics; the dense loop is the reference semantics, the sparse loop the
// fast path (see sparse.go). With NodeWorkers > 1 the stepping pool's
// goroutines live exactly as long as the run — started here, joined on
// every return path — so executions never leak workers.
func (ex *execution) run() (Metrics, error) {
	if ex.cfg.NodeWorkers > 1 {
		ex.startPool()
		defer ex.stopPool()
	}
	switch ex.resolveEngine() {
	case EngineDense:
		return ex.runDense()
	case EngineEvent:
		ex.collectFirstWakes()
		return ex.runEvent()
	default:
		ex.collectFirstWakes()
		return ex.runSparse()
	}
}

// eventAutoGap is the Auto heuristic's crossover: when the mean gap to
// the nodes' first wakes is at least this many slots, the schedule is
// low-density and the event calendar wins; below it the sparse ring's
// smaller window is just as good and cheaper to reset.
// BenchmarkWakeStructures measures both structures across densities
// (see bench_test.go); the calendar's advantage appears once wake gaps
// regularly overflow the sparse ring's 64-slot window, so the crossover
// is set well below that scale to capture the gentle slopes too.
const eventAutoGap = 4.0

// resolveEngine maps Auto to a concrete engine. A skip-capable engine is
// chosen when it can actually skip: every node declares its wake slots,
// the adversary is oblivious (an adaptive Eve observes every slot,
// forcing per-slot stepping), and no Observer wants per-slot callbacks.
// Among the skip engines, Event is picked for low-density schedules
// (mean first-wake gap ≥ eventAutoGap) and Sparse otherwise. An explicit
// Engine choice is honoured as-is — the skip engines degrade gracefully
// to per-slot stepping where those conditions fail, and stay
// bit-identical.
func (ex *execution) resolveEngine() Engine {
	if ex.cfg.Engine != EngineAuto {
		return ex.cfg.Engine
	}
	if ex.allSleepers && ex.adaptive == nil && ex.cfg.Observer == nil {
		if ex.meanFirstGap() >= eventAutoGap {
			return EngineEvent
		}
		return EngineSparse
	}
	return EngineDense
}

// collectFirstWakes captures every node's NextActive(0) exactly once per
// trial. NextActive is not idempotent — absorbing an iteration boundary
// redraws the gap — so the Auto heuristic and the engine's wake-list
// seeding must share one collection pass.
func (ex *execution) collectFirstWakes() {
	if ex.haveWakes {
		return
	}
	ex.firstWakes = growSlice(ex.firstWakes, ex.cfg.N)
	for id := 0; id < ex.cfg.N; id++ {
		ex.firstWakes[id] = ex.nextWake(id, 0)
	}
	ex.haveWakes = true
}

// meanFirstGap estimates the schedule's wake density from the first-wake
// gaps, clamping each gap so the degenerate never-wakes sentinel
// (rng.MaxGap) cannot overflow the sum.
func (ex *execution) meanFirstGap() float64 {
	ex.collectFirstWakes()
	const clamp = int64(1) << 20
	var sum int64
	for _, w := range ex.firstWakes[:ex.cfg.N] {
		if w > clamp {
			w = clamp
		}
		sum += w
	}
	return float64(sum) / float64(ex.cfg.N)
}

func (ex *execution) maxSlots() int64 {
	if ex.cfg.MaxSlots > 0 {
		return ex.cfg.MaxSlots
	}
	return DefaultMaxSlots
}

func (ex *execution) errMaxSlots(slot int64) error {
	return fmt.Errorf("%w (slot %d, algorithm %s)", ErrMaxSlots, slot, ex.alg.Name())
}

// interrupted reports whether Config.Interrupt has fired (false when the
// channel is nil).
func (ex *execution) interrupted() bool {
	select {
	case <-ex.cfg.Interrupt:
		return true
	default:
		return false
	}
}

func (ex *execution) runDense() (Metrics, error) {
	maxSlots := ex.maxSlots()
	for slot := int64(0); ; slot++ {
		if slot >= maxSlots {
			ex.fillMetrics(slot)
			return ex.metrics, ex.errMaxSlots(slot)
		}
		if slot&(interruptStride-1) == 0 && ex.interrupted() {
			ex.fillMetrics(slot)
			return ex.metrics, ErrInterrupted
		}
		ex.stepSlot(slot, ex.active, true)
		if ex.haltedCount == ex.cfg.N {
			ex.fillMetrics(slot + 1)
			return ex.metrics, nil
		}
	}
}

// stepSlot advances one slot of the execution, stepping exactly the nodes
// in ids. The dense engine passes every non-halted node; the sparse engine
// passes the awake subset, whose sleeping peers are guaranteed idle and
// transition-free this slot (the protocol.Sleeper contract). ids must be
// in ascending id order. When maintainActive is set, ids must alias
// ex.active, which is rebuilt in place to drop freshly halted nodes.
func (ex *execution) stepSlot(slot int64, ids []int, maintainActive bool) {
	channels := ex.alg.Channels(slot)

	// Eve's jam set is fixed before node actions resolve (obliviousness),
	// truncated to her remaining budget.
	jamCount := 0
	if ex.remaining > 0 {
		ex.mask.Grow(channels)
		// The mask is clean here: it starts clean and is re-cleaned after
		// any slot that set bits, so quiet slots skip the O(channels) wipe.
		jamCount = ex.adv.Fill(slot, channels, ex.mask)
		if int64(jamCount) > ex.remaining {
			jamCount = adversary.Truncate(ex.mask, channels, jamCount, int(ex.remaining))
		}
		ex.remaining -= int64(jamCount)
	}
	var jam *bitset.Set
	if jamCount > 0 {
		jam = ex.mask
		defer ex.mask.Reset()
	}
	ex.net.BeginSlot(slot, channels, jam, jamCount)

	// Phase 1: every broadcast registers before any listen resolves —
	// the model's transmissions are simultaneous within a slot.
	ex.listeners = ex.listeners[:0]
	ex.channels = ex.channels[:0]
	broadcasters := 0
	if ex.pool != nil && len(ids) > 0 {
		broadcasters = ex.pool.phase1(slot, ids)
	} else {
		for _, id := range ids {
			nd := ex.nodes[id]
			ex.prevStatus[id] = nd.Status()
			act := nd.Step(slot)
			switch act.Kind {
			case protocol.Broadcast:
				ex.net.Broadcast(id, act.Channel, act.Payload)
				broadcasters++
			case protocol.Listen:
				ex.listeners = append(ex.listeners, id)
				ex.channels = append(ex.channels, act.Channel)
			}
		}
	}

	// Phase 2: listeners observe the resolved channels.
	for k, id := range ex.listeners {
		fb := ex.net.Listen(id, ex.channels[k])
		ex.nodes[id].Deliver(fb)
	}
	ex.net.EndSlot()

	// An adaptive Eve senses every channel's activity after the slot.
	if ex.adaptive != nil {
		ex.observe(slot, channels, jam)
	}

	// Phase 3: end-of-slot bookkeeping and status transitions.
	ex.transitions = ex.transitions[:0]
	switch {
	case ex.pool != nil && len(ids) > 0:
		ex.pool.phase3(slot, ids, maintainActive)
	case maintainActive:
		// ids aliases ex.active; the rebuild writes behind the read
		// cursor, so the in-place filter is safe.
		out := ex.active[:0]
		for _, id := range ids {
			nd := ex.nodes[id]
			nd.EndSlot(slot)
			after := nd.Status()
			if before := ex.prevStatus[id]; after != before {
				ex.transitions = append(ex.transitions, transition{id: id, before: before, after: after})
			}
			if after != protocol.Halted {
				out = append(out, id)
			}
		}
		ex.active = out
	default:
		for _, id := range ids {
			nd := ex.nodes[id]
			nd.EndSlot(slot)
			after := nd.Status()
			if before := ex.prevStatus[id]; after != before {
				ex.transitions = append(ex.transitions, transition{id: id, before: before, after: after})
			}
		}
	}

	// Informedness first: all of this slot's transitions count as
	// simultaneous, matching the lemmas' "by the end of the iteration".
	for _, tr := range ex.transitions {
		if tr.before == protocol.Uninformed && ex.nodes[tr.id].Informed() {
			ex.informedCount++
		}
	}
	if ex.informedCount == ex.cfg.N && ex.metrics.AllInformedSlot < 0 {
		ex.metrics.AllInformedSlot = slot + 1
	}
	// Then the helper/halt events and their safety invariants.
	for _, tr := range ex.transitions {
		ex.noteTransition(tr, slot)
	}

	if ex.cfg.Observer != nil {
		ex.cfg.Observer.Slot(slot, channels, jamCount, len(ex.listeners), broadcasters, ex.informedCount, ex.haltedCount)
	}
}

// observe reports the slot's per-channel activity to an adaptive Eve.
func (ex *execution) observe(slot int64, channels int, jam *bitset.Set) {
	if cap(ex.activity) < channels {
		ex.activity = make([]adversary.Activity, channels)
	}
	act := ex.activity[:channels]
	for ch := 0; ch < channels; ch++ {
		switch {
		case jam != nil && jam.Test(ch):
			act[ch] = adversary.Jammed
		case ex.net.BroadcastersOn(ch) == 0:
			act[ch] = adversary.Quiet
		case ex.net.BroadcastersOn(ch) == 1:
			act[ch] = adversary.Delivered
		default:
			act[ch] = adversary.Collided
		}
	}
	ex.adaptive.Observe(slot, act)
}

// noteTransition updates event metrics and audits the safety invariants.
func (ex *execution) noteTransition(tr transition, slot int64) {
	switch tr.after {
	case protocol.Helper:
		ex.helperSeen = true
		if ex.metrics.FirstHelperSlot < 0 {
			ex.metrics.FirstHelperSlot = slot + 1
		}
		if ex.informedCount < ex.cfg.N {
			ex.metrics.Invariants.HelperBeforeAllInformed++
		}
	case protocol.Halted:
		ex.haltedCount++
		if ex.metrics.FirstHaltSlot < 0 {
			ex.metrics.FirstHaltSlot = slot + 1
		}
		if !ex.nodes[tr.id].Informed() {
			ex.metrics.Invariants.HaltedUninformed++
		}
		if ex.informedCount < ex.cfg.N {
			ex.metrics.Invariants.HaltBeforeAllInformed++
		}
		// Lemma 6.5: in helper-capable algorithms, a halt implies every
		// node has progressed to helper (or halted) by this slot's end.
		if tr.before == protocol.Helper && !ex.allReachedHelper() {
			ex.metrics.Invariants.HaltBeforeAllHelpers++
		}
	}
}

// allReachedHelper reports whether every node is Helper or Halted.
func (ex *execution) allReachedHelper() bool {
	for _, nd := range ex.nodes {
		if s := nd.Status(); s != protocol.Helper && s != protocol.Halted {
			return false
		}
	}
	return true
}

func (ex *execution) fillMetrics(slots int64) {
	ex.metrics.Slots = slots
	energies := ex.net.NodeEnergies()
	var sum int64
	for _, e := range energies {
		sum += e
		if e > ex.metrics.MaxNodeEnergy {
			ex.metrics.MaxNodeEnergy = e
		}
	}
	ex.metrics.SourceEnergy = energies[0]
	ex.metrics.MeanNodeEnergy = float64(sum) / float64(len(energies))
	ex.metrics.EveEnergy = ex.net.EveEnergy()
	for _, nd := range ex.nodes {
		hp, ok := nd.(helperPhaser)
		if !ok {
			continue
		}
		// Halted MultiCastAdv nodes necessarily passed through helper;
		// active helpers report directly. Nodes that never reached
		// helper have no recorded phase.
		if s := nd.Status(); s != protocol.Helper && s != protocol.Halted {
			continue
		}
		_, j := hp.HelperPhase()
		if j < 0 {
			continue
		}
		if j > MaxHelperJBucket {
			j = MaxHelperJBucket
		}
		ex.metrics.HelperJCounts[j]++
	}
}

// Statistical replication (parallel seeded trials, sharding, streaming
// sinks) lives in multicast/internal/runner, which builds on Run and the
// Interrupt hook; package sim deliberately contains no batch machinery,
// so one execution stays the engine's only unit of work.
