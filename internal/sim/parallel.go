// Parallel intra-trial stepping: with Config.NodeWorkers > 1, stepSlot's
// Phase 1 (node actions) and Phase 3 (end-of-slot transitions) partition
// the slot's node ids across a bounded pool of workers. The reduction is
// deterministic by construction — partitions are contiguous id ranges,
// each worker records its effects into private buffers, and the
// coordinator replays those buffers in partition order, which is
// ascending id order — so an execution is bit-identical for every worker
// count, on either engine, and the dense/sparse equivalence pins keep
// holding (TestNodeWorkersEquivalence, FuzzEngineEquivalence).
//
// What makes the node loops safe to partition: a node's Step/EndSlot
// touch only the node's own state and its private rng.Source fork;
// algorithm instances are read immutably after construction (each
// MultiCastAdv node carries its own schedule cache); and the engine-side
// writes land at distinct indices of prevStatus. Everything with shared
// mutable state — the radio network, the listener resolution of Phase 2,
// the adversary, metrics — stays on the coordinator goroutine.
//
// The pool's goroutines live for one run() and are dispatched by
// per-worker wake channels carrying no data (the job parameters sit in
// pool fields published happens-before by the channel send), so a slot
// dispatch allocates nothing.
package sim

import (
	"sync"

	"multicast/internal/protocol"
	"multicast/internal/radio"
)

// pendingBroadcast is one Phase 1 broadcast action, recorded by a worker
// and registered with the network by the coordinator.
type pendingBroadcast struct {
	id      int
	ch      int
	payload radio.Payload
}

// stepPart is one worker's slice of a slot plus its private effect
// buffers. Buffers keep their capacity across slots and trials.
type stepPart struct {
	lo, hi int // ids[lo:hi)

	bcasts    []pendingBroadcast
	listeners []int
	channels  []int

	trans []transition
	keep  []int // non-halted ids (Phase 3 with maintainActive)
}

// nodePool fans a slot's node loops out over workers goroutines.
// Worker 0 is the coordinator itself; workers 1..n-1 are goroutines that
// live for one execution run.
type nodePool struct {
	ex      *execution
	workers int

	// Per-dispatch job description, written by the coordinator before
	// the wake sends and read by workers after the wake receives.
	phase      uint8 // 1 or 3
	slot       int64
	ids        []int
	keepActive bool

	parts []stepPart
	wake  []chan struct{} // per-worker wake signal; a send with stop set joins
	done  chan struct{}   // workers report phase completion here
	stop  bool            // set (happens-before a wake send) to retire workers
	wg    sync.WaitGroup
}

// startPool (re)creates the pool for this run and spawns its worker
// goroutines. The stepPart buffers and the wake/done channels persist on
// the pool across runs of a recycled Executor — rebuilding the channels
// was the parallel path's dominant per-trial allocation — so only the
// goroutines themselves are per-run.
func (ex *execution) startPool() {
	workers := min(ex.cfg.NodeWorkers, ex.cfg.N)
	if ex.poolCache != nil {
		ex.pool, ex.poolCache = ex.poolCache, nil
	} else {
		ex.pool = &nodePool{ex: ex}
	}
	p := ex.pool
	p.workers = workers
	if cap(p.parts) < workers {
		parts := make([]stepPart, workers)
		copy(parts, p.parts)
		p.parts = parts
	}
	p.parts = p.parts[:workers]
	if cap(p.wake) < workers {
		wake := make([]chan struct{}, workers)
		copy(wake, p.wake)
		p.wake = wake
	}
	p.wake = p.wake[:workers]
	if p.done == nil || cap(p.done) < workers {
		p.done = make(chan struct{}, workers)
	}
	// Pre-size every partition's effect buffers to the worst-case
	// partition width in one shot: letting append grow them across early
	// slots (and creep on each new high-water trial) was the parallel
	// path's remaining allocation overhead at short-trial bench scale.
	width := (ex.cfg.N + workers - 1) / workers
	for w := range p.parts {
		pt := &p.parts[w]
		if cap(pt.bcasts) < width {
			pt.bcasts = make([]pendingBroadcast, 0, width)
		}
		if cap(pt.listeners) < width {
			pt.listeners = make([]int, 0, width)
		}
		if cap(pt.channels) < width {
			pt.channels = make([]int, 0, width)
		}
		if cap(pt.trans) < width {
			pt.trans = make([]transition, 0, width)
		}
		if cap(pt.keep) < width {
			pt.keep = make([]int, 0, width)
		}
	}
	for w := 1; w < workers; w++ {
		if p.wake[w] == nil {
			p.wake[w] = make(chan struct{}, 1)
		}
		p.wg.Add(1)
		go p.work(w)
	}
}

// work is the body of pool goroutine w ≥ 1. A method, not a closure:
// `go p.work(w)` spawns without allocating a closure object per run.
func (p *nodePool) work(w int) {
	defer p.wg.Done()
	for range p.wake[w] {
		if p.stop {
			return
		}
		p.runPart(w)
		p.done <- struct{}{}
	}
}

// stopPool joins the worker goroutines: the stop flag is published
// happens-before the wake sends, so each worker observes it and returns
// without touching done (which dispatch always drains, so it is empty
// here). The pool struct — buffers and channels included — stays on the
// execution for the next run.
func (ex *execution) stopPool() {
	p := ex.pool
	if p == nil {
		return
	}
	p.stop = true
	for w := 1; w < p.workers; w++ {
		p.wake[w] <- struct{}{}
	}
	p.wg.Wait()
	p.stop = false
	ex.pool = nil
	ex.poolCache = p
}

// dispatch runs one phase over ids across all workers and blocks until
// every partition is done. Partition boundaries depend only on len(ids)
// and the worker count — and the merge order makes even those
// invisible to the results.
func (p *nodePool) dispatch(phase uint8, slot int64, ids []int, keepActive bool) {
	p.phase, p.slot, p.ids, p.keepActive = phase, slot, ids, keepActive
	n, k := len(ids), p.workers
	for w := 0; w < k; w++ {
		p.parts[w].lo = w * n / k
		p.parts[w].hi = (w + 1) * n / k
	}
	for w := 1; w < k; w++ {
		p.wake[w] <- struct{}{}
	}
	p.runPart(0)
	for w := 1; w < k; w++ {
		<-p.done
	}
}

// runPart executes the current job's partition w into its private
// buffers.
func (p *nodePool) runPart(w int) {
	ex := p.ex
	pt := &p.parts[w]
	ids := p.ids[pt.lo:pt.hi]
	if p.phase == 1 {
		pt.bcasts = pt.bcasts[:0]
		pt.listeners = pt.listeners[:0]
		pt.channels = pt.channels[:0]
		for _, id := range ids {
			nd := ex.nodes[id]
			ex.prevStatus[id] = nd.Status()
			act := nd.Step(p.slot)
			switch act.Kind {
			case protocol.Broadcast:
				pt.bcasts = append(pt.bcasts, pendingBroadcast{id: id, ch: act.Channel, payload: act.Payload})
			case protocol.Listen:
				pt.listeners = append(pt.listeners, id)
				pt.channels = append(pt.channels, act.Channel)
			}
		}
		return
	}
	pt.trans = pt.trans[:0]
	pt.keep = pt.keep[:0]
	for _, id := range ids {
		nd := ex.nodes[id]
		nd.EndSlot(p.slot)
		after := nd.Status()
		if before := ex.prevStatus[id]; after != before {
			pt.trans = append(pt.trans, transition{id: id, before: before, after: after})
		}
		if p.keepActive && after != protocol.Halted {
			pt.keep = append(pt.keep, id)
		}
	}
}

// phase1 steps ids in parallel and replays the recorded actions in
// ascending id order: broadcasts register with the network first (the
// model's simultaneous-transmission rule), then the listener list is
// assembled for Phase 2. Returns the broadcaster count.
func (p *nodePool) phase1(slot int64, ids []int) (broadcasters int) {
	p.dispatch(1, slot, ids, false)
	ex := p.ex
	for w := range p.parts {
		pt := &p.parts[w]
		for _, b := range pt.bcasts {
			ex.net.Broadcast(b.id, b.ch, b.payload)
		}
		broadcasters += len(pt.bcasts)
		ex.listeners = append(ex.listeners, pt.listeners...)
		ex.channels = append(ex.channels, pt.channels...)
	}
	return broadcasters
}

// phase3 runs the end-of-slot transitions in parallel, merges the
// per-partition transition lists in ascending id order, and (when
// maintainActive) rebuilds ex.active from the partitions' keep lists —
// the same subsequence the serial in-place filter produces.
func (p *nodePool) phase3(slot int64, ids []int, maintainActive bool) {
	p.dispatch(3, slot, ids, maintainActive)
	ex := p.ex
	for w := range p.parts {
		ex.transitions = append(ex.transitions, p.parts[w].trans...)
	}
	if maintainActive {
		// The keep lists are copies, so overwriting ex.active (which ids
		// aliases in the dense loop) is safe.
		out := ex.active[:0]
		for w := range p.parts {
			out = append(out, p.parts[w].keep...)
		}
		ex.active = out
	}
}
