// Event slot engine: the global event-calendar loop. The sparse engine
// (sparse.go) already skips idle slot ranges, but its wake list is a
// 64-slot ring — schedules whose gaps regularly exceed the window push
// half their wakes through the overflow heap, and every executed slot
// still pays the full radio.Network slot protocol. The event engine
// replaces both costs:
//
//   - wakes live in a 4096-slot calendar (eventWheel) with a two-level
//     occupancy bitmap, so the next network event — the minimum over the
//     next node wake, the adversary's budget horizon, channel-span
//     boundaries, and the MaxSlots valve — is found with two or three
//     word scans, and the overflow heap (the existing wakeHeap) only
//     sees astronomically rare gaps ≥ 4096;
//   - slots are resolved by a lean step (stepSlotLean) that collects the
//     few awake nodes' actions, resolves each listener's channel against
//     the slot's broadcasts and jam mask directly, and bypasses the
//     network's BeginSlot/EndSlot machinery — energy metering still
//     lands in radio.Network's meters, and Eve's per-slot accounting is
//     reproduced call for call (adversary.RangeSpender covers the
//     no-listener slots where only her spend is observable).
//
// The skipped ranges charge Eve exactly as the sparse engine does
// (skipRange/chargeRange). Executions are bit-identical to the dense
// engine for every configuration; TestEngineEquivalenceMatrix and
// FuzzEngineEquivalence pin that down with the event engine as a third
// column.

package sim

import (
	"math/bits"

	"multicast/internal/adversary"
	"multicast/internal/protocol"
	"multicast/internal/radio"
)

// wheelWindow is the calendar's span: one bucket per slot of the next
// wheelWindow slots. At the lowest per-node rate the engines target
// (p ~ 2⁻¹⁴ in MultiCast's late iterations), P(gap > 4096) is still
// only moderate, and migration through the overflow heap stays correct
// for any gap — the window just bounds how often it is exercised.
const (
	wheelWindow = 4096
	wheelGroups = wheelWindow / 64
)

// eventWheel is a two-tier calendar queue over wake slots, the event
// engine's counterpart of wakeRing. Near-future wakes (slot ∈ [base,
// base+4096)) live in per-slot buckets addressed by slot&4095; buckets
// are intrusive chains threaded through next (each node has at most one
// pending wake). Occupancy is a two-level bitmap — group[g] holds one
// bit per bucket of group g, summary one bit per non-empty group — so
// the next occupied bucket after any position is found with at most
// three TrailingZeros scans. Far-future wakes wait in a wakeHeap and
// migrate in as the window advances.
type eventWheel struct {
	base     int64   // buckets cover slots [base, base+wheelWindow)
	head     []int32 // [wheelWindow] chain head per bucket, -1 when empty
	next     []int32 // next[id]: chain link, indexed by node id
	group    [wheelGroups]uint64
	summary  uint64
	overflow wakeHeap
	size     int // pending wakes, both tiers

	idbits []uint64 // popSlot id bitmap: one bit per id, zero between pops
	bucket []int32  // popSlot chain-collection scratch (sorter fallback)
	sorter runSorter
}

func newEventWheel(capacity int) *eventWheel {
	w := &eventWheel{
		head:   make([]int32, wheelWindow),
		next:   make([]int32, capacity),
		idbits: make([]uint64, (capacity+63)/64+1),
	}
	for i := range w.head {
		w.head[i] = -1
	}
	return w
}

// reset empties the wheel for a new trial, keeping every allocation.
// Only occupied buckets are cleared — the bitmap remembers them — so the
// per-trial cost is proportional to the pending wakes, not the window.
func (w *eventWheel) reset() {
	for s := w.summary; s != 0; s &= s - 1 {
		g := bits.TrailingZeros64(s)
		for m := w.group[g]; m != 0; m &= m - 1 {
			w.head[g*64+bits.TrailingZeros64(m)] = -1
		}
		w.group[g] = 0
	}
	w.summary = 0
	w.base = 0
	w.overflow = w.overflow[:0]
	w.size = 0
}

// growNext ensures the chain-link array (and the id bitmap) covers id.
// The grow body lives in growNextSlow so this guard — and with it link
// and push — stays within the inliner's budget on the hot path.
func (w *eventWheel) growNext(id int32) {
	if int(id) < len(w.next) {
		return
	}
	w.growNextSlow(id)
}

func (w *eventWheel) growNextSlow(id int32) {
	n := 2 * len(w.next)
	if n <= int(id) {
		n = int(id) + 1
	}
	next := make([]int32, n)
	copy(next, w.next)
	w.next = next
	idbits := make([]uint64, (n+63)/64+1)
	copy(idbits, w.idbits)
	w.idbits = idbits
}

// link threads id onto the bucket chain for an in-window slot.
func (w *eventWheel) link(slot int64, id int32) {
	b := int(slot & (wheelWindow - 1))
	w.growNext(id)
	w.next[id] = w.head[b]
	w.head[b] = id
	w.group[b>>6] |= 1 << (b & 63)
	w.summary |= 1 << (b >> 6)
}

// push schedules id to wake at slot: in-window slots thread onto their
// bucket chain (link's body, spelled out so the hot re-push loop pays
// one call instead of two), later ones spill to the overflow heap.
func (w *eventWheel) push(slot int64, id int32) {
	w.size++
	if slot >= w.base+wheelWindow {
		w.overflow.push(wakeEntry{slot: slot, id: id})
		return
	}
	b := int(slot & (wheelWindow - 1))
	w.growNext(id)
	w.next[id] = w.head[b]
	w.head[b] = id
	w.group[b>>6] |= 1 << (b & 63)
	w.summary |= 1 << (b >> 6)
}

// advance moves the window start to cur and migrates overflow entries
// that now fit. Buckets for slots < cur are necessarily empty (they were
// popped, or never filled), so reusing them for the new window is safe.
// The migration loop is split out so the guard inlines at call sites.
func (w *eventWheel) advance(cur int64) {
	w.base = cur
	if len(w.overflow) != 0 && w.overflow[0].slot < cur+wheelWindow {
		w.migrateOverflow(cur)
	}
}

func (w *eventWheel) migrateOverflow(cur int64) {
	for len(w.overflow) > 0 && w.overflow[0].slot < cur+wheelWindow {
		e := w.overflow.popMin()
		w.link(e.slot, e.id)
	}
}

// popNext finds the earliest scheduled wake ≥ cur, drains its bucket
// into dst (ascending id order), and returns the wake slot with the
// extended slice. One call replaces the advance → nextWakeSlot →
// popSlot sequence, so the hot loop pays a single call and a single
// window scan per executed slot. Returns ok=false when no wake is
// pending anywhere.
func (w *eventWheel) popNext(cur int64, dst []int) (int64, []int, bool) {
	if w.size == 0 {
		return 0, dst, false
	}
	w.base = cur
	if len(w.overflow) != 0 && w.overflow[0].slot < cur+wheelWindow {
		w.migrateOverflow(cur)
	}
	if w.summary == 0 {
		// Every pending wake sits in the overflow heap, beyond the
		// window: jump the window to the heap's head, which migrates at
		// least that entry into a bucket.
		w.advance(w.overflow[0].slot)
		cur = w.base
	}
	// The occupancy scan is nextWakeSlot's, spelled out inline (summary
	// is known non-zero here, and the call is on the per-slot hot path).
	p := int(cur & (wheelWindow - 1))
	pg, pb := p>>6, p&63
	var slot int64
	if rem := w.group[pg] >> pb; rem != 0 {
		slot = cur + int64(bits.TrailingZeros64(rem))
	} else if rot := bits.RotateLeft64(w.summary, -pg) &^ 1; rot != 0 {
		dg := bits.TrailingZeros64(rot)
		g := (pg + dg) & (wheelGroups - 1)
		slot = cur + int64(dg*64-pb+bits.TrailingZeros64(w.group[g]))
	} else {
		low := w.group[pg] & (1<<pb - 1)
		slot = cur + int64(wheelWindow-pb+bits.TrailingZeros64(low))
	}
	return slot, w.popSlot(slot, dst), true
}

// nextWakeSlot returns the earliest scheduled wake ≥ cur. The caller
// must have advanced the window to cur first; every bucket entry then
// lies in [cur, cur+wheelWindow) and every overflow entry at or beyond
// the window end, so any bucket hit precedes the overflow head. Returns
// false when empty.
func (w *eventWheel) nextWakeSlot(cur int64) (int64, bool) {
	if w.size == 0 {
		return 0, false
	}
	if w.summary != 0 {
		p := int(cur & (wheelWindow - 1))
		pg, pb := p>>6, p&63
		// Same group, at or after the position bit.
		if rem := w.group[pg] >> pb; rem != 0 {
			return cur + int64(bits.TrailingZeros64(rem)), true
		}
		// Later groups in rotated (wrapping) order, excluding pg itself.
		if rot := bits.RotateLeft64(w.summary, -pg) &^ 1; rot != 0 {
			dg := bits.TrailingZeros64(rot)
			g := (pg + dg) & (wheelGroups - 1)
			b := bits.TrailingZeros64(w.group[g])
			return cur + int64(dg*64-pb+b), true
		}
		// Only pg is occupied and only below the position bit: the wake
		// is one full window wrap ahead.
		low := w.group[pg] & (1<<pb - 1)
		return cur + int64(wheelWindow-pb+bits.TrailingZeros64(low)), true
	}
	return w.overflow[0].slot, true
}

// popSlot appends (in ascending id order) the ids waking exactly at cur
// and returns the extended slice. The caller must have advanced the
// window to cur, so the bucket holds exactly the slot-cur entries.
func (w *eventWheel) popSlot(cur int64, dst []int) []int {
	b := int(cur & (wheelWindow - 1))
	h := w.head[b]
	if h < 0 {
		return dst
	}
	n1 := w.next[h]
	if n1 < 0 {
		// Single wake — the dominant bucket shape at sparse densities;
		// skip chain collection and sorting entirely.
		dst = append(dst, int(h))
		w.size--
		w.clearBucket(b)
		return dst
	}
	if w.next[n1] < 0 {
		// Two wakes: order them with one compare.
		lo, hi := h, n1
		if lo > hi {
			lo, hi = hi, lo
		}
		dst = append(dst, int(lo), int(hi))
		w.size -= 2
		w.clearBucket(b)
		return dst
	}
	// Three or more wakes: mark each id in the bitmap and read the words
	// back — the ids come out ascending with no sort at all, at a cost
	// proportional to the chain plus the id-word span it covers.
	idb := w.idbits
	if len(idb) <= 16 {
		// Small id space (n ≤ ~1000): the whole bitmap is a cache line
		// or two, so scan every word and skip the span bookkeeping the
		// big-n path pays per chain element.
		k := 0
		for id := h; id >= 0; id = w.next[id] {
			idb[int(id)>>6] |= 1 << (uint(id) & 63)
			k++
		}
		for wd := range idb {
			for word := idb[wd]; word != 0; word &= word - 1 {
				dst = append(dst, wd<<6|bits.TrailingZeros64(word))
			}
			idb[wd] = 0
		}
		w.size -= k
		w.clearBucket(b)
		return dst
	}
	lo, hi := len(idb), -1
	k := 0
	for id := h; id >= 0; id = w.next[id] {
		wd := int(id) >> 6
		idb[wd] |= 1 << (uint(id) & 63)
		if wd < lo {
			lo = wd
		}
		if wd > hi {
			hi = wd
		}
		k++
	}
	if hi-lo > 4*k+8 {
		// A handful of ids scattered across a huge id space: the word
		// scan would dominate. Unmark them (the chain is untouched) and
		// let the run-merge sorter handle the bucket instead.
		for id := h; id >= 0; id = w.next[id] {
			idb[int(id)>>6] = 0
		}
		return w.popSlotSorted(b, h, k, dst)
	}
	for wd := lo; wd <= hi; wd++ {
		for word := idb[wd]; word != 0; word &= word - 1 {
			dst = append(dst, wd<<6|bits.TrailingZeros64(word))
		}
		idb[wd] = 0
	}
	w.size -= k
	w.clearBucket(b)
	return dst
}

// popSlotSorted drains bucket b (chain head h, k entries) through the
// run-merge sorter: the chain is LIFO, so reversing it restores push
// order — a concatenation of ascending runs, the sorter's best shape.
func (w *eventWheel) popSlotSorted(b int, h int32, k int, dst []int) []int {
	ids := w.bucket[:0]
	for id := h; id >= 0; id = w.next[id] {
		ids = append(ids, id)
	}
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	w.bucket = ids
	w.sorter.sort(ids)
	for _, id := range ids {
		dst = append(dst, int(id))
	}
	w.size -= k
	w.clearBucket(b)
	return dst
}

// clearBucket empties bucket b and drops its occupancy bits.
func (w *eventWheel) clearBucket(b int) {
	w.head[b] = -1
	g := b >> 6
	w.group[g] &^= 1 << (b & 63)
	if w.group[g] == 0 {
		w.summary &^= 1 << g
	}
}

// pendingListen is one Phase 1 listen action buffered by the lean step:
// the listener's id and the channel it tuned to.
type pendingListen struct {
	id, ch int32
}

// runEvent is the event-calendar slot loop. Its control flow mirrors
// runSparse exactly — advance, find the next event, bulk-skip the gap,
// execute the wake slot, reschedule — so every adversary call and node
// call happens in the same order; the differences are the calendar
// (eventWheel for wakeRing) and the lean slot step.
func (ex *execution) runEvent() (Metrics, error) {
	maxSlots := ex.maxSlots()
	// Same degradations as the sparse engine: an adaptive Eve or an
	// Observer forces every slot to resolve.
	skipOK := ex.adaptive == nil && ex.cfg.Observer == nil
	// The lean step resolves channels without the radio slot protocol;
	// it cannot drive the NodeWorkers pool (and the conditions above
	// already exclude per-slot observers), so those runs keep the full
	// stepSlot. Either way the results are bit-identical.
	lean := skipOK && ex.pool == nil
	if lean {
		// The lean steps read each node's pre-slot status from this
		// mirror — maintained on every transition — instead of paying a
		// Status interface call per node per slot. Status is a pure
		// observer, so skipping redundant calls cannot perturb the run.
		for _, id := range ex.active {
			ex.prevStatus[id] = ex.nodes[id].Status()
		}
	}

	if ex.wheel == nil {
		ex.wheel = newEventWheel(ex.cfg.N)
	} else {
		ex.wheel.reset()
	}
	wheel := ex.wheel
	for _, id := range ex.active {
		wheel.push(ex.firstWakes[id], int32(id))
	}
	if cap(ex.awake) < ex.cfg.N {
		ex.awake = make([]int, 0, ex.cfg.N)
	}
	awake := ex.awake[:0]

	// Channel span cached for the lean step; refreshed when cur crosses
	// the span boundary (the third event source in the calendar's
	// min — constant-channel algorithms never refresh).
	spanChannels, spanUntil := 0, int64(0)

	cur := int64(0)
	poll := 0
	for {
		if poll--; poll <= 0 {
			poll = interruptStride
			if ex.interrupted() {
				ex.fillMetrics(cur)
				return ex.metrics, ErrInterrupted
			}
		}
		wheel.advance(cur)
		next, ok := wheel.nextWakeSlot(cur)
		if !ok {
			next = maxSlots
		}
		if next > cur {
			if skipOK {
				to := next
				if to > maxSlots {
					to = maxSlots
				}
				ex.skipRange(cur, to)
				cur = to
			} else {
				for cur < next && cur < maxSlots {
					if cur&(interruptStride-1) == 0 && ex.interrupted() {
						ex.fillMetrics(cur)
						return ex.metrics, ErrInterrupted
					}
					ex.stepSlot(cur, nil, false)
					cur++
				}
			}
		}
		if cur >= maxSlots {
			ex.fillMetrics(cur)
			return ex.metrics, ex.errMaxSlots(cur)
		}
		wheel.advance(cur)
		awake = wheel.popSlot(cur, awake[:0])

		if lean {
			if cur >= spanUntil {
				spanChannels, spanUntil = ex.channelSpan(cur)
			}
			ex.stepSlotLean(cur, awake, spanChannels)
		} else {
			ex.stepSlot(cur, awake, false)
		}
		// Pending wakes always belong to non-halted nodes (a node stops
		// being re-pushed the slot it halts), so when the slot recorded
		// no transitions every awake node is still live — skip the
		// per-id Status query. The nextWake logic is spelled out inline:
		// the wrapper call costs a measurable share of the re-push loop.
		if len(ex.transitions) == 0 {
			for _, id := range awake {
				at := cur + 1
				if sl := ex.sleepers[id]; sl != nil {
					if ww := sl.NextActive(at); ww > at {
						at = ww
					}
				}
				wheel.push(at, int32(id))
			}
		} else {
			for _, id := range awake {
				if ex.nodes[id].Status() != protocol.Halted {
					at := cur + 1
					if sl := ex.sleepers[id]; sl != nil {
						if ww := sl.NextActive(at); ww > at {
							at = ww
						}
					}
					wheel.push(at, int32(id))
				}
			}
		}
		if ex.haltedCount == ex.cfg.N {
			ex.fillMetrics(cur + 1)
			return ex.metrics, nil
		}
		cur++
	}
}

// stepSlotLean advances one slot without the radio.Network slot
// protocol, for the common event-engine slot where a handful of nodes
// act and nobody else can observe the difference. It reproduces
// stepSlot's observable behaviour exactly:
//
//   - node calls (Step, Deliver, EndSlot) happen in the same ascending
//     id order with the same inputs, so node RNG streams are untouched;
//   - Eve's per-slot accounting is identical — when listeners exist her
//     mask is materialised and truncated exactly as in stepSlot, and
//     when none do, only her spend is observable, which
//     adversary.RangeSpender yields for the single-slot range with
//     bit-identical strategy state (the same contract chargeRange
//     relies on for whole skipped ranges);
//   - channel resolution replays radio.Listen's rules (jam → Noise,
//     0/1/≥2 broadcasters → Silence/Message/Noise, first broadcast's
//     payload wins) against the slot's collected broadcasts;
//   - energy lands in the network's meters (NodeEnergies/ChargeEve).
//
// Collecting node actions before drawing Eve's jam set is a legal
// reordering: her stream is an independent fork, and obliviousness means
// the mask cannot depend on the actions — the coupling happens entirely
// in the listen resolution.
func (ex *execution) stepSlotLean(slot int64, ids []int, channels int) {
	if len(ids) == 1 {
		ex.stepSlotLean1(slot, ids[0], channels)
		return
	}
	// Phase 1: collect actions; broadcasts buffer instead of registering.
	// Node statuses come from the ex.prevStatus mirror (seeded by runEvent,
	// maintained on every transition below) instead of per-node Status
	// calls, and energy lands in the network's meter slice directly — the
	// same meters ChargeNode feeds, minus the call.
	energy := ex.net.NodeEnergies()
	listens := ex.listens[:0]
	bcasts := ex.bcasts[:0]
	for _, id := range ids {
		nd := ex.nodes[id]
		act := nd.Step(slot)
		switch act.Kind {
		case protocol.Broadcast:
			bcasts = append(bcasts, pendingBroadcast{id: id, ch: act.Channel, payload: act.Payload})
			energy[id]++
		case protocol.Listen:
			listens = append(listens, pendingListen{id: int32(id), ch: int32(act.Channel)})
			energy[id]++
		}
	}
	ex.listens, ex.bcasts = listens, bcasts

	// Eve: same budget arithmetic as stepSlot. With listeners present
	// the jam set is observable; a PrefixJammer answers it in closed
	// form (truncating a prefix to the budget keeps it a prefix),
	// otherwise it is materialised and truncated exactly as in stepSlot.
	// With no listeners, only its size matters.
	jamPrefix := 0   // channels [0, jamPrefix) jammed, via PrefixJammer
	maskJam := false // jam mask materialised in ex.mask
	if ex.remaining > 0 {
		if len(listens) > 0 {
			if pj := ex.prefix; pj != nil {
				k := pj.JamPrefix(slot, channels)
				if int64(k) > ex.remaining {
					k = int(ex.remaining)
				}
				ex.remaining -= int64(k)
				ex.net.ChargeEve(int64(k))
				jamPrefix = k
			} else {
				ex.mask.Grow(channels)
				jamCount := ex.adv.Fill(slot, channels, ex.mask)
				if int64(jamCount) > ex.remaining {
					jamCount = adversary.Truncate(ex.mask, channels, jamCount, int(ex.remaining))
				}
				ex.remaining -= int64(jamCount)
				ex.net.ChargeEve(int64(jamCount))
				maskJam = jamCount > 0
			}
		} else if rs := ex.ranged; rs != nil {
			spend := rs.SpendRange(slot, slot+1, channels)
			if spend > ex.remaining {
				spend = ex.remaining
			}
			ex.remaining -= spend
			ex.net.ChargeEve(spend)
		} else {
			ex.mask.Grow(channels)
			count := ex.adv.Fill(slot, channels, ex.mask)
			if count > 0 {
				ex.mask.Reset()
			}
			spend := int64(count)
			if spend > ex.remaining {
				spend = ex.remaining
			}
			ex.remaining -= spend
			ex.net.ChargeEve(spend)
		}
	}

	// Phase 2: resolve each listener's channel. Broadcast registration
	// order is ascending id, so the first matching buffer entry carries
	// the payload radio.Listen would deliver.
	for _, ln := range listens {
		ch := int(ln.ch)
		var fb radio.Feedback
		if ch < jamPrefix || (maskJam && ex.mask.Test(ch)) {
			fb = radio.Feedback{Status: radio.Noise}
		} else if len(bcasts) == 0 {
			fb = radio.Feedback{Status: radio.Silence}
		} else {
			count := 0
			var payload radio.Payload
			for _, bc := range bcasts {
				if bc.ch == ch {
					if count == 0 {
						payload = bc.payload
					}
					count++
				}
			}
			switch {
			case count == 0:
				fb = radio.Feedback{Status: radio.Silence}
			case count == 1:
				fb = radio.Feedback{Status: radio.Message, Payload: payload}
			default:
				fb = radio.Feedback{Status: radio.Noise}
			}
		}
		ex.nodes[ln.id].Deliver(fb)
	}
	if maskJam {
		ex.mask.Reset()
	}

	// Phase 3: end-of-slot bookkeeping and status transitions, exactly
	// as stepSlot records them.
	ex.transitions = ex.transitions[:0]
	for _, id := range ids {
		nd := ex.nodes[id]
		nd.EndSlot(slot)
		after := nd.Status()
		if before := ex.prevStatus[id]; after != before {
			ex.prevStatus[id] = after
			ex.transitions = append(ex.transitions, transition{id: id, before: before, after: after})
		}
	}
	for _, tr := range ex.transitions {
		if tr.before == protocol.Uninformed && ex.nodes[tr.id].Informed() {
			ex.informedCount++
		}
	}
	if ex.informedCount == ex.cfg.N && ex.metrics.AllInformedSlot < 0 {
		ex.metrics.AllInformedSlot = slot + 1
	}
	for _, tr := range ex.transitions {
		ex.noteTransition(tr, slot)
	}
}

// stepSlotLean1 is stepSlotLean for exactly one awake node — the
// dominant slot shape at sparse densities. A lone node cannot collide
// with or hear anyone, so its Listen resolves to noise iff Eve jams its
// channel and silence otherwise; the phase structure and every external
// call (Step, Fill/SpendRange, Deliver, EndSlot, energy charges) are the
// same as the general path's.
func (ex *execution) stepSlotLean1(slot int64, id int, channels int) {
	nd := ex.nodes[id]
	before := ex.prevStatus[id]
	act := nd.Step(slot)
	listen := act.Kind == protocol.Listen
	if act.Kind != protocol.Idle {
		ex.net.NodeEnergies()[id]++
	}

	if ex.remaining > 0 {
		if listen {
			if pj := ex.prefix; pj != nil {
				k := pj.JamPrefix(slot, channels)
				if int64(k) > ex.remaining {
					k = int(ex.remaining)
				}
				ex.remaining -= int64(k)
				ex.net.ChargeEve(int64(k))
				if act.Channel < k {
					nd.Deliver(radio.Feedback{Status: radio.Noise})
				} else {
					nd.Deliver(radio.Feedback{Status: radio.Silence})
				}
			} else {
				ex.mask.Grow(channels)
				jamCount := ex.adv.Fill(slot, channels, ex.mask)
				if int64(jamCount) > ex.remaining {
					jamCount = adversary.Truncate(ex.mask, channels, jamCount, int(ex.remaining))
				}
				ex.remaining -= int64(jamCount)
				ex.net.ChargeEve(int64(jamCount))
				if jamCount > 0 {
					if ex.mask.Test(act.Channel) {
						nd.Deliver(radio.Feedback{Status: radio.Noise})
					} else {
						nd.Deliver(radio.Feedback{Status: radio.Silence})
					}
					ex.mask.Reset()
				} else {
					nd.Deliver(radio.Feedback{Status: radio.Silence})
				}
			}
		} else if rs := ex.ranged; rs != nil {
			spend := rs.SpendRange(slot, slot+1, channels)
			if spend > ex.remaining {
				spend = ex.remaining
			}
			ex.remaining -= spend
			ex.net.ChargeEve(spend)
		} else {
			ex.mask.Grow(channels)
			count := ex.adv.Fill(slot, channels, ex.mask)
			if count > 0 {
				ex.mask.Reset()
			}
			spend := int64(count)
			if spend > ex.remaining {
				spend = ex.remaining
			}
			ex.remaining -= spend
			ex.net.ChargeEve(spend)
		}
	} else if listen {
		nd.Deliver(radio.Feedback{Status: radio.Silence})
	}

	nd.EndSlot(slot)
	after := nd.Status()
	if after != before {
		ex.prevStatus[id] = after
		// The transitions buffer is maintained even for this one-node
		// slot: runEvent's re-push loop reads it to detect halts.
		ex.transitions = append(ex.transitions[:0], transition{id: id, before: before, after: after})
		if before == protocol.Uninformed && nd.Informed() {
			ex.informedCount++
		}
	} else {
		ex.transitions = ex.transitions[:0]
	}
	if ex.informedCount == ex.cfg.N && ex.metrics.AllInformedSlot < 0 {
		ex.metrics.AllInformedSlot = slot + 1
	}
	if after != before {
		ex.noteTransition(transition{id: id, before: before, after: after}, slot)
	}
}
