package sim

import (
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
)

// BenchmarkSlotLoop measures the engine's per-node-slot cost with an
// active MultiCast population and a fraction jammer.
func BenchmarkSlotLoop(b *testing.B) {
	const n = 256
	var nodeSlots int64
	for i := 0; i < b.N; i++ {
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.BlockFraction(0.5),
			Budget:    20_000,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodeSlots += m.Slots * n
	}
	b.ReportMetric(float64(nodeSlots)/b.Elapsed().Seconds(), "node-slots/s")
}

// BenchmarkSlotLoopAdaptive measures the observation overhead the §8
// adaptive extension adds to every slot.
func BenchmarkSlotLoopAdaptive(b *testing.B) {
	const n = 256
	var nodeSlots int64
	for i := 0; i < b.N; i++ {
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.Reactive(0.5),
			Budget:    20_000,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodeSlots += m.Slots * n
	}
	b.ReportMetric(float64(nodeSlots)/b.Elapsed().Seconds(), "node-slots/s")
}

// benchmarkRun measures one engine over the fixed cmd/mcbench scenario
// shape (MultiCastCore, n=128, listen probability 1/64, half-spectrum
// block jammer) on a recycled Executor, reporting allocs/op so steady-
// state allocation regressions show up directly in -bench output.
func benchmarkRun(b *testing.B, engine Engine, nodeWorkers int) {
	const n = 128
	params := core.Sim()
	params.CoreP = 1.0 / 64
	params.CoreA = 640
	cfg := Config{
		N: n,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCastCore(params, n, 200_000)
		},
		Adversary:   adversary.BlockFraction(0.5),
		Budget:      200_000,
		Engine:      engine,
		NodeWorkers: nodeWorkers,
	}
	exec := NewExecutor()
	var slots int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i%25) + 1
		m, err := exec.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		slots += m.Slots
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(slots), "ns/slot")
	b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
}

func BenchmarkRunDense(b *testing.B)  { benchmarkRun(b, EngineDense, 1) }
func BenchmarkRunSparse(b *testing.B) { benchmarkRun(b, EngineSparse, 1) }

// BenchmarkRunDenseParallel exercises the NodeWorkers fan-out on the
// dense loop, where every slot steps all n nodes (the sparse loop's
// few-woken-nodes slots have too little per-slot work to parallelize).
func BenchmarkRunDenseParallel(b *testing.B) { benchmarkRun(b, EngineDense, 4) }

// Trial-level parallel scaling is benchmarked in multicast/internal/runner,
// which owns the worker pool.
