package sim

import (
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/rng"
)

// BenchmarkSlotLoop measures the engine's per-node-slot cost with an
// active MultiCast population and a fraction jammer.
func BenchmarkSlotLoop(b *testing.B) {
	const n = 256
	var nodeSlots int64
	for i := 0; i < b.N; i++ {
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.BlockFraction(0.5),
			Budget:    20_000,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodeSlots += m.Slots * n
	}
	b.ReportMetric(float64(nodeSlots)/b.Elapsed().Seconds(), "node-slots/s")
}

// BenchmarkSlotLoopAdaptive measures the observation overhead the §8
// adaptive extension adds to every slot.
func BenchmarkSlotLoopAdaptive(b *testing.B) {
	const n = 256
	var nodeSlots int64
	for i := 0; i < b.N; i++ {
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.Reactive(0.5),
			Budget:    20_000,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodeSlots += m.Slots * n
	}
	b.ReportMetric(float64(nodeSlots)/b.Elapsed().Seconds(), "node-slots/s")
}

// benchmarkRun measures one engine over the fixed cmd/mcbench scenario
// shape (MultiCastCore, n=128, listen probability 1/64, half-spectrum
// block jammer) on a recycled Executor, reporting allocs/op so steady-
// state allocation regressions show up directly in -bench output.
func benchmarkRun(b *testing.B, engine Engine, nodeWorkers int) {
	const n = 128
	params := core.Sim()
	params.CoreP = 1.0 / 64
	params.CoreA = 640
	cfg := Config{
		N: n,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCastCore(params, n, 200_000)
		},
		Adversary:   adversary.BlockFraction(0.5),
		Budget:      200_000,
		Engine:      engine,
		NodeWorkers: nodeWorkers,
	}
	exec := NewExecutor()
	var slots int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i%25) + 1
		m, err := exec.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		slots += m.Slots
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(slots), "ns/slot")
	b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
}

func BenchmarkRunDense(b *testing.B)  { benchmarkRun(b, EngineDense, 1) }
func BenchmarkRunSparse(b *testing.B) { benchmarkRun(b, EngineSparse, 1) }
func BenchmarkRunEvent(b *testing.B)  { benchmarkRun(b, EngineEvent, 1) }

// BenchmarkRunDenseParallel exercises the NodeWorkers fan-out on the
// dense loop, where every slot steps all n nodes (the sparse loop's
// few-woken-nodes slots have too little per-slot work to parallelize).
func BenchmarkRunDenseParallel(b *testing.B) { benchmarkRun(b, EngineDense, 4) }

// Trial-level parallel scaling is benchmarked in multicast/internal/runner,
// which owns the worker pool.

// BenchmarkWakeStructures compares the two wake calendars — the sparse
// engine's 64-slot wakeRing and the event engine's 4096-slot
// eventWheel — on the operation mix the engines actually run: push n
// wakes at geometric gaps, then repeatedly find-next/advance/pop. The
// density axis is the per-node wake probability per slot; the Auto
// heuristic's event-vs-sparse crossover (eventAutoGap) is justified by
// where the wheel's wins stop mattering relative to total slot cost.
func BenchmarkWakeStructures(b *testing.B) {
	const n = 128
	densities := []struct {
		name string
		p    float64
	}{
		{"p=1e-4", 1e-4},
		{"p=1e-2", 1e-2},
		{"p=0.5", 0.5},
	}
	// Pre-draw a pool of gaps so the RNG cost stays out of the measurement.
	for _, d := range densities {
		r := rng.New(41)
		gaps := make([]int64, 1<<14)
		for i := range gaps {
			gaps[i] = 1 + r.Geometric(d.p)
		}
		b.Run("ring/"+d.name, func(b *testing.B) {
			w := newWakeRing(n)
			var buf []int
			gi := 0
			nextGap := func() int64 { g := gaps[gi&(len(gaps)-1)]; gi++; return g }
			cur := int64(0)
			for id := 0; id < n; id++ {
				w.push(cur+nextGap(), int32(id))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.advance(cur)
				next, ok := w.nextWakeSlot(cur)
				if !ok {
					b.Fatal("ring drained")
				}
				cur = next
				w.advance(cur)
				buf = w.popSlot(cur, buf[:0])
				for _, id := range buf {
					w.push(cur+nextGap(), int32(id))
				}
				cur++
			}
		})
		b.Run("wheel/"+d.name, func(b *testing.B) {
			w := newEventWheel(n)
			var buf []int
			gi := 0
			nextGap := func() int64 { g := gaps[gi&(len(gaps)-1)]; gi++; return g }
			cur := int64(0)
			for id := 0; id < n; id++ {
				w.push(cur+nextGap(), int32(id))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.advance(cur)
				next, ok := w.nextWakeSlot(cur)
				if !ok {
					b.Fatal("wheel drained")
				}
				cur = next
				w.advance(cur)
				buf = w.popSlot(cur, buf[:0])
				for _, id := range buf {
					w.push(cur+nextGap(), int32(id))
				}
				cur++
			}
		})
	}
}
