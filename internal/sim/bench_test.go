package sim

import (
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
)

// BenchmarkSlotLoop measures the engine's per-node-slot cost with an
// active MultiCast population and a fraction jammer.
func BenchmarkSlotLoop(b *testing.B) {
	const n = 256
	var nodeSlots int64
	for i := 0; i < b.N; i++ {
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.BlockFraction(0.5),
			Budget:    20_000,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodeSlots += m.Slots * n
	}
	b.ReportMetric(float64(nodeSlots)/b.Elapsed().Seconds(), "node-slots/s")
}

// BenchmarkSlotLoopAdaptive measures the observation overhead the §8
// adaptive extension adds to every slot.
func BenchmarkSlotLoopAdaptive(b *testing.B) {
	const n = 256
	var nodeSlots int64
	for i := 0; i < b.N; i++ {
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.Reactive(0.5),
			Budget:    20_000,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodeSlots += m.Slots * n
	}
	b.ReportMetric(float64(nodeSlots)/b.Elapsed().Seconds(), "node-slots/s")
}

// Trial-level parallel scaling is benchmarked in multicast/internal/runner,
// which owns the worker pool.
