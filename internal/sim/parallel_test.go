package sim

import (
	"errors"
	"fmt"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
)

// TestNodeWorkersEquivalence is the determinism oracle for parallel
// intra-trial stepping: for every engine × adversary class × worker
// count, an execution with NodeWorkers > 1 must produce Metrics
// bit-identical to the serial run. Worker counts deliberately include
// values that divide the node count unevenly (3, 7) and one per node
// (≥ N), and the adversary axis includes an adaptive Eve, which forces
// the dense per-slot path under Auto.
func TestNodeWorkersEquivalence(t *testing.T) {
	algs := []struct {
		name  string
		build func() (protocol.Algorithm, error)
	}{
		{"MultiCastCore", func() (protocol.Algorithm, error) { return core.NewMultiCastCore(core.Sim(), 32, 12_000) }},
		{"MultiCast", func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), 32) }},
	}
	advs := []struct {
		name    string
		factory adversary.Factory
	}{
		{"nil", nil},
		{"block", adversary.BlockFraction(0.6)},
		{"rand", adversary.RandomFraction(0.4)},
		{"reactive", adversary.Reactive(0.6)},
	}
	workerCounts := []int{2, 3, 4, 7, 16, 64}
	if testing.Short() {
		advs = advs[1:3]
		workerCounts = []int{2, 7, 64}
	}
	for _, alg := range algs {
		for _, adv := range advs {
			for _, engine := range []Engine{EngineDense, EngineSparse} {
				alg, adv, engine := alg, adv, engine
				t.Run(fmt.Sprintf("%s/%s/%v", alg.name, adv.name, engine), func(t *testing.T) {
					t.Parallel()
					cfg := Config{
						N:         32,
						Algorithm: alg.build,
						Adversary: adv.factory,
						Budget:    12_000,
						Seed:      9,
						MaxSlots:  1 << 24,
						Engine:    engine,
					}
					want, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range workerCounts {
						cfg.NodeWorkers = workers
						got, err := Run(cfg)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						if got != want {
							t.Fatalf("workers=%d diverges from serial\n serial   %+v\n parallel %+v",
								workers, want, got)
						}
					}
				})
			}
		}
	}
}

// TestNodeWorkersMaxSlotsEquivalence: the ErrMaxSlots truncation path
// must be bit-identical under parallel stepping too (every node stays
// active forever, so every slot exercises the full partition fan-out).
func TestNodeWorkersMaxSlotsEquivalence(t *testing.T) {
	cfg := Config{
		N: 16,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCast(core.Sim(), 16)
		},
		Adversary: adversary.FullBurst(0),
		Budget:    1 << 40,
		Seed:      3,
		MaxSlots:  4_096,
		Engine:    EngineDense,
	}
	want, errW := Run(cfg)
	if !errors.Is(errW, ErrMaxSlots) {
		t.Fatalf("want ErrMaxSlots, got %v", errW)
	}
	for _, workers := range []int{2, 5, 16} {
		cfg.NodeWorkers = workers
		got, err := Run(cfg)
		if !errors.Is(err, ErrMaxSlots) {
			t.Fatalf("workers=%d: want ErrMaxSlots, got %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: truncated metrics diverge\n serial   %+v\n parallel %+v", workers, want, got)
		}
	}
}

// TestNodeWorkersValidation rejects negative worker counts.
func TestNodeWorkersValidation(t *testing.T) {
	_, err := Run(Config{N: 16, Algorithm: mcCore(16, 0), NodeWorkers: -1})
	if err == nil {
		t.Fatal("accepted NodeWorkers = -1")
	}
}
