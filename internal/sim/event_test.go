package sim

import (
	"math/rand"
	"testing"
)

// TestEventWheelPopSlotOrders drives the wheel's chain-collection +
// run-merge through the push orders that matter: already sorted,
// interleaved ascending batches, and fully descending singletons (the
// shape overflow migration produces).
func TestEventWheelPopSlotOrders(t *testing.T) {
	const slot = int64(7)
	push := func(w *eventWheel, ids ...int) {
		for _, id := range ids {
			w.push(slot, int32(id))
		}
	}
	cases := []struct {
		name string
		fill func(w *eventWheel) []int
	}{
		{"already-sorted", func(w *eventWheel) []int {
			ids := []int{0, 1, 2, 3, 5, 8, 13, 21, 34}
			push(w, ids...)
			return ids
		}},
		{"two-interleaved-batches", func(w *eventWheel) []int {
			a := []int{0, 3, 6, 9, 12, 15}
			b := []int{1, 4, 7, 10, 13, 16}
			push(w, a...)
			push(w, b...)
			return append(a, b...)
		}},
		{"descending-singletons", func(w *eventWheel) []int {
			var ids []int
			for id := 63; id >= 0; id-- {
				push(w, id)
				ids = append(ids, id)
			}
			return ids
		}},
		{"single", func(w *eventWheel) []int {
			push(w, 42)
			return []int{42}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newEventWheel(64)
			want := tc.fill(w)
			got := w.popSlot(slot, nil)
			checkAscending(t, got, want)
			if w.size != 0 {
				t.Fatalf("size = %d after draining, want 0", w.size)
			}
			if w.summary != 0 {
				t.Fatalf("summary = %#x after draining, want 0", w.summary)
			}
		})
	}
}

// TestEventWheelNextWakeSlot exercises the two-level bitmap scan across
// all its branches: same group, later group, window wrap-around, and
// the overflow-only case.
func TestEventWheelNextWakeSlot(t *testing.T) {
	w := newEventWheel(16)
	if _, ok := w.nextWakeSlot(0); ok {
		t.Fatal("empty wheel reported a wake")
	}
	check := func(cur, want int64) {
		t.Helper()
		got, ok := w.nextWakeSlot(cur)
		if !ok || got != want {
			t.Fatalf("nextWakeSlot(%d) = %d,%v, want %d,true", cur, got, ok, want)
		}
	}
	// Same-bucket hit and same-group scan.
	w.push(10, 1)
	check(10, 10)
	check(3, 10)
	// Later-group scan.
	w.push(700, 2)
	_ = w.popSlot(10, nil)
	check(11, 700)
	// Wrap-around: after advancing past the bucket's group, the only
	// remaining wake sits "behind" the cursor position modulo the window.
	w2 := newEventWheel(16)
	w2.advance(100)
	w2.push(100+wheelWindow-1, 5) // bucket just below cursor position 100
	check2 := func(cur, want int64) {
		t.Helper()
		got, ok := w2.nextWakeSlot(cur)
		if !ok || got != want {
			t.Fatalf("nextWakeSlot(%d) = %d,%v, want %d,true", cur, got, ok, want)
		}
	}
	check2(100, 100+wheelWindow-1)
	// Overflow-only: a far-future wake with empty buckets.
	w3 := newEventWheel(16)
	w3.push(10*wheelWindow, 3)
	if got, ok := w3.nextWakeSlot(0); !ok || got != 10*wheelWindow {
		t.Fatalf("overflow-only nextWakeSlot = %d,%v, want %d,true", got, ok, int64(10*wheelWindow))
	}
}

// TestEventWheelOverflowMigration pushes far-future wakes through the
// heap tier and verifies that after the window advances, popSlot emits
// the migrated bucket in ascending id order.
func TestEventWheelOverflowMigration(t *testing.T) {
	w := newEventWheel(128)
	const slot = int64(3 * wheelWindow)
	var want []int
	for id := 99; id >= 0; id-- {
		w.push(slot, int32(id))
		want = append(want, id)
	}
	if len(w.overflow) != 100 {
		t.Fatalf("expected all pushes in overflow, got %d", len(w.overflow))
	}
	w.advance(slot)
	got := w.popSlot(slot, nil)
	checkAscending(t, got, want)
}

// TestEventWheelRandomizedOracle cycles one wheel through many slot
// generations — spread across multiple buckets per generation, with
// resets interleaved — checking every pop against a sort oracle. The
// chain array, bucket scratch, and merge scratch are all reused across
// generations, exactly as in a pooled execution.
func TestEventWheelRandomizedOracle(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	w := newEventWheel(64)
	cur := int64(0)
	for gen := 0; gen < 300; gen++ {
		if gen%97 == 0 {
			w.reset()
			cur = 0
		}
		w.advance(cur)
		// Schedule unique ids across a handful of nearby (and a few
		// far-future) slots.
		slots := make(map[int64][]int)
		seen := map[int]bool{}
		for k := 0; k < 1+rnd.Intn(40); k++ {
			id := rnd.Intn(1000)
			if seen[id] {
				continue
			}
			seen[id] = true
			gap := int64(rnd.Intn(12))
			if rnd.Intn(8) == 0 {
				gap = int64(wheelWindow + rnd.Intn(2*wheelWindow))
			}
			s := cur + gap
			slots[s] = append(slots[s], id)
			w.push(s, int32(id))
		}
		// Drain in event order until the wheel is empty.
		for w.size > 0 {
			next, ok := w.nextWakeSlot(cur)
			if !ok {
				t.Fatalf("gen %d: size %d but no next wake", gen, w.size)
			}
			cur = next
			w.advance(cur)
			got := w.popSlot(cur, nil)
			want, ok := slots[cur]
			if !ok {
				t.Fatalf("gen %d: popped slot %d with no scheduled wakes (%v)", gen, cur, got)
			}
			checkAscending(t, got, want)
			delete(slots, cur)
			cur++
		}
		if len(slots) != 0 {
			t.Fatalf("gen %d: wheel drained but %d slots unpopped", gen, len(slots))
		}
		cur += int64(rnd.Intn(3 * wheelWindow))
	}
}
