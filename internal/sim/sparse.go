// Sparse slot engine: the paper's schedules leave most nodes idle in most
// slots, so stepping every node every slot (the dense loop) wastes almost
// all of its work. Nodes that implement protocol.Sleeper pre-draw their
// next non-idle slot as one closed-form geometric gap — idle slots
// consume no randomness at all, in either engine — and the engine keeps
// them in a wake list: a bucket ring over the next 64 slots with a
// min-heap overflow tier.
// A slot executes only the nodes waking in it; slot ranges in which no node
// wakes are skipped in bulk, with Eve's jamming charged in aggregate via
// adversary.RangeSpender (jam sets in unobserved slots only matter through
// their size). Executions are bit-identical to the dense engine for every
// configuration; TestEngineEquivalenceMatrix and FuzzEngineEquivalence pin
// that down.

package sim

import (
	"math/bits"

	"multicast/internal/protocol"
)

// wakeEntry is one node's scheduled wake slot.
type wakeEntry struct {
	slot int64
	id   int32
}

// wakeHeap is a binary min-heap of wake entries ordered by slot. It backs
// the wake ring's overflow tier, so it only sees far-future wakes.
type wakeHeap []wakeEntry

func (h *wakeHeap) push(e wakeEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[i].slot >= (*h)[parent].slot {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *wakeHeap) popMin() wakeEntry {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && (*h)[l].slot < (*h)[smallest].slot {
			smallest = l
		}
		if r < last && (*h)[r].slot < (*h)[smallest].slot {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// ringWindow is the wake ring's span: one bucket per slot of the next
// ringWindow slots, with a 64-bit occupancy mask for O(1) next-wake
// queries. Wake gaps are geometrically distributed with mean 1/(2p), so
// most wakes land inside the window; the rest overflow to the heap.
const ringWindow = 64

// wakeRing is a two-tier calendar queue over wake slots. Near-future
// wakes (slot ∈ [base, base+64)) live in per-slot buckets addressed by
// slot&63 — push and pop are O(1) — while far-future wakes wait in a
// min-heap and migrate into the ring as the window advances. Same-slot
// bucket contents are sorted before use, because stepSlot requires
// ascending node order for bit-identical transition ordering.
//
// Buckets are intrusive singly-linked chains threaded through the next
// array (each node has at most one pending wake, so one link per id
// suffices). Compared to per-bucket slices, the chains occupy one fixed
// allocation that never grows per trial — the former lazy bucket-slice
// growth was the sparse engine's residual allocs/slot.
type wakeRing struct {
	base     int64 // buckets cover slots [base, base+ringWindow)
	mask     uint64
	heads    [ringWindow]int32 // chain head per bucket, -1 when empty
	next     []int32           // next[id]: chain link, indexed by node id
	overflow wakeHeap
	size     int

	// bucket collects a drained chain before sorting; it and the
	// sorter's scratch persist across slots (and, via the pooled
	// execution, across trials), so sorting a steady-state bucket
	// allocates nothing.
	bucket []int32
	sorter runSorter
}

func newWakeRing(capacity int) *wakeRing {
	w := &wakeRing{
		overflow: make(wakeHeap, 0, capacity),
		next:     make([]int32, capacity),
	}
	for i := range w.heads {
		w.heads[i] = -1
	}
	return w
}

// reset empties the ring for a new trial, keeping every allocation: the
// chain-link array, the overflow heap's backing array, and the merge
// scratch all retain their grown capacity.
func (w *wakeRing) reset() {
	w.base = 0
	w.mask = 0
	for i := range w.heads {
		w.heads[i] = -1
	}
	w.overflow = w.overflow[:0]
	w.size = 0
}

// growNext ensures the chain-link array covers id.
func (w *wakeRing) growNext(id int32) {
	if int(id) < len(w.next) {
		return
	}
	n := 2 * len(w.next)
	if n <= int(id) {
		n = int(id) + 1
	}
	next := make([]int32, n)
	copy(next, w.next)
	w.next = next
}

// link threads id onto the bucket chain for an in-window slot.
func (w *wakeRing) link(slot int64, id int32) {
	b := int(slot & (ringWindow - 1))
	w.growNext(id)
	w.next[id] = w.heads[b]
	w.heads[b] = id
	w.mask |= 1 << b
}

func (w *wakeRing) push(slot int64, id int32) {
	w.size++
	if slot < w.base+ringWindow {
		w.link(slot, id)
		return
	}
	w.overflow.push(wakeEntry{slot: slot, id: id})
}

// nextWakeSlot returns the earliest scheduled wake ≥ cur. The caller must
// have advanced the window to cur first. Returns false when empty.
func (w *wakeRing) nextWakeSlot(cur int64) (int64, bool) {
	if w.size == 0 {
		return 0, false
	}
	if w.mask != 0 {
		// Rotate so bit k corresponds to slot cur+k; every occupied
		// bucket holds slots in [cur, base+ringWindow), so the first set
		// bit is the next ring wake. advance(cur) has already migrated
		// every overflow entry below cur+ringWindow into the buckets, so
		// any ring hit precedes the overflow head.
		rot := bits.RotateLeft64(w.mask, -int(cur&(ringWindow-1)))
		return cur + int64(bits.TrailingZeros64(rot)), true
	}
	return w.overflow[0].slot, true
}

// advance moves the window start to cur and migrates overflow entries
// that now fit. Buckets for slots < cur are necessarily empty (they were
// popped, or never filled), so reusing them for [cur, cur+ringWindow) is
// safe.
func (w *wakeRing) advance(cur int64) {
	w.base = cur
	for len(w.overflow) > 0 && w.overflow[0].slot < cur+ringWindow {
		e := w.overflow.popMin()
		w.link(e.slot, e.id)
	}
}

// popSlot appends (in ascending id order) the ids waking exactly at cur
// and returns the extended slice. The caller must have advanced the
// window to cur, so the bucket holds exactly the slot-cur entries.
func (w *wakeRing) popSlot(cur int64, dst []int) []int {
	b := int(cur & (ringWindow - 1))
	h := w.heads[b]
	if h < 0 {
		return dst
	}
	if w.next[h] < 0 {
		// Single wake — the dominant bucket shape at sparse densities;
		// skip chain collection and sorting entirely.
		dst = append(dst, int(h))
		w.size--
		w.heads[b] = -1
		w.mask &^= 1 << b
		return dst
	}
	ids := w.bucket[:0]
	for id := h; id >= 0; id = w.next[id] {
		ids = append(ids, id)
	}
	w.bucket = ids
	// The chain is LIFO: reversing it restores push order, a
	// concatenation of ascending runs — the shape sortBucket is built for.
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	w.sorter.sort(ids)
	for _, id := range ids {
		dst = append(dst, int(id))
	}
	w.size -= len(ids)
	w.heads[b] = -1
	w.mask &^= 1 << b
	return dst
}

// runSorter sorts wake buckets ascending by natural-run merging, with
// pooled scratch shared across slots and trials. Pushes from one source
// slot arrive in ascending id order, so a bucket is a concatenation of a
// few ascending runs (an insertion sort exploits the same structure but
// degrades to O(k²) when runs interleave, e.g. after an overflow
// migration delivers heap entries in slot-major, id-arbitrary order).
// Detecting the r runs costs O(k); merging adjacent pairs bottom-up
// costs O(k log r) — worst case O(k log k) for k descending singletons,
// linear for the common already-sorted bucket.
type runSorter struct {
	runs    []int32 // start index of each ascending run
	scratch []int32 // left side of an in-place merge
}

func (w *runSorter) sort(ids []int32) {
	w.runs = w.runs[:0]
	for i := 0; i < len(ids); i++ {
		if i == 0 || ids[i] < ids[i-1] {
			w.runs = append(w.runs, int32(i))
		}
	}
	for m := len(w.runs); m > 1; {
		k := 0
		for i := 0; i+1 < m; i += 2 {
			hi := len(ids)
			if i+2 < m {
				hi = int(w.runs[i+2])
			}
			w.mergeRuns(ids, int(w.runs[i]), int(w.runs[i+1]), hi)
			w.runs[k] = w.runs[i]
			k++
		}
		if m%2 == 1 {
			w.runs[k] = w.runs[m-1]
			k++
		}
		m = k
	}
}

// mergeRuns merges the adjacent ascending runs ids[lo:mid] and
// ids[mid:hi] in place, buffering only the left run in w.scratch.
func (w *runSorter) mergeRuns(ids []int32, lo, mid, hi int) {
	if mid >= hi || lo >= mid || ids[mid] >= ids[mid-1] {
		return // already in order
	}
	left := append(w.scratch[:0], ids[lo:mid]...)
	w.scratch = left[:0] // keep any grown capacity
	i, j, k := 0, mid, lo
	for i < len(left) && j < hi {
		if ids[j] < left[i] {
			ids[k] = ids[j]
			j++
		} else {
			ids[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		ids[k] = left[i]
		i++
		k++
	}
}

// nextWake returns node id's next wake slot at or after now. Nodes without
// a Sleeper implementation wake every slot, which degenerates gracefully
// to dense stepping for them alone.
func (ex *execution) nextWake(id int, now int64) int64 {
	if sl := ex.sleepers[id]; sl != nil {
		if w := sl.NextActive(now); w >= now {
			return w
		}
	}
	return now
}

// runSparse is the wake-list slot loop.
func (ex *execution) runSparse() (Metrics, error) {
	maxSlots := ex.maxSlots()
	// Range skipping needs the slots between wakes to be genuinely
	// unobserved: an adaptive Eve senses every slot, and an Observer wants
	// every slot reported, so either forces the engine to resolve each
	// slot (idle nodes are still not stepped).
	skipOK := ex.adaptive == nil && ex.cfg.Observer == nil

	// The ring and wake buffer are pooled on the execution: an Executor
	// recycles them (and their bucket/heap/scratch capacity) across
	// trials, so steady-state trials never rebuild the wake machinery.
	if ex.ring == nil {
		ex.ring = newWakeRing(ex.cfg.N)
	} else {
		ex.ring.reset()
	}
	ring := ex.ring
	for _, id := range ex.active {
		ring.push(ex.firstWakes[id], int32(id))
	}
	if cap(ex.awake) < ex.cfg.N {
		ex.awake = make([]int, 0, ex.cfg.N)
	}
	awake := ex.awake[:0]

	cur := int64(0)
	poll := 0
	for {
		// Interrupt poll: iterations are at least one wake (or one bulk
		// range skip) each, so a stride of slots-worth of iterations keeps
		// the poll cost invisible while still cancelling promptly.
		if poll--; poll <= 0 {
			poll = interruptStride
			if ex.interrupted() {
				ex.fillMetrics(cur)
				return ex.metrics, ErrInterrupted
			}
		}
		ring.advance(cur)
		next, ok := ring.nextWakeSlot(cur)
		if !ok {
			next = maxSlots
		}
		if next > cur {
			if skipOK {
				to := next
				if to > maxSlots {
					to = maxSlots
				}
				ex.skipRange(cur, to)
				cur = to
			} else {
				for cur < next && cur < maxSlots {
					if cur&(interruptStride-1) == 0 && ex.interrupted() {
						ex.fillMetrics(cur)
						return ex.metrics, ErrInterrupted
					}
					ex.stepSlot(cur, nil, false)
					cur++
				}
			}
			ring.advance(cur)
		}
		if cur >= maxSlots {
			ex.fillMetrics(cur)
			return ex.metrics, ex.errMaxSlots(cur)
		}

		awake = ring.popSlot(cur, awake[:0])
		ex.stepSlot(cur, awake, false)
		for _, id := range awake {
			if ex.nodes[id].Status() != protocol.Halted {
				ring.push(ex.nextWake(id, cur+1), int32(id))
			}
		}
		if ex.haltedCount == ex.cfg.N {
			ex.fillMetrics(cur + 1)
			return ex.metrics, nil
		}
		cur++
	}
}

// skipRange charges Eve for the unexecuted slots [from, to), splitting the
// range into constant-channel spans.
func (ex *execution) skipRange(from, to int64) {
	for from < to {
		if ex.remaining <= 0 {
			// Out of budget: the dense loop stops calling Fill entirely,
			// so there is no strategy state (or RNG) left to advance.
			return
		}
		channels, until := ex.channelSpan(from)
		end := until
		if end > to {
			end = to
		}
		ex.chargeRange(from, end, channels)
		from = end
	}
}

// channelSpan returns the channel count at slot and the end of the span
// over which it is known constant.
func (ex *execution) channelSpan(slot int64) (int, int64) {
	if ex.spanner != nil {
		channels, until := ex.spanner.ChannelSpan(slot)
		if until <= slot {
			until = slot + 1
		}
		return channels, until
	}
	return ex.alg.Channels(slot), slot + 1
}

// chargeRange spends Eve's budget for skipped slots [from, to), all with
// the same channel count. The aggregate path asks the strategy for its
// ideal total and caps it at the remaining budget — the dense per-slot
// spend min(count, remaining) telescopes to exactly that. Strategies
// without SpendRange fall back to per-slot Fill against a scratch mask,
// reproducing the dense loop's accounting call for call.
func (ex *execution) chargeRange(from, to int64, channels int) {
	if rs := ex.ranged; rs != nil {
		spend := rs.SpendRange(from, to, channels)
		if spend > ex.remaining {
			spend = ex.remaining
		}
		ex.remaining -= spend
		ex.net.ChargeEve(spend)
		return
	}
	ex.mask.Grow(channels)
	for s := from; s < to && ex.remaining > 0; s++ {
		count := ex.adv.Fill(s, channels, ex.mask)
		if count == 0 {
			continue
		}
		ex.mask.Reset()
		spend := int64(count)
		if spend > ex.remaining {
			spend = ex.remaining
		}
		ex.remaining -= spend
		ex.net.ChargeEve(spend)
	}
}
