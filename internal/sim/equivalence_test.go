package sim

import (
	"testing"
	"testing/quick"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
)

// TestMultiCastCFullSpectrumEquivalence: with C = n/2 the simulation layer
// of Figure 5 degenerates to rounds of one slot, so MultiCast(C = n/2)
// must reproduce MultiCast *exactly* — same random draws, same actions,
// same metrics — for any seed. This pins the simulation mechanism to its
// specification: "AC can perfectly simulate A".
func TestMultiCastCFullSpectrumEquivalence(t *testing.T) {
	const n = 64
	for seed := uint64(1); seed <= 5; seed++ {
		base := Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.RandomFraction(0.4),
			Budget:    20_000,
			Seed:      seed,
		}
		want, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		base.Algorithm = func() (protocol.Algorithm, error) {
			return core.NewMultiCastC(core.Sim(), n, n/2)
		}
		got, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: MultiCast(C=n/2) diverges from MultiCast:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestMultiCastCSlowdownFactor: halving C doubles wall-clock slots but
// leaves the *round* count (and hence each node's energy) distributionally
// unchanged. Check the deterministic part: the slot count of a jam-free run
// with C channels is exactly (n/2C) × the C = n/2 slot count for the same
// seed, because the round structure is rigid.
func TestMultiCastCSlowdownFactor(t *testing.T) {
	const n = 64
	base := int64(0)
	for _, c := range []int{32, 16, 8, 4} {
		cc := c
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastC(core.Sim(), n, cc)
			},
			Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if c == 32 {
			base = m.Slots
			continue
		}
		factor := int64(32 / c)
		if m.Slots != base*factor {
			t.Errorf("C=%d: slots = %d, want exactly %d×%d (identical rounds, stretched %d×)",
				c, m.Slots, factor, base, factor)
		}
	}
}

// Property: for random seeds and fractions, Eve never exceeds her budget
// and metrics stay internally consistent.
func TestQuickEngineConsistency(t *testing.T) {
	f := func(seed uint64, fRaw uint8, budRaw uint16) bool {
		frac := float64(fRaw) / 255
		budget := int64(budRaw) * 4
		m, err := Run(Config{
			N: 16,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastCore(core.Sim(), 16, budget)
			},
			Adversary: adversary.RandomFraction(frac),
			Budget:    budget,
			Seed:      seed,
			MaxSlots:  1 << 22,
		})
		if err != nil {
			return false
		}
		if m.EveEnergy > budget {
			return false
		}
		if m.AllInformedSlot < 1 || m.AllInformedSlot > m.Slots {
			return false
		}
		if m.FirstHaltSlot < m.AllInformedSlot && m.Invariants.HaltBeforeAllInformed == 0 &&
			m.Invariants.HaltedUninformed == 0 {
			// A halt before all-informed must have been flagged; with the
			// invariant counters at zero the order must be consistent.
			return false
		}
		return float64(m.MaxNodeEnergy) >= m.MeanNodeEnergy && m.MeanNodeEnergy > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
