package sim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"multicast/internal/adversary"
	"multicast/internal/bitset"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/rng"
	"multicast/internal/singlechan"
)

// noRangeSweep is a sweep-like strategy that deliberately does NOT
// implement adversary.RangeSpender, forcing the sparse engine through its
// per-slot Fill fallback for skipped ranges.
type noRangeSweep struct{ width int }

func (s noRangeSweep) Name() string { return "no-range-sweep" }

func (s noRangeSweep) Fill(slot int64, channels int, mask *bitset.Set) int {
	w := s.width
	if w > channels {
		w = channels
	}
	if w <= 0 {
		return 0
	}
	start := int(slot % int64(channels))
	for i := 0; i < w; i++ {
		mask.Set((start + i) % channels)
	}
	return w
}

func noRangeFactory(width int) adversary.Factory {
	return adversary.NewFactory("no-range-sweep",
		func(*rng.Source) adversary.Strategy { return noRangeSweep{width: width} })
}

// TestEngineEquivalenceMatrix is the dense-equivalence oracle for the
// sparse and event engines: for every algorithm family × adversary class
// × (N, T) point × seed, a sparse run and an event run must each produce
// Metrics byte-identical to the dense reference run (and fail
// identically if they fail). The adversary axis covers nil, closed-form
// oblivious, randomised oblivious (whose SpendRange must keep the jam
// stream aligned), a strategy without SpendRange (per-slot fallback),
// and adaptive (which disables range skipping entirely).
func TestEngineEquivalenceMatrix(t *testing.T) {
	params := core.Sim()
	type algCase struct {
		name  string
		build func(n int, budget int64) func() (protocol.Algorithm, error)
		slow  bool // MultiCastAdv runs ~100× longer; use trimmed points
	}
	algs := []algCase{
		{"MultiCastCore", func(n int, b int64) func() (protocol.Algorithm, error) {
			return func() (protocol.Algorithm, error) { return core.NewMultiCastCore(params, n, b) }
		}, false},
		{"MultiCast", func(n int, b int64) func() (protocol.Algorithm, error) {
			return func() (protocol.Algorithm, error) { return core.NewMultiCast(params, n) }
		}, false},
		{"MultiCast(C)", func(n int, b int64) func() (protocol.Algorithm, error) {
			return func() (protocol.Algorithm, error) { return core.NewMultiCastC(params, n, n/4) }
		}, false},
		{"MultiCastAdv", func(n int, b int64) func() (protocol.Algorithm, error) {
			return func() (protocol.Algorithm, error) { return core.NewMultiCastAdv(params) }
		}, true},
		{"MultiCastAdv(C)", func(n int, b int64) func() (protocol.Algorithm, error) {
			return func() (protocol.Algorithm, error) { return core.NewMultiCastAdvC(params, 8) }
		}, true},
		{"SingleChannel", func(n int, b int64) func() (protocol.Algorithm, error) {
			return func() (protocol.Algorithm, error) { return singlechan.New(singlechan.DefaultParams(), n) }
		}, false},
	}
	advs := []struct {
		name    string
		factory adversary.Factory
	}{
		{"nil", nil},
		{"block", adversary.BlockFraction(0.6)},
		{"rand", adversary.RandomFraction(0.4)},
		{"bursty", adversary.Bursty(0.8, 40, 160)},
		{"norange", noRangeFactory(3)},
		{"reactive", adversary.Reactive(0.6)},
	}
	type point struct {
		n        int
		budget   int64
		maxSlots int64
	}
	points := []point{
		{16, 2_000, 1 << 24},
		{32, 12_000, 1 << 24},
	}
	// The MultiCastAdv family runs orders of magnitude longer per trial, so
	// its points use smaller budgets and clamp MaxSlots: equivalence must
	// hold on the ErrMaxSlots truncation path too, so clamped cells are a
	// valid (and affordable) part of the oracle.
	slowPoints := []point{
		{16, 800, 1 << 19},
		{32, 2_000, 1 << 19},
	}
	seeds := []uint64{1, 2}
	if testing.Short() {
		points = points[:1]
		slowPoints = slowPoints[:1]
		seeds = seeds[:1]
	}

	for _, alg := range algs {
		for _, adv := range advs {
			pts := points
			if alg.slow {
				pts = slowPoints
			}
			for _, pt := range pts {
				alg, adv, pt := alg, adv, pt
				name := fmt.Sprintf("%s/%s/n%d-T%d", alg.name, adv.name, pt.n, pt.budget)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					for _, seed := range seeds {
						cfg := Config{
							N:         pt.n,
							Algorithm: alg.build(pt.n, pt.budget),
							Adversary: adv.factory,
							Budget:    pt.budget,
							Seed:      seed,
							MaxSlots:  pt.maxSlots,
						}
						cfg.Engine = EngineDense
						want, errD := Run(cfg)
						for _, challenger := range []Engine{EngineSparse, EngineEvent} {
							cfg.Engine = challenger
							got, errC := Run(cfg)
							if (errD == nil) != (errC == nil) ||
								errors.Is(errD, ErrMaxSlots) != errors.Is(errC, ErrMaxSlots) {
								t.Fatalf("seed %d: error mismatch: dense %v, %v %v", seed, errD, challenger, errC)
							}
							if got != want {
								t.Fatalf("seed %d: engines diverge\n dense %+v\n %v %+v", seed, want, challenger, got)
							}
						}
					}
				})
			}
		}
	}
}

// TestEngineAutoMatchesDense pins the Auto resolution: whatever engine it
// picks — sparse for the oblivious all-Sleeper case, dense when an
// Observer or adaptive Eve forces per-slot work — the metrics must equal
// the dense reference.
func TestEngineAutoMatchesDense(t *testing.T) {
	for _, adv := range []adversary.Factory{nil, adversary.RandomFraction(0.5), adversary.Camper(16, 8)} {
		cfg := Config{
			N: 32,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), 32)
			},
			Adversary: adv,
			Budget:    8_000,
			Seed:      11,
		}
		cfg.Engine = EngineDense
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Engine = EngineAuto
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("auto diverges from dense:\n dense %+v\n auto  %+v", want, got)
		}
	}
}

// TestEngineSparseWithObserver: an Observer forces the sparse and event
// engines to resolve every slot; the per-slot callbacks and the metrics
// must both match the dense run exactly.
func TestEngineSparseWithObserver(t *testing.T) {
	type slotRec struct {
		slot                                                   int64
		channels, jammed, listeners, broadcasters, inf, halted int
	}
	record := func(engine Engine) ([]slotRec, Metrics) {
		var recs []slotRec
		m, err := Run(Config{
			N: 16,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastCore(core.Sim(), 16, 1_000)
			},
			Adversary: adversary.Sweep(2),
			Budget:    1_000,
			Seed:      5,
			Engine:    engine,
			Observer: observerFunc(func(slot int64, channels, jammed, listeners, broadcasters, informed, halted int) {
				recs = append(recs, slotRec{slot, channels, jammed, listeners, broadcasters, informed, halted})
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return recs, m
	}
	denseRecs, denseM := record(EngineDense)
	for _, challenger := range []Engine{EngineSparse, EngineEvent} {
		recs, m := record(challenger)
		if m != denseM {
			t.Fatalf("metrics diverge:\n dense %+v\n %v %+v", denseM, challenger, m)
		}
		if len(denseRecs) != len(recs) {
			t.Fatalf("observer saw %d slots dense, %d %v", len(denseRecs), len(recs), challenger)
		}
		for i := range denseRecs {
			if denseRecs[i] != recs[i] {
				t.Fatalf("slot %d: observer records diverge:\n dense %+v\n %v %+v", i, denseRecs[i], challenger, recs[i])
			}
		}
	}
}

// observerFunc adapts a closure to Observer.
type observerFunc func(slot int64, channels, jammed, listeners, broadcasters, informed, halted int)

func (f observerFunc) Slot(slot int64, channels, jammed, listeners, broadcasters, informed, halted int) {
	f(slot, channels, jammed, listeners, broadcasters, informed, halted)
}

// TestEngineValidation rejects out-of-range engine values.
func TestEngineValidation(t *testing.T) {
	_, err := Run(Config{
		N:         16,
		Algorithm: mcCore(16, 0),
		Engine:    Engine(9),
	})
	if err == nil {
		t.Fatal("accepted Engine(9)")
	}
}

// TestEngineMaxSlotsEquivalence: the ErrMaxSlots path must also be
// bit-identical — same error, same truncated metrics, same Eve spend for
// the skipped tail.
func TestEngineMaxSlotsEquivalence(t *testing.T) {
	cfg := Config{
		N: 16,
		Algorithm: func() (protocol.Algorithm, error) {
			return core.NewMultiCast(core.Sim(), 16)
		},
		Adversary: adversary.FullBurst(0),
		Budget:    1 << 40, // Eve outlasts MaxSlots: nodes can never halt
		Seed:      3,
		MaxSlots:  4_096,
	}
	cfg.Engine = EngineDense
	want, errD := Run(cfg)
	if !errors.Is(errD, ErrMaxSlots) {
		t.Fatalf("expected ErrMaxSlots from dense, got %v", errD)
	}
	for _, challenger := range []Engine{EngineSparse, EngineEvent} {
		cfg.Engine = challenger
		got, errC := Run(cfg)
		if !errors.Is(errC, ErrMaxSlots) {
			t.Fatalf("expected ErrMaxSlots from %v, got %v", challenger, errC)
		}
		if got != want {
			t.Fatalf("truncated metrics diverge:\n dense %+v\n %v %+v", want, challenger, got)
		}
	}
}

// TestMultiCastCFullSpectrumEquivalence: with C = n/2 the simulation layer
// of Figure 5 degenerates to rounds of one slot, so MultiCast(C = n/2)
// must reproduce MultiCast *exactly* — same random draws, same actions,
// same metrics — for any seed. This pins the simulation mechanism to its
// specification: "AC can perfectly simulate A".
func TestMultiCastCFullSpectrumEquivalence(t *testing.T) {
	const n = 64
	for seed := uint64(1); seed <= 5; seed++ {
		base := Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary: adversary.RandomFraction(0.4),
			Budget:    20_000,
			Seed:      seed,
		}
		want, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		base.Algorithm = func() (protocol.Algorithm, error) {
			return core.NewMultiCastC(core.Sim(), n, n/2)
		}
		got, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: MultiCast(C=n/2) diverges from MultiCast:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestMultiCastCSlowdownFactor: halving C doubles wall-clock slots but
// leaves the *round* count (and hence each node's energy) distributionally
// unchanged. Check the deterministic part: the slot count of a jam-free run
// with C channels is exactly (n/2C) × the C = n/2 slot count for the same
// seed, because the round structure is rigid.
func TestMultiCastCSlowdownFactor(t *testing.T) {
	const n = 64
	base := int64(0)
	for _, c := range []int{32, 16, 8, 4} {
		cc := c
		m, err := Run(Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastC(core.Sim(), n, cc)
			},
			Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if c == 32 {
			base = m.Slots
			continue
		}
		factor := int64(32 / c)
		if m.Slots != base*factor {
			t.Errorf("C=%d: slots = %d, want exactly %d×%d (identical rounds, stretched %d×)",
				c, m.Slots, factor, base, factor)
		}
	}
}

// Property: for random seeds and fractions, Eve never exceeds her budget
// and metrics stay internally consistent.
func TestQuickEngineConsistency(t *testing.T) {
	f := func(seed uint64, fRaw uint8, budRaw uint16) bool {
		frac := float64(fRaw) / 255
		budget := int64(budRaw) * 4
		m, err := Run(Config{
			N: 16,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastCore(core.Sim(), 16, budget)
			},
			Adversary: adversary.RandomFraction(frac),
			Budget:    budget,
			Seed:      seed,
			MaxSlots:  1 << 22,
		})
		if err != nil {
			return false
		}
		if m.EveEnergy > budget {
			return false
		}
		if m.AllInformedSlot < 1 || m.AllInformedSlot > m.Slots {
			return false
		}
		if m.FirstHaltSlot < m.AllInformedSlot && m.Invariants.HaltBeforeAllInformed == 0 &&
			m.Invariants.HaltedUninformed == 0 {
			// A halt before all-informed must have been flagged; with the
			// invariant counters at zero the order must be consistent.
			return false
		}
		return float64(m.MaxNodeEnergy) >= m.MeanNodeEnergy && m.MeanNodeEnergy > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
