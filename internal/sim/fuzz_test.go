package sim

import (
	"errors"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/singlechan"
)

// fuzzAlgorithm maps a selector byte onto one of the six algorithm
// families. The budget doubles as MultiCastCore's known T.
func fuzzAlgorithm(sel uint8, n int, budget int64) func() (protocol.Algorithm, error) {
	params := core.Sim()
	switch sel % 6 {
	case 0:
		return func() (protocol.Algorithm, error) { return core.NewMultiCastCore(params, n, budget) }
	case 1:
		return func() (protocol.Algorithm, error) { return core.NewMultiCast(params, n) }
	case 2:
		return func() (protocol.Algorithm, error) { return core.NewMultiCastC(params, n, max(n/4, 1)) }
	case 3:
		return func() (protocol.Algorithm, error) { return core.NewMultiCastAdv(params) }
	case 4:
		return func() (protocol.Algorithm, error) { return core.NewMultiCastAdvC(params, 4) }
	default:
		return func() (protocol.Algorithm, error) { return singlechan.New(singlechan.DefaultParams(), n) }
	}
}

// fuzzAdversary maps a selector byte onto an adversary class, covering
// nil, closed-form oblivious, randomised oblivious, and adaptive.
func fuzzAdversary(sel uint8) adversary.Factory {
	switch sel % 5 {
	case 0:
		return nil
	case 1:
		return adversary.BlockFraction(0.5)
	case 2:
		return adversary.RandomFraction(0.35)
	case 3:
		return adversary.Bursty(0.7, 30, 90)
	default:
		return adversary.Reactive(0.5)
	}
}

// FuzzEngineEquivalence fuzzes (seed, N, T, algorithm, adversary, engine)
// and cross-checks the sparse engine against the dense reference: both
// must produce byte-identical Metrics (or fail with the same error), and
// clean no-adversary runs must not violate the paper's safety invariants.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint16(500), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(3), uint16(2000), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(1), uint16(900), uint8(2), uint8(2), uint8(0))
	f.Add(uint64(4), uint8(0), uint16(300), uint8(3), uint8(3), uint8(1))
	f.Add(uint64(5), uint8(2), uint16(100), uint8(4), uint8(4), uint8(0))
	f.Add(uint64(6), uint8(3), uint16(4000), uint8(5), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(2), uint16(0), uint8(1), uint8(0), uint8(0))
	f.Add(uint64(8), uint8(1), uint16(65535), uint8(0), uint8(2), uint8(1))

	f.Fuzz(func(t *testing.T, seed uint64, nSel uint8, budget uint16, algSel, advSel, engSel uint8) {
		n := 1 << (2 + nSel%4) // 4, 8, 16, 32 — power of two as required
		cfg := Config{
			N:         n,
			Algorithm: fuzzAlgorithm(algSel, n, int64(budget)),
			Adversary: fuzzAdversary(advSel),
			Budget:    int64(budget),
			Seed:      seed,
			// Bound runaway inputs; both engines must truncate identically.
			// Kept small enough that the worst cell (MultiCastAdv at n=4
			// under an adaptive Eve, which runs dense to the valve) stays
			// far below the fuzzer's ~10s per-input hang detector even
			// with coverage instrumentation.
			MaxSlots: 1 << 18,
		}
		cfg.Engine = EngineDense
		want, errD := Run(cfg)
		// Rotate the challenger between the explicit sparse engine, Auto
		// (which may resolve to any engine), and the event engine — all
		// must match dense. The challenger also steps nodes on 1–4
		// parallel workers (derived from existing inputs so the corpus
		// keeps its signature); the serial dense reference stays the
		// oracle.
		switch engSel % 3 {
		case 0:
			cfg.Engine = EngineSparse
		case 1:
			cfg.Engine = EngineAuto
		default:
			cfg.Engine = EngineEvent
		}
		cfg.NodeWorkers = 1 + int(seed>>8)%4
		got, errS := Run(cfg)

		switch {
		case errD == nil && errS == nil:
		case errors.Is(errD, ErrMaxSlots) && errors.Is(errS, ErrMaxSlots):
		default:
			t.Fatalf("error mismatch: dense %v, %v %v", errD, cfg.Engine, errS)
		}
		if got != want {
			t.Fatalf("engines diverge (n=%d alg=%d adv=%d):\n dense %+v\n %v %+v",
				n, algSel%6, advSel%5, want, cfg.Engine, got)
		}
		// The safety lemmas hold w.h.p.; at fuzz scale only the clean
		// no-adversary runs at non-trivial n are deterministic enough to
		// assert outright.
		if errD == nil && cfg.Adversary == nil && n >= 16 && want.Invariants.Any() {
			t.Fatalf("invariant violations in a clean run: %+v", want.Invariants)
		}
	})
}
