package sim

// Negative controls: the paper's guarantees hold "for sufficiently large"
// constants, and the Sim preset was tuned so its margins suffice. These
// tests document that the constants are load-bearing by showing that
// deliberately broken values produce the failures the analysis predicts.
// They keep the tuning rationale in params.go falsifiable.

import (
	"errors"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
)

// With a tiny iteration constant a, MultiCastCore's iteration R = a·lg T̂
// has too few listens for the Chernoff bounds of Lemma 4.2: nodes halt on
// noise-free *small samples* before the epidemic completes. The paper's
// "sufficiently large a" is exactly what forbids this.
func TestNegativeControlTinyCoreA(t *testing.T) {
	params := core.Sim()
	params.CoreA = 0.5 // R = ⌈0.5·lg n⌉ = 3 slots at n = 64: hopeless
	violations := 0
	const trials = 10
	for seed := uint64(1); seed <= trials; seed++ {
		m, err := Run(Config{
			N: 64,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCastCore(params, 64, 0)
			},
			Seed:     seed,
			MaxSlots: 1 << 20,
		})
		if err != nil && !errors.Is(err, ErrMaxSlots) {
			t.Fatal(err)
		}
		violations += m.Invariants.HaltedUninformed + m.Invariants.HaltBeforeAllInformed
	}
	if violations == 0 {
		t.Error("tiny CoreA produced no premature halts across 10 trials — " +
			"either the halting rule no longer depends on iteration length, " +
			"or the invariant auditing broke")
	}
}

// With the halting threshold pushed to ~1 (halt unless nearly every listen
// was noisy), even ongoing jamming cannot stop termination: nodes quit
// while Eve still has budget and before stragglers are informed. The
// HaltRatio = 1/2 of Figure 1/2 (R/128 = R·p/2) is what balances
// "terminate when quiet" against "never strand a straggler".
func TestNegativeControlHugeHaltRatio(t *testing.T) {
	params := core.Sim()
	params.HaltRatio = 0.99
	violations := 0
	const trials = 10
	for seed := uint64(1); seed <= trials; seed++ {
		m, err := Run(Config{
			N: 64,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(params, 64)
			},
			Adversary: adversary.BlockFraction(0.9),
			Budget:    200_000,
			Seed:      seed,
			MaxSlots:  1 << 22,
		})
		if err != nil && !errors.Is(err, ErrMaxSlots) {
			t.Fatal(err)
		}
		violations += m.Invariants.HaltBeforeAllInformed + m.Invariants.HaltedUninformed
	}
	if violations == 0 {
		t.Error("HaltRatio ≈ 1 caused no premature halts under heavy jamming — " +
			"the noisy-slot termination rule is not being exercised")
	}
}
