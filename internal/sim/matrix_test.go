package sim

// The robustness matrix: every fast algorithm against every adversary
// family, asserting the paper's safety invariants and eventual delivery in
// each cell. MultiCastAdv variants are exercised separately (they are two
// orders of magnitude slower); this matrix is the broad sweep.

import (
	"fmt"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
	"multicast/internal/singlechan"
)

func TestAlgorithmAdversaryMatrix(t *testing.T) {
	const n = 64
	const budget = int64(8_000)
	params := core.Sim()

	algs := map[string]func() (protocol.Algorithm, error){
		"core":       func() (protocol.Algorithm, error) { return core.NewMultiCastCore(params, n, budget) },
		"mcast":      func() (protocol.Algorithm, error) { return core.NewMultiCast(params, n) },
		"mcast-c4":   func() (protocol.Algorithm, error) { return core.NewMultiCastC(params, n, 4) },
		"mcast-c16":  func() (protocol.Algorithm, error) { return core.NewMultiCastC(params, n, 16) },
		"singlechan": func() (protocol.Algorithm, error) { return singlechan.New(singlechan.DefaultParams(), n) },
	}
	advs := map[string]adversary.Factory{
		"none":     adversary.None(),
		"burst":    adversary.FullBurst(0),
		"burst@1k": adversary.FullBurst(1000),
		"frac30":   adversary.BlockFraction(0.3),
		"frac90":   adversary.BlockFraction(0.9),
		"rand50":   adversary.RandomFraction(0.5),
		"sweep":    adversary.Sweep(8),
		"pulse":    adversary.Pulse(100, 50, 0.8, 0),
		"bursty":   adversary.Bursty(0.9, 100, 100),
		"reactive": adversary.Reactive(0.8),
		"camper":   adversary.Camper(32, 16),
		"stopping": adversary.StopAfter(adversary.BlockFraction(1.0), 2_000),
	}
	for an, alg := range algs {
		for vn, adv := range advs {
			an, alg, vn, adv := an, alg, vn, adv
			t.Run(fmt.Sprintf("%s/%s", an, vn), func(t *testing.T) {
				t.Parallel()
				m, err := Run(Config{
					N: n, Algorithm: alg, Adversary: adv,
					Budget: budget, Seed: 77, MaxSlots: 1 << 24,
				})
				if err != nil {
					t.Fatalf("%v (slots=%d informed@%d)", err, m.Slots, m.AllInformedSlot)
				}
				if m.AllInformedSlot <= 0 {
					t.Error("message never reached every node")
				}
				// The full invariant set is a claim of the paper's own
				// algorithms. The single-channel baseline reproduces
				// [GKPPSY14]'s time/energy *shape* only — its Monte
				// Carlo termination analysis is out of scope — so for
				// it we assert just the non-negotiable property that no
				// node terminates without the message.
				if an == "singlechan" {
					if m.Invariants.HaltedUninformed != 0 {
						t.Errorf("baseline halted uninformed: %+v", m.Invariants)
					}
				} else if m.Invariants.Any() {
					t.Errorf("invariant violations: %+v", m.Invariants)
				}
				if m.EveEnergy > budget {
					t.Errorf("Eve overspent: %d > %d", m.EveEnergy, budget)
				}
				if m.MaxNodeEnergy <= 0 {
					t.Error("no node spent any energy")
				}
			})
		}
	}
}
