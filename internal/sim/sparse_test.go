package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// popBucket drains the ring's bucket for slot cur and returns the ids.
func popBucket(w *wakeRing, cur int64) []int {
	return w.popSlot(cur, nil)
}

// checkAscending fails unless ids is strictly ascending and exactly the
// set want.
func checkAscending(t *testing.T, ids, want []int) {
	t.Helper()
	sorted := append([]int(nil), want...)
	sort.Ints(sorted)
	if len(ids) != len(sorted) {
		t.Fatalf("popSlot returned %d ids, want %d (%v vs %v)", len(ids), len(sorted), ids, sorted)
	}
	for i := range ids {
		if ids[i] != sorted[i] {
			t.Fatalf("popSlot order wrong at %d: got %v, want %v", i, ids, sorted)
		}
		if i > 0 && ids[i] <= ids[i-1] {
			t.Fatalf("popSlot not strictly ascending at %d: %v", i, ids)
		}
	}
}

// TestPopSlotWorstCaseRuns drives popSlot's run-merge through the push
// orders that degraded the old insertion sort to O(k²): interleaved
// ascending batches, fully descending singleton pushes (the shape
// overflow migration produces when heap entries of one slot pop in
// id-arbitrary order), and mixtures of both — plus the already-sorted
// common case that must stay linear and untouched.
func TestPopSlotWorstCaseRuns(t *testing.T) {
	const slot = int64(5)
	push := func(w *wakeRing, ids ...int) {
		for _, id := range ids {
			w.push(slot, int32(id))
		}
	}
	cases := []struct {
		name string
		fill func(w *wakeRing) []int
	}{
		{"already-sorted", func(w *wakeRing) []int {
			ids := []int{0, 1, 2, 3, 5, 8, 13, 21, 34}
			push(w, ids...)
			return ids
		}},
		{"two-interleaved-batches", func(w *wakeRing) []int {
			a := []int{0, 3, 6, 9, 12, 15}
			b := []int{1, 4, 7, 10, 13, 16}
			push(w, a...)
			push(w, b...)
			return append(a, b...)
		}},
		{"descending-singletons", func(w *wakeRing) []int {
			var ids []int
			for id := 63; id >= 0; id-- {
				push(w, id)
				ids = append(ids, id)
			}
			return ids
		}},
		{"batches-then-descending-tail", func(w *wakeRing) []int {
			a := []int{2, 5, 11, 17}
			push(w, a...)
			ids := append([]int(nil), a...)
			for id := 40; id > 20; id-- {
				push(w, id)
				ids = append(ids, id)
			}
			b := []int{0, 19, 50}
			push(w, b...)
			return append(ids, b...)
		}},
		{"single", func(w *wakeRing) []int {
			push(w, 42)
			return []int{42}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newWakeRing(64)
			want := tc.fill(w)
			got := popBucket(w, slot)
			checkAscending(t, got, want)
			if w.size != 0 {
				t.Fatalf("size = %d after draining, want 0", w.size)
			}
			if w.mask != 0 {
				t.Fatalf("mask = %#x after draining, want 0", w.mask)
			}
		})
	}
}

// TestPopSlotOverflowMigration pushes far-future wakes through the heap
// tier and verifies that after the window advances, popSlot still emits
// the migrated bucket in ascending id order — migration inserts heap
// entries one by one, so a bucket can accumulate many length-1 runs.
func TestPopSlotOverflowMigration(t *testing.T) {
	w := newWakeRing(128)
	const slot = int64(3 * ringWindow)
	// Far-future pushes in descending id order: all land in the heap.
	var want []int
	for id := 99; id >= 0; id-- {
		w.push(slot, int32(id))
		want = append(want, id)
	}
	if len(w.overflow) != 100 {
		t.Fatalf("expected all pushes in overflow, got %d", len(w.overflow))
	}
	w.advance(slot) // migrate into the ring bucket
	got := popBucket(w, slot)
	checkAscending(t, got, want)
}

// TestPopSlotReusedBucketsRandomized cycles one ring through many
// slot generations with randomized interleaved batches, checking every
// pop against a sort oracle — the bucket slices, run table, and merge
// scratch are all reused across generations, exactly as in a pooled
// execution.
func TestPopSlotReusedBucketsRandomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	w := newWakeRing(64)
	cur := int64(0)
	for gen := 0; gen < 200; gen++ {
		w.advance(cur)
		var want []int
		seen := map[int]bool{}
		for batch := 0; batch < 1+rnd.Intn(4); batch++ {
			// Each batch is ascending (as real push sources are), with
			// random gaps; batches interleave arbitrarily.
			id := rnd.Intn(10)
			for len(want) < 48 && id < 1000 {
				if !seen[id] {
					seen[id] = true
					w.push(cur, int32(id))
					want = append(want, id)
				}
				id += 1 + rnd.Intn(30)
			}
		}
		got := popBucket(w, cur)
		checkAscending(t, got, want)
		cur += int64(1 + rnd.Intn(3*ringWindow))
	}
}
