package sim

import (
	"errors"
	"fmt"
	"testing"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/protocol"
)

// TestSlotLoopAllocFree pins the steady-state allocation rate of all
// three slot loops at zero on a recycled Executor, at two node counts
// (n=1024 exercises the buffer-growth paths the small case never
// touches) and with the parallel stepping pool both off and on. The
// workload never halts (full-spectrum jamming with a budget that
// outlasts MaxSlots), so two runs differing only in MaxSlots isolate the
// per-slot cost: the per-trial allocations (algorithm instance, nodes,
// pool wake-up, the ErrMaxSlots wrap) are identical in both and cancel
// in the subtraction.
func TestSlotLoopAllocFree(t *testing.T) {
	for _, n := range []int{128, 1024} {
		for _, workers := range []int{1, 4} {
			n, workers := n, workers
			base := Config{
				N: n,
				Algorithm: func() (protocol.Algorithm, error) {
					return core.NewMultiCast(core.Sim(), n)
				},
				Adversary:   adversary.FullBurst(0),
				Budget:      1 << 40, // Eve outlasts MaxSlots: nodes can never halt
				Seed:        7,
				NodeWorkers: workers,
			}
			const shortRun, longRun = int64(1) << 10, int64(5) << 10
			for _, engine := range []Engine{EngineDense, EngineSparse, EngineEvent} {
				t.Run(fmt.Sprintf("%v/n%d/w%d", engine, n, workers), func(t *testing.T) {
					exec := NewExecutor()
					run := func(maxSlots int64) {
						cfg := base
						cfg.Engine = engine
						cfg.MaxSlots = maxSlots
						if _, err := exec.Run(cfg); !errors.Is(err, ErrMaxSlots) {
							t.Fatalf("want ErrMaxSlots, got %v", err)
						}
					}
					run(longRun) // grow every pooled buffer past its steady-state size
					shortAllocs := testing.AllocsPerRun(3, func() { run(shortRun) })
					longAllocs := testing.AllocsPerRun(3, func() { run(longRun) })
					perSlot := (longAllocs - shortAllocs) / float64(longRun-shortRun)
					if perSlot > 0.001 {
						t.Errorf("slot loop allocates: %.4f allocs/slot (short run %.1f, long run %.1f)",
							perSlot, shortAllocs, longAllocs)
					}
				})
			}
		}
	}
}

// TestPoolStartAllocBound pins the per-trial cost of the parallel
// stepping pool on a recycled Executor. The wake/done channels are
// cached on the pool across runs, so switching k workers on costs only
// the k-1 goroutine spawns — the bound here fails if a fresh channel
// set sneaks back into startPool (the allocs_per_slot regression
// BENCH_sim.json caught at the campaign level).
func TestPoolStartAllocBound(t *testing.T) {
	const n, workers = 256, 4
	mk := func(w int) Config {
		return Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary:   adversary.FullBurst(0),
			Budget:      1 << 40,
			Seed:        7,
			MaxSlots:    256,
			NodeWorkers: w,
		}
	}
	exec := NewExecutor()
	run := func(w int) {
		if _, err := exec.Run(mk(w)); !errors.Is(err, ErrMaxSlots) {
			t.Fatalf("want ErrMaxSlots, got %v", err)
		}
	}
	run(workers) // size the pool, its channels, and every buffer
	run(1)
	serial := testing.AllocsPerRun(10, func() { run(1) })
	parallel := testing.AllocsPerRun(10, func() { run(workers) })
	if extra, limit := parallel-serial, float64(3*(workers-1)); extra > limit {
		t.Errorf("pool start allocates: %.1f extra allocs/trial at %d workers (limit %.0f; serial %.1f, parallel %.1f)",
			extra, workers, limit, serial, parallel)
	}
}

// TestExecutorRecycleMatchesRun: a recycled Executor must be
// indistinguishable from a fresh Run for every trial, including when the
// configuration shape changes between trials (N shrinking and growing,
// engines alternating, the parallel stepping pool switching on and off).
func TestExecutorRecycleMatchesRun(t *testing.T) {
	mkCfg := func(n int, engine Engine, workers int, seed uint64) Config {
		return Config{
			N: n,
			Algorithm: func() (protocol.Algorithm, error) {
				return core.NewMultiCast(core.Sim(), n)
			},
			Adversary:   adversary.RandomFraction(0.4),
			Budget:      6_000,
			Seed:        seed,
			Engine:      engine,
			NodeWorkers: workers,
		}
	}
	cfgs := []Config{
		mkCfg(64, EngineSparse, 1, 1),
		mkCfg(16, EngineDense, 4, 2), // shrink + parallel pool on
		mkCfg(64, EngineEvent, 1, 3), // grow back + pool off, lean step
		mkCfg(32, EngineAuto, 3, 4),
		mkCfg(32, EngineEvent, 2, 5), // event + pool: full stepSlot path
		mkCfg(32, EngineDense, 1, 6),
	}
	exec := NewExecutor()
	for i, cfg := range cfgs {
		want, errW := Run(cfg)
		got, errG := exec.Run(cfg)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: error mismatch: fresh %v, recycled %v", i, errW, errG)
		}
		if got != want {
			t.Fatalf("trial %d: recycled Executor diverges\n fresh    %+v\n recycled %+v", i, want, got)
		}
	}
}
