package chaos

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"multicast/internal/driver"
)

func TestParseRulesGrammar(t *testing.T) {
	cases := []struct {
		in   string
		want []Rule
	}{
		{"crash@1:2", []Rule{{Kind: KindCrash, Shard: 1, Cell: 2, Attempt: 0, From: -1}}},
		{"crash", []Rule{{Kind: KindCrash, Shard: -1, Cell: -1, Attempt: 0, From: -1}}},
		{"stall@*:3", []Rule{{Kind: KindStall, Shard: -1, Cell: 3, Attempt: 0, From: -1}}},
		{"torn-flush@0:2:1", []Rule{{Kind: KindTornFlush, Shard: 0, Cell: 2, Attempt: 1, From: -1}}},
		{"crash@1:2:*", []Rule{{Kind: KindCrash, Shard: 1, Cell: 2, Attempt: -1, From: -1}}},
		{"truncate-artifact@1", []Rule{{Kind: KindTruncateArtifact, Shard: 1, Cell: -1, Attempt: 0, From: -1}}},
		{"bit-flip-artifact", []Rule{{Kind: KindBitFlipArtifact, Shard: -1, Cell: -1, Attempt: 0, From: -1}}},
		{"duplicate-shard@2:0", []Rule{{Kind: KindDuplicateShard, Shard: 2, Cell: -1, Attempt: 0, From: 0}}},
		{"duplicate-shard", []Rule{{Kind: KindDuplicateShard, Shard: -1, Cell: -1, Attempt: 0, From: -1}}},
		{"crash@0:1, corrupt-checkpoint@1:2", []Rule{
			{Kind: KindCrash, Shard: 0, Cell: 1, Attempt: 0, From: -1},
			{Kind: KindCorruptCheckpoint, Shard: 1, Cell: 2, Attempt: 0, From: -1},
		}},
	}
	for _, c := range cases {
		got, err := ParseRules(c.in)
		if err != nil {
			t.Errorf("ParseRules(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseRules(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseRulesRejections(t *testing.T) {
	cases := []struct {
		in   string
		want string // error substring
	}{
		{"", "no fault rules"},
		{" , ", "no fault rules"},
		{"power-surge@1", "unknown fault kind"},
		{"crash@1:0", "1-based"},
		{"truncate-artifact@1:2", "does not take a cell"},
		{"duplicate-shard@1:1", "source and target are both shard 1"},
		{"crash@1:2:3:4", "too many fields"},
		{"crash@x", "non-negative integer"},
		{"crash@-2", "non-negative integer"},
	}
	for _, c := range cases {
		_, err := ParseRules(c.in)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseRules(%q): err = %v, want %q", c.in, err, c.want)
		}
	}
}

func TestNewRejectsInvalidRules(t *testing.T) {
	cases := []Rule{
		{Kind: "bogus", Shard: -1, Cell: -1, Attempt: 0, From: -1},
		{Kind: KindCrash, Shard: -1, Cell: 0, Attempt: 0, From: -1},           // cells are 1-based
		{Kind: KindCrash, Shard: -1, Cell: 1, Attempt: 0, From: 2},            // From is dup-only
		{Kind: KindDuplicateShard, Shard: 1, Cell: 0, Attempt: 0, From: 1},    // self-delivery
		{Kind: KindTruncateArtifact, Shard: 0, Cell: 3, Attempt: 0, From: -1}, // no trigger cell
	}
	for _, r := range cases {
		if _, err := New(Plan{Seed: 1, Faults: []Rule{r}}); err == nil {
			t.Errorf("New accepted invalid rule %+v", r)
		}
	}
}

// Playing the same plan through two injectors — with the hook calls
// interleaved differently, as racing shard goroutines would — must
// produce byte-identical canonical logs.
func TestEventLogCanonical(t *testing.T) {
	plan := Plan{Seed: 11, Faults: []Rule{
		{Kind: KindCrash, Shard: 0, Cell: 2, Attempt: 0, From: -1},
		{Kind: KindTornFlush, Shard: 1, Cell: 1, Attempt: 0, From: -1},
	}}
	data := []byte(`{"cells":1,"payload":"0123456789abcdef"}`)

	play := func(order []int) *Injector {
		in, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		in.begin(2)
		in.arm(0, 0, 0, 6)
		in.arm(1, 0, 0, 6)
		for _, shard := range order {
			if shard == 0 {
				in.cell(context.Background(), 0, 0, 1)
				in.cell(context.Background(), 0, 0, 2) // fires the crash
			} else {
				in.checkpointFault(1, 0, data) // flush 1 fires the tear
			}
		}
		return in
	}

	a, b := play([]int{0, 1}), play([]int{1, 0})
	evA, evB := a.Events(), b.Events()
	if len(evA) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evA), evA)
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Errorf("interleaving changed the canonical log:\n a: %+v\n b: %+v", evA, evB)
	}
	logA, errA := a.Log()
	logB, errB := b.Log()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !bytes.Equal(logA, logB) {
		t.Errorf("serialized logs differ:\n a: %s\n b: %s", logA, logB)
	}
	for i, ev := range evA {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// Seeded wildcards (shard, cell, cut offsets) must resolve identically
// across injectors built from the same plan, and rules fire at most
// once.
func TestSeededWildcardsDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		plan := Plan{Seed: seed, Faults: []Rule{
			{Kind: KindCrash, Shard: -1, Cell: -1, Attempt: -1, From: -1},
			{Kind: KindDuplicateShard, Shard: -1, Cell: -1, Attempt: 0, From: -1},
		}}
		resolve := func() []Rule {
			in, err := New(plan)
			if err != nil {
				t.Fatal(err)
			}
			in.begin(3)
			for s := 0; s < 3; s++ {
				in.arm(s, 0, 0, 4)
			}
			var out []Rule
			for _, r := range in.rules {
				out = append(out, r.Rule)
			}
			return out
		}
		a, b := resolve(), resolve()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: wildcard resolution diverged:\n a: %+v\n b: %+v", seed, a, b)
		}
		for _, r := range a {
			if r.Shard < 0 || r.Shard > 2 {
				t.Errorf("seed %d: shard resolved to %d", seed, r.Shard)
			}
			if r.Kind == KindDuplicateShard && (r.From < 0 || r.From > 2 || r.From == r.Shard) {
				t.Errorf("seed %d: duplicate-shard resolved to %d<-%d", seed, r.Shard, r.From)
			}
			if r.Kind == KindCrash && (r.Cell < 1 || r.Cell > 4) {
				t.Errorf("seed %d: cell resolved to %d of 4", seed, r.Cell)
			}
		}
	}
}

func TestRulesFireAtMostOnce(t *testing.T) {
	in, err := New(Plan{Seed: 3, Faults: []Rule{
		{Kind: KindCrash, Shard: 0, Cell: 2, Attempt: -1, From: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	in.begin(1)
	in.arm(0, 0, 0, 4)
	if err := in.cell(context.Background(), 0, 0, 2); !errors.Is(err, driver.ErrInjected) {
		t.Fatalf("first trigger: err = %v, want ErrInjected", err)
	}
	if err := in.cell(context.Background(), 0, 1, 2); err != nil {
		t.Fatalf("rule fired twice: %v", err)
	}
	if n := len(in.Events()); n != 1 {
		t.Errorf("%d events, want 1", n)
	}
}

// Rules targeting shards outside the actual split are disabled at
// begin, not left to dangle or fire on a wrapped index.
func TestBeginDisablesOutOfRangeTargets(t *testing.T) {
	in, err := New(Plan{Seed: 3, Faults: []Rule{
		{Kind: KindCrash, Shard: 5, Cell: 1, Attempt: -1, From: -1},
		{Kind: KindDuplicateShard, Shard: 0, Cell: -1, Attempt: 0, From: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	in.begin(1) // shard 5 doesn't exist; duplicate has no source to draw
	in.arm(0, 0, 0, 4)
	if err := in.cell(context.Background(), 0, 0, 1); err != nil {
		t.Fatalf("disabled rule fired: %v", err)
	}
	if err := in.gather(t.TempDir(), 1); err != nil {
		t.Fatalf("gather: %v", err)
	}
	if n := len(in.Events()); n != 0 {
		t.Errorf("%d events from disabled rules, want 0", n)
	}
}

// The checkpoint fault kinds differ exactly in where the torn bytes
// land: torn-flush inside the never-renamed temp file, corrupt-
// checkpoint in the sidecar itself; both kill the worker.
func TestCheckpointFaultShapes(t *testing.T) {
	data := []byte(`{"done_cells":3,"checksum":"abcdef0123456789"}`)
	in, err := New(Plan{Seed: 5, Faults: []Rule{
		{Kind: KindTornFlush, Shard: 0, Cell: 1, Attempt: 0, From: -1},
		{Kind: KindCorruptCheckpoint, Shard: 1, Cell: 1, Attempt: 0, From: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	in.begin(2)

	torn := in.checkpointFault(0, 0, data)
	if torn == nil || torn.Torn || !errors.Is(torn.Err, driver.ErrInjected) {
		t.Fatalf("torn-flush fault = %+v, want tmp-file tear with an injected crash", torn)
	}
	if len(torn.Data) >= len(data) || !bytes.HasPrefix(data, torn.Data) {
		t.Errorf("torn-flush wrote %d of %d bytes, want a proper prefix", len(torn.Data), len(data))
	}

	corrupt := in.checkpointFault(1, 0, data)
	if corrupt == nil || !corrupt.Torn || !errors.Is(corrupt.Err, driver.ErrInjected) {
		t.Fatalf("corrupt-checkpoint fault = %+v, want in-place tear with an injected crash", corrupt)
	}

	// Artifact faults are silent: damage without an error.
	in2, err := New(Plan{Seed: 5, Faults: []Rule{
		{Kind: KindBitFlipArtifact, Shard: 0, Cell: -1, Attempt: 0, From: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	in2.begin(1)
	flip := in2.artifactFault(0, 0, data)
	if flip == nil || !flip.Torn || flip.Err != nil {
		t.Fatalf("bit-flip fault = %+v, want silent in-place damage", flip)
	}
	diff := 0
	for i := range data {
		for b := 0; b < 8; b++ {
			if (data[i]^flip.Data[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("bit-flip changed %d bits, want exactly 1", diff)
	}
}
