package chaos

// The headline chaos deliverables: TestChaosRecoveryMatrix pins, for
// every fault class at k ∈ {1, 3} under both the static and the
// work-stealing schedule — with and without a pre-warmed, deliberately
// tampered result cache — that a resumed or retried campaign merges
// byte-identically to the unsharded run and that replaying the same
// schedule yields an identical fault event log; FuzzChaosSchedule
// holds the same invariant under randomized seeded schedules, with the
// driver schedule part of the corpus signature.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"multicast/internal/adversary"
	"multicast/internal/cache"
	"multicast/internal/campaign"
	"multicast/internal/core"
	"multicast/internal/driver"
	"multicast/internal/protocol"
	"multicast/internal/rng"
	"multicast/internal/runner"
	"multicast/internal/sim"
)

const matrixTrials = 6 // 2 points × 6 trials = 12 grid cells

func mcast(n int) func() (protocol.Algorithm, error) {
	return func() (protocol.Algorithm, error) { return core.NewMultiCast(core.Sim(), n) }
}

// testSpec mirrors the driver tests' two-point campaign, so cross-point
// or cross-shard mixups cannot cancel out.
func testSpec() driver.Spec {
	points := []sim.Config{
		{N: 32, Algorithm: mcast(32), Adversary: adversary.RandomFraction(0.4), Budget: 10_000, Seed: 7},
		{N: 64, Algorithm: mcast(64), Adversary: adversary.FullBurst(0), Budget: 15_000, Seed: 7},
	}
	tmpl := campaign.New("test-sweep", 7, matrixTrials, []campaign.Point{
		{Label: "n=32", Workload: "mcast n=32 adv=random seed=7"},
		{Label: "n=64", Workload: "mcast n=64 adv=burst seed=7"},
	})
	return driver.Spec{Template: tmpl, Points: points, Trials: matrixTrials}
}

// summaryBytes renders a summary exactly as Write persists it — the
// byte-identity the matrix compares.
func summaryBytes(t testing.TB, s *campaign.Summary) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "summary.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// unshardedReference is the plain runner's summary, computed once: the
// ground truth every recovered campaign must reproduce stat for stat.
var (
	refOnce sync.Once
	refSum  *campaign.Summary
	refErr  error
)

func unshardedReference(t testing.TB) *campaign.Summary {
	t.Helper()
	refOnce.Do(func() {
		spec := testSpec()
		s := spec.Template.CloneEmpty()
		refErr = runner.RunSweep(context.Background(), spec.Points,
			runner.SweepPlan{Trials: spec.Trials, Workers: 2},
			func(p, tr int, m sim.Metrics) error { return s.Points[p].Collector.Add(tr, m) })
		refSum = s
	})
	if refErr != nil {
		t.Fatal(refErr)
	}
	return refSum
}

// cleanDrivenBytes is the artifact of a fault-free driven run at k
// shards, computed once per k: recovery must be byte-identical to it —
// injected faults may never leave a trace in the merged artifact. (The
// artifact of a k-way merge differs from the unsharded file only in
// benign sample order and float-summation rounding of the raw Welford
// state; the derived stats are bit-identical across k, which
// assertSameStats pins against the unsharded reference.)
var (
	cleanMu    sync.Mutex
	cleanBytes = map[int][]byte{}
)

func cleanDrivenBytes(t testing.TB, k int) []byte {
	t.Helper()
	cleanMu.Lock()
	defer cleanMu.Unlock()
	if data, ok := cleanBytes[k]; ok {
		return data
	}
	dir, err := os.MkdirTemp("", "chaos-clean-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sum, err := driver.Run(context.Background(), testSpec(), driver.Options{
		Shards: k, Workers: 2, Dir: dir,
	})
	if err != nil {
		t.Fatalf("clean driven run at k=%d: %v", k, err)
	}
	data := summaryBytes(t, sum)
	cleanBytes[k] = data
	return data
}

// assertSameStats requires got's derived per-point statistics to be
// bit-identical to want's — the repo's cross-k determinism contract.
func assertSameStats(t testing.TB, got, want *campaign.Summary) {
	t.Helper()
	if got.Identity() != want.Identity() {
		t.Fatalf("identity diverged:\n got %q\nwant %q", got.Identity(), want.Identity())
	}
	for p := range want.Points {
		g, w := got.Points[p].Collector, want.Points[p].Collector
		if g.Trials() != w.Trials() {
			t.Fatalf("point %d: %d trials, want %d", p, g.Trials(), w.Trials())
		}
		if g.Slots() != w.Slots() || g.MaxEnergy() != w.MaxEnergy() ||
			g.SourceEnergy() != w.SourceEnergy() || g.MeanEnergy() != w.MeanEnergy() ||
			g.EveEnergy() != w.EveEnergy() || g.AllInformed() != w.AllInformed() {
			t.Errorf("point %d: recovered summary stats diverge from the unsharded run", p)
		}
		if g.Invariants() != w.Invariants() {
			t.Errorf("point %d: invariant counts diverge", p)
		}
	}
}

// warmTamperedCache returns a result cache pre-warmed by a clean k-way
// driven run and then damaged — one entry truncated mid-file — the
// shape a faulted campaign meets in the field: mostly replayable,
// partly broken. With cached false it returns nil, the matrix's
// cache-free column.
func warmTamperedCache(t *testing.T, k int, cached bool) *cache.Store {
	t.Helper()
	if !cached {
		return nil
	}
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	if _, err := driver.Run(context.Background(), spec, driver.Options{
		Shards: k, Workers: 2, Dir: t.TempDir(), Cache: store,
	}); err != nil {
		t.Fatalf("cache warm-up run: %v", err)
	}
	grid, err := runner.NewGrid(spec.Points, spec.Trials)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key(spec.Template.Points[0].Label, spec.Template.Points[0].Workload, grid.Seed(0))
	path := store.EntryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	return store
}

func wantNil(t *testing.T, k int, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("chaos run: %v, want in-run recovery", err)
	}
}

func wantIs(target error) func(*testing.T, int, error) {
	return func(t *testing.T, k int, err error) {
		t.Helper()
		if !errors.Is(err, target) {
			t.Fatalf("chaos run err = %v, want errors.Is(%v)", err, target)
		}
	}
}

func TestChaosRecoveryMatrix(t *testing.T) {
	want := unshardedReference(t)
	rows := []struct {
		name    string
		retries int
		timeout time.Duration
		faults  func(shard, k int) []Rule
		check   func(t *testing.T, k int, err error) // chaos-run outcome
		drill   func(t *testing.T, dir string, shard int)
	}{
		{
			// The worker crashes mid-run; the driver's in-run retry resumes
			// it from its checkpoint without any operator involvement.
			name:    "crash-retried-in-run",
			retries: 1,
			faults: func(s, k int) []Rule {
				return []Rule{{Kind: KindCrash, Shard: s, Cell: 2, Attempt: 0, From: -1}}
			},
			check: wantNil,
		},
		{
			// No retry budget: the crash fails the campaign and a separate
			// resume run completes it.
			name: "crash-resume",
			faults: func(s, k int) []Rule {
				return []Rule{{Kind: KindCrash, Shard: s, Cell: 2, Attempt: 0, From: -1}}
			},
			check: wantIs(driver.ErrInjected),
		},
		{
			// A flush torn inside the temp file never renames, so the
			// previous sidecar survives and the in-run retry resumes from
			// it.
			name:    "torn-flush-retried-in-run",
			retries: 1,
			faults: func(s, k int) []Rule {
				return []Rule{{Kind: KindTornFlush, Shard: s, Cell: 2, Attempt: 0, From: -1}}
			},
			check: wantNil,
		},
		{
			// A sidecar torn in place is terminal — retries must not replay
			// the refusal — and the documented drill (remove the sidecar,
			// resume) regenerates the shard from scratch.
			name:    "corrupt-checkpoint-terminal",
			retries: 2,
			faults: func(s, k int) []Rule {
				return []Rule{{Kind: KindCorruptCheckpoint, Shard: s, Cell: 2, Attempt: 0, From: -1}}
			},
			check: wantIs(campaign.ErrCorruptCheckpoint),
			drill: func(t *testing.T, dir string, shard int) {
				if err := os.Remove(driver.CheckpointPath(dir, shard)); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// Silent truncation: the worker believes it succeeded; the
			// artifact checksum catches it at gather, and resume discards
			// and regenerates the shard.
			name: "truncate-artifact",
			faults: func(s, k int) []Rule {
				return []Rule{{Kind: KindTruncateArtifact, Shard: s, Cell: -1, Attempt: 0, From: -1}}
			},
			check: wantIs(campaign.ErrCorruptArtifact),
		},
		{
			// A single silently flipped bit is likewise caught at gather by
			// the checksum (seed 7 lands the flip on significant bytes for
			// both k; a whitespace landing would make the run succeed
			// harmlessly, which wantIs would flag so the seed can be
			// repinned).
			name: "bit-flip-artifact",
			faults: func(s, k int) []Rule {
				return []Rule{{Kind: KindBitFlipArtifact, Shard: s, Cell: -1, Attempt: 0, From: -1}}
			},
			check: wantIs(campaign.ErrCorruptArtifact),
		},
		{
			// Gather misdelivers one shard's artifact into another's slot:
			// the merge refuses the duplicate, and resume discards the
			// misdelivered copy and reruns the true shard. At k=1 there is
			// no second shard, so the rule self-disables and the campaign
			// simply succeeds.
			name: "duplicate-shard",
			faults: func(s, k int) []Rule {
				if k == 1 {
					return []Rule{{Kind: KindDuplicateShard, Shard: 0, Cell: -1, Attempt: 0, From: -1}}
				}
				return []Rule{{Kind: KindDuplicateShard, Shard: s, Cell: -1, Attempt: 0, From: 0}}
			},
			check: func(t *testing.T, k int, err error) {
				t.Helper()
				if k == 1 {
					wantNil(t, k, err)
					return
				}
				if err == nil || !strings.Contains(err.Error(), "duplicates shard") {
					t.Fatalf("chaos run err = %v, want duplicate-shard merge refusal", err)
				}
			},
		},
		{
			// A stalled worker hangs until the run deadline cancels it —
			// the driver -timeout path — then resume finishes from its
			// checkpoint.
			name:    "stall-timeout",
			timeout: 2 * time.Second,
			faults: func(s, k int) []Rule {
				return []Rule{{Kind: KindStall, Shard: s, Cell: 1, Attempt: 0, From: -1}}
			},
			check: wantIs(context.DeadlineExceeded),
		},
	}

	for _, row := range rows {
		for _, k := range []int{1, 3} {
			// Every fault class must recover byte-identically under both
			// schedules — and to the SAME clean bytes: the steal column
			// reuses the static cleanDrivenBytes reference, so it also
			// re-pins that stealing never changes a merged artifact.
			for _, schedule := range []driver.Schedule{driver.ScheduleStatic, driver.ScheduleSteal} {
				// The cache column replays every fault class over a
				// pre-warmed result cache with one entry deliberately
				// tampered: cells replay instead of simulating (and one
				// re-simulates through the damage), yet the recovered
				// artifact must stay byte-identical to the cache-free run.
				for _, cached := range []bool{false, true} {
					t.Run(fmt.Sprintf("%s/k=%d/%s/cache=%v", row.name, k, schedule, cached), func(t *testing.T) {
						shard := 0
						if k > 1 {
							shard = 1
						}
						store := warmTamperedCache(t, k, cached)
						plan := Plan{Seed: 7, Faults: row.faults(shard, k)}
						run := func(dir string) (*campaign.Summary, []Event, error) {
							inj, err := New(plan)
							if err != nil {
								t.Fatal(err)
							}
							ctx := context.Background()
							if row.timeout > 0 {
								var cancel context.CancelFunc
								ctx, cancel = context.WithTimeout(ctx, row.timeout)
								defer cancel()
							}
							sum, err := driver.Run(ctx, testSpec(), driver.Options{
								Shards: k, Workers: 2, Dir: dir, Retries: row.retries,
								Schedule: schedule, Chaos: inj.Hooks(), Cache: store,
							})
							return sum, inj.Events(), err
						}

						dir := t.TempDir()
						sum, ev1, err1 := run(dir)
						// Replay the schedule in a fresh directory: the fault log —
						// and the outcome — must be identical.
						_, ev2, err2 := run(t.TempDir())
						if !reflect.DeepEqual(ev1, ev2) {
							t.Errorf("fault logs diverge between identical runs:\n 1: %+v\n 2: %+v", ev1, ev2)
						}
						if (err1 == nil) != (err2 == nil) {
							t.Errorf("outcomes diverge between identical runs: %v vs %v", err1, err2)
						}
						wantEvents := 1
						if row.name == "duplicate-shard" && k == 1 {
							wantEvents = 0
						}
						if len(ev1) != wantEvents {
							t.Errorf("%d fault events, want %d: %+v", len(ev1), wantEvents, ev1)
						}
						row.check(t, k, err1)

						if err1 != nil {
							if row.drill != nil {
								row.drill(t, dir, shard)
							}
							var rerr error
							sum, rerr = driver.Run(context.Background(), testSpec(), driver.Options{
								Shards: k, Workers: 2, Dir: dir, Resume: true, Schedule: schedule,
								Cache: store,
							})
							if rerr != nil {
								t.Fatalf("recovery resume: %v", rerr)
							}
						}
						if got := summaryBytes(t, sum); !bytes.Equal(got, cleanDrivenBytes(t, k)) {
							t.Errorf("recovered merged artifact is not byte-identical to a fault-free k=%d run (%d vs %d bytes)",
								k, len(got), len(cleanDrivenBytes(t, k)))
						}
						assertSameStats(t, sum, want)
					})
				}
			}
		}
	}
}

// FuzzChaosSchedule drives randomized seeded schedules (all fault kinds
// except stall, which needs a deadline) through the campaign — under
// either driver schedule, per the corpus — and holds the matrix
// invariants: the fault log replays identically, and after bounded
// recovery the merged summary is byte-identical to the unsharded run.
func FuzzChaosSchedule(f *testing.F) {
	f.Add(uint64(1), uint(3), uint(2), false)
	f.Add(uint64(42), uint(1), uint(1), true)
	f.Add(uint64(7), uint(2), uint(3), false)
	f.Add(uint64(1234567), uint(3), uint(1), true)
	f.Add(uint64(99), uint(2), uint(2), true)
	f.Fuzz(func(t *testing.T, seed uint64, kIn, nIn uint, steal bool) {
		k := 1 + int(kIn%3)
		nfaults := 1 + int(nIn%3)
		schedule := driver.ScheduleStatic
		if steal {
			schedule = driver.ScheduleSteal
		}
		kinds := []Kind{KindCrash, KindTornFlush, KindCorruptCheckpoint,
			KindTruncateArtifact, KindBitFlipArtifact, KindDuplicateShard}
		src := rng.New(seed)
		faults := make([]Rule, nfaults)
		for i := range faults {
			faults[i] = Rule{
				Kind:  kinds[src.Uint64n(uint64(len(kinds)))],
				Shard: -1, Cell: -1, Attempt: 0, From: -1,
			}
		}
		plan := Plan{Seed: seed, Faults: faults}
		spec := testSpec()

		run := func(dir string) (*campaign.Summary, []byte, error) {
			inj, err := New(plan)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := driver.Run(context.Background(), spec, driver.Options{
				Shards: k, Workers: 2, Dir: dir, Retries: 1,
				Schedule: schedule, Chaos: inj.Hooks(),
			})
			log, lerr := inj.Log()
			if lerr != nil {
				t.Fatal(lerr)
			}
			return sum, log, err
		}

		dir := t.TempDir()
		sum, log1, err := run(dir)
		_, log2, _ := run(t.TempDir())
		if !bytes.Equal(log1, log2) {
			t.Fatalf("fault log is not reproducible from seed %d:\n 1: %s\n 2: %s", seed, log1, log2)
		}

		// Bounded recovery: resume chaos-free, applying the generic drill
		// for terminal corrupt checkpoints.
		for attempt := 0; err != nil && attempt < 4; attempt++ {
			if errors.Is(err, campaign.ErrCorruptCheckpoint) {
				for i := 0; i < k; i++ {
					if rmErr := os.Remove(driver.CheckpointPath(dir, i)); rmErr != nil && !os.IsNotExist(rmErr) {
						t.Fatal(rmErr)
					}
				}
			}
			sum, err = driver.Run(context.Background(), spec, driver.Options{
				Shards: k, Workers: 2, Dir: dir, Resume: true, Schedule: schedule,
			})
		}
		if err != nil {
			t.Fatalf("campaign never recovered from schedule %+v: %v", plan, err)
		}
		if got := summaryBytes(t, sum); !bytes.Equal(got, cleanDrivenBytes(t, k)) {
			t.Errorf("recovered artifact diverges from a fault-free k=%d run under schedule %+v\nfault log:\n%s", k, plan, log1)
		}
		assertSameStats(t, sum, unshardedReference(t))
	})
}
