// Package chaos is the deterministic fault-injection layer of the
// campaign fabric: a seeded schedule of failures (Plan) that an
// Injector plays into internal/driver's chaos seam, so that crash
// recovery, torn checkpoint flushes, corrupt or misdelivered shard
// artifacts, and stalled workers are reproducible experiments rather
// than flaky accidents.
//
// Determinism is the whole point. Every degree of freedom a fault rule
// leaves open — which shard, which grid cell, where a file is cut,
// which bit flips — is resolved from Plan.Seed through a per-rule
// splitmix-derived stream, independent of goroutine interleaving. The
// injector additionally records every injection as an Event and
// serves the log in a canonical order, so two runs of the same schedule
// produce byte-identical fault logs: the log is itself a diffable
// artifact, and a CI chaos failure replays locally from nothing but its
// seed and rule string (see docs/OPERATIONS.md, "Chaos drills").
//
// The injector only schedules faults; the damage itself is done by the
// fault points in internal/campaign (Fault, FaultPoint) and the hooks
// in internal/driver (ChaosHooks), which this package glues together
// via Injector.Hooks.
//
// The hooks are schedule-agnostic: under the driver's work-stealing
// schedule the per-cell hooks fire on fold ordinals — the order cells
// land in a shard's checkpoint, which is deterministic per shard — not
// on the racy order workers happened to compute them, so a seeded plan
// plays out identically under either Options.Schedule.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"multicast/internal/campaign"
	"multicast/internal/driver"
	"multicast/internal/rng"
)

// Kind names one fault class the injector can schedule.
type Kind string

const (
	// KindCrash kills a shard worker right after it checkpoints a
	// chosen grid cell — the classic power-cord pull, but aimed.
	KindCrash Kind = "crash"
	// KindTornFlush tears a checkpoint flush inside the write-then-
	// rename temp file and kills the worker: the rename never runs, so
	// the previous sidecar survives and a retry resumes from it.
	KindTornFlush Kind = "torn-flush"
	// KindCorruptCheckpoint tears a checkpoint flush in place — the
	// sidecar itself ends up truncated mid-JSON — and kills the worker.
	// The retry's resume refuses the sidecar as corrupt, terminally.
	KindCorruptCheckpoint Kind = "corrupt-checkpoint"
	// KindTruncateArtifact silently truncates the shard artifact write
	// at a seeded byte offset; the worker believes it succeeded and the
	// damage surfaces at gather as ErrCorruptArtifact.
	KindTruncateArtifact Kind = "truncate-artifact"
	// KindBitFlipArtifact silently flips one seeded bit of the shard
	// artifact write; the checksum catches it at gather.
	KindBitFlipArtifact Kind = "bit-flip-artifact"
	// KindDuplicateShard misdelivers one shard's finished artifact into
	// another shard's slot during gather, so the merge sees a duplicate
	// shard and a missing one.
	KindDuplicateShard Kind = "duplicate-shard"
	// KindStall hangs a shard worker after a chosen cell until its
	// context is cancelled — the fault the driver -timeout path exists
	// for.
	KindStall Kind = "stall"
)

// Kinds lists every fault class, in the order documented above.
func Kinds() []Kind {
	return []Kind{KindCrash, KindTornFlush, KindCorruptCheckpoint,
		KindTruncateArtifact, KindBitFlipArtifact, KindDuplicateShard, KindStall}
}

// takesCell reports whether the kind fires at a per-cell trigger point
// (a grid cell for crash/stall, a flush ordinal for the checkpoint
// kinds).
func takesCell(k Kind) bool {
	switch k {
	case KindCrash, KindStall, KindTornFlush, KindCorruptCheckpoint:
		return true
	}
	return false
}

// Rule schedules one fault. The zero field value is not a usable rule:
// targets are explicit, with -1 meaning "let the seed decide" (and, for
// Attempt, "any attempt"). ParseRules builds rules with those defaults
// from the CLI grammar.
type Rule struct {
	// Kind is the fault class.
	Kind Kind `json:"kind"`
	// Shard targets a shard index; -1 resolves from the seed once the
	// shard count is known.
	Shard int `json:"shard"`
	// Cell is the trigger point within the shard's attempt: the 1-based
	// local cell count for crash/stall, the 1-based flush ordinal for
	// torn-flush/corrupt-checkpoint. -1 resolves from the seed; kinds
	// without a trigger point (artifact and gather faults) must leave
	// it unset.
	Cell int `json:"cell"`
	// Attempt restricts the fault to one worker attempt (0 = first);
	// -1 fires on any attempt. Rules fire at most once either way.
	Attempt int `json:"attempt"`
	// From is duplicate-shard's source shard (the artifact delivered
	// into Shard's slot); -1 picks a seeded shard ≠ Shard.
	From int `json:"from"`
}

// normalize validates r and fills the unset-value conventions in.
func (r Rule) normalize() (Rule, error) {
	known := false
	for _, k := range Kinds() {
		if r.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return r, fmt.Errorf("unknown fault kind %q (kinds: %v)", r.Kind, Kinds())
	}
	if r.Shard < -1 {
		return r, fmt.Errorf("%s: shard %d must be a shard index or -1", r.Kind, r.Shard)
	}
	if r.Attempt < -1 {
		return r, fmt.Errorf("%s: attempt %d must be an attempt number or -1", r.Kind, r.Attempt)
	}
	if takesCell(r.Kind) {
		if r.Cell == 0 {
			return r, fmt.Errorf("%s: cell must be ≥ 1 (cells are 1-based) or -1 for a seeded choice", r.Kind)
		}
		if r.Cell < -1 {
			return r, fmt.Errorf("%s: cell %d must be ≥ 1 or -1", r.Kind, r.Cell)
		}
	} else if r.Cell != 0 && r.Cell != -1 {
		return r, fmt.Errorf("%s does not take a cell (got %d)", r.Kind, r.Cell)
	} else {
		r.Cell = -1
	}
	if r.Kind == KindDuplicateShard {
		if r.From < -1 {
			return r, fmt.Errorf("%s: source shard %d must be a shard index or -1", r.Kind, r.From)
		}
		if r.From >= 0 && r.From == r.Shard {
			return r, fmt.Errorf("%s: source and target are both shard %d", r.Kind, r.From)
		}
	} else if r.From != 0 && r.From != -1 {
		return r, fmt.Errorf("only %s takes a source shard (got %d)", KindDuplicateShard, r.From)
	} else {
		r.From = -1
	}
	return r, nil
}

// Plan is a complete seeded fault schedule: the seed resolves every
// choice the rules leave open, so (Seed, Faults) fully determines which
// faults fire where — and therefore the fault event log.
type Plan struct {
	Seed   uint64 `json:"seed"`
	Faults []Rule `json:"faults"`
}

// Event is one injected fault, canonically serializable: Events returns
// the log sorted by (Shard, Attempt, Cell, Kind, Detail) with Seq
// assigned after sorting, so identical schedules yield byte-identical
// logs no matter how the shard goroutines interleaved.
type Event struct {
	// Seq numbers the event within the canonical order.
	Seq int `json:"seq"`
	// Kind is the fault class injected.
	Kind Kind `json:"kind"`
	// Shard is the shard the fault landed on.
	Shard int `json:"shard"`
	// Attempt is the worker attempt (-1 when not tied to one, e.g.
	// gather faults).
	Attempt int `json:"attempt"`
	// Cell is the trigger point (grid cell or flush ordinal; -1 when
	// the kind has none).
	Cell int `json:"cell"`
	// Detail describes the injected damage, deterministically.
	Detail string `json:"detail"`
}

// armedRule is a rule plus its runtime state: the per-rule random
// stream every seeded choice draws from (in a fixed per-rule order, so
// resolution is independent of cross-rule interleaving), and whether
// the rule already fired — every rule fires at most once.
type armedRule struct {
	Rule
	src          *rng.Source
	cellResolved bool
	fired        bool
}

func (r *armedRule) matchAttempt(attempt int) bool {
	return r.Attempt == -1 || r.Attempt == attempt
}

// Injector plays one Plan into a driven campaign. Safe for concurrent
// use by the driver's shard goroutines; create one per Run (rules fire
// at most once per Injector).
type Injector struct {
	mu      sync.Mutex
	plan    Plan
	rules   []*armedRule
	events  []Event
	flushes map[[2]int]int // (shard, attempt) → flush ordinal
	begun   bool
}

// New validates the plan and returns its injector.
func New(p Plan) (*Injector, error) {
	in := &Injector{plan: p, flushes: make(map[[2]int]int)}
	sm := rng.NewSplitMix64(p.Seed)
	for i, r := range p.Faults {
		nr, err := r.normalize()
		if err != nil {
			return nil, fmt.Errorf("chaos: fault %d: %w", i, err)
		}
		// Each rule gets its own stream keyed by (seed, rule index).
		in.rules = append(in.rules, &armedRule{Rule: nr, src: rng.New(sm.Next())})
	}
	return in, nil
}

// Plan returns the schedule the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Hooks adapts the injector to the driver's chaos seam.
func (in *Injector) Hooks() *driver.ChaosHooks {
	return &driver.ChaosHooks{
		Begin:           in.begin,
		Arm:             in.arm,
		Cell:            in.cell,
		CheckpointFault: in.checkpointFault,
		ArtifactFault:   in.artifactFault,
		Gather:          in.gather,
	}
}

// begin resolves seeded shard targets now that the shard count is
// known. Idempotent: replaying the injector into a second Run keeps the
// first resolution.
func (in *Injector) begin(shards int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.begun {
		return
	}
	in.begun = true
	for _, r := range in.rules {
		if r.Shard == -1 {
			r.Shard = int(r.src.Uint64n(uint64(shards)))
		}
		if r.Kind == KindDuplicateShard && r.From == -1 {
			if shards < 2 {
				r.fired = true // no second shard to misdeliver from
				continue
			}
			f := int(r.src.Uint64n(uint64(shards - 1)))
			if f >= r.Shard {
				f++
			}
			r.From = f
		}
		if r.Shard >= shards || r.From >= shards {
			r.fired = true // targets outside this run's split never fire
		}
	}
}

// arm resolves seeded cell triggers for one shard's attempt, against
// its local slice size.
func (in *Injector) arm(shard, attempt, done, cells int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Shard != shard || !takesCell(r.Kind) || r.cellResolved {
			continue
		}
		r.cellResolved = true
		if r.Cell == -1 {
			r.Cell = 1 + int(r.src.Uint64n(uint64(max(1, cells))))
		}
	}
}

// cell fires crash and stall rules after a checkpointed cell.
func (in *Injector) cell(ctx context.Context, shard, attempt, done int) error {
	in.mu.Lock()
	var fire *armedRule
	for _, r := range in.rules {
		if r.fired || (r.Kind != KindCrash && r.Kind != KindStall) {
			continue
		}
		if r.Shard != shard || !r.matchAttempt(attempt) || r.Cell != done {
			continue
		}
		r.fired = true
		fire = r
		break
	}
	if fire == nil {
		in.mu.Unlock()
		return nil
	}
	if fire.Kind == KindCrash {
		in.record(Event{Kind: KindCrash, Shard: shard, Attempt: attempt, Cell: done,
			Detail: "worker process dies after checkpointing this cell"})
		in.mu.Unlock()
		return injectedf("worker crash at shard %d cell %d (attempt %d)", shard, done, attempt)
	}
	in.record(Event{Kind: KindStall, Shard: shard, Attempt: attempt, Cell: done,
		Detail: "worker hangs after this cell until cancelled"})
	in.mu.Unlock()
	<-ctx.Done() // stall outside the lock: other shards keep running
	return fmt.Errorf("chaos: stalled worker at shard %d cell %d released: %w", shard, done, ctx.Err())
}

// checkpointFault fires torn-flush and corrupt-checkpoint rules on the
// matching flush ordinal of a shard attempt.
func (in *Injector) checkpointFault(shard, attempt int, data []byte) *campaign.Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := [2]int{shard, attempt}
	in.flushes[key]++
	n := in.flushes[key]
	for _, r := range in.rules {
		if r.fired || (r.Kind != KindTornFlush && r.Kind != KindCorruptCheckpoint) {
			continue
		}
		if r.Shard != shard || !r.matchAttempt(attempt) || r.Cell != n {
			continue
		}
		r.fired = true
		cut := int(r.src.Uint64n(uint64(len(data))))
		if r.Kind == KindTornFlush {
			in.record(Event{Kind: r.Kind, Shard: shard, Attempt: attempt, Cell: n,
				Detail: fmt.Sprintf("flush torn in the temp file after %d of %d bytes; rename never ran", cut, len(data))})
			return &campaign.Fault{Data: data[:cut],
				Err: injectedf("worker crash tearing checkpoint flush %d of shard %d (attempt %d)", n, shard, attempt)}
		}
		in.record(Event{Kind: r.Kind, Shard: shard, Attempt: attempt, Cell: n,
			Detail: fmt.Sprintf("sidecar torn in place after %d of %d bytes", cut, len(data))})
		return &campaign.Fault{Data: data[:cut], Torn: true,
			Err: injectedf("worker crash tearing checkpoint sidecar of shard %d in place (attempt %d)", shard, attempt)}
	}
	return nil
}

// artifactFault fires truncate- and bit-flip-artifact rules on the
// shard artifact write. Both are silent: the worker sees success and
// the damage is caught downstream by the artifact checksum.
func (in *Injector) artifactFault(shard, attempt int, data []byte) *campaign.Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.fired || (r.Kind != KindTruncateArtifact && r.Kind != KindBitFlipArtifact) {
			continue
		}
		if r.Shard != shard || !r.matchAttempt(attempt) {
			continue
		}
		r.fired = true
		if r.Kind == KindTruncateArtifact {
			cut := int(r.src.Uint64n(uint64(len(data))))
			in.record(Event{Kind: r.Kind, Shard: shard, Attempt: attempt, Cell: -1,
				Detail: fmt.Sprintf("artifact silently truncated to %d of %d bytes", cut, len(data))})
			return &campaign.Fault{Data: data[:cut], Torn: true}
		}
		bit := r.src.Uint64n(uint64(len(data)) * 8)
		flipped := append([]byte(nil), data...)
		flipped[bit/8] ^= 1 << (bit % 8)
		in.record(Event{Kind: r.Kind, Shard: shard, Attempt: attempt, Cell: -1,
			Detail: fmt.Sprintf("bit %d of byte %d silently flipped (%d bytes)", bit%8, bit/8, len(data))})
		return &campaign.Fault{Data: flipped, Torn: true}
	}
	return nil
}

// gather fires duplicate-shard rules between worker completion and the
// merge: the source shard's artifact is copied over the target's slot.
func (in *Injector) gather(dir string, shards int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.fired || r.Kind != KindDuplicateShard {
			continue
		}
		r.fired = true
		data, err := os.ReadFile(driver.ArtifactPath(dir, r.From))
		if err != nil {
			if os.IsNotExist(err) {
				continue // source shard never finished; nothing to misdeliver
			}
			return fmt.Errorf("chaos: duplicate-shard: %w", err)
		}
		if err := os.WriteFile(driver.ArtifactPath(dir, r.Shard), data, 0o644); err != nil {
			return fmt.Errorf("chaos: duplicate-shard: %w", err)
		}
		in.record(Event{Kind: r.Kind, Shard: r.Shard, Attempt: -1, Cell: -1,
			Detail: fmt.Sprintf("shard %d's artifact delivered into shard %d's slot", r.From, r.Shard)})
	}
	return nil
}

// record appends one event; Seq is assigned canonically in Events.
// Callers hold the mutex.
func (in *Injector) record(ev Event) { in.events = append(in.events, ev) }

// Events returns the fault log in canonical order: sorted by (Shard,
// Attempt, Cell, Kind, Detail), Seq numbered after sorting. Two runs of
// the same plan against the same campaign produce identical logs.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	evs := append([]Event(nil), in.events...)
	sort.SliceStable(evs, func(a, b int) bool {
		x, y := evs[a], evs[b]
		if x.Shard != y.Shard {
			return x.Shard < y.Shard
		}
		if x.Attempt != y.Attempt {
			return x.Attempt < y.Attempt
		}
		if x.Cell != y.Cell {
			return x.Cell < y.Cell
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Detail < y.Detail
	})
	for i := range evs {
		evs[i].Seq = i
	}
	return evs
}

// Log serializes the canonical event log as JSON lines — the diffable
// fault artifact a chaos run leaves behind.
func (in *Injector) Log() ([]byte, error) {
	var b strings.Builder
	for _, ev := range in.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// injectedf builds a chaos failure wrapping driver.ErrInjected, so the
// driver can tell a simulated process death from a real error.
func injectedf(format string, args ...any) error {
	args = append(args, driver.ErrInjected)
	return fmt.Errorf("chaos: "+format+": %w", args...)
}

// ParseRules parses the -chaos-faults CLI grammar: comma-separated
// rules of the form
//
//	kind[@shard[:cell[:attempt]]]
//
// where each position is an integer or "*" (empty also works) for "let
// the seed decide". The attempt position defaults to 0 — the first
// attempt — not "*", so a plain rule fires before any retries. For
// duplicate-shard the second position names the source shard instead of
// a cell:
//
//	crash@1:2        crash shard 1 after its 2nd cell, attempt 0
//	crash            crash a seeded shard at a seeded cell
//	stall@*:3        stall a seeded shard after its 3rd cell
//	torn-flush@0:2   tear shard 0's 2nd checkpoint flush
//	duplicate-shard@2:0   deliver shard 0's artifact into shard 2's slot
//	crash@1:2:1      crash shard 1 again on its retry (attempt 1)
func ParseRules(s string) ([]Rule, error) {
	var rules []Rule
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kindStr, rest, targeted := strings.Cut(item, "@")
		r := Rule{Kind: Kind(kindStr), Shard: -1, Cell: -1, Attempt: 0, From: -1}
		if targeted {
			parts := strings.Split(rest, ":")
			if len(parts) > 3 {
				return nil, fmt.Errorf("chaos: rule %q: too many fields (want kind[@shard[:cell[:attempt]]])", item)
			}
			fields := []string{"shard", "cell", "attempt"}
			if r.Kind == KindDuplicateShard {
				fields[1] = "source shard"
			}
			vals := []*int{&r.Shard, &r.Cell, &r.Attempt}
			if r.Kind == KindDuplicateShard {
				vals[1] = &r.From
			}
			for i, p := range parts {
				p = strings.TrimSpace(p)
				if p == "" || p == "*" {
					if fields[i] == "attempt" {
						r.Attempt = -1
					}
					continue
				}
				v, err := strconv.Atoi(p)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("chaos: rule %q: %s %q must be a non-negative integer or *", item, fields[i], p)
				}
				*vals[i] = v
			}
		}
		nr, err := r.normalize()
		if err != nil {
			return nil, fmt.Errorf("chaos: rule %q: %w", item, err)
		}
		rules = append(rules, nr)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: no fault rules in %q", s)
	}
	return rules, nil
}
