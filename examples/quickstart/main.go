// Quickstart: broadcast a message through a 256-node, 128-channel radio
// network while a jammer burns a 100k-unit energy budget against it, then
// inspect what it cost everyone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"multicast"
)

func main() {
	const (
		n      = 256     // nodes (node 0 is the source)
		budget = 100_000 // Eve's energy budget T
	)

	m, err := multicast.Run(multicast.Config{
		N:         n,
		Algorithm: multicast.AlgoMultiCast,              // Figure 2: knows n, not T
		Adversary: multicast.RandomFractionJammer(0.50), // jam half the spectrum, every slot
		Budget:    budget,
		Seed:      42, // executions are deterministic per seed
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MultiCast on", n, "nodes versus a 50% random jammer with T =", budget)
	fmt.Println()
	fmt.Println("  all nodes informed by slot ", m.AllInformedSlot)
	fmt.Println("  all nodes halted by slot   ", m.Slots)
	fmt.Println("  max node energy            ", m.MaxNodeEnergy)
	fmt.Printf("  mean node energy            %.1f\n", m.MeanNodeEnergy)
	fmt.Println("  Eve spent                  ", m.EveEnergy)
	fmt.Printf("  competitive ratio           %.4f (max node cost / Eve cost)\n",
		float64(m.MaxNodeEnergy)/float64(m.EveEnergy))
	fmt.Println()

	if m.Invariants.Any() {
		fmt.Println("  !! safety invariants violated:", m.Invariants)
	} else {
		fmt.Println("  no node halted before everyone knew the message (Lemma 5.2 held)")
	}

	// The point of resource competitiveness: spending T only bought Eve a
	// delay, and each honest node paid ~√(T/n), not T.
	fmt.Println()
	fmt.Printf("Eve paid %d× more energy than the most expensive honest node.\n",
		m.EveEnergy/m.MaxNodeEnergy)
}
