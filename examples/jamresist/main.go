// Jamming resistance: sweep Eve's budget and watch the honest nodes
// bankrupt her — their cost grows like √T while hers grows like T
// (Theorem 5.4 / Definition 3.1). This is the paper's central promise:
// blocking communication costs the attacker asymptotically more than it
// costs the defenders.
//
//	go run ./examples/jamresist
package main

import (
	"fmt"
	"log"
	"math"

	"multicast"
)

func main() {
	const n = 256
	const trials = 5
	budgets := []int64{0, 10_000, 50_000, 250_000, 1_000_000}

	fmt.Println("MultiCast,", n, "nodes, full-burst jammer, mean of", trials, "trials")
	fmt.Println()
	fmt.Printf("%12s  %12s  %14s  %14s  %12s\n",
		"Eve budget", "slots", "max node cost", "cost/√(T/n)", "cost/T")
	for _, budget := range budgets {
		ms, err := multicast.RunTrials(multicast.Config{
			N:         n,
			Algorithm: multicast.AlgoMultiCast,
			Adversary: multicast.FullBurstJammer(0),
			Budget:    budget,
			Seed:      1,
		}, trials)
		if err != nil {
			log.Fatal(err)
		}
		var slots, cost float64
		for _, m := range ms {
			slots += float64(m.Slots)
			cost += float64(m.MaxNodeEnergy)
		}
		slots /= trials
		cost /= trials

		normRoot, normLin := "-", "-"
		if budget > 0 {
			normRoot = fmt.Sprintf("%.1f", cost/math.Sqrt(float64(budget)/n))
			normLin = fmt.Sprintf("%.5f", cost/float64(budget))
		}
		fmt.Printf("%12d  %12.0f  %14.0f  %14s  %12s\n", budget, slots, cost, normRoot, normLin)
	}

	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  · cost/√(T/n) stays roughly flat  → node cost follows the √(T/n) law")
	fmt.Println("  · cost/T keeps falling            → Eve pays ever more per unit of damage")
	fmt.Println("  · a jammer that wants to block the network forever needs infinite energy;")
	fmt.Println("    the defenders only need o(that). They win the war of attrition.")
}
