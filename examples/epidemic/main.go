// Epidemic: visualise the mechanism that makes multi-channel broadcast
// fast. With n/2 channels, every slot is n/2 parallel rendezvous attempts,
// so the informed population grows exponentially — an S-curve — even while
// a bursty jammer keeps knocking out most of the spectrum. The trace also
// shows the halt wave rolling through once the noise dies down.
//
//	go run ./examples/epidemic
package main

import (
	"fmt"
	"log"

	"multicast"
)

func main() {
	const n = 256

	rec := multicast.NewTraceRecorder(8) // sample every 8 slots
	m, err := multicast.Run(multicast.Config{
		N:         n,
		Algorithm: multicast.AlgoMultiCast,
		Adversary: multicast.BurstyJammer(0.8, 200, 200), // microwave-oven style interference
		Budget:    50_000,
		Seed:      9,
		Observer:  rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MultiCast, %d nodes, bursty 80%% jammer (mean burst 200 slots, T = 50k)\n\n", n)
	fmt.Print(multicast.TraceChart(72, rec.Informed, rec.Halted, rec.Jammed, rec.Traffic))
	fmt.Println()
	fmt.Println("  informed: the epidemic S-curve — exponential takeoff, then saturation at n")
	fmt.Printf("            (all %d nodes knew the message by slot %d of %d)\n", n, m.AllInformedSlot, m.Slots)
	fmt.Println("  halted:   the termination wave; it only starts once an iteration looks quiet")
	fmt.Println("  jammed:   Eve's bursts; each 'on' period costs her ~0.8·(n/2) energy per slot")
	fmt.Println("  traffic:  honest activity per slot — sparse (p·n per slot), that's the energy thrift")
	fmt.Println()
	fmt.Printf("Eve spent %d to delay a message that cost the busiest node %d energy.\n",
		m.EveEnergy, m.MaxNodeEnergy)
}
