// Limited spectrum: MultiCast wants n/2 channels, but real radios get C.
// MultiCast(C) (Figure 5) simulates each n/2-channel slot in n/(2C)
// physical slots. Sweep C and watch time trade linearly while per-node
// energy stays put (Corollary 7.1) — "the more channels we have, the
// faster we can be".
//
//	go run ./examples/spectrum
package main

import (
	"fmt"
	"log"

	"multicast"
)

func main() {
	const (
		n      = 256
		budget = 200_000
		trials = 3
	)

	fmt.Printf("MultiCast(C) on %d nodes, full-burst jammer with T = %d\n\n", n, budget)
	fmt.Printf("%9s  %12s  %10s  %14s\n", "channels", "slots", "T/C", "max node cost")

	var baseSlots float64
	for _, c := range []int{2, 4, 16, 64, 128} {
		ms, err := multicast.RunTrials(multicast.Config{
			N:         n,
			Algorithm: multicast.AlgoMultiCastC,
			Channels:  c,
			Adversary: multicast.FullBurstJammer(0),
			Budget:    budget,
			Seed:      7,
		}, trials)
		if err != nil {
			log.Fatal(err)
		}
		var slots, cost float64
		for _, m := range ms {
			slots += float64(m.Slots)
			cost += float64(m.MaxNodeEnergy)
			if m.Invariants.Any() {
				log.Fatalf("C=%d: invariant violation %+v", c, m.Invariants)
			}
		}
		slots /= trials
		cost /= trials
		if baseSlots == 0 {
			baseSlots = slots
		}
		fmt.Printf("%9d  %12.0f  %10d  %14.0f\n", c, slots, budget/int64(c), cost)
	}

	fmt.Println()
	fmt.Println("Slots fall ~linearly with C (the Ω(T/C) lower bound is matched up to a")
	fmt.Println("constant); the max node cost column barely moves — spectrum buys speed,")
	fmt.Println("not battery life, exactly as Corollary 7.1 predicts.")
}
