// Limited spectrum: MultiCast wants n/2 channels, but real radios get C.
// MultiCast(C) (Figure 5) simulates each n/2-channel slot in n/(2C)
// physical slots. Sweep C and watch time trade linearly while per-node
// energy stays put (Corollary 7.1) — "the more channels we have, the
// faster we can be".
//
// The C ladder comes from the scenario registry ("channel-ladder"), so
// this program, the E6/E12 experiment tables, and `mcast -scenario
// channel-ladder` all sweep the same points; the sweep API streams every
// (point × trial) cell without buffering and could split the same grid
// across machines with a SweepPlan Shard.
//
//	go run ./examples/spectrum
package main

import (
	"context"
	"fmt"
	"log"

	"multicast"
	"multicast/internal/runner"
)

func main() {
	const trials = 3

	scen, ok := multicast.ScenarioByName("channel-ladder")
	if !ok {
		log.Fatal("channel-ladder is not in the scenario registry")
	}
	points := multicast.ExpandScenario(scen, multicast.ScenarioOptions{Seed: 7})
	cols := make([]*runner.Collector, len(points))
	cfgs := make([]multicast.Config, len(points))
	for i, p := range points {
		cols[i] = runner.NewCollector()
		cfgs[i] = p.Config
	}
	n, budget := cfgs[0].N, cfgs[0].Budget

	fmt.Printf("MultiCast(C) on %d nodes, full-burst jammer with T = %d (scenario %s)\n\n",
		n, budget, scen.Name)
	fmt.Printf("%9s  %12s  %10s  %14s\n", "channels", "slots", "T/C", "max node cost")

	err := multicast.RunSweepContext(context.Background(), cfgs,
		multicast.SweepPlan{Trials: trials},
		func(p, t int, m multicast.Metrics) error {
			if m.Invariants.Any() {
				return fmt.Errorf("%s: invariant violation %+v", points[p].Label, m.Invariants)
			}
			return cols[p].Add(t, m)
		})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range points {
		c := int64(p.Config.Channels)
		fmt.Printf("%9d  %12.0f  %10d  %14.0f\n",
			c, cols[i].Slots().Mean, budget/c, cols[i].MaxEnergy().Mean)
	}

	fmt.Println()
	fmt.Println("Slots fall ~linearly with C (the Ω(T/C) lower bound is matched up to a")
	fmt.Println("constant); the max node cost column barely moves — spectrum buys speed,")
	fmt.Println("not battery life, exactly as Corollary 7.1 predicts.")
}
