// Limited spectrum: MultiCast wants n/2 channels, but real radios get C.
// MultiCast(C) (Figure 5) simulates each n/2-channel slot in n/(2C)
// physical slots. Sweep C and watch time trade linearly while per-node
// energy stays put (Corollary 7.1) — "the more channels we have, the
// faster we can be".
//
//	go run ./examples/spectrum
package main

import (
	"context"
	"fmt"
	"log"

	"multicast"
)

func main() {
	const (
		n      = 256
		budget = 200_000
		trials = 3
	)

	fmt.Printf("MultiCast(C) on %d nodes, full-burst jammer with T = %d\n\n", n, budget)
	fmt.Printf("%9s  %12s  %10s  %14s\n", "channels", "slots", "T/C", "max node cost")

	// The streaming trial API: metrics arrive in seed order as each trial
	// completes, so nothing is buffered no matter how many trials run —
	// the idiomatic shape for statistical campaigns. (Add a TrialPlan
	// Shard to split the same seeded batch across machines.)
	ctx := context.Background()
	for _, c := range []int{2, 4, 16, 64, 128} {
		var slots, cost float64
		err := multicast.RunTrialsContext(ctx, multicast.Config{
			N:         n,
			Algorithm: multicast.AlgoMultiCastC,
			Channels:  c,
			Adversary: multicast.FullBurstJammer(0),
			Budget:    budget,
			Seed:      7,
		}, multicast.TrialPlan{Trials: trials}, func(_ int, m multicast.Metrics) error {
			if m.Invariants.Any() {
				return fmt.Errorf("C=%d: invariant violation %+v", c, m.Invariants)
			}
			slots += float64(m.Slots)
			cost += float64(m.MaxNodeEnergy)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		slots /= trials
		cost /= trials
		fmt.Printf("%9d  %12.0f  %10d  %14.0f\n", c, slots, budget/int64(c), cost)
	}

	fmt.Println()
	fmt.Println("Slots fall ~linearly with C (the Ω(T/C) lower bound is matched up to a")
	fmt.Println("constant); the max node cost column barely moves — spectrum buys speed,")
	fmt.Println("not battery life, exactly as Corollary 7.1 predicts.")
}
