// Unknown network size: an ad-hoc deployment where nobody knows n.
// MultiCastAdv (Figure 4) guesses n phase by phase — phase (i,j) bets on
// n ≈ 2^{j+1} with 2^j channels — and uses its four step-two counters to
// certify the right guess before anyone dares to stop helping. This
// example traces the protocol's life cycle: informed → helper → halted.
//
//	go run ./examples/unknownn    (takes a minute or two: the τ = Õ(n^2α)
//	                               term of Theorem 6.10 is real work)
package main

import (
	"fmt"
	"log"

	"multicast"
)

// milestones records when each protocol stage is first reached.
type milestones struct {
	lastReport int64
}

func (t *milestones) Slot(slot int64, channels, jammed, listeners, broadcasters, informed, halted int) {
	// Report on a coarse exponential grid to keep the trace short.
	if slot < t.lastReport+t.lastReport/4+1 {
		return
	}
	t.lastReport = slot
	fmt.Printf("  slot %-10d channels=%-6d informed=%-4d halted=%d\n", slot, channels, informed, halted)
}

func main() {
	const n = 64 // the nodes do NOT know this number

	fmt.Printf("MultiCastAdv: %d nodes, none of which know n (or T)\n\n", n)

	m, err := multicast.Run(multicast.Config{
		N:         n,
		Algorithm: multicast.AlgoMultiCastAdv,
		Seed:      3,
		Observer:  &milestones{},
		MaxSlots:  1 << 27,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("life cycle (slot numbers):")
	fmt.Println("  all informed:  ", m.AllInformedSlot, " — the message spread early, in small phases")
	fmt.Println("  first helper:  ", m.FirstHelperSlot, " — a node certified the guess 2^{j+1} = n and stopped needing the message")
	fmt.Println("  first halt:    ", m.FirstHaltSlot, " — after the helper gap, with a quiet phase as evidence")
	fmt.Println("  all halted:    ", m.Slots)
	fmt.Println()
	fmt.Println("why so long after informing? Theorem 6.10's τ term: without knowing n,")
	fmt.Println("nodes must keep helping until the statistics of a phase with the correct")
	fmt.Println("guess separate from every wrong guess — that certification, not message")
	fmt.Println("delivery, dominates the jam-free runtime.")

	if m.Invariants.Any() {
		fmt.Println("!! invariant violations:", m.Invariants)
	} else {
		fmt.Println()
		fmt.Println("safety: nobody halted before everyone was informed, and nobody halted")
		fmt.Println("before everyone reached helper status (Lemmas 6.4/6.5).")
	}
}
