// Duel: the paper's headline comparison. Same network, same jammer, same
// budget — once on a single channel (Gilbert et al., SPAA 2014 shape:
// Õ(T+n) time) and once on n/2 channels (MultiCast: Õ(T/n) time). Multiple
// channels buy a ~n× speedup without giving up energy competitiveness.
//
//	go run ./examples/duel
package main

import (
	"fmt"
	"log"

	"multicast"
)

func main() {
	const (
		n      = 128
		budget = 100_000
		trials = 3
	)

	type contender struct {
		label string
		cfg   multicast.Config
	}
	contenders := []contender{
		{"single-channel [GKPPSY14]", multicast.Config{N: n, Algorithm: multicast.AlgoSingleChannel}},
		{"MultiCast (n/2 channels)", multicast.Config{N: n, Algorithm: multicast.AlgoMultiCast}},
	}

	fmt.Printf("broadcast duel: %d nodes, full-burst jammer, T = %d, %d trials\n\n", n, budget, trials)
	fmt.Printf("%-28s  %12s  %14s  %12s\n", "algorithm", "slots", "max node cost", "Eve spent")

	var slots [2]float64
	var costs [2]float64
	for i, c := range contenders {
		c.cfg.Adversary = multicast.FullBurstJammer(0)
		c.cfg.Budget = budget
		c.cfg.Seed = 11
		ms, err := multicast.RunTrials(c.cfg, trials)
		if err != nil {
			log.Fatal(err)
		}
		var eve float64
		for _, m := range ms {
			slots[i] += float64(m.Slots)
			costs[i] += float64(m.MaxNodeEnergy)
			eve += float64(m.EveEnergy)
		}
		slots[i] /= trials
		costs[i] /= trials
		eve /= trials
		fmt.Printf("%-28s  %12.0f  %14.0f  %12.0f\n", c.label, slots[i], costs[i], eve)
	}

	fmt.Println()
	fmt.Printf("time speedup from multiple channels:  %.0f×  (theory: ~n/2 = %d×)\n",
		slots[0]/slots[1], n/2)
	fmt.Printf("energy ratio (single/multi):          %.1f×  (theory: same order — both Õ(√(T/n)))\n",
		costs[0]/costs[1])
	fmt.Println()
	fmt.Println("A jammer facing one channel blocks the whole network for T slots; facing")
	fmt.Println("n/2 channels, every jammed slot costs her n/2 energy. Same budget, a")
	fmt.Println("fraction of the disruption.")
}
