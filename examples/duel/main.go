// Duel: the paper's headline comparison. Same network, same jammer, same
// budget — once on a single channel (Gilbert et al., SPAA 2014 shape:
// Õ(T+n) time) and once on n/2 channels (MultiCast: Õ(T/n) time). Multiple
// channels buy a ~n× speedup without giving up energy competitiveness.
//
// The contenders come from the scenario registry ("duel"), so this
// program, the E4 experiment table, and `mcast -scenario duel` all run
// the same seed-paired pairing through the sweep API.
//
//	go run ./examples/duel
package main

import (
	"context"
	"fmt"
	"log"

	"multicast"
	"multicast/internal/runner"
)

func main() {
	const trials = 3

	scen, ok := multicast.ScenarioByName("duel")
	if !ok {
		log.Fatal("duel is not in the scenario registry")
	}
	points := multicast.ExpandScenario(scen, multicast.ScenarioOptions{Seed: 11})
	labels := map[string]string{
		"singlechannel": "single-channel [GKPPSY14]",
		"multicast n/2": "MultiCast (n/2 channels)",
	}
	cols := make([]*runner.Collector, len(points))
	cfgs := make([]multicast.Config, len(points))
	for i, p := range points {
		cols[i] = runner.NewCollector()
		cfgs[i] = p.Config
	}
	n, budget := cfgs[0].N, cfgs[0].Budget

	fmt.Printf("broadcast duel: %d nodes, full-burst jammer, T = %d, %d trials (scenario %s)\n\n",
		n, budget, trials, scen.Name)
	fmt.Printf("%-28s  %12s  %14s  %12s\n", "algorithm", "slots", "max node cost", "Eve spent")

	err := multicast.RunSweepContext(context.Background(), cfgs,
		multicast.SweepPlan{Trials: trials},
		func(p, t int, m multicast.Metrics) error { return cols[p].Add(t, m) })
	if err != nil {
		log.Fatal(err)
	}
	var slots, costs []float64
	for i, p := range points {
		label := labels[p.Label]
		if label == "" {
			label = p.Label
		}
		slots = append(slots, cols[i].Slots().Mean)
		costs = append(costs, cols[i].MaxEnergy().Mean)
		fmt.Printf("%-28s  %12.0f  %14.0f  %12.0f\n",
			label, cols[i].Slots().Mean, cols[i].MaxEnergy().Mean, cols[i].EveEnergy().Mean)
	}

	fmt.Println()
	fmt.Printf("time speedup from multiple channels:  %.0f×  (theory: ~n/2 = %d×)\n",
		slots[0]/slots[1], n/2)
	fmt.Printf("energy ratio (single/multi):          %.1f×  (theory: same order — both Õ(√(T/n)))\n",
		costs[0]/costs[1])
	fmt.Println()
	fmt.Println("A jammer facing one channel blocks the whole network for T slots; facing")
	fmt.Println("n/2 channels, every jammed slot costs her n/2 energy. Same budget, a")
	fmt.Println("fraction of the disruption.")
}
