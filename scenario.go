package multicast

import (
	"context"

	"multicast/internal/runner"
	"multicast/internal/scenario"
	"multicast/internal/sim"
)

// Scenario is a named, parameterized workload generator from the
// scenario registry: it expands into a list of concrete workload points
// which RunSweepContext can execute — and shard across machines — as one
// deterministic sweep. Use Scenarios and ScenarioByName to enumerate the
// registry, and ExpandScenario to obtain runnable Configs.
type Scenario = scenario.Scenario

// ScenarioOptions parameterize a scenario expansion (population and
// budget overrides, base seed, quick point lists). The zero value asks
// for every scenario's defaults.
type ScenarioOptions = scenario.Options

// ScenarioPoint is one concrete workload of an expanded scenario.
type ScenarioPoint struct {
	// Label distinguishes the point within the sweep (e.g. "C=8");
	// labels are unique within a scenario.
	Label string
	// Config is the runnable workload.
	Config Config
}

// Scenarios returns every registered scenario sorted by name. The
// built-in catalog covers density spectra, channel and population
// ladders, the jammer gauntlet, the paper's α regimes, the engine
// benchmark grid, and the single-vs-multi-channel duel; see
// docs/OPERATIONS.md for the catalog table.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioByName finds one scenario (case-insensitive), e.g. "duel".
func ScenarioByName(name string) (Scenario, bool) { return scenario.Get(name) }

// ExpandScenario expands a scenario into runnable workload points.
// Expansion is pure: the result depends only on (scenario, opts), and
// every point's Config carries opts.Seed as its base seed, so two
// machines expanding the same scenario see the same sweep.
func ExpandScenario(s Scenario, opts ScenarioOptions) []ScenarioPoint {
	raw := s.Points(opts)
	pts := make([]ScenarioPoint, len(raw))
	for i, p := range raw {
		pts[i] = ScenarioPoint{
			Label: p.Label,
			Config: Config{
				N:         p.Config.N,
				Algorithm: AlgorithmKind(p.Config.Algorithm),
				Params:    p.Config.Params,
				KnownT:    p.Config.KnownT,
				Channels:  p.Config.Channels,
				Adversary: p.Config.Adversary,
				Budget:    p.Config.Budget,
				Seed:      p.Config.Seed,
				MaxSlots:  p.Config.MaxSlots,
			},
		}
	}
	return pts
}

// Describe renders the workload identity of a Config as a flat string:
// every field that determines trial outcomes, in a fixed order
// (instrumentation — Observer, Engine — is deliberately excluded; it
// must not change results). Two Configs with equal Describe strings run
// the same executions, so shard-merge tooling uses it to refuse
// combining artifacts from different campaigns.
func (cfg Config) Describe() string { return cfg.workload().Describe() }

// SweepPlan describes a multi-point sweep for RunSweepContext: Trials
// executions of every point, flattened into one global (point × trial)
// grid. Shard selects this machine's slice of that grid (global indices
// g ≡ Shard.Index mod Shard.Count, g = point·Trials + trial); the zero
// value runs the whole sweep. Workers caps the worker pool (0 =
// GOMAXPROCS).
type SweepPlan struct {
	Trials  int
	Shard   Shard
	Workers int
}

// SweepSink consumes one sweep cell's metrics. It is called from a
// single goroutine in ascending global-index order; returning an error
// aborts the sweep.
type SweepSink func(point, trial int, m Metrics) error

// RunSweepContext executes a multi-point sweep: Trials independently
// seeded executions of every point, streamed to sink. It lifts the
// trial-layer determinism contract to whole sweeps — cell (p, t) always
// runs with seed points[p].Seed + t, exactly as it would if point p ran
// alone through RunTrialsContext, and sharding only decides which
// machine executes a cell. A sweep sharded k ways and merged per point
// is therefore bit-identical to the unsharded sweep (within the summary
// accumulators' sample cap; see cmd/mcast -scenario/-merge for the
// cross-machine artifact flow and docs/OPERATIONS.md for the playbook).
func RunSweepContext(ctx context.Context, points []Config, plan SweepPlan, sink SweepSink) error {
	built := make([]sim.Config, len(points))
	for i, p := range points {
		sc, err := p.build()
		if err != nil {
			return err
		}
		built[i] = sc
	}
	return runner.RunSweep(ctx, built, runner.SweepPlan{
		Trials:  plan.Trials,
		Shard:   runner.Shard(plan.Shard),
		Workers: plan.Workers,
	}, runner.SweepSink(sink))
}
