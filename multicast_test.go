package multicast_test

import (
	"context"
	"errors"
	"testing"

	"multicast"
)

func TestRunDefaultsToMultiCast(t *testing.T) {
	m, err := multicast.Run(multicast.Config{N: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots <= 0 || m.AllInformedSlot <= 0 {
		t.Fatalf("implausible metrics %+v", m)
	}
	if m.Invariants.Any() {
		t.Fatalf("invariant violations %+v", m.Invariants)
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	if testing.Short() {
		t.Skip("Adv variants are slow")
	}
	cases := []multicast.Config{
		{N: 64, Algorithm: multicast.AlgoMultiCastCore, Budget: 5000, Adversary: multicast.FullBurstJammer(0)},
		{N: 64, Algorithm: multicast.AlgoMultiCast, Budget: 5000, Adversary: multicast.RandomFractionJammer(0.4)},
		{N: 64, Algorithm: multicast.AlgoMultiCastC, Channels: 8},
		{N: 64, Algorithm: multicast.AlgoMultiCastAdv, MaxSlots: 1 << 26},
		{N: 64, Algorithm: multicast.AlgoMultiCastAdvC, Channels: 16, MaxSlots: 1 << 26},
		{N: 64, Algorithm: multicast.AlgoSingleChannel},
	}
	for _, cfg := range cases {
		cfg.Seed = 3
		m, err := multicast.Run(cfg)
		if err != nil {
			t.Errorf("%s: %v", cfg.Algorithm, err)
			continue
		}
		if m.AllInformedSlot <= 0 {
			t.Errorf("%s: nodes never informed", cfg.Algorithm)
		}
		if m.Invariants.Any() {
			t.Errorf("%s: invariants violated: %+v", cfg.Algorithm, m.Invariants)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := multicast.Run(multicast.Config{N: 64, Algorithm: "bogus"}); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if _, err := multicast.Run(multicast.Config{N: 64, Algorithm: multicast.AlgoMultiCastC}); err == nil {
		t.Error("accepted MultiCast(C) without Channels")
	}
	if _, err := multicast.Run(multicast.Config{N: 64, Algorithm: multicast.AlgoMultiCastAdvC}); err == nil {
		t.Error("accepted MultiCastAdv(C) without Channels")
	}
	if _, err := multicast.Run(multicast.Config{N: 63}); err == nil {
		t.Error("accepted non-power-of-two n")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, k := range multicast.Algorithms() {
		got, err := multicast.ParseAlgorithm(string(k))
		if err != nil || got != k {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", k, got, err)
		}
	}
	if got, err := multicast.ParseAlgorithm("MULTICAST"); err != nil || got != multicast.AlgoMultiCast {
		t.Errorf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := multicast.ParseAlgorithm("nope"); err == nil {
		t.Error("accepted unknown name")
	}
}

func TestKnownTDefaultsToBudget(t *testing.T) {
	// MultiCastCore with KnownT unset must behave identically to
	// KnownT = Budget.
	a, err := multicast.Run(multicast.Config{
		N: 64, Algorithm: multicast.AlgoMultiCastCore,
		Adversary: multicast.FullBurstJammer(0), Budget: 4096, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := multicast.Run(multicast.Config{
		N: 64, Algorithm: multicast.AlgoMultiCastCore,
		Adversary: multicast.FullBurstJammer(0), Budget: 4096, KnownT: 4096, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("KnownT default mismatch:\n%+v\n%+v", a, b)
	}
}

func TestPaperParamsRoundTrip(t *testing.T) {
	p := multicast.PaperParams(0.1)
	if p.Alpha != 0.1 || p.StartIter != 6 {
		t.Fatalf("PaperParams wrong: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := multicast.SimParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomParams(t *testing.T) {
	// Halving the listen probability must come with a ~4× longer
	// iteration (the epidemic rate is ∝ p², and Lemma 4.1's constant a
	// absorbs 1/p²) — the preset docs call this out.
	p := multicast.SimParams()
	p.CoreP = 0.125
	p.CoreA = 4 * p.CoreA
	m, err := multicast.Run(multicast.Config{
		N: 64, Algorithm: multicast.AlgoMultiCastCore, Params: p, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.AllInformedSlot <= 0 {
		t.Fatal("custom params broke the run")
	}
	if m.Invariants.Any() {
		t.Fatalf("invariant violations with rescaled params: %+v", m.Invariants)
	}
}

// The streaming API must deliver in-order metrics whose shard-partition
// union is exactly the unsharded batch — the public face of the trial
// runner's determinism contract.
func TestRunTrialsContextShardUnion(t *testing.T) {
	cfg := multicast.Config{N: 64, Budget: 10_000, Adversary: multicast.SweepJammer(8), Seed: 17}
	const trials = 9
	want, err := multicast.RunTrials(cfg, trials)
	if err != nil {
		t.Fatal(err)
	}
	union := make(map[int]multicast.Metrics)
	for i := 0; i < 3; i++ {
		last := -1
		err := multicast.RunTrialsContext(context.Background(), cfg,
			multicast.TrialPlan{Trials: trials, Shard: multicast.Shard{Index: i, Count: 3}, Workers: i + 1},
			func(trial int, m multicast.Metrics) error {
				if trial <= last || trial%3 != i {
					t.Errorf("shard %d: trial %d out of order or off-shard (last %d)", i, trial, last)
				}
				last = trial
				union[trial] = m
				return nil
			})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	if len(union) != trials {
		t.Fatalf("shards covered %d of %d trials", len(union), trials)
	}
	for tr, m := range union {
		if m != want[tr] {
			t.Errorf("trial %d differs between sharded and unsharded runs", tr)
		}
	}
}

func TestRunTrialsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := multicast.RunTrialsContext(ctx, multicast.Config{N: 64, Seed: 1},
		multicast.TrialPlan{Trials: 4},
		func(int, multicast.Metrics) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunTrialsDeterministicPublicAPI(t *testing.T) {
	cfg := multicast.Config{N: 64, Budget: 10_000, Adversary: multicast.SweepJammer(8), Seed: 17}
	ms, err := multicast.RunTrials(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		single, err := multicast.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if single != m {
			t.Fatalf("trial %d differs from solo run", i)
		}
	}
}

func TestMaxSlotsSurfacesSentinel(t *testing.T) {
	_, err := multicast.Run(multicast.Config{
		N: 64, Algorithm: multicast.AlgoMultiCastCore,
		Adversary: multicast.FullBurstJammer(0), Budget: 1 << 40,
		MaxSlots: 500, Seed: 1,
	})
	if !errors.Is(err, multicast.ErrMaxSlots) {
		t.Fatalf("err = %v, want ErrMaxSlots", err)
	}
}

func TestPhaseTargetedJammerConstructs(t *testing.T) {
	adv := multicast.PhaseTargetedJammer(multicast.SimParams(), 0, 5, 0.9)
	if adv.Name() == "" {
		t.Fatal("empty name")
	}
	advC := multicast.PhaseTargetedJammer(multicast.SimParams(), 16, 4, 0.9)
	if advC.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	exps := multicast.Experiments()
	if len(exps) != 14 {
		t.Fatalf("Experiments() returned %d, want 14", len(exps))
	}
	if _, ok := multicast.ExperimentByID("E1"); !ok {
		t.Fatal("ExperimentByID(E1) failed")
	}
}
