package multicast

import (
	"context"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/runner"
	"multicast/internal/scenario"
	"multicast/internal/sim"
)

// Params are the algorithm constants; see SimParams and PaperParams.
type Params = core.Params

// SimParams returns constants tuned for laptop-scale simulation while
// preserving the paper's asymptotic shapes (the default).
func SimParams() Params { return core.Sim() }

// PaperParams returns the literal pseudocode constants with the given
// MultiCastAdv α ∈ (0, 1/4). Faithful to the figures, but the w.h.p.
// margins make executions enormous; prefer SimParams for experiments.
func PaperParams(alpha float64) Params { return core.Paper(alpha) }

// Metrics summarises one execution; see the field documentation in the
// simulation engine.
type Metrics = sim.Metrics

// InvariantCounts tallies safety-lemma violations (zero in correct runs).
type InvariantCounts = sim.InvariantCounts

// Observer receives per-slot trace callbacks.
type Observer = sim.Observer

// Adversary is a jammer strategy family; see the *Jammer constructors.
type Adversary = adversary.Factory

// Engine selects the slot-loop implementation; see the engine constants.
type Engine = sim.Engine

const (
	// EngineAuto (default) picks the sparse fast path when it applies.
	EngineAuto = sim.EngineAuto
	// EngineDense steps every node every slot (reference implementation).
	EngineDense = sim.EngineDense
	// EngineSparse skips slots in which no node acts. Bit-identical to
	// EngineDense for every configuration.
	EngineSparse = sim.EngineSparse
	// EngineEvent jumps a global event calendar to the next slot in which
	// any node acts, charging Eve for skipped ranges in closed form.
	// Bit-identical to EngineDense for every configuration.
	EngineEvent = sim.EngineEvent
)

// ParseEngine resolves an engine name ("auto", "dense", "sparse",
// "event").
func ParseEngine(s string) (Engine, error) { return sim.ParseEngine(s) }

// ErrMaxSlots reports that an execution hit the MaxSlots safety valve.
var ErrMaxSlots = sim.ErrMaxSlots

// AlgorithmKind selects one of the implemented protocols.
type AlgorithmKind string

const (
	// AlgoMultiCastCore is Figure 1: needs n and T, n/2 channels.
	AlgoMultiCastCore AlgorithmKind = "multicastcore"
	// AlgoMultiCast is Figure 2: needs n, n/2 channels (the default).
	AlgoMultiCast AlgorithmKind = "multicast"
	// AlgoMultiCastC is Figure 5: MultiCast on Channels physical channels.
	AlgoMultiCastC AlgorithmKind = "multicast-c"
	// AlgoMultiCastAdv is Figure 4: needs neither n nor T.
	AlgoMultiCastAdv AlgorithmKind = "multicastadv"
	// AlgoMultiCastAdvC is Figure 6: MultiCastAdv cut off at Channels.
	AlgoMultiCastAdvC AlgorithmKind = "multicastadv-c"
	// AlgoSingleChannel is the SPAA 2014 single-channel baseline.
	AlgoSingleChannel AlgorithmKind = "singlechannel"
)

// Algorithms lists every selectable kind. The canonical list lives in
// internal/scenario, which the workload registry shares.
func Algorithms() []AlgorithmKind {
	names := scenario.AlgorithmNames()
	kinds := make([]AlgorithmKind, len(names))
	for i, n := range names {
		kinds[i] = AlgorithmKind(n)
	}
	return kinds
}

// ParseAlgorithm resolves a name (case-insensitive) to an AlgorithmKind.
func ParseAlgorithm(s string) (AlgorithmKind, error) {
	name, err := scenario.NormalizeAlgorithm(s)
	return AlgorithmKind(name), err
}

// Config describes an execution.
type Config struct {
	// N is the number of nodes (a power of two ≥ 2; node 0 is the source).
	N int
	// Algorithm picks the protocol; empty means AlgoMultiCast.
	Algorithm AlgorithmKind
	// Params are the algorithm constants; the zero value means SimParams.
	Params Params
	// KnownT is the T input of MultiCastCore (ignored by the others);
	// the paper sets it to Eve's budget. Defaults to Budget.
	KnownT int64
	// Channels is the physical channel count for the (C) variants.
	Channels int
	// Adversary is Eve's strategy; nil means no jamming.
	Adversary Adversary
	// Budget is Eve's energy budget T.
	Budget int64
	// Seed determines all randomness; same seed ⇒ identical execution.
	Seed uint64
	// MaxSlots aborts runaway executions (0 = engine default).
	MaxSlots int64
	// Observer, if set, receives per-slot callbacks (slows the run).
	Observer Observer
	// Engine selects the slot-loop implementation (default: EngineAuto).
	Engine Engine
	// NodeWorkers partitions each slot's node stepping across this many
	// goroutines (0 or 1: serial). Results are bit-identical for every
	// worker count; worth it only when many nodes act per slot (large N
	// or the dense engine).
	NodeWorkers int
}

// workload converts the public Config to the internal workload
// description shared with the scenario registry.
func (cfg Config) workload() scenario.Config {
	return scenario.Config{
		N:         cfg.N,
		Algorithm: string(cfg.Algorithm),
		Params:    cfg.Params,
		KnownT:    cfg.KnownT,
		Channels:  cfg.Channels,
		Adversary: cfg.Adversary,
		Budget:    cfg.Budget,
		Seed:      cfg.Seed,
		MaxSlots:  cfg.MaxSlots,
	}
}

// build resolves the Config into an engine config. Workload resolution
// (algorithm switch, parameter defaults) lives in internal/scenario so
// the public API and the scenario registry cannot drift; only the
// instrumentation knobs (Observer, Engine) are attached here.
func (cfg Config) build() (sim.Config, error) {
	sc, err := cfg.workload().Build()
	if err != nil {
		return sim.Config{}, err
	}
	sc.Observer = cfg.Observer
	sc.Engine = cfg.Engine
	sc.NodeWorkers = cfg.NodeWorkers
	return sc, nil
}

// Run executes one broadcast to completion and returns its metrics.
func Run(cfg Config) (Metrics, error) {
	sc, err := cfg.build()
	if err != nil {
		return Metrics{}, err
	}
	return sim.Run(sc)
}

// Shard names one slice of a trial batch: Index of Count machines
// (the zero value means unsharded). Shard i of k runs exactly the trials
// t ≡ i (mod k); because trial t always uses seed Seed+t, the union of
// any shard partition is bit-identical to the unsharded batch, whatever
// the worker counts or machine boundaries.
type Shard struct {
	Index int
	Count int
}

// TrialPlan describes a batch of trials for RunTrialsContext.
type TrialPlan struct {
	// Trials is the total batch size across all shards; trial t runs
	// with seed Config.Seed + t.
	Trials int
	// Shard selects this machine's slice (zero value: the whole batch).
	Shard Shard
	// Workers caps the trial worker pool; 0 means GOMAXPROCS.
	Workers int
}

// TrialSink consumes one trial's metrics. RunTrialsContext calls it from
// a single goroutine in ascending trial order; returning an error aborts
// the batch.
type TrialSink func(trial int, m Metrics) error

// RunTrialsContext streams the metrics of independently seeded trials
// (seed Seed+t for trial t) to sink in ascending trial order, running up
// to Workers executions in parallel. Cancelling the context interrupts
// in-flight executions and returns promptly; a trial failure or sink
// error likewise aborts the batch without draining the queue (the error
// returned is the first in trial order). Memory is O(workers), so batch
// sizes are bounded by patience, not RAM; shards of one batch run on
// separate machines and their summaries merge exactly (see cmd/mcast
// -shard/-merge).
func RunTrialsContext(ctx context.Context, cfg Config, plan TrialPlan, sink TrialSink) error {
	sc, err := cfg.build()
	if err != nil {
		return err
	}
	return runner.Run(ctx, sc, runner.Plan{
		Trials:  plan.Trials,
		Shard:   runner.Shard(plan.Shard),
		Workers: plan.Workers,
	}, runner.Sink(sink))
}

// RunTrials executes trials independent seeds (Seed, Seed+1, …) in
// parallel and returns per-trial metrics in seed order. It is a buffered
// convenience wrapper over RunTrialsContext; prefer the streaming form
// for large batches.
func RunTrials(cfg Config, trials int) ([]Metrics, error) {
	ms := make([]Metrics, 0, max(trials, 0))
	err := RunTrialsContext(context.Background(), cfg, TrialPlan{Trials: trials},
		func(_ int, m Metrics) error {
			ms = append(ms, m)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return ms, nil
}
