module multicast

go 1.24
