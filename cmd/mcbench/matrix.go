package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"multicast"
)

// matrixWorkload is one row of the engine benchmark matrix: an algorithm
// at a given schedule density. Density is what separates the engines —
// the sparse wake-list engine wins exactly when few nodes act per slot —
// so each algorithm appears at the densities that matter for it.
type matrixWorkload struct {
	name    string
	density string // human label: mean fraction of nodes acting per slot
	cfg     multicast.Config
}

// matrixWorkloads builds the benchmark rows. Workloads are fixed (like
// benchScenario): comparable across PRs, jammed at half spectrum, n=128.
func matrixWorkloads() []matrixWorkload {
	const n = 128
	base := multicast.Config{
		N:         n,
		Adversary: multicast.FractionJammer(0.5),
		Budget:    100_000,
	}
	core := func(p, a float64) multicast.Config {
		params := multicast.SimParams()
		params.CoreP = p
		params.CoreA = a
		c := base
		c.Algorithm = multicast.AlgoMultiCastCore
		c.Params = params
		return c
	}
	mc := base
	mc.Algorithm = multicast.AlgoMultiCast
	mcC := base
	mcC.Algorithm = multicast.AlgoMultiCastC
	mcC.Channels = 8
	single := base
	single.Algorithm = multicast.AlgoSingleChannel
	single.Budget = 20_000 // one channel: T/C is the whole delay
	return []matrixWorkload{
		{"multicastcore", "p=1/8", core(1.0/8, 80)},
		{"multicastcore", "p=1/64", core(1.0/64, 640)},
		{"multicast", "schedule", mc},
		{"multicast-c C=8", "schedule", mcC},
		{"singlechannel", "schedule", single},
	}
}

const (
	matrixTrials      = 8
	matrixTrialsQuick = 2
)

// matrixCell is one (workload, engine) measurement.
type matrixCell struct {
	Slots       int64   `json:"slots"`
	Seconds     float64 `json:"seconds"`
	SlotsPerSec float64 `json:"slots_per_sec"`
}

// matrixRow is one workload's measurements across engines.
type matrixRow struct {
	Algorithm string     `json:"algorithm"`
	Density   string     `json:"density"`
	Trials    int        `json:"trials"`
	Dense     matrixCell `json:"dense"`
	Sparse    matrixCell `json:"sparse"`
	Speedup   float64    `json:"speedup"`
}

// runMatrixCell measures one workload on one engine. Trials run through
// the trial runner with a single worker, so the measurement is serial
// and comparable while exercising the production execution path.
func runMatrixCell(cfg multicast.Config, engine multicast.Engine, trials int) (matrixCell, error) {
	cfg.Engine = engine
	cfg.Seed = 1
	var cell matrixCell
	start := time.Now()
	err := multicast.RunTrialsContext(context.Background(), cfg,
		multicast.TrialPlan{Trials: trials, Workers: 1},
		func(_ int, m multicast.Metrics) error {
			cell.Slots += m.Slots
			return nil
		})
	if err != nil {
		return cell, err
	}
	cell.Seconds = time.Since(start).Seconds()
	cell.SlotsPerSec = float64(cell.Slots) / cell.Seconds
	return cell, nil
}

// runMatrix prints the algorithms × engines × densities benchmark table
// and optionally writes the rows as JSON.
func runMatrix(outPath string, quick bool) error {
	trials := matrixTrials
	if quick {
		trials = matrixTrialsQuick
	}
	rows := make([]matrixRow, 0, len(matrixWorkloads()))
	for _, w := range matrixWorkloads() {
		dense, err := runMatrixCell(w.cfg, multicast.EngineDense, trials)
		if err != nil {
			return fmt.Errorf("%s %s dense: %w", w.name, w.density, err)
		}
		sparse, err := runMatrixCell(w.cfg, multicast.EngineSparse, trials)
		if err != nil {
			return fmt.Errorf("%s %s sparse: %w", w.name, w.density, err)
		}
		// The matrix doubles as an engine-parity check on every workload.
		if dense.Slots != sparse.Slots {
			return fmt.Errorf("%s %s: engine divergence — dense %d slots, sparse %d",
				w.name, w.density, dense.Slots, sparse.Slots)
		}
		rows = append(rows, matrixRow{
			Algorithm: w.name, Density: w.density, Trials: trials,
			Dense: dense, Sparse: sparse,
			Speedup: sparse.SlotsPerSec / dense.SlotsPerSec,
		})
	}

	fmt.Printf("engine benchmark matrix (n=128, 50%% spectrum jammed, %d trials/cell, serial)\n\n", trials)
	fmt.Printf("%-16s  %-9s  %12s  %14s  %14s  %8s\n",
		"algorithm", "density", "slots", "dense slots/s", "sparse slots/s", "speedup")
	fmt.Println(strings.Repeat("-", 82))
	for _, r := range rows {
		fmt.Printf("%-16s  %-9s  %12d  %14.0f  %14.0f  %7.2fx\n",
			r.Algorithm, r.Density, r.Dense.Slots, r.Dense.SlotsPerSec, r.Sparse.SlotsPerSec, r.Speedup)
	}
	fmt.Println("\nengines agreed on total slots for every workload (bit-identity holds)")

	if outPath != "" {
		data, err := json.MarshalIndent(map[string]any{
			"benchmark": "sim-engine-matrix",
			"generated": time.Now().UTC().Format(time.RFC3339),
			"rows":      rows,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("matrix written to %s\n", outPath)
	}
	return nil
}
