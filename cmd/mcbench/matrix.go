package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"multicast"
)

// matrixWorkload is one row of the engine benchmark matrix: an algorithm
// at a given schedule density. Density is what separates the engines —
// the sparse wake-list engine wins exactly when few nodes act per slot —
// so each algorithm appears at the densities that matter for it.
type matrixWorkload struct {
	name string
	cfg  multicast.Config
}

// matrixWorkloads enumerates the benchmark rows through the scenario
// registry's fixed "engine-matrix" workload grid (n=128, half spectrum
// jammed — comparable across PRs; the registry ignores overrides for
// it). The same points are reachable as `mcast -scenario engine-matrix`.
func matrixWorkloads() []matrixWorkload {
	scen, ok := multicast.ScenarioByName("engine-matrix")
	if !ok {
		panic("mcbench: engine-matrix scenario missing from the registry")
	}
	points := multicast.ExpandScenario(scen, multicast.ScenarioOptions{Seed: 1})
	rows := make([]matrixWorkload, len(points))
	for i, p := range points {
		rows[i] = matrixWorkload{name: p.Label, cfg: p.Config}
	}
	return rows
}

const (
	matrixTrials      = 8
	matrixTrialsQuick = 2
)

// matrixCell is one (workload, engine) measurement.
type matrixCell struct {
	Slots       int64   `json:"slots"`
	Seconds     float64 `json:"seconds"`
	SlotsPerSec float64 `json:"slots_per_sec"`
}

// matrixRow is one workload's measurements across engines. Speedups are
// relative to the dense reference loop.
type matrixRow struct {
	Workload     string     `json:"workload"`
	Trials       int        `json:"trials"`
	Dense        matrixCell `json:"dense"`
	Sparse       matrixCell `json:"sparse"`
	Event        matrixCell `json:"event"`
	Speedup      float64    `json:"speedup"`
	EventSpeedup float64    `json:"event_speedup"`
}

// runMatrixCell measures one workload on one engine. Trials run through
// the trial runner with a single worker, so the measurement is serial
// and comparable while exercising the production execution path.
func runMatrixCell(cfg multicast.Config, engine multicast.Engine, trials int) (matrixCell, error) {
	cfg.Engine = engine
	var cell matrixCell
	start := time.Now()
	err := multicast.RunTrialsContext(context.Background(), cfg,
		multicast.TrialPlan{Trials: trials, Workers: 1},
		func(_ int, m multicast.Metrics) error {
			cell.Slots += m.Slots
			return nil
		})
	if err != nil {
		return cell, err
	}
	cell.Seconds = time.Since(start).Seconds()
	cell.SlotsPerSec = float64(cell.Slots) / cell.Seconds
	return cell, nil
}

// runMatrix prints the algorithms × engines × densities benchmark table
// and optionally writes the rows as JSON.
func runMatrix(outPath string, quick bool) error {
	trials := matrixTrials
	if quick {
		trials = matrixTrialsQuick
	}
	rows := make([]matrixRow, 0, len(matrixWorkloads()))
	for _, w := range matrixWorkloads() {
		dense, err := runMatrixCell(w.cfg, multicast.EngineDense, trials)
		if err != nil {
			return fmt.Errorf("%s dense: %w", w.name, err)
		}
		sparse, err := runMatrixCell(w.cfg, multicast.EngineSparse, trials)
		if err != nil {
			return fmt.Errorf("%s sparse: %w", w.name, err)
		}
		event, err := runMatrixCell(w.cfg, multicast.EngineEvent, trials)
		if err != nil {
			return fmt.Errorf("%s event: %w", w.name, err)
		}
		// The matrix doubles as an engine-parity check on every workload.
		if dense.Slots != sparse.Slots || dense.Slots != event.Slots {
			return fmt.Errorf("%s: engine divergence — dense %d slots, sparse %d, event %d",
				w.name, dense.Slots, sparse.Slots, event.Slots)
		}
		rows = append(rows, matrixRow{
			Workload: w.name, Trials: trials,
			Dense: dense, Sparse: sparse, Event: event,
			Speedup:      sparse.SlotsPerSec / dense.SlotsPerSec,
			EventSpeedup: event.SlotsPerSec / dense.SlotsPerSec,
		})
	}

	fmt.Printf("engine benchmark matrix (scenario engine-matrix: n=128, 50%% spectrum jammed, %d trials/cell, serial)\n\n", trials)
	fmt.Printf("%-22s  %12s  %14s  %14s  %8s  %14s  %8s\n",
		"workload", "slots", "dense slots/s", "sparse slots/s", "speedup", "event slots/s", "speedup")
	fmt.Println(strings.Repeat("-", 104))
	for _, r := range rows {
		fmt.Printf("%-22s  %12d  %14.0f  %14.0f  %7.2fx  %14.0f  %7.2fx\n",
			r.Workload, r.Dense.Slots, r.Dense.SlotsPerSec, r.Sparse.SlotsPerSec, r.Speedup,
			r.Event.SlotsPerSec, r.EventSpeedup)
	}
	fmt.Println("\nengines agreed on total slots for every workload (bit-identity holds)")

	if outPath != "" {
		data, err := json.MarshalIndent(map[string]any{
			"benchmark": "sim-engine-matrix",
			"generated": time.Now().UTC().Format(time.RFC3339),
			"rows":      rows,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("matrix written to %s\n", outPath)
	}
	return nil
}
