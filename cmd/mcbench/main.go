// Command mcbench regenerates the reproduction experiments (E1–E14): for
// every theorem/lemma of the paper it runs the corresponding workload and
// prints the measured table plus fitted scaling exponents.
//
// Usage:
//
//	mcbench -list             enumerate experiments
//	mcbench                   run everything (can take ~10–20 minutes)
//	mcbench -run E3,E9        run a subset
//	mcbench -quick            trimmed sweeps (~2 minutes)
//	mcbench -markdown         emit GitHub-flavoured markdown (for EXPERIMENTS.md)
//	mcbench -bench-sim BENCH_sim.json           measure dense vs sparse engines
//	mcbench -bench-sim out.json -quick          engine-benchmark smoke run (CI)
//	mcbench -check BENCH_sim.json -quick        perf-regression gate against the committed report
//	mcbench -check BENCH_sim.json -tolerance 0.85   …with an explicit regression floor
//	mcbench -matrix                             engine matrix: algorithms × engines × densities
//	mcbench -matrix -matrix-out matrix.json     …and write the rows as JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"multicast"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		run       = flag.String("run", "", "comma-separated experiment IDs (empty = all)")
		quick     = flag.Bool("quick", false, "trimmed parameter sweeps")
		trials    = flag.Int("trials", 0, "override trials per data point (0 = per-experiment default)")
		seed      = flag.Uint64("seed", 1, "base random seed")
		markdown  = flag.Bool("markdown", false, "emit markdown tables")
		csv       = flag.Bool("csv", false, "emit CSV tables (no claims/notes)")
		benchSim  = flag.String("bench-sim", "", "measure dense vs sparse engine throughput and write the JSON report to this path (e.g. BENCH_sim.json), then exit")
		parallel  = flag.Int("parallel", 0, "with -bench-sim: NodeWorkers fan-out width of the parallel benchmark entry (0 = GOMAXPROCS, min 2)")
		checkPath = flag.String("check", "", "re-measure the engine scenarios and fail if they regressed past -tolerance of this committed report (the CI perf gate), then exit")
		tolerance = flag.Float64("tolerance", 0.85, "with -check: fraction of each committed ratio head must retain (>1 demands head be faster — used to smoke-test the gate)")
		matrix    = flag.Bool("matrix", false, "run the engine benchmark matrix (algorithms × engines × densities) and exit")
		matOut    = flag.String("matrix-out", "", "with -matrix: also write the rows as JSON to this path")
		engine    = flag.String("engine", "auto", "slot-loop engine for experiments: auto, dense, or sparse (results are identical; dense is the reference loop)")
	)
	flag.Parse()

	eng, err := multicast.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(1)
	}

	if *benchSim != "" {
		if err := runEngineBench(*benchSim, *quick, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: engine benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *checkPath != "" {
		if err := runEngineCheck(*checkPath, *quick, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *matrix {
		if err := runMatrix(*matOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: engine matrix failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	all := multicast.Experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var selected []multicast.Experiment
	if *run == "" {
		selected = all
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := multicast.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "mcbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	cfg := multicast.ExperimentConfig{Trials: *trials, Seed: *seed, Quick: *quick, Engine: eng}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		switch {
		case *csv:
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, res.CSV())
		case *markdown:
			fmt.Println(res.Markdown())
		default:
			fmt.Println(res.Render())
		}
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
