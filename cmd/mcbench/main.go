// Command mcbench regenerates the reproduction experiments (E1–E14): for
// every theorem/lemma of the paper it runs the corresponding workload and
// prints the measured table plus fitted scaling exponents.
//
// Usage:
//
//	mcbench -list             enumerate experiments
//	mcbench                   run everything (can take ~10–20 minutes)
//	mcbench -run E3,E9        run a subset
//	mcbench -quick            trimmed sweeps (~2 minutes)
//	mcbench -markdown         emit GitHub-flavoured markdown (for EXPERIMENTS.md)
//	mcbench -bench-sim BENCH_sim.json           measure the dense/sparse/event engines
//	mcbench -bench-sim out.json -quick          engine-benchmark smoke run (CI)
//	mcbench -check BENCH_sim.json -quick        perf-regression gate against the committed report
//	mcbench -check BENCH_sim.json -tolerance 0.85   …with an explicit regression floor
//	mcbench -matrix                             engine matrix: algorithms × engines × densities
//	mcbench -matrix -matrix-out matrix.json     …and write the rows as JSON
//	mcbench -run E3 -cpuprofile cpu.pprof       profile a run (see docs/PERFORMANCE.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"multicast"
)

func main() {
	os.Exit(run())
}

// run is main's body behind an exit code, so the deferred profile
// writers (-cpuprofile/-memprofile) flush on every path — os.Exit in
// main would skip them.
func run() int {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		runIDs     = flag.String("run", "", "comma-separated experiment IDs (empty = all)")
		quick      = flag.Bool("quick", false, "trimmed parameter sweeps")
		trials     = flag.Int("trials", 0, "override trials per data point (0 = per-experiment default)")
		seed       = flag.Uint64("seed", 1, "base random seed")
		markdown   = flag.Bool("markdown", false, "emit markdown tables")
		csv        = flag.Bool("csv", false, "emit CSV tables (no claims/notes)")
		benchSim   = flag.String("bench-sim", "", "measure dense/sparse/event engine throughput and write the JSON report to this path (e.g. BENCH_sim.json), then exit")
		parallel   = flag.Int("parallel", 0, "with -bench-sim: NodeWorkers fan-out width of the parallel benchmark entry (0 = GOMAXPROCS, min 2)")
		checkPath  = flag.String("check", "", "re-measure the engine scenarios and fail if they regressed past -tolerance of this committed report (the CI perf gate), then exit")
		tolerance  = flag.Float64("tolerance", 0.85, "with -check: fraction of each committed ratio head must retain (>1 demands head be faster — used to smoke-test the gate)")
		matrix     = flag.Bool("matrix", false, "run the engine benchmark matrix (algorithms × engines × densities) and exit")
		matOut     = flag.String("matrix-out", "", "with -matrix: also write the rows as JSON to this path")
		engine     = flag.String("engine", "auto", "slot-loop engine for experiments: auto, dense, sparse, or event (results are identical; dense is the reference loop)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit (inspect with go tool pprof)")
	)
	flag.Parse()

	eng, err := multicast.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreached garbage so the profile shows live + cumulative allocs
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: -memprofile: %v\n", err)
			}
		}()
	}

	if *benchSim != "" {
		if err := runEngineBench(*benchSim, *quick, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: engine benchmark failed: %v\n", err)
			return 1
		}
		return 0
	}
	if *checkPath != "" {
		if err := runEngineCheck(*checkPath, *quick, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
			return 1
		}
		return 0
	}
	if *matrix {
		if err := runMatrix(*matOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: engine matrix failed: %v\n", err)
			return 1
		}
		return 0
	}

	all := multicast.Experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}

	var selected []multicast.Experiment
	if *runIDs == "" {
		selected = all
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := multicast.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "mcbench: unknown experiment %q (use -list)\n", id)
				return 1
			}
			selected = append(selected, e)
		}
	}

	cfg := multicast.ExperimentConfig{Trials: *trials, Seed: *seed, Quick: *quick, Engine: eng}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		switch {
		case *csv:
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, res.CSV())
		case *markdown:
			fmt.Println(res.Markdown())
		default:
			fmt.Println(res.Render())
		}
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return 1
	}
	return 0
}
