package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"multicast"
)

// runEngineCheck is the CI perf-regression gate: it re-measures the
// frozen engine scenarios and compares them against a committed
// BENCH_sim.json, failing when head has regressed past the tolerance.
//
// The checks are chosen to be machine-portable — CI runners and dev
// boxes differ, so raw slots/s against a committed absolute would gate
// on hardware, not code:
//
//   - speedup ratios (sparse slots/s ÷ dense, event slots/s ÷ dense)
//     must stay within tolerance of the committed ratios — all engines
//     run on the same box in the same process, so the ratio cancels the
//     hardware out and catches fast-path regressions;
//   - allocs/slot per engine must not grow by more than half an
//     allocation — allocation counts are deterministic per workload,
//     hardware-independent, and the first thing accidental per-slot
//     garbage moves;
//   - the parallel (NodeWorkers) speedup ratio is compared the same
//     way, but only when this machine's GOMAXPROCS matches the
//     committed report's — a fan-out measured on k cores says nothing
//     about one measured on a different k.
//
// A check that cannot run prints an explicit `SKIP (reason)` line and
// is counted in the exit summary, so a gate that quietly measured
// nothing is visible in the CI log.
//
// Absolute throughput is still printed for context. tolerance is the
// fraction of the committed ratio head must retain (0.85 = within 15%);
// raising it above 1 demands head be faster than the baseline, which is
// how the gate itself is smoke-tested.
func runEngineCheck(path string, quick bool, tolerance float64) error {
	if tolerance <= 0 {
		return fmt.Errorf("-tolerance %v: must be positive", tolerance)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed benchReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if committed.Dense.SlotsPerSec <= 0 || committed.Sparse.SlotsPerSec <= 0 {
		return fmt.Errorf("%s: not an engine benchmark report (missing dense/sparse throughput)", path)
	}

	trials := uint64(benchTrials)
	ptrials := uint64(benchParallelTrials)
	if quick {
		trials = benchTrialsQuick
		ptrials = benchParallelTrialsQuick
	}
	// Warm-up, as in the generator, so lazy one-time costs don't skew the
	// dense leg of the ratio.
	if _, err := runEngine(benchScenario(), multicast.EngineDense, 1, trials); err != nil {
		return err
	}
	dense, err := runEngine(benchScenario(), multicast.EngineDense, 1, trials)
	if err != nil {
		return err
	}
	sparse, err := runEngine(benchScenario(), multicast.EngineSparse, 1, trials)
	if err != nil {
		return err
	}

	var failures []string
	var skipped int
	check := func(name string, got, committedV, floor float64, pass bool) {
		status := "ok"
		if !pass {
			status = "FAIL"
			failures = append(failures, name)
		}
		fmt.Printf("%-22s measured %.3f  committed %.3f  floor %.3f  %s\n",
			name, got, committedV, floor, status)
	}
	// skip logs an explicitly skipped check; skips are counted into the
	// exit summary so a gate that silently measured nothing is visible.
	skip := func(name, reason string) {
		skipped++
		fmt.Printf("%-22s SKIP (%s)\n", name, reason)
	}

	speedup := sparse.SlotsPerSec / dense.SlotsPerSec
	check("speedup sparse/dense", speedup, committed.Speedup,
		tolerance*committed.Speedup, speedup >= tolerance*committed.Speedup)

	var event engineResult
	if committed.Event == nil || committed.EventSpeedup <= 0 {
		skip("speedup event/dense", "committed report predates the event engine")
	} else {
		event, err = runEngine(benchScenario(), multicast.EngineEvent, 1, trials)
		if err != nil {
			return err
		}
		check("speedup event/dense", event.SlotsPerSec/dense.SlotsPerSec, committed.EventSpeedup,
			tolerance*committed.EventSpeedup, event.SlotsPerSec/dense.SlotsPerSec >= tolerance*committed.EventSpeedup)
	}

	allocChecks := []struct {
		name      string
		got, base float64
	}{
		{"allocs/slot dense", dense.AllocsPerSlot, committed.Dense.AllocsPerSlot},
		{"allocs/slot sparse", sparse.AllocsPerSlot, committed.Sparse.AllocsPerSlot},
	}
	if committed.Event != nil && event.TrialsPassed > 0 {
		allocChecks = append(allocChecks, struct {
			name      string
			got, base float64
		}{"allocs/slot event", event.AllocsPerSlot, committed.Event.AllocsPerSlot})
	}
	for _, c := range allocChecks {
		if c.base == 0 && c.got > 0 {
			// A report generated before allocs/slot existed: nothing to
			// compare, say so rather than silently passing.
			skip(c.name, fmt.Sprintf("measured %.3f but committed report has no alloc baseline", c.got))
			continue
		}
		check(c.name, c.got, c.base, c.base+0.5, c.got <= c.base+0.5)
	}

	if committed.Parallel != nil && committed.ParallelBaseline != nil && committed.ParallelSpeedup > 0 {
		// Measure the fan-out legs unconditionally: allocation counts are
		// deterministic per (workload, fan-out width), so the parallel
		// allocs/slot gates on every machine — the committed worker count
		// keeps the widths comparable — even where the speedup ratio
		// below must be skipped.
		workers := committed.ParallelWorkers
		if workers < 2 {
			workers = resolveParallelWorkers(0)
		}
		pbase, err := runEngine(benchParallelScenario(), multicast.EngineDense, 1, ptrials)
		if err != nil {
			return err
		}
		ppar, err := runEngine(benchParallelScenario(), multicast.EngineDense, workers, ptrials)
		if err != nil {
			return err
		}
		for _, c := range []struct {
			name      string
			got, base float64
		}{
			{"allocs/slot par-base", pbase.AllocsPerSlot, committed.ParallelBaseline.AllocsPerSlot},
			{"allocs/slot parallel", ppar.AllocsPerSlot, committed.Parallel.AllocsPerSlot},
		} {
			if c.base == 0 && c.got > 0 {
				skip(c.name, fmt.Sprintf("measured %.3f but committed report has no alloc baseline", c.got))
				continue
			}
			check(c.name, c.got, c.base, c.base+0.5, c.got <= c.base+0.5)
		}
		if g := runtime.GOMAXPROCS(0); g != committed.GOMAXPROCS {
			// Fan-out ratios are not comparable across core counts.
			skip("parallel speedup", fmt.Sprintf("gomaxprocs %d != %d", g, committed.GOMAXPROCS))
		} else {
			pspeed := ppar.SlotsPerSec / pbase.SlotsPerSec
			check("parallel speedup", pspeed, committed.ParallelSpeedup,
				tolerance*committed.ParallelSpeedup, pspeed >= tolerance*committed.ParallelSpeedup)
		}
	}

	fmt.Printf("context: dense %.0f slots/s (committed %.0f), sparse %.0f slots/s (committed %.0f)\n",
		dense.SlotsPerSec, committed.Dense.SlotsPerSec, sparse.SlotsPerSec, committed.Sparse.SlotsPerSec)
	if committed.Event != nil && event.TrialsPassed > 0 {
		fmt.Printf("context: event %.0f slots/s (committed %.0f)\n",
			event.SlotsPerSec, committed.Event.SlotsPerSec)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate: %d check(s) regressed past tolerance %.2f (%d skipped): %v",
			len(failures), tolerance, skipped, failures)
	}
	fmt.Printf("perf gate: all checks within tolerance %.2f of %s (%d skipped)\n", tolerance, path, skipped)
	return nil
}
