package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"multicast"
)

// benchScenario is the fixed engine benchmark: MultiCastCore with the
// paper's own listen probability 1/64 on 128 nodes — a low-density
// workload in which ~4 of 128 nodes act per slot, the regime the sparse
// engine exists for — under a half-spectrum block jammer. Changing this
// scenario breaks the perf trajectory across PRs; add new scenarios
// instead of editing this one.
func benchScenario() multicast.Config {
	params := multicast.SimParams()
	params.CoreP = 1.0 / 64 // the paper's coin ← rnd(1,64)
	params.CoreA = 640      // keep R·CoreP (and so the halt threshold) at the Sim() scale
	return multicast.Config{
		N:         128,
		Algorithm: multicast.AlgoMultiCastCore,
		Params:    params,
		Adversary: multicast.FractionJammer(0.5),
		Budget:    200_000,
	}
}

// benchTrials is sized so each engine measures over ≥ 1s of work; short
// windows made the reported ratio noisy. Quick mode (-quick) trims it to
// a smoke test: CI uses it to prove the benchmark plumbing still runs
// and the engines still agree, not to measure a trustworthy ratio.
const (
	benchTrials      = 25
	benchTrialsQuick = 3
)

// engineResult is one engine's measurement.
type engineResult struct {
	Engine       string  `json:"engine"`
	Slots        int64   `json:"slots"`
	Seconds      float64 `json:"seconds"`
	SlotsPerSec  float64 `json:"slots_per_sec"`
	MaxNodeCost  int64   `json:"max_node_energy"`
	EveCost      int64   `json:"eve_energy"`
	TrialsPassed int     `json:"trials"`
}

// benchReport is the BENCH_sim.json schema.
type benchReport struct {
	Benchmark  string         `json:"benchmark"`
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scenario   map[string]any `json:"scenario"`
	Dense      engineResult   `json:"dense"`
	Sparse     engineResult   `json:"sparse"`
	Speedup    float64        `json:"speedup"`
}

// runEngine executes the scenario's trials serially on one engine so the
// two measurements are comparable and unaffected by trial parallelism.
func runEngine(engine multicast.Engine, trials uint64) (engineResult, error) {
	cfg := benchScenario()
	cfg.Engine = engine
	res := engineResult{Engine: engine.String()}
	start := time.Now()
	for seed := uint64(1); seed <= trials; seed++ {
		cfg.Seed = seed
		m, err := multicast.Run(cfg)
		if err != nil {
			return res, fmt.Errorf("engine %v seed %d: %w", engine, seed, err)
		}
		res.Slots += m.Slots
		if m.MaxNodeEnergy > res.MaxNodeCost {
			res.MaxNodeCost = m.MaxNodeEnergy
		}
		res.EveCost += m.EveEnergy
		res.TrialsPassed++
	}
	res.Seconds = time.Since(start).Seconds()
	res.SlotsPerSec = float64(res.Slots) / res.Seconds
	return res, nil
}

// runEngineBench measures dense vs sparse slots/sec on the fixed scenario
// and writes the JSON report to path.
func runEngineBench(path string, quick bool) error {
	trials := uint64(benchTrials)
	if quick {
		trials = benchTrialsQuick
	}
	scenario := benchScenario()
	// Warm-up pass so one-time costs (page faults, lazy allocations) hit
	// neither engine's measurement.
	if _, err := runEngine(multicast.EngineDense, trials); err != nil {
		return err
	}
	dense, err := runEngine(multicast.EngineDense, trials)
	if err != nil {
		return err
	}
	sparse, err := runEngine(multicast.EngineSparse, trials)
	if err != nil {
		return err
	}
	if dense.Slots != sparse.Slots || dense.EveCost != sparse.EveCost {
		return fmt.Errorf("engine divergence: dense ran %d slots (Eve %d), sparse %d (Eve %d)",
			dense.Slots, dense.EveCost, sparse.Slots, sparse.EveCost)
	}
	report := benchReport{
		Benchmark:  "sim-engine-dense-vs-sparse",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scenario: map[string]any{
			"algorithm": string(scenario.Algorithm),
			"n":         scenario.N,
			"coreP":     1.0 / 64,
			"budget":    scenario.Budget,
			"adversary": scenario.Adversary.Name(),
			"trials":    trials,
		},
		Dense:   dense,
		Sparse:  sparse,
		Speedup: sparse.SlotsPerSec / dense.SlotsPerSec,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("engine benchmark: dense %.0f slots/s, sparse %.0f slots/s (%.2fx) → %s\n",
		dense.SlotsPerSec, sparse.SlotsPerSec, report.Speedup, path)
	return nil
}
