package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"multicast"
)

// benchScenario is the fixed engine benchmark: MultiCastCore with the
// paper's own listen probability 1/64 on 128 nodes — a low-density
// workload in which ~4 of 128 nodes act per slot, the regime the sparse
// engine exists for — under a half-spectrum block jammer. Changing this
// scenario breaks the perf trajectory across PRs; add new scenarios
// instead of editing this one.
func benchScenario() multicast.Config {
	params := multicast.SimParams()
	params.CoreP = 1.0 / 64 // the paper's coin ← rnd(1,64)
	params.CoreA = 640      // keep R·CoreP (and so the halt threshold) at the Sim() scale
	return multicast.Config{
		N:         128,
		Algorithm: multicast.AlgoMultiCastCore,
		Params:    params,
		Adversary: multicast.FractionJammer(0.5),
		Budget:    200_000,
	}
}

// benchParallelScenario is the intra-trial parallelism benchmark: the
// same MultiCastCore workload scaled to 1024 nodes on the dense engine,
// where every slot steps the whole population — the per-slot work the
// NodeWorkers fan-out exists to split. (The sparse low-density scenario
// above steps ~4 nodes per slot; partitioning that is all overhead.)
// Like benchScenario, this shape is frozen: the parallel trajectory
// across PRs depends on it.
func benchParallelScenario() multicast.Config {
	cfg := benchScenario()
	cfg.N = 1024
	cfg.Budget = 100_000
	cfg.Engine = multicast.EngineDense
	return cfg
}

// benchTrials is sized so each engine measures over ≥ 1s of work; short
// windows made the reported ratio noisy. Quick mode (-quick) trims it to
// a smoke test: CI uses it to prove the benchmark plumbing still runs
// and the engines still agree, not to measure a trustworthy ratio. The
// parallel scenario is ~40× more work per trial, so it runs fewer.
const (
	benchTrials              = 25
	benchTrialsQuick         = 3
	benchParallelTrials      = 3
	benchParallelTrialsQuick = 1
)

// engineResult is one engine's measurement.
type engineResult struct {
	Engine        string  `json:"engine"`
	Workers       int     `json:"node_workers,omitempty"`
	Slots         int64   `json:"slots"`
	Seconds       float64 `json:"seconds"`
	SlotsPerSec   float64 `json:"slots_per_sec"`
	NsPerSlot     float64 `json:"ns_per_slot"`
	AllocsPerSlot float64 `json:"allocs_per_slot"`
	MaxNodeCost   int64   `json:"max_node_energy"`
	EveCost       int64   `json:"eve_energy"`
	TrialsPassed  int     `json:"trials"`
}

// cacheBenchResult is the cold-vs-warm leg of the result cache: the
// same driven campaign timed while simulating every cell (cold, filling
// the cache) and while replaying every cell from it (warm).
type cacheBenchResult struct {
	Cells         int     `json:"cells"`
	ColdSeconds   float64 `json:"cold_seconds"`
	WarmSeconds   float64 `json:"warm_seconds"`
	ReplaySpeedup float64 `json:"replay_speedup"`
}

// benchReport is the BENCH_sim.json schema. The parallel block measures
// the large-n dense scenario serially and with the NodeWorkers fan-out;
// its speedup is only comparable between machines with the same
// GOMAXPROCS (the check mode skips it otherwise).
type benchReport struct {
	Benchmark        string            `json:"benchmark"`
	Generated        string            `json:"generated"`
	GoVersion        string            `json:"go_version"`
	GOMAXPROCS       int               `json:"gomaxprocs"`
	Scenario         map[string]any    `json:"scenario"`
	Dense            engineResult      `json:"dense"`
	Sparse           engineResult      `json:"sparse"`
	Event            *engineResult     `json:"event,omitempty"`
	Speedup          float64           `json:"speedup"`
	EventSpeedup     float64           `json:"event_speedup,omitempty"`
	ParallelWorkers  int               `json:"parallel_workers,omitempty"`
	ParallelBaseline *engineResult     `json:"parallel_baseline,omitempty"`
	Parallel         *engineResult     `json:"parallel,omitempty"`
	ParallelSpeedup  float64           `json:"parallel_speedup,omitempty"`
	Cache            *cacheBenchResult `json:"cache,omitempty"`
}

// runEngine executes the scenario's trials serially on one engine so the
// measurements are comparable and unaffected by trial parallelism. It
// goes through RunTrialsContext with a single worker, so one pooled
// Executor is recycled across the trials — the deployment shape every
// other driver (mcast, the campaign shards, the matrix mode) uses — and
// the seeds are Seed+t = 1..trials, the same set the old per-Run loop
// measured. Allocations are metered over the whole batch (runtime
// mallocs, not bytes), so the reported allocs/slot includes the pool's
// amortised per-trial reset cost; the steady-state alloc-free pin is
// isolated by internal/sim's TestSlotLoopAllocFree.
func runEngine(cfg multicast.Config, engine multicast.Engine, nodeWorkers int, trials uint64) (engineResult, error) {
	cfg.Engine = engine
	cfg.NodeWorkers = nodeWorkers
	cfg.Seed = 1
	res := engineResult{Engine: engine.String()}
	if nodeWorkers > 1 {
		res.Workers = nodeWorkers
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	start := time.Now()
	err := multicast.RunTrialsContext(context.Background(), cfg,
		multicast.TrialPlan{Trials: int(trials), Workers: 1},
		func(_ int, m multicast.Metrics) error {
			res.Slots += m.Slots
			if m.MaxNodeEnergy > res.MaxNodeCost {
				res.MaxNodeCost = m.MaxNodeEnergy
			}
			res.EveCost += m.EveEnergy
			res.TrialsPassed++
			return nil
		})
	if err != nil {
		return res, fmt.Errorf("engine %v: %w", engine, err)
	}
	res.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms)
	res.SlotsPerSec = float64(res.Slots) / res.Seconds
	res.NsPerSlot = res.Seconds * 1e9 / float64(res.Slots)
	res.AllocsPerSlot = float64(ms.Mallocs-mallocs) / float64(res.Slots)
	return res, nil
}

// resolveParallelWorkers turns the -parallel flag into the fan-out width
// of the parallel benchmark entry: 0 means GOMAXPROCS, floored at 2 so
// the entry always exercises the partition machinery (on a single-core
// box the honest result is then a speedup ≤ 1 — the goroutines time-slice
// one core).
func resolveParallelWorkers(parallel int) int {
	if parallel > 0 {
		return parallel
	}
	return max(2, runtime.GOMAXPROCS(0))
}

// runCacheBench times the fixed scenario as a driven campaign twice
// over one result cache: cold (every cell simulated and stored) and
// warm, into a fresh campaign directory (every cell replayed). The
// ratio is the cache's replay speedup. Any warm miss means the cache
// plumbing is broken, so it is a hard error, not a smaller number.
func runCacheBench(trials uint64) (*cacheBenchResult, error) {
	cfg := benchScenario()
	cfg.Seed = 1
	cacheDir, err := os.MkdirTemp("", "mcbench-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cacheDir)
	run := func() (secs float64, misses int64, err error) {
		dir, err := os.MkdirTemp("", "mcbench-campaign-")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		start := time.Now()
		_, err = multicast.RunCampaign(context.Background(), cfg, multicast.CampaignPlan{
			Trials: int(trials), Shards: 1, Workers: 1, Dir: dir, CacheDir: cacheDir,
			Progress: func(ev multicast.CampaignEvent) {
				if ev.Kind == multicast.CampaignShardCell && ev.Cache == multicast.CampaignCellCacheMiss {
					misses++
				}
			},
		})
		return time.Since(start).Seconds(), misses, err
	}
	cold, misses, err := run()
	if err != nil {
		return nil, err
	}
	if misses != int64(trials) {
		return nil, fmt.Errorf("cache benchmark: cold run missed %d of %d cells — the cache was not empty", misses, trials)
	}
	warm, misses, err := run()
	if err != nil {
		return nil, err
	}
	if misses != 0 {
		return nil, fmt.Errorf("cache benchmark: warm run re-simulated %d of %d cells", misses, trials)
	}
	return &cacheBenchResult{
		Cells:         int(trials),
		ColdSeconds:   cold,
		WarmSeconds:   warm,
		ReplaySpeedup: cold / warm,
	}, nil
}

// runEngineBench measures dense vs sparse vs event slots/sec on the
// fixed scenario, plus the NodeWorkers fan-out on the large-n dense
// scenario, and writes the JSON report to path. All three engines must
// produce identical slot and Eve-energy totals — the benchmark doubles
// as an end-to-end equivalence check on the exact workload it times.
func runEngineBench(path string, quick bool, parallel int) error {
	trials := uint64(benchTrials)
	ptrials := uint64(benchParallelTrials)
	if quick {
		trials = benchTrialsQuick
		ptrials = benchParallelTrialsQuick
	}
	scenario := benchScenario()
	// Warm-up pass so one-time costs (page faults, lazy allocations) hit
	// neither engine's measurement.
	if _, err := runEngine(scenario, multicast.EngineDense, 1, trials); err != nil {
		return err
	}
	dense, err := runEngine(scenario, multicast.EngineDense, 1, trials)
	if err != nil {
		return err
	}
	sparse, err := runEngine(scenario, multicast.EngineSparse, 1, trials)
	if err != nil {
		return err
	}
	event, err := runEngine(scenario, multicast.EngineEvent, 1, trials)
	if err != nil {
		return err
	}
	if dense.Slots != sparse.Slots || dense.EveCost != sparse.EveCost ||
		dense.Slots != event.Slots || dense.EveCost != event.EveCost {
		return fmt.Errorf("engine divergence: dense ran %d slots (Eve %d), sparse %d (Eve %d), event %d (Eve %d)",
			dense.Slots, dense.EveCost, sparse.Slots, sparse.EveCost, event.Slots, event.EveCost)
	}
	workers := resolveParallelWorkers(parallel)
	pbase, err := runEngine(benchParallelScenario(), multicast.EngineDense, 1, ptrials)
	if err != nil {
		return err
	}
	ppar, err := runEngine(benchParallelScenario(), multicast.EngineDense, workers, ptrials)
	if err != nil {
		return err
	}
	if pbase.Slots != ppar.Slots || pbase.EveCost != ppar.EveCost {
		return fmt.Errorf("NodeWorkers divergence: serial ran %d slots (Eve %d), %d workers %d (Eve %d)",
			pbase.Slots, pbase.EveCost, workers, ppar.Slots, ppar.EveCost)
	}
	cacheRes, err := runCacheBench(trials)
	if err != nil {
		return err
	}
	report := benchReport{
		Benchmark:  "sim-engine-comparison",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scenario: map[string]any{
			"algorithm": string(scenario.Algorithm),
			"n":         scenario.N,
			"coreP":     1.0 / 64,
			"budget":    scenario.Budget,
			"adversary": scenario.Adversary.Name(),
			"trials":    trials,
			"parallelN": benchParallelScenario().N,
			"parallelT": ptrials,
		},
		Dense:            dense,
		Sparse:           sparse,
		Event:            &event,
		Speedup:          sparse.SlotsPerSec / dense.SlotsPerSec,
		EventSpeedup:     event.SlotsPerSec / dense.SlotsPerSec,
		ParallelWorkers:  workers,
		ParallelBaseline: &pbase,
		Parallel:         &ppar,
		ParallelSpeedup:  ppar.SlotsPerSec / pbase.SlotsPerSec,
		Cache:            cacheRes,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("engine benchmark: dense %.0f slots/s, sparse %.0f slots/s (%.2fx), event %.0f slots/s (%.2fx) → %s\n",
		dense.SlotsPerSec, sparse.SlotsPerSec, report.Speedup,
		event.SlotsPerSec, report.EventSpeedup, path)
	fmt.Printf("parallel (n=%d dense, %d workers): serial %.0f slots/s, parallel %.0f slots/s (%.2fx)\n",
		benchParallelScenario().N, workers, pbase.SlotsPerSec, ppar.SlotsPerSec, report.ParallelSpeedup)
	fmt.Printf("cache (%d cells): cold %.3fs, warm replay %.3fs (%.1fx)\n",
		cacheRes.Cells, cacheRes.ColdSeconds, cacheRes.WarmSeconds, cacheRes.ReplaySpeedup)
	return nil
}
