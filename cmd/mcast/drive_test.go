package main

import "testing"

// TestChildWorkers pins the -workers precedence for subprocess shard
// workers: an explicit positive operator value is forwarded untouched,
// while unset or explicit zero (the "use GOMAXPROCS" default, which
// would oversubscribe the box k-fold across k children) is replaced by
// the cores divided evenly across the shards.
func TestChildWorkers(t *testing.T) {
	cases := []struct {
		name       string
		explicit   bool
		flagValue  int
		shards     int
		gomaxprocs int
		want       int
		append_    bool
	}{
		{"explicit-positive-stands", true, 6, 3, 8, 0, false},
		{"explicit-one-stands", true, 1, 4, 16, 0, false},
		{"explicit-zero-divided", true, 0, 4, 8, 2, true},
		{"unset-divided", false, 0, 2, 8, 4, true},
		{"unset-rounds-down", false, 0, 3, 8, 2, true},
		{"unset-at-least-one", false, 0, 8, 2, 1, true},
		{"single-core-box", false, 0, 3, 1, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := childWorkers(tc.explicit, tc.flagValue, tc.shards, tc.gomaxprocs)
			if ok != tc.append_ {
				t.Fatalf("append = %v, want %v", ok, tc.append_)
			}
			if ok && got != tc.want {
				t.Fatalf("workers = %d, want %d", got, tc.want)
			}
		})
	}
}
