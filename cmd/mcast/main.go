// Command mcast runs one broadcast execution and prints a run report.
//
// Usage:
//
//	mcast -alg multicast -n 256 -adv burst -budget 100000 -seed 1
//	mcast -alg multicastadv -n 64 -trials 5
//	mcast -alg multicast-c -n 256 -channels 8 -adv fraction -frac 0.9 -budget 50000 -trace
//
// Adversaries: none, burst, fraction, random, sweep, pulse, bursty,
// targeted (phase-targeted, for MultiCastAdv), and the adaptive pair
// reactive and camper (the §8 extension).
package main

import (
	"flag"
	"fmt"
	"os"

	"multicast"
)

func main() {
	var (
		algName  = flag.String("alg", "multicast", "algorithm: multicastcore|multicast|multicast-c|multicastadv|multicastadv-c|singlechannel")
		n        = flag.Int("n", 256, "number of nodes (power of two)")
		channels = flag.Int("channels", 0, "physical channels for the (C) variants")
		advName  = flag.String("adv", "none", "adversary: none|burst|fraction|random|sweep|pulse|bursty|targeted|reactive|camper")
		budget   = flag.Int64("budget", 0, "Eve's energy budget T")
		frac     = flag.Float64("frac", 0.9, "jam fraction for fraction/random/pulse/targeted")
		start    = flag.Int64("start", 0, "first jamming slot for burst")
		width    = flag.Int("width", 8, "window width for sweep")
		period   = flag.Int64("period", 128, "pulse period")
		duty     = flag.Int64("duty", 64, "pulse duty slots")
		stop     = flag.Int64("stop", 0, "stop all jamming at this slot (0 = never)")
		targetJ  = flag.Int("target-j", -1, "phase number targeted by the targeted jammer (default lg n − 1)")
		seed     = flag.Uint64("seed", 1, "base random seed")
		trials   = flag.Int("trials", 1, "independent trials (parallel)")
		maxSlots = flag.Int64("max-slots", 0, "abort after this many slots (0 = default)")
		trace    = flag.Bool("trace", false, "print a per-1000-slot trace of the first trial")
		curve    = flag.Bool("curve", false, "print sparkline charts of the run (informed/halted/jammed/traffic)")
		alpha    = flag.Float64("alpha", 0, "override MultiCastAdv α (0 = preset)")
		engName  = flag.String("engine", "auto", "slot-loop engine: auto|dense|sparse (identical results; dense is the reference loop)")
	)
	flag.Parse()

	alg, err := multicast.ParseAlgorithm(*algName)
	fatal(err)

	engine, err := multicast.ParseEngine(*engName)
	fatal(err)

	params := multicast.SimParams()
	if *alpha > 0 {
		params.Alpha = *alpha
	}

	tj := *targetJ
	if tj < 0 {
		tj = lg(*n) - 1
	}
	var adv multicast.Adversary
	switch *advName {
	case "none":
		adv = multicast.NoJammer()
	case "burst":
		adv = multicast.FullBurstJammer(*start)
	case "fraction":
		adv = multicast.FractionJammer(*frac)
	case "random":
		adv = multicast.RandomFractionJammer(*frac)
	case "sweep":
		adv = multicast.SweepJammer(*width)
	case "pulse":
		adv = multicast.PulseJammer(*period, *duty, *frac, *stop)
	case "bursty":
		adv = multicast.BurstyJammer(*frac, float64(*duty), float64(*duty))
	case "targeted":
		adv = multicast.PhaseTargetedJammer(params, *channels, tj, *frac)
	case "reactive":
		adv = multicast.ReactiveJammer(*frac)
	case "camper":
		adv = multicast.CamperJammer(*duty, *width*8)
	default:
		fatal(fmt.Errorf("unknown adversary %q", *advName))
	}
	if *stop > 0 && *advName != "pulse" {
		adv = multicast.StopJammingAfter(adv, *stop)
	}

	cfg := multicast.Config{
		N:         *n,
		Algorithm: alg,
		Params:    params,
		Channels:  *channels,
		Adversary: adv,
		Budget:    *budget,
		Seed:      *seed,
		MaxSlots:  *maxSlots,
		Engine:    engine,
	}

	if *trace {
		cfg.Observer = &tracer{every: 1000}
	}
	var rec *multicast.TraceRecorder
	if *curve {
		rec = multicast.NewTraceRecorder(16)
		cfg.Observer = rec
	}

	fmt.Printf("algorithm=%s n=%d channels=%d adversary=%s budget=%d seed=%d trials=%d\n\n",
		alg, *n, *channels, adv.Name(), *budget, *seed, *trials)

	if *trials == 1 {
		m, err := multicast.Run(cfg)
		fatal(err)
		report(m)
		if rec != nil {
			fmt.Print(multicast.TraceChart(72, rec.Informed, rec.Halted, rec.Jammed, rec.Traffic))
		}
		return
	}
	cfg.Observer = nil
	ms, err := multicast.RunTrials(cfg, *trials)
	fatal(err)
	for i, m := range ms {
		fmt.Printf("--- trial %d (seed %d) ---\n", i, *seed+uint64(i))
		report(m)
	}
}

func report(m multicast.Metrics) {
	fmt.Printf("slots until all halted:   %d\n", m.Slots)
	fmt.Printf("all informed by slot:     %d\n", m.AllInformedSlot)
	if m.FirstHelperSlot >= 0 {
		fmt.Printf("first helper at slot:     %d\n", m.FirstHelperSlot)
	}
	fmt.Printf("first halt at slot:       %d\n", m.FirstHaltSlot)
	fmt.Printf("max node energy:          %d\n", m.MaxNodeEnergy)
	fmt.Printf("mean node energy:         %.1f\n", m.MeanNodeEnergy)
	fmt.Printf("source energy:            %d\n", m.SourceEnergy)
	fmt.Printf("Eve spent:                %d\n", m.EveEnergy)
	if m.EveEnergy > 0 {
		fmt.Printf("competitive ratio:        %.4f (max node cost / Eve cost)\n",
			float64(m.MaxNodeEnergy)/float64(m.EveEnergy))
	}
	if m.Invariants.Any() {
		fmt.Printf("!! invariant violations:  %+v\n", m.Invariants)
	} else {
		fmt.Printf("safety invariants:        all hold\n")
	}
	fmt.Println()
}

// tracer prints a status line every `every` slots.
type tracer struct {
	every int64
}

func (t *tracer) Slot(slot int64, channels, jammed, listeners, broadcasters, informed, halted int) {
	if slot%t.every != 0 {
		return
	}
	fmt.Printf("slot %-10d channels=%-6d jammed=%-6d listen=%-4d bcast=%-4d informed=%-5d halted=%d\n",
		slot, channels, jammed, listeners, broadcasters, informed, halted)
}

func lg(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcast:", err)
		os.Exit(1)
	}
}
