// Command mcast runs one broadcast execution and prints a run report —
// or a whole statistical campaign, optionally sharded across machines.
//
// Usage:
//
//	mcast -alg multicast -n 256 -adv burst -budget 100000 -seed 1
//	mcast -alg multicastadv -n 64 -trials 5
//	mcast -alg multicast-c -n 256 -channels 8 -adv fraction -frac 0.9 -budget 50000 -trace
//
// Sharded campaigns: shard i of k runs the trials t ≡ i (mod k) of the
// same seeded batch, writes its mergeable summary, and any machine
// merges the artifacts into exactly the summary the unsharded run
// produces (seeds derive from the trial index alone):
//
//	mcast -alg multicast -n 256 -trials 100000 -shard 0/3 -summary-out s0.json   # machine 0
//	mcast -alg multicast -n 256 -trials 100000 -shard 1/3 -summary-out s1.json   # machine 1
//	mcast -alg multicast -n 256 -trials 100000 -shard 2/3 -summary-out s2.json   # machine 2
//	mcast -merge s0.json s1.json s2.json
//
// Scenario sweeps run a whole registry workload (several points ×
// -trials each) as one campaign; -shard then slices the flattened
// (point × trial) grid, and -merge recombines per point:
//
//	mcast -list-scenarios
//	mcast -scenario channel-ladder -trials 100
//	mcast -scenario duel -n 64 -trials 50000 -shard 0/2 -summary-out d0.json
//	mcast -scenario duel -n 64 -trials 50000 -shard 1/2 -summary-out d1.json
//	mcast -merge d0.json d1.json
//
// Driven campaigns supervise the whole shard fleet in one command:
// -drive k launches k shard workers (in-process, or as mcast
// subprocesses with -drive-exec), checkpoints each shard at grid-cell
// granularity into -campaign-dir, retries failed shards, and merges the
// artifacts automatically. A killed campaign resumes where it stopped:
//
//	mcast -scenario duel -n 64 -trials 50000 -drive 3 -campaign-dir camp -summary-out duel.json
//	# …killed mid-run? finish it:
//	mcast -scenario duel -n 64 -trials 50000 -drive 3 -campaign-dir camp -resume -summary-out duel.json
//
// The cell scheduler is swappable: -drive-schedule steal replaces the
// static per-shard worker pools with one work-stealing pool over the
// whole grid (heterogeneous workers finish together; artifacts stay
// byte-identical), and -progress-json streams every progress event as
// one JSON object per line for orchestrators to parse ("-" puts the
// stream on stdout and moves the human report to stderr):
//
//	mcast -scenario duel -trials 50000 -drive 3 -drive-schedule steal \
//	  -campaign-dir camp -progress-json - > progress.jsonl
//
// Chaos drills inject seeded, reproducible faults into a driven
// campaign and leave a diffable fault log; resuming without the chaos
// flags recovers the campaign bit-identically:
//
//	mcast -scenario duel -trials 50 -drive 3 -campaign-dir camp \
//	  -chaos-seed 7 -chaos-faults crash@1:2 -chaos-log faults.jsonl
//	mcast -scenario duel -trials 50 -drive 3 -campaign-dir camp -resume
//
// See docs/OPERATIONS.md for the cross-machine campaign playbook and
// the chaos drill procedure.
//
// Adversaries: none, burst, fraction, random, sweep, pulse, bursty,
// targeted (phase-targeted, for MultiCastAdv), and the adaptive pair
// reactive and camper (the §8 extension).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"multicast"
	"multicast/internal/campaign"
	"multicast/internal/runner"
	"multicast/internal/stats"
)

func main() {
	var (
		algName     = flag.String("alg", "multicast", "algorithm: multicastcore|multicast|multicast-c|multicastadv|multicastadv-c|singlechannel")
		n           = flag.Int("n", 256, "number of nodes (power of two)")
		channels    = flag.Int("channels", 0, "physical channels for the (C) variants")
		advName     = flag.String("adv", "none", "adversary: none|burst|fraction|random|sweep|pulse|bursty|targeted|reactive|camper")
		budget      = flag.Int64("budget", 0, "Eve's energy budget T")
		frac        = flag.Float64("frac", 0.9, "jam fraction for fraction/random/pulse/targeted")
		start       = flag.Int64("start", 0, "first jamming slot for burst")
		width       = flag.Int("width", 8, "window width for sweep")
		period      = flag.Int64("period", 128, "pulse period")
		duty        = flag.Int64("duty", 64, "pulse duty slots")
		stop        = flag.Int64("stop", 0, "stop all jamming at this slot (0 = never)")
		targetJ     = flag.Int("target-j", -1, "phase number targeted by the targeted jammer (default lg n − 1)")
		seed        = flag.Uint64("seed", 1, "base random seed")
		trials      = flag.Int("trials", 1, "independent trials (parallel)")
		maxSlots    = flag.Int64("max-slots", 0, "abort after this many slots (0 = default)")
		trace       = flag.Bool("trace", false, "print a per-1000-slot trace of the first trial")
		curve       = flag.Bool("curve", false, "print sparkline charts of the run (informed/halted/jammed/traffic)")
		alpha       = flag.Float64("alpha", 0, "override MultiCastAdv α (0 = preset)")
		engName     = flag.String("engine", "auto", "slot-loop engine: auto|dense|sparse|event (identical results; dense is the reference loop)")
		shardStr    = flag.String("shard", "", "run shard i/k of the trial batch or sweep grid (e.g. 0/3); implies summary output")
		sumOut      = flag.String("summary-out", "", "write the mergeable summary JSON to this path")
		merge       = flag.Bool("merge", false, "merge the shard summary files given as arguments and print the combined summary")
		workers     = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); does not affect results")
		nodeWorkers = flag.Int("node-workers", 1, "goroutines stepping nodes inside each slot (1 = serial); does not affect results")
		scenName    = flag.String("scenario", "", "run a registry scenario sweep (-trials per point; overrides -alg/-adv; see -list-scenarios)")
		listScen    = flag.Bool("list-scenarios", false, "list the scenario registry and exit")
		quick       = flag.Bool("quick", false, "with -scenario: expand the trimmed (smoke-test) point list")
		timeout     = flag.Duration("timeout", 0, "abort the whole run after this long (e.g. 30m; interrupts in-flight executions cleanly)")
		drive       = flag.Int("drive", 0, "drive the campaign with this many supervised shard workers (checkpointed; see -campaign-dir)")
		driveExec   = flag.Bool("drive-exec", false, "with -drive: launch shard workers as mcast subprocesses instead of in-process")
		driveSched  = flag.String("drive-schedule", "", "with -drive: grid-cell scheduling — static (default: shard i computes cells g = i mod k) or steal (one work-stealing pool over the whole grid; artifacts are bit-identical either way)")
		progJSON    = flag.String("progress-json", "", "with -drive: also stream progress events as JSON lines to this path (\"-\" = stdout; the human report then moves to stderr)")
		resume      = flag.Bool("resume", false, "with -drive: resume an interrupted campaign from -campaign-dir")
		campDir     = flag.String("campaign-dir", "", "with -drive: directory for shard artifacts and checkpoints (default: <summary-out>.campaign or mcast-campaign)")
		retries     = flag.Int("retries", 1, "with -drive: relaunches per failed shard before the campaign fails")
		ckptEvery   = flag.Int("checkpoint-every", 1, "with -drive: grid cells between checkpoint flushes (1 = maximum crash safety; raise it to cut checkpoint I/O on huge campaigns)")
		cacheDir    = flag.String("cache-dir", "", "with -drive: content-addressed cell result cache directory (created if needed) — cells whose results are already cached replay instead of simulating, byte-identically; discard the directory when the summary schema version changes")
		crashAfter  = flag.Int("crash-after", 0, "with -drive: legacy alias of the chaos harness — kill the whole process after this many grid cells (prefer -chaos-faults crash@…)")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "with -chaos-faults: seed resolving every choice a fault rule leaves open (shard, cell, cut offset, flipped bit)")
		chaosFaults = flag.String("chaos-faults", "", "with -drive: inject seeded faults — comma-separated kind[@shard[:cell[:attempt]]] rules, * = seeded choice (kinds: crash|torn-flush|corrupt-checkpoint|truncate-artifact|bit-flip-artifact|duplicate-shard|stall)")
		chaosLog    = flag.String("chaos-log", "", "with -chaos-faults: write the canonical chaos event log (JSON lines) to this path")
	)
	flag.Parse()
	// Overrides like -n only reach a scenario when given explicitly —
	// flag defaults must not clobber per-scenario defaults.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	if *listScen {
		listScenarios()
		return
	}

	// The driver flags only mean something together.
	if *drive < 0 {
		fatal(fmt.Errorf("-drive %d: shard worker count must be positive", *drive))
	}
	if *drive == 0 {
		for _, name := range []string{"drive-exec", "drive-schedule", "progress-json", "resume",
			"campaign-dir", "retries", "checkpoint-every", "cache-dir",
			"crash-after", "chaos-seed", "chaos-faults", "chaos-log"} {
			if setFlags[name] {
				fatal(fmt.Errorf("-%s requires -drive", name))
			}
		}
	} else {
		if *shardStr != "" {
			fatal(fmt.Errorf("-shard cannot combine with -drive (the driver owns the shard layout)"))
		}
		if *merge {
			fatal(fmt.Errorf("-merge cannot combine with -drive (a driven campaign merges automatically)"))
		}
		if *driveExec {
			// Subprocess workers neither checkpoint through the parent
			// nor report cells to it — refuse the knobs instead of
			// silently ignoring them.
			for _, name := range []string{"checkpoint-every", "crash-after", "chaos-seed", "chaos-faults", "chaos-log"} {
				if setFlags[name] {
					fatal(fmt.Errorf("-%s has no effect with -drive-exec (subprocess workers restart from scratch)", name))
				}
			}
			if setFlags["cache-dir"] {
				// The cache seam lives in the in-process grid; children
				// would simulate everything and the totals would lie.
				fatal(fmt.Errorf("-cache-dir needs in-process shard workers (drop -drive-exec)"))
			}
		}
		if *chaosFaults == "" && (setFlags["chaos-seed"] || setFlags["chaos-log"]) {
			fatal(fmt.Errorf("-chaos-seed and -chaos-log require -chaos-faults (the fault schedule)"))
		}
	}
	driveSchedule, err := multicast.ParseCampaignSchedule(*driveSched)
	fatal(err)
	if driveSchedule == multicast.CampaignScheduleSteal && *driveExec {
		// Stealing streams per-cell results back into one fold stage;
		// subprocess workers cannot.
		fatal(fmt.Errorf("-drive-schedule steal needs in-process shard workers (drop -drive-exec)"))
	}
	var chaosInj *multicast.ChaosInjector
	if *chaosFaults != "" {
		rules, err := multicast.ParseChaosRules(*chaosFaults)
		fatal(err)
		chaosInj, err = multicast.NewChaosInjector(multicast.ChaosPlan{Seed: *chaosSeed, Faults: rules})
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// A deadline abort should read as a timeout, not a bare context error.
	deadline := func(err error) error {
		if err != nil && errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("run timed out after %v (in-flight executions were interrupted)", *timeout)
		}
		return err
	}

	if *merge {
		args := flag.Args()
		if len(args) == 0 {
			fatal(fmt.Errorf("-merge needs at least one summary file argument"))
		}
		fatal(mergeCmd(args, *sumOut))
		return
	}

	if *scenName != "" {
		// The scenario defines the workloads; a workload flag that would
		// be silently dropped is refused instead.
		scenFlags := map[string]bool{
			"scenario": true, "quick": true, "n": true, "budget": true, "seed": true,
			"trials": true, "engine": true, "workers": true, "node-workers": true,
			"shard": true, "summary-out": true,
			"timeout": true, "drive": true, "drive-exec": true, "drive-schedule": true,
			"progress-json": true, "resume": true,
			"campaign-dir": true, "retries": true, "checkpoint-every": true, "cache-dir": true,
			"crash-after": true,
			"chaos-seed":  true, "chaos-faults": true, "chaos-log": true,
		}
		for name := range setFlags {
			if !scenFlags[name] {
				fatal(fmt.Errorf("-%s has no effect with -scenario (the scenario defines the workload)", name))
			}
		}
		engine, err := multicast.ParseEngine(*engName)
		fatal(err)
		shard, err := parseShard(*shardStr)
		fatal(err)
		opts := multicast.ScenarioOptions{Seed: *seed, Quick: *quick}
		if setFlags["n"] {
			opts.N = *n
		}
		if setFlags["budget"] {
			opts.Budget = *budget
		}
		if *drive > 0 {
			fatal(deadline(driveScenario(ctx, *scenName, opts, *trials, driveFlags{
				shards: *drive, exec: *driveExec, resume: *resume,
				schedule: driveSchedule, progressJSON: *progJSON,
				dir: campaignDir(*campDir, *sumOut), workers: *workers,
				retries: *retries, ckptEvery: *ckptEvery, engine: engine,
				nodeWorkers: *nodeWorkers, cacheDir: *cacheDir,
				crashAfter: *crashAfter, sumOut: *sumOut,
				chaos: chaosInj, chaosLog: *chaosLog,
			})))
			return
		}
		fatal(deadline(runScenario(ctx, *scenName, opts, engine, *nodeWorkers, *trials, shard, *workers, *sumOut)))
		return
	}

	alg, err := multicast.ParseAlgorithm(*algName)
	fatal(err)

	engine, err := multicast.ParseEngine(*engName)
	fatal(err)

	params := multicast.SimParams()
	if *alpha > 0 {
		params.Alpha = *alpha
	}

	tj := *targetJ
	if tj < 0 {
		tj = lg(*n) - 1
	}
	var adv multicast.Adversary
	switch *advName {
	case "none":
		adv = multicast.NoJammer()
	case "burst":
		adv = multicast.FullBurstJammer(*start)
	case "fraction":
		adv = multicast.FractionJammer(*frac)
	case "random":
		adv = multicast.RandomFractionJammer(*frac)
	case "sweep":
		adv = multicast.SweepJammer(*width)
	case "pulse":
		adv = multicast.PulseJammer(*period, *duty, *frac, *stop)
	case "bursty":
		adv = multicast.BurstyJammer(*frac, float64(*duty), float64(*duty))
	case "targeted":
		adv = multicast.PhaseTargetedJammer(params, *channels, tj, *frac)
	case "reactive":
		adv = multicast.ReactiveJammer(*frac)
	case "camper":
		adv = multicast.CamperJammer(*duty, *width*8)
	default:
		fatal(fmt.Errorf("unknown adversary %q", *advName))
	}
	if *stop > 0 && *advName != "pulse" {
		adv = multicast.StopJammingAfter(adv, *stop)
	}

	cfg := multicast.Config{
		N:           *n,
		Algorithm:   alg,
		Params:      params,
		Channels:    *channels,
		Adversary:   adv,
		Budget:      *budget,
		Seed:        *seed,
		MaxSlots:    *maxSlots,
		Engine:      engine,
		NodeWorkers: *nodeWorkers,
	}

	if *trace {
		cfg.Observer = &tracer{every: 1000}
	}
	var rec *multicast.TraceRecorder
	if *curve {
		rec = multicast.NewTraceRecorder(16)
		cfg.Observer = rec
	}

	shard, err := parseShard(*shardStr)
	fatal(err)

	// With -progress-json -, stdout is a pure JSON-lines stream; the
	// human banner joins the report on stderr.
	banner := io.Writer(os.Stdout)
	if *progJSON == "-" {
		banner = os.Stderr
	}
	fmt.Fprintf(banner, "algorithm=%s n=%d channels=%d adversary=%s budget=%d seed=%d trials=%d\n\n",
		alg, *n, *channels, adv.Name(), *budget, *seed, *trials)

	if *drive > 0 {
		cfg.Observer = nil
		fatal(deadline(driveSingle(ctx, cfg, *trials, driveFlags{
			shards: *drive, exec: *driveExec, resume: *resume,
			schedule: driveSchedule, progressJSON: *progJSON,
			dir: campaignDir(*campDir, *sumOut), workers: *workers,
			retries: *retries, ckptEvery: *ckptEvery, engine: engine,
			nodeWorkers: *nodeWorkers, cacheDir: *cacheDir,
			crashAfter: *crashAfter, sumOut: *sumOut,
			chaos: chaosInj, chaosLog: *chaosLog,
		})))
		return
	}

	if *shardStr != "" || *sumOut != "" {
		// Campaign mode: stream trials into a mergeable collector, print
		// the summary, and (optionally) write the shard artifact.
		cfg.Observer = nil
		col := runner.NewCollector()
		err := multicast.RunTrialsContext(ctx, cfg,
			multicast.TrialPlan{Trials: *trials, Shard: shard, Workers: *workers},
			func(t int, m multicast.Metrics) error { return col.Add(t, m) })
		fatal(deadline(err))
		if shard.Count > 1 {
			fmt.Printf("shard %d/%d: %d of %d trials\n\n", shard.Index, shard.Count, col.Trials(), *trials)
		}
		printSummaries(os.Stdout, col)
		if *sumOut != "" {
			sum := singleSummary(cfg, *trials, col)
			sum.ShardIndex, sum.ShardCount = shard.Index, max(shard.Count, 1)
			fatal(sum.Write(*sumOut))
			fmt.Printf("summary written to %s\n", *sumOut)
		}
		return
	}

	if *trials == 1 {
		err := multicast.RunTrialsContext(ctx, cfg, multicast.TrialPlan{Trials: 1},
			func(_ int, m multicast.Metrics) error {
				report(m)
				return nil
			})
		fatal(deadline(err))
		if rec != nil {
			fmt.Print(multicast.TraceChart(72, rec.Informed, rec.Halted, rec.Jammed, rec.Traffic))
		}
		return
	}
	cfg.Observer = nil
	// Trials stream out in seed order; nothing is buffered.
	err = multicast.RunTrialsContext(ctx, cfg,
		multicast.TrialPlan{Trials: *trials, Workers: *workers},
		func(t int, m multicast.Metrics) error {
			fmt.Printf("--- trial %d (seed %d) ---\n", t, *seed+uint64(t))
			report(m)
			return nil
		})
	fatal(deadline(err))
}

// singleSummary builds the artifact skeleton of a single-workload
// campaign around its collector (nil: fresh empty). The skeleton comes
// from the same constructor RunCampaign uses, so CLI and library
// artifacts of one campaign always merge.
func singleSummary(cfg multicast.Config, trials int, col *runner.Collector) *multicast.Summary {
	s := multicast.NewSummary(cfg, trials)
	if col != nil {
		s.Points[0].Collector = col
	}
	return s
}

// mergeCmd combines shard artifacts (single-workload or sweep — one
// schema) into the full campaign summary and prints it.
func mergeCmd(paths []string, out string) error {
	merged, err := campaign.MergeFiles(paths)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d shard file(s): %s\n\n", len(paths), indent(merged.Identity()))
	printCampaign(os.Stdout, merged)
	if out != "" {
		if err := merged.Write(out); err != nil {
			return err
		}
		fmt.Printf("merged summary written to %s\n", out)
	}
	return nil
}

// printCampaign renders a campaign summary: one block for a
// single-workload campaign, one block per point for a sweep. The
// writer is stdout except when -progress-json claims stdout for the
// event stream.
func printCampaign(w io.Writer, s *multicast.Summary) {
	if s.Single() {
		printSummaries(w, s.Points[0].Collector)
		return
	}
	for _, p := range s.Points {
		fmt.Fprintf(w, "-- point %s (%s)\n", p.Label, p.Workload)
		printSummaries(w, p.Collector)
		fmt.Fprintln(w)
	}
}

// printSummaries renders every headline metric at full float precision
// (%v round-trips float64 exactly), so byte-equal output means
// bit-identical summaries — the shard→merge CI smokes diff this text.
func printSummaries(w io.Writer, col *runner.Collector) {
	line := func(name string, s stats.Summary) {
		fmt.Fprintf(w, "%-18s n=%d mean=%v std=%v min=%v p25=%v med=%v p75=%v p95=%v max=%v\n",
			name, s.Count, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.P95, s.Max)
	}
	line("slots", col.Slots())
	line("max node energy", col.MaxEnergy())
	line("source energy", col.SourceEnergy())
	line("mean node energy", col.MeanEnergy())
	line("eve energy", col.EveEnergy())
	line("all informed", col.AllInformed())
	if inv := col.Invariants(); inv.Any() {
		fmt.Fprintf(w, "!! invariant violations: %+v\n", inv)
	} else {
		fmt.Fprintf(w, "safety invariants:  all hold (%d trials)\n", col.Trials())
	}
}

// parseShard resolves "i/k" (empty = unsharded). The whole string must
// parse: trailing garbage would silently run the wrong shard slice.
func parseShard(s string) (multicast.Shard, error) {
	if s == "" {
		return multicast.Shard{}, nil
	}
	var sh multicast.Shard
	is, ks, ok := strings.Cut(s, "/")
	malformed := fmt.Errorf("malformed -shard %q (want i/k, e.g. 0/3)", s)
	if !ok {
		return sh, malformed
	}
	var err error
	if sh.Index, err = strconv.Atoi(is); err != nil {
		return sh, malformed
	}
	if sh.Count, err = strconv.Atoi(ks); err != nil {
		return sh, malformed
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return sh, fmt.Errorf("shard %d/%d out of range", sh.Index, sh.Count)
	}
	return sh, nil
}

func report(m multicast.Metrics) {
	fmt.Printf("slots until all halted:   %d\n", m.Slots)
	fmt.Printf("all informed by slot:     %d\n", m.AllInformedSlot)
	if m.FirstHelperSlot >= 0 {
		fmt.Printf("first helper at slot:     %d\n", m.FirstHelperSlot)
	}
	fmt.Printf("first halt at slot:       %d\n", m.FirstHaltSlot)
	fmt.Printf("max node energy:          %d\n", m.MaxNodeEnergy)
	fmt.Printf("mean node energy:         %.1f\n", m.MeanNodeEnergy)
	fmt.Printf("source energy:            %d\n", m.SourceEnergy)
	fmt.Printf("Eve spent:                %d\n", m.EveEnergy)
	if m.EveEnergy > 0 {
		fmt.Printf("competitive ratio:        %.4f (max node cost / Eve cost)\n",
			float64(m.MaxNodeEnergy)/float64(m.EveEnergy))
	}
	if m.Invariants.Any() {
		fmt.Printf("!! invariant violations:  %+v\n", m.Invariants)
	} else {
		fmt.Printf("safety invariants:        all hold\n")
	}
	fmt.Println()
}

// tracer prints a status line every `every` slots.
type tracer struct {
	every int64
}

func (t *tracer) Slot(slot int64, channels, jammed, listeners, broadcasters, informed, halted int) {
	if slot%t.every != 0 {
		return
	}
	fmt.Printf("slot %-10d channels=%-6d jammed=%-6d listen=%-4d bcast=%-4d informed=%-5d halted=%d\n",
		slot, channels, jammed, listeners, broadcasters, informed, halted)
}

func lg(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func indent(s string) string { return strings.ReplaceAll(s, "\n", "\n  ") }

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcast:", err)
		os.Exit(1)
	}
}
