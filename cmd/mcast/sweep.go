package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"multicast"
	"multicast/internal/runner"
)

// listScenarios prints the registry, one scenario per line (the name is
// the first field — CI scrapes it to verify docs coverage).
func listScenarios() {
	for _, s := range multicast.Scenarios() {
		fmt.Printf("%-19s %s\n", s.Name, s.Description)
	}
}

// sweepPointFile is one point's slice of a sweep summary artifact.
type sweepPointFile struct {
	// Label is the point's name within the scenario, e.g. "C=8".
	Label string `json:"label"`
	// Workload is the point's full identity string (multicast.Config
	// Describe); -merge refuses to combine points whose identities differ.
	Workload  string            `json:"workload"`
	Collector *runner.Collector `json:"collector"`
}

// sweepSummaryFile is the mergeable artifact written by a sharded (or
// unsharded) `mcast -scenario` campaign: per-point collectors over the
// flattened (point × trial) grid.
type sweepSummaryFile struct {
	Tool       string           `json:"tool"`
	Scenario   string           `json:"scenario"`
	Trials     int              `json:"trials"` // per point
	Seed       uint64           `json:"seed"`
	ShardIndex int              `json:"shard_index"`
	ShardCount int              `json:"shard_count"`
	Points     []sweepPointFile `json:"points"`
}

// campaign is the sweep identity two files must share to merge:
// everything that determines results, nothing that must not (shard
// layout, workers, engine).
func (f sweepSummaryFile) campaign() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s trials=%d seed=%d", f.Scenario, f.Trials, f.Seed)
	for _, p := range f.Points {
		fmt.Fprintf(&b, "\n  %s: %s", p.Label, p.Workload)
	}
	return b.String()
}

// runScenario executes (one shard of) a scenario sweep and writes the
// mergeable per-point summary artifact.
func runScenario(name string, opts multicast.ScenarioOptions, engine multicast.Engine,
	trials int, shard multicast.Shard, workers int, sumOut string) error {
	scen, ok := multicast.ScenarioByName(name)
	if !ok {
		var names []string
		for _, s := range multicast.Scenarios() {
			names = append(names, s.Name)
		}
		return fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(names, ", "))
	}
	points := multicast.ExpandScenario(scen, opts)
	if len(points) == 0 {
		return fmt.Errorf("scenario %s expanded to zero points", name)
	}
	cfgs := make([]multicast.Config, len(points))
	cols := make([]*runner.Collector, len(points))
	for i, p := range points {
		p.Config.Engine = engine
		cfgs[i] = p.Config
		cols[i] = runner.NewCollector()
	}

	fmt.Printf("scenario=%s points=%d trials=%d seed=%d\n\n", scen.Name, len(points), trials, opts.Seed)
	err := multicast.RunSweepContext(context.Background(), cfgs,
		multicast.SweepPlan{Trials: trials, Shard: shard, Workers: workers},
		func(p, t int, m multicast.Metrics) error { return cols[p].Add(t, m) })
	if err != nil {
		return err
	}
	if shard.Count > 1 {
		var cells int64
		for _, c := range cols {
			cells += c.Trials()
		}
		fmt.Printf("shard %d/%d: %d of %d grid cells\n\n",
			shard.Index, shard.Count, cells, len(points)*trials)
	}
	file := sweepSummaryFile{
		Tool:       "mcast",
		Scenario:   scen.Name,
		Trials:     trials,
		Seed:       opts.Seed,
		ShardIndex: shard.Index,
		ShardCount: max(shard.Count, 1),
	}
	for i, p := range points {
		file.Points = append(file.Points, sweepPointFile{
			Label:     p.Label,
			Workload:  p.Config.Describe(),
			Collector: cols[i],
		})
	}
	printSweepSummaries(file)
	if sumOut != "" {
		if err := writeJSON(sumOut, file); err != nil {
			return err
		}
		fmt.Printf("summary written to %s\n", sumOut)
	}
	return nil
}

// printSweepSummaries renders every point's summaries at full float
// precision; like printSummaries, byte-equal output means bit-identical
// summaries, and the sweep CI smoke diffs this text.
func printSweepSummaries(f sweepSummaryFile) {
	for _, p := range f.Points {
		fmt.Printf("-- point %s (%s)\n", p.Label, p.Workload)
		printSummaries(p.Collector)
		fmt.Println()
	}
}

// shardCoverage enforces the exact-coverage merge rules shared by the
// single-workload and sweep merge paths: one campaign identity, one
// k-way split, all k distinct shards present. Trial counts alone can
// balance out even when a shard is merged twice and another dropped —
// hence the index bookkeeping.
type shardCoverage struct {
	firstPath, firstCampaign string
	count                    int
	seen                     map[int]string
}

// add validates one shard file's identity and layout against the files
// merged so far.
func (c *shardCoverage) add(path, campaign string, index, count int) error {
	if count < 1 || index < 0 || index >= count {
		return fmt.Errorf("%s: invalid shard %d/%d", path, index, count)
	}
	if c.seen == nil {
		c.seen = make(map[int]string)
		c.firstPath, c.firstCampaign, c.count = path, campaign, count
	} else {
		if campaign != c.firstCampaign {
			return fmt.Errorf("%s is from a different campaign:\n  %s\nvs %s:\n  %s",
				path, indent(campaign), c.firstPath, indent(c.firstCampaign))
		}
		if count != c.count {
			return fmt.Errorf("%s is shard %d/%d but %s is of a %d-way split",
				path, index, count, c.firstPath, c.count)
		}
	}
	if prev, dup := c.seen[index]; dup {
		return fmt.Errorf("%s duplicates shard %d/%d already merged from %s",
			path, index, count, prev)
	}
	c.seen[index] = path
	return nil
}

// complete checks that every shard of the split was merged.
func (c *shardCoverage) complete() error {
	if len(c.seen) != c.count {
		return fmt.Errorf("got %d of %d shards — missing shard files", len(c.seen), c.count)
	}
	return nil
}

// mergeSweepSummaries combines sweep shard artifacts into the full-sweep
// per-point summaries, with the same exact-coverage rules as the
// single-config merge: one campaign, all k shards, no duplicates.
func mergeSweepSummaries(paths []string, out string) error {
	var first sweepSummaryFile
	var merged []*runner.Collector
	var cover shardCoverage
	for i, path := range paths {
		f, err := readSweepSummary(path)
		if err != nil {
			return err
		}
		if err := cover.add(path, f.campaign(), f.ShardIndex, f.ShardCount); err != nil {
			return err
		}
		if i == 0 {
			first = f
			merged = make([]*runner.Collector, len(f.Points))
			for p := range merged {
				merged[p] = runner.NewCollector()
			}
		}
		for p := range f.Points {
			merged[p].Merge(f.Points[p].Collector)
		}
	}
	if err := cover.complete(); err != nil {
		return err
	}
	for p := range merged {
		if merged[p].Trials() != int64(first.Trials) {
			return fmt.Errorf("point %s: merged shards cover %d of %d trials — corrupt shard files",
				first.Points[p].Label, merged[p].Trials(), first.Trials)
		}
	}
	fmt.Printf("merged %d sweep shard file(s): %s\n\n", len(paths), indent(first.campaign()))
	for p := range first.Points {
		first.Points[p].Collector = merged[p]
	}
	printSweepSummaries(first)
	if out != "" {
		first.ShardIndex, first.ShardCount = 0, 1
		if err := writeJSON(out, first); err != nil {
			return err
		}
		fmt.Printf("merged summary written to %s\n", out)
	}
	return nil
}

// readSweepSummary loads and validates one sweep shard artifact.
func readSweepSummary(path string) (sweepSummaryFile, error) {
	var f sweepSummaryFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Points) == 0 {
		return f, fmt.Errorf("%s is not a scenario-sweep summary (no points); single-workload and sweep artifacts cannot merge", path)
	}
	for _, p := range f.Points {
		if p.Collector == nil {
			return f, fmt.Errorf("%s: point %s has no collector payload", path, p.Label)
		}
	}
	return f, nil
}

// isSweepSummary reports whether the file at path is a sweep artifact
// (vs a single-config one) without fully validating it — -merge uses it
// to dispatch.
func isSweepSummary(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var probe struct {
		Scenario string          `json:"scenario"`
		Points   json.RawMessage `json:"points"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	return probe.Scenario != "" || len(probe.Points) > 0, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func indent(s string) string { return strings.ReplaceAll(s, "\n", "\n  ") }
