package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"multicast"
	"multicast/internal/runner"
)

// listScenarios prints the registry, one scenario per line (the name is
// the first field — CI scrapes it to verify docs coverage).
func listScenarios() {
	for _, s := range multicast.Scenarios() {
		fmt.Printf("%-19s %s\n", s.Name, s.Description)
	}
}

// lookupScenario resolves a registry scenario by name, listing the
// registry in the error.
func lookupScenario(name string) (multicast.Scenario, error) {
	scen, ok := multicast.ScenarioByName(name)
	if !ok {
		var names []string
		for _, s := range multicast.Scenarios() {
			names = append(names, s.Name)
		}
		return scen, fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(names, ", "))
	}
	return scen, nil
}

// sweepSummary builds the artifact skeleton of a scenario-sweep
// campaign around its per-point collectors (nil cols: fresh empty
// ones). The skeleton comes from the same constructor
// RunScenarioCampaign uses, so CLI and library artifacts of one
// campaign always merge.
func sweepSummary(scen multicast.Scenario, opts multicast.ScenarioOptions,
	points []multicast.ScenarioPoint, trials int, cols []*runner.Collector) *multicast.Summary {
	s := multicast.NewScenarioSummary(scen, opts.Seed, trials, points)
	for i := range s.Points {
		if cols != nil {
			s.Points[i].Collector = cols[i]
		}
	}
	return s
}

// runScenario executes (one shard of) a scenario sweep and writes the
// mergeable per-point summary artifact.
func runScenario(ctx context.Context, name string, opts multicast.ScenarioOptions, engine multicast.Engine,
	nodeWorkers, trials int, shard multicast.Shard, workers int, sumOut string) error {
	scen, err := lookupScenario(name)
	if err != nil {
		return err
	}
	points := multicast.ExpandScenario(scen, opts)
	if len(points) == 0 {
		return fmt.Errorf("scenario %s expanded to zero points", name)
	}
	cfgs := make([]multicast.Config, len(points))
	cols := make([]*runner.Collector, len(points))
	for i, p := range points {
		p.Config.Engine = engine
		p.Config.NodeWorkers = nodeWorkers
		cfgs[i] = p.Config
		cols[i] = runner.NewCollector()
	}

	fmt.Printf("scenario=%s points=%d trials=%d seed=%d\n\n", scen.Name, len(points), trials, opts.Seed)
	err = multicast.RunSweepContext(ctx, cfgs,
		multicast.SweepPlan{Trials: trials, Shard: shard, Workers: workers},
		func(p, t int, m multicast.Metrics) error { return cols[p].Add(t, m) })
	if err != nil {
		return err
	}
	if shard.Count > 1 {
		var cells int64
		for _, c := range cols {
			cells += c.Trials()
		}
		fmt.Printf("shard %d/%d: %d of %d grid cells\n\n",
			shard.Index, shard.Count, cells, len(points)*trials)
	}
	sum := sweepSummary(scen, opts, points, trials, cols)
	sum.ShardIndex, sum.ShardCount = shard.Index, max(shard.Count, 1)
	printCampaign(os.Stdout, sum)
	if sumOut != "" {
		if err := sum.Write(sumOut); err != nil {
			return err
		}
		fmt.Printf("summary written to %s\n", sumOut)
	}
	return nil
}
