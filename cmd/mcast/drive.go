package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sync/atomic"

	"multicast"
	"multicast/internal/driver"
)

// driveFlags carries the -drive* flag values into the drive paths.
type driveFlags struct {
	shards       int
	exec         bool
	resume       bool
	schedule     multicast.CampaignSchedule
	progressJSON string
	dir          string
	workers      int
	retries      int
	ckptEvery    int
	engine       multicast.Engine
	nodeWorkers  int
	cacheDir     string
	crashAfter   int
	sumOut       string
	chaos        *multicast.ChaosInjector
	chaosLog     string
}

// campaignDir resolves the -campaign-dir default: next to the summary
// artifact when one is requested, a local directory otherwise.
func campaignDir(dir, sumOut string) string {
	if dir != "" {
		return dir
	}
	if sumOut != "" {
		return sumOut + ".campaign"
	}
	return "mcast-campaign"
}

// plan translates the flags into the public campaign plan, wiring in
// the given progress callback (see driveProgress), the chaos injector,
// and the legacy -crash-after testing aid.
func (f driveFlags) plan(trials int, progress func(multicast.CampaignEvent)) multicast.CampaignPlan {
	return multicast.CampaignPlan{
		Trials:          trials,
		Shards:          f.shards,
		Schedule:        f.schedule,
		Workers:         f.workers,
		Retries:         f.retries,
		Dir:             f.dir,
		Resume:          f.resume,
		CheckpointEvery: f.ckptEvery,
		Engine:          f.engine,
		NodeWorkers:     f.nodeWorkers,
		CacheDir:        f.cacheDir,
		Progress:        progress,
		Chaos:           f.chaos,
	}
}

// cacheTally accumulates the per-cell cache annotations of a driven
// campaign's progress stream into the banner totals. Events are
// delivered serially, so plain counters suffice; a nil tally (no
// -cache-dir) counts and prints nothing.
type cacheTally struct {
	hits, misses int64
}

func (t *cacheTally) count(ev multicast.CampaignEvent) {
	if t == nil || ev.Kind != multicast.CampaignShardCell {
		return
	}
	switch ev.Cache {
	case multicast.CampaignCellCacheHit:
		t.hits++
	case multicast.CampaignCellCacheMiss:
		t.misses++
	}
}

func (t *cacheTally) report(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "cache: %d hit(s), %d miss(es) — %d cell(s) replayed instead of simulated\n",
		t.hits, t.misses, t.hits)
}

// driveProgress builds the campaign's progress callback: the human
// printer on stderr plus, with -progress-json, a JSON-lines encoder
// (one compact object per event — the driver delivers events serially,
// so no locking is needed here). It returns the callback, a close
// func for the JSON sink, the writer finishDrive must print the
// human report to (stderr when "-" hands stdout to the event stream,
// stdout otherwise), and — with -cache-dir — the hit/miss tally the
// banner reports.
func driveProgress(f driveFlags) (cb func(multicast.CampaignEvent), closeSink func() error, report io.Writer, tally *cacheTally, err error) {
	human := progressPrinter(f.crashAfter)
	if f.cacheDir != "" {
		tally = &cacheTally{}
	}
	base := func(ev multicast.CampaignEvent) {
		tally.count(ev)
		human(ev)
	}
	closeSink = func() error { return nil }
	report = os.Stdout
	if f.progressJSON == "" {
		return base, closeSink, report, tally, nil
	}
	sink := io.Writer(os.Stdout)
	if f.progressJSON == "-" {
		report = os.Stderr // stdout is now a pure JSON-lines stream
	} else {
		file, err := os.Create(f.progressJSON)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		sink, closeSink = file, file.Close
	}
	enc := json.NewEncoder(sink)
	cb = func(ev multicast.CampaignEvent) {
		base(ev)
		if err := enc.Encode(ev); err != nil {
			fmt.Fprintf(os.Stderr, "mcast: -progress-json: %v\n", err)
		}
	}
	return cb, closeSink, report, tally, nil
}

// progressPrinter renders per-shard progress lines to stderr (stdout
// stays reserved for the diffable summaries). With crashAfter > 0 it
// kills the whole process after that many completed grid cells — the
// deterministic "power cord" the crash-resume CI smoke pulls.
func progressPrinter(crashAfter int) func(multicast.CampaignEvent) {
	var cells atomic.Int64
	return func(ev multicast.CampaignEvent) {
		switch ev.Kind {
		case multicast.CampaignShardStart:
			if ev.Done > 0 {
				fmt.Fprintf(os.Stderr, "shard %d: resuming at cell %d/%d (attempt %d)\n",
					ev.Shard, ev.Done, ev.Total, ev.Attempt)
			} else {
				fmt.Fprintf(os.Stderr, "shard %d: start (%d cells, attempt %d)\n",
					ev.Shard, ev.Total, ev.Attempt)
			}
		case multicast.CampaignShardCell:
			// Every cell is checkpointed; print only coarse progress.
			if step := max(1, ev.Total/4); ev.Done%step == 0 || ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "shard %d: %d/%d cells\n", ev.Shard, ev.Done, ev.Total)
			}
			if crashAfter > 0 && cells.Add(1) >= int64(crashAfter) {
				fmt.Fprintf(os.Stderr, "mcast: -crash-after %d: killing the campaign\n", crashAfter)
				os.Exit(7)
			}
		case multicast.CampaignShardDone:
			fmt.Fprintf(os.Stderr, "shard %d: complete (%d cells)\n", ev.Shard, ev.Total)
		case multicast.CampaignShardRetry:
			fmt.Fprintf(os.Stderr, "shard %d: attempt %d failed (%v) — retrying from checkpoint\n",
				ev.Shard, ev.Attempt, ev.Err)
		case multicast.CampaignShardDiscard:
			fmt.Fprintf(os.Stderr, "shard %d: discarded damaged artifact (%v) — regenerating\n",
				ev.Shard, ev.Err)
		}
	}
}

// writeChaosLog reports the injected-fault count and persists the
// canonical event log. It runs even when the chaos run failed — usually
// it did, by design — because the log is exactly what a drill diffs
// against CI's to prove the schedule replayed identically.
func writeChaosLog(f driveFlags) error {
	if f.chaos == nil {
		return nil
	}
	fmt.Fprintf(os.Stderr, "chaos: %d fault(s) injected\n", len(f.chaos.Events()))
	if f.chaosLog == "" {
		return nil
	}
	data, err := f.chaos.Log()
	if err != nil {
		return err
	}
	if err := os.WriteFile(f.chaosLog, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "chaos: event log written to %s\n", f.chaosLog)
	return nil
}

// finishDrive prints and optionally persists the merged campaign
// summary; w is stdout unless -progress-json - claimed it. A non-nil
// tally (-cache-dir campaigns) adds the cache hit/miss totals to the
// banner.
func finishDrive(sum *multicast.Summary, sumOut string, w io.Writer, tally *cacheTally) error {
	fmt.Fprintf(w, "driven campaign complete: %s\n", indent(sum.Identity()))
	tally.report(w)
	fmt.Fprintln(w)
	printCampaign(w, sum)
	if sumOut != "" {
		if err := sum.Write(sumOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "merged summary written to %s\n", sumOut)
	}
	return nil
}

// driveSingle supervises a single-workload campaign with k shard
// workers.
func driveSingle(ctx context.Context, cfg multicast.Config, trials int, f driveFlags) error {
	if f.exec {
		tmpl := singleSummary(cfg, trials, nil)
		return driveExecCampaign(ctx, tmpl, trials, f)
	}
	progress, closeSink, report, tally, err := driveProgress(f)
	if err != nil {
		return err
	}
	sum, err := multicast.RunCampaign(ctx, cfg, f.plan(trials, progress))
	if lerr := writeChaosLog(f); lerr != nil && err == nil {
		err = lerr
	}
	if cerr := closeSink(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return finishDrive(sum, f.sumOut, report, tally)
}

// driveScenario supervises a scenario-sweep campaign with k shard
// workers.
func driveScenario(ctx context.Context, name string, opts multicast.ScenarioOptions, trials int, f driveFlags) error {
	scen, err := lookupScenario(name)
	if err != nil {
		return err
	}
	if f.exec {
		points := multicast.ExpandScenario(scen, opts)
		if len(points) == 0 {
			return fmt.Errorf("scenario %s expanded to zero points", name)
		}
		tmpl := sweepSummary(scen, opts, points, trials, nil)
		return driveExecCampaign(ctx, tmpl, trials, f)
	}
	progress, closeSink, report, tally, err := driveProgress(f)
	if err != nil {
		return err
	}
	sum, err := multicast.RunScenarioCampaign(ctx, scen, opts, f.plan(trials, progress))
	if lerr := writeChaosLog(f); lerr != nil && err == nil {
		err = lerr
	}
	if cerr := closeSink(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return finishDrive(sum, f.sumOut, report, tally)
}

// driveExecCampaign drives the campaign with mcast subprocess workers:
// each shard re-executes this binary with the same workload flags plus
// its -shard slice and artifact path. A failed child restarts from
// scratch (its own checkpoint state is not shared), still under the
// driver's bounded retries, and the merged result is identical either
// way.
func driveExecCampaign(ctx context.Context, tmpl *multicast.Summary, trials int, f driveFlags) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	base := workerArgs()
	// Children size their own trial pools; an explicit positive -workers
	// from the operator stands (workerArgs already forwards it), but
	// otherwise — unset, or the "-workers=0 means GOMAXPROCS" default —
	// each child would grab every core and oversubscribe the box k-fold,
	// so divide the cores like the in-process driver does. Appending last
	// makes the division override a forwarded -workers=0.
	if w, ok := childWorkers(flagWasSet("workers"), f.workers, f.shards, runtime.GOMAXPROCS(0)); ok {
		base = append(base, fmt.Sprintf("-workers=%d", w))
	}
	progress, closeSink, report, tally, err := driveProgress(f)
	if err != nil {
		return err
	}
	sum, err := driver.Run(ctx, driver.Spec{Template: tmpl, Trials: trials}, driver.Options{
		Shards:   f.shards,
		Retries:  f.retries,
		Dir:      f.dir,
		Resume:   f.resume,
		Progress: progress,
		Spawn: func(ctx context.Context, shard, shards int, artifact string) *exec.Cmd {
			args := append(append([]string(nil), base...),
				fmt.Sprintf("-shard=%d/%d", shard, shards),
				fmt.Sprintf("-summary-out=%s", artifact))
			cmd := exec.CommandContext(ctx, self, args...)
			cmd.Stdout = io.Discard // children print their own summaries
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if cerr := closeSink(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return finishDrive(sum, f.sumOut, report, tally)
}

// workerArgs rebuilds the explicitly set command-line flags a shard
// worker child must inherit — the workload and run flags, minus the
// driver's own (the child is a plain `-shard i/k -summary-out …` run).
func workerArgs() []string {
	drop := map[string]bool{
		"drive": true, "drive-exec": true, "drive-schedule": true, "progress-json": true,
		"resume": true, "campaign-dir": true,
		"retries": true, "crash-after": true, "summary-out": true, "shard": true,
		"chaos-seed": true, "chaos-faults": true, "chaos-log": true,
		"timeout": true, // the parent enforces the deadline and kills children
	}
	var args []string
	flag.Visit(func(fl *flag.Flag) {
		if !drop[fl.Name] {
			args = append(args, fmt.Sprintf("-%s=%s", fl.Name, fl.Value.String()))
		}
	})
	return args
}

// childWorkers decides the -workers flag appended to a subprocess shard
// worker's command line: an explicit positive operator value stands
// (forwarded by workerArgs, nothing appended), while unset — or an
// explicit -workers=0, which a child would expand to full GOMAXPROCS,
// oversubscribing the box k-fold — becomes the cores divided evenly
// across the shards, at least 1 each.
func childWorkers(explicit bool, flagValue, shards, gomaxprocs int) (int, bool) {
	if explicit && flagValue > 0 {
		return 0, false
	}
	return max(1, gomaxprocs/max(shards, 1)), true
}

// flagWasSet reports whether the named flag was given explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}
