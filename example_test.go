package multicast_test

import (
	"context"
	"fmt"

	"multicast"
)

// Run a broadcast through a jammed 64-node network. Executions are
// deterministic per seed, so the output is stable.
func ExampleRun() {
	m, err := multicast.Run(multicast.Config{
		N:         64,
		Algorithm: multicast.AlgoMultiCast,
		Adversary: multicast.FullBurstJammer(0),
		Budget:    10_000,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("everyone informed:", m.AllInformedSlot > 0)
	fmt.Println("Eve exhausted her budget:", m.EveEnergy == 10_000)
	fmt.Println("no premature halts:", !m.Invariants.Any())
	// Output:
	// everyone informed: true
	// Eve exhausted her budget: true
	// no premature halts: true
}

// Compare the energy a defender spends with the attacker's budget: the
// essence of resource competitiveness (Definition 3.1).
func ExampleRunTrials() {
	ms, err := multicast.RunTrials(multicast.Config{
		N:         64,
		Algorithm: multicast.AlgoMultiCast,
		Adversary: multicast.RandomFractionJammer(0.5),
		Budget:    50_000,
		Seed:      1,
	}, 4)
	if err != nil {
		panic(err)
	}
	competitive := true
	for _, m := range ms {
		if m.MaxNodeEnergy*10 > m.EveEnergy {
			competitive = false // a defender paid more than T/10
		}
	}
	fmt.Println("trials:", len(ms))
	fmt.Println("every defender paid <10% of Eve's spend:", competitive)
	// Output:
	// trials: 4
	// every defender paid <10% of Eve's spend: true
}

// Stream one shard of a multi-machine trial batch. Shard 1 of 3 runs
// exactly the trials t ≡ 1 (mod 3) of the same seeded batch (trial t
// always uses seed Seed+t), and the sink sees them in ascending trial
// order — so per-shard summaries merge bit-identically to the
// unsharded run, whatever the worker counts (see docs/OPERATIONS.md).
func ExampleRunTrialsContext() {
	cfg := multicast.Config{
		N:         64,
		Algorithm: multicast.AlgoMultiCast,
		Adversary: multicast.RandomFractionJammer(0.5),
		Budget:    20_000,
		Seed:      1,
	}
	var trials []int
	err := multicast.RunTrialsContext(context.Background(), cfg,
		multicast.TrialPlan{
			Trials:  10,
			Shard:   multicast.Shard{Index: 1, Count: 3},
			Workers: 2,
		},
		func(t int, m multicast.Metrics) error {
			trials = append(trials, t)
			return nil
		})
	if err != nil {
		panic(err)
	}
	fmt.Println("trials run by shard 1/3:", trials)
	// Output:
	// trials run by shard 1/3: [1 4 7]
}

// Select a workload scenario from the registry by name and expand it
// into concrete sweep points — the same points `mcast -scenario
// channel-ladder` runs, ready for RunSweepContext.
func ExampleScenarioByName() {
	scen, ok := multicast.ScenarioByName("channel-ladder")
	if !ok {
		panic("not registered")
	}
	points := multicast.ExpandScenario(scen, multicast.ScenarioOptions{Seed: 7})
	for _, p := range points {
		fmt.Printf("%-6s %s on %d channels (T=%d)\n",
			p.Label, p.Config.Algorithm, p.Config.Channels, p.Config.Budget)
	}
	// Output:
	// C=2    multicast-c on 2 channels (T=200000)
	// C=8    multicast-c on 8 channels (T=200000)
	// C=32   multicast-c on 32 channels (T=200000)
	// C=128  multicast-c on 128 channels (T=200000)
}

// Select algorithms by name, e.g. from CLI flags.
func ExampleParseAlgorithm() {
	kind, err := multicast.ParseAlgorithm("MultiCastAdv")
	fmt.Println(kind, err)
	_, err = multicast.ParseAlgorithm("quantum")
	fmt.Println(err != nil)
	// Output:
	// multicastadv <nil>
	// true
}
