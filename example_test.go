package multicast_test

import (
	"fmt"

	"multicast"
)

// Run a broadcast through a jammed 64-node network. Executions are
// deterministic per seed, so the output is stable.
func ExampleRun() {
	m, err := multicast.Run(multicast.Config{
		N:         64,
		Algorithm: multicast.AlgoMultiCast,
		Adversary: multicast.FullBurstJammer(0),
		Budget:    10_000,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("everyone informed:", m.AllInformedSlot > 0)
	fmt.Println("Eve exhausted her budget:", m.EveEnergy == 10_000)
	fmt.Println("no premature halts:", !m.Invariants.Any())
	// Output:
	// everyone informed: true
	// Eve exhausted her budget: true
	// no premature halts: true
}

// Compare the energy a defender spends with the attacker's budget: the
// essence of resource competitiveness (Definition 3.1).
func ExampleRunTrials() {
	ms, err := multicast.RunTrials(multicast.Config{
		N:         64,
		Algorithm: multicast.AlgoMultiCast,
		Adversary: multicast.RandomFractionJammer(0.5),
		Budget:    50_000,
		Seed:      1,
	}, 4)
	if err != nil {
		panic(err)
	}
	competitive := true
	for _, m := range ms {
		if m.MaxNodeEnergy*10 > m.EveEnergy {
			competitive = false // a defender paid more than T/10
		}
	}
	fmt.Println("trials:", len(ms))
	fmt.Println("every defender paid <10% of Eve's spend:", competitive)
	// Output:
	// trials: 4
	// every defender paid <10% of Eve's spend: true
}

// Select algorithms by name, e.g. from CLI flags.
func ExampleParseAlgorithm() {
	kind, err := multicast.ParseAlgorithm("MultiCastAdv")
	fmt.Println(kind, err)
	_, err = multicast.ParseAlgorithm("quantum")
	fmt.Println(err != nil)
	// Output:
	// multicastadv <nil>
	// true
}
