package multicast

import (
	"context"
	"fmt"

	"multicast/internal/cache"
	"multicast/internal/campaign"
	"multicast/internal/chaos"
	"multicast/internal/driver"
	"multicast/internal/sim"
)

// Summary is the versioned, mergeable campaign artifact (schema-version
// checked on read; see internal/campaign for the format). One schema
// covers both campaign shapes: a scenario sweep carries its scenario
// name and one point per sweep point; a single-workload campaign has an
// empty scenario name and exactly one point. Merge rules refuse mixed
// campaigns, missing or duplicate shards, and unknown schema versions.
type Summary = campaign.Summary

// SummaryPoint is one workload point's slice of a Summary.
type SummaryPoint = campaign.Point

// SummarySchemaVersion is the artifact schema this library reads and
// writes; files with any other schema_version are refused by name.
const SummarySchemaVersion = campaign.SchemaVersion

// CampaignEvent is one per-shard progress notification from a driven
// campaign. Events are delivered serially but interleave across shards.
type CampaignEvent = driver.Event

// Campaign progress event kinds (CampaignEvent.Kind).
const (
	// CampaignShardStart: a shard worker attempt begins (Done cells
	// already checkpointed when resuming).
	CampaignShardStart = driver.EventStart
	// CampaignShardCell: a shard worker completed and checkpointed one
	// grid cell.
	CampaignShardCell = driver.EventCell
	// CampaignShardDone: a shard's artifact is complete on disk.
	CampaignShardDone = driver.EventShardDone
	// CampaignShardRetry: a shard attempt failed and will be retried,
	// resuming from its checkpoint.
	CampaignShardRetry = driver.EventRetry
	// CampaignShardDiscard: a corrupt or misdelivered shard artifact was
	// deleted and its shard re-runs (Err carries the reason).
	CampaignShardDiscard = driver.EventDiscard
)

// CampaignEvent.Cache values on CampaignShardCell events of a campaign
// running with CampaignPlan.CacheDir (empty otherwise).
const (
	// CampaignCellCacheHit: the cell's result was replayed from the cache.
	CampaignCellCacheHit = driver.CacheHit
	// CampaignCellCacheMiss: the cell was simulated (and its result stored).
	CampaignCellCacheMiss = driver.CacheMiss
)

// CampaignSchedule picks how a driven campaign's grid cells are
// distributed over workers; checkpoints are schedule-agnostic, so a
// campaign killed under one schedule resumes exactly under the other.
type CampaignSchedule = driver.Schedule

const (
	// CampaignScheduleStatic (the default, also the zero value) pins
	// shard i to the cells g ≡ i (mod k), one worker pool per shard.
	CampaignScheduleStatic = driver.ScheduleStatic
	// CampaignScheduleSteal runs one work-stealing pool over the whole
	// grid: workers claim contiguous cell ranges and re-split the largest
	// remaining range when one goes idle, so heterogeneous workers finish
	// together. Results land in ascending grid order per shard, so the
	// merged summary stays bit-identical to the static run's.
	CampaignScheduleSteal = driver.ScheduleSteal
)

// ParseCampaignSchedule resolves a schedule name ("static", "steal";
// empty means static) — the -drive-schedule CLI grammar.
func ParseCampaignSchedule(s string) (CampaignSchedule, error) { return driver.ParseSchedule(s) }

// ErrCorruptArtifact marks a campaign artifact whose bytes cannot be
// trusted (truncated mid-JSON, failing its content checksum); test with
// errors.Is. ErrCorruptCheckpoint is its sibling for checkpoint
// sidecars — that one is terminal on resume (see docs/OPERATIONS.md).
var (
	ErrCorruptArtifact   = campaign.ErrCorruptArtifact
	ErrCorruptCheckpoint = campaign.ErrCorruptCheckpoint
)

// Chaos harness aliases: a ChaosPlan is a seeded fault schedule played
// into a driven campaign by a ChaosInjector, every injection emitted as
// a canonical ChaosEvent (see internal/chaos).
type (
	// ChaosPlan is a seeded, deterministic fault schedule.
	ChaosPlan = chaos.Plan
	// ChaosRule schedules one fault (see ParseChaosRules for the CLI
	// grammar and the unset-value conventions).
	ChaosRule = chaos.Rule
	// ChaosEvent is one injected fault in the canonical, diffable log.
	ChaosEvent = chaos.Event
	// ChaosInjector plays one plan into one driven campaign.
	ChaosInjector = chaos.Injector
)

// NewChaosInjector validates a fault schedule and returns its injector;
// set it as CampaignPlan.Chaos. Create a fresh injector per campaign
// run — rules fire at most once per injector.
func NewChaosInjector(p ChaosPlan) (*ChaosInjector, error) { return chaos.New(p) }

// ParseChaosRules parses the -chaos-faults grammar
// (kind[@shard[:cell[:attempt]]], comma-separated; "*" = seeded
// choice) into fault rules.
func ParseChaosRules(s string) ([]ChaosRule, error) { return chaos.ParseRules(s) }

// CampaignPlan describes a driven campaign: the whole (point × trial)
// grid split into Shards shard workers that run concurrently, each
// checkpointing its progress at grid-cell granularity into Dir, with
// failed shards retried (resuming at their next undone cell) up to
// Retries times. The merged result is bit-identical to the unsharded
// run's summary — shard count, worker counts, and interruptions never
// change results, only who computes which cell when.
type CampaignPlan struct {
	// Trials is the trial count per point; trial t of point p runs with
	// the point's seed + t (the runner's determinism contract).
	Trials int
	// Shards is k: shard i owns the grid cells g ≡ i (mod k). Zero
	// means 1.
	Shards int
	// Schedule picks who computes those cells: CampaignScheduleStatic
	// (default) runs each shard on its own worker pool;
	// CampaignScheduleSteal runs one work-stealing pool over the whole
	// grid. Artifacts are bit-identical either way.
	Schedule CampaignSchedule
	// Workers caps each shard worker's trial pool; 0 divides GOMAXPROCS
	// evenly across shards.
	Workers int
	// Retries is how many times a failed shard is relaunched (resuming
	// from its checkpoint) before the campaign fails; 0 fails on the
	// first error.
	Retries int
	// Dir is the campaign directory holding shard artifacts and
	// checkpoints — the resume state. Required.
	Dir string
	// Resume continues a previously interrupted campaign in Dir:
	// complete shard artifacts are kept, checkpointed shards resume at
	// their next undone cell, and the final merge is unchanged. Without
	// Resume, a Dir already holding campaign files is refused.
	Resume bool
	// CheckpointEvery is the number of grid cells between checkpoint
	// flushes; 0 or 1 checkpoints after every cell.
	CheckpointEvery int
	// Engine selects the slot-loop engine for the expanded points of
	// RunScenarioCampaign (identical results, like Workers). RunCampaign
	// ignores it — Config.Engine governs there.
	Engine Engine
	// NodeWorkers partitions each slot's node stepping inside the
	// expanded points of RunScenarioCampaign (identical results, like
	// Engine). RunCampaign ignores it — Config.NodeWorkers governs there.
	NodeWorkers int
	// CacheDir, if non-empty, roots a content-addressed cell result
	// cache there (created if needed): every grid cell is looked up by
	// the sha256 of its identity (point workload, label, cell seed,
	// schema versions) before it is simulated, hits replay the stored
	// metrics, and misses store theirs back. Artifacts and the merged
	// summary are byte-identical with or without a cache — a damaged
	// entry reads as a miss, never as data — so overlapping campaigns
	// (re-runs, widened sweeps, added trials) only ever simulate new
	// cells. Discard the directory when SummarySchemaVersion bumps.
	CacheDir string
	// Progress, if non-nil, receives per-shard events. With CacheDir
	// set, CampaignShardCell events carry Cache = "hit" | "miss".
	Progress func(CampaignEvent)
	// Chaos, if non-nil, injects the given seeded fault schedule into
	// the run (tests and drills only). Implies keep-going supervision:
	// healthy shards finish even when a sibling fails, so the schedule
	// plays out deterministically.
	Chaos *ChaosInjector
}

func (p CampaignPlan) driverOptions() (driver.Options, error) {
	o := driver.Options{
		Shards:          max(p.Shards, 1),
		Schedule:        p.Schedule,
		Workers:         p.Workers,
		Retries:         p.Retries,
		Dir:             p.Dir,
		Resume:          p.Resume,
		CheckpointEvery: p.CheckpointEvery,
		Progress:        p.Progress,
	}
	if p.CacheDir != "" {
		store, err := cache.Open(p.CacheDir)
		if err != nil {
			return driver.Options{}, err
		}
		o.Cache = store
	}
	if p.Chaos != nil {
		o.Chaos = p.Chaos.Hooks()
	}
	return o, nil
}

// RunCampaign drives a single-workload campaign: Trials independently
// seeded executions of cfg, sharded over CampaignPlan.Shards concurrent
// workers with per-shard checkpointing, gathered and merged into the
// final summary. It is the in-process equivalent of launching k
// `mcast -shard i/k` runs and merging their artifacts — without
// shelling out, and with crash recovery: cancel or kill it mid-run and
// a second call with Resume set finishes from the checkpoints,
// producing a summary bit-identical to an uninterrupted run's.
func RunCampaign(ctx context.Context, cfg Config, plan CampaignPlan) (*Summary, error) {
	sc, err := cfg.build()
	if err != nil {
		return nil, err
	}
	tmpl := NewSummary(cfg, plan.Trials)
	opts, err := plan.driverOptions()
	if err != nil {
		return nil, err
	}
	return driver.Run(ctx, driver.Spec{
		Template: tmpl,
		Points:   []sim.Config{sc},
		Trials:   plan.Trials,
	}, opts)
}

// RunScenarioCampaign drives a scenario sweep as one campaign: the
// scenario expands under opts exactly as RunSweepContext would run it,
// and the flattened (point × trial) grid is sharded, checkpointed,
// retried, and merged like RunCampaign. The merged per-point summaries
// are bit-identical to the unsharded sweep's.
func RunScenarioCampaign(ctx context.Context, scen Scenario, opts ScenarioOptions, plan CampaignPlan) (*Summary, error) {
	points := ExpandScenario(scen, opts)
	if len(points) == 0 {
		return nil, fmt.Errorf("multicast: scenario %s expanded to zero points", scen.Name)
	}
	sims := make([]sim.Config, len(points))
	for i, p := range points {
		p.Config.Engine = plan.Engine
		p.Config.NodeWorkers = plan.NodeWorkers
		sc, err := p.Config.build()
		if err != nil {
			return nil, err
		}
		sims[i] = sc
	}
	tmpl := NewScenarioSummary(scen, opts.Seed, plan.Trials, points)
	dopts, err := plan.driverOptions()
	if err != nil {
		return nil, err
	}
	return driver.Run(ctx, driver.Spec{
		Template: tmpl,
		Points:   sims,
		Trials:   plan.Trials,
	}, dopts)
}

// NewSummary returns the empty, unsharded artifact skeleton of a
// single-workload campaign of cfg: the campaign identity every shard
// artifact and checkpoint of that campaign must match. RunCampaign and
// `mcast -summary-out` both build on it, so their artifacts merge.
func NewSummary(cfg Config, trials int) *Summary {
	label := string(cfg.Algorithm)
	if label == "" {
		label = string(AlgoMultiCast)
	}
	return campaign.New("", cfg.Seed, trials, []campaign.Point{
		{Label: label, Workload: cfg.Describe()},
	})
}

// NewScenarioSummary returns the empty, unsharded artifact skeleton of
// a scenario-sweep campaign over the given expanded points (seed is the
// expansion's base seed, ScenarioOptions.Seed).
func NewScenarioSummary(scen Scenario, seed uint64, trials int, points []ScenarioPoint) *Summary {
	meta := make([]campaign.Point, len(points))
	for i, p := range points {
		meta[i] = campaign.Point{Label: p.Label, Workload: p.Config.Describe()}
	}
	return campaign.New(scen.Name, seed, trials, meta)
}

// ReadSummary loads and validates one campaign artifact, refusing
// unknown schema versions by name.
func ReadSummary(path string) (*Summary, error) { return campaign.Read(path) }

// MergeSummaries combines the k shard summaries of one campaign into
// its full summary, enforcing the exact-coverage rules: one campaign
// identity, one k-way split, all k distinct shards present, full trial
// coverage per point. It replaces shelling out to `mcast -merge` for
// library users; the result is bit-identical to the unsharded run's
// summary while per-point trial counts stay within the stats sample
// cap.
func MergeSummaries(sums []*Summary) (*Summary, error) {
	in := make([]campaign.Input, len(sums))
	for i, s := range sums {
		in[i] = campaign.Input{Sum: s}
	}
	return campaign.Merge(in)
}

// MergeSummaryFiles reads the given artifact files and merges them like
// MergeSummaries; error messages name the offending paths.
func MergeSummaryFiles(paths []string) (*Summary, error) { return campaign.MergeFiles(paths) }
