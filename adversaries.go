package multicast

import (
	"fmt"

	"multicast/internal/adversary"
	"multicast/internal/core"
	"multicast/internal/rng"
)

// NoJammer returns the absent adversary (T = 0).
func NoJammer() Adversary { return adversary.None() }

// FullBurstJammer jams every channel from slot start until the budget is
// exhausted — the strategy behind the Ω(T/C) time lower bound.
func FullBurstJammer(start int64) Adversary { return adversary.FullBurst(start) }

// FractionJammer jams a fixed ⌈f·c⌉-channel block every slot. Against
// uniformly hopping nodes this is distributionally equivalent to jamming a
// random f-fraction (the workload of Lemmas 4.1/5.1/6.7).
func FractionJammer(f float64) Adversary { return adversary.BlockFraction(f) }

// RandomFractionJammer jams each channel independently with probability f
// per slot, from a stream fixed before execution (oblivious).
func RandomFractionJammer(f float64) Adversary { return adversary.RandomFraction(f) }

// SweepJammer jams a width-channel window rotating one channel per slot.
func SweepJammer(width int) Adversary { return adversary.Sweep(width) }

// PulseJammer jams an f-fraction block during the first duty slots of
// every period, stopping entirely at stopAfter (0 = never).
func PulseJammer(period, duty int64, f float64, stopAfter int64) Adversary {
	return adversary.Pulse(period, duty, f, stopAfter)
}

// StopJammingAfter silences any jammer from slot stop onwards — used to
// measure shutdown latency once Eve gives up.
func StopJammingAfter(inner Adversary, stop int64) Adversary {
	return adversary.StopAfter(inner, stop)
}

// PhaseTargetedJammer jams fraction f of the channels only during
// MultiCastAdv phases with phase number targetJ — the paper's worst-case
// oblivious attack: concentrate the budget on the "good" phases
// j = lg n − 1 where epidemic broadcast could succeed. params must match
// the algorithm's; channelsC ≤ 0 targets the unlimited-channel schedule,
// otherwise the MultiCastAdv(C) schedule for that C.
func PhaseTargetedJammer(params Params, channelsC, targetJ int, f float64) Adversary {
	name := fmt.Sprintf("phase-targeted(j=%d,f=%.2f)", targetJ, f)
	return adversary.NewFactory(name, func(r *rng.Source) adversary.Strategy {
		var sched *core.AdvSchedule
		if channelsC > 0 {
			sched = core.NewAdvScheduleC(params, channelsC)
		} else {
			sched = core.NewAdvSchedule(params)
		}
		pred := sched.ActiveFunc(func(w core.StepWindow) bool { return w.J == targetJ })
		return adversary.NewWindowed(name, adversary.BlockFraction(f).New(r), pred)
	})
}

// ReactiveJammer is an *adaptive* jammer (the §8 future-work model, beyond
// the paper's oblivious proofs): each slot it jams the channels that
// carried transmissions in the previous slot, up to maxFraction of the
// spectrum. Experiment E13 tests the paper's conjecture that MultiCast
// survives it unmodified.
func ReactiveJammer(maxFraction float64) Adversary { return adversary.Reactive(maxFraction) }

// CamperJammer is an adaptive follower jammer: it camps for dwell slots on
// every channel it saw deliver a message, tracking at most maxChans at a
// time.
func CamperJammer(dwell int64, maxChans int) Adversary {
	return adversary.Camper(dwell, maxChans)
}
