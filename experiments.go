package multicast

import "multicast/internal/experiments"

// Experiment is a runnable reproduction experiment (E1–E14); each checks
// one theorem, lemma, or in-text claim of the paper. See DESIGN.md §3.
type Experiment = experiments.Experiment

// ExperimentResult is a rendered experiment table.
type ExperimentResult = experiments.Result

// ExperimentConfig controls experiment effort (trials, quick sweeps).
type ExperimentConfig = experiments.RunConfig

// Experiments returns all reproduction experiments in ID order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment (case-insensitive), e.g. "E3".
func ExperimentByID(id string) (Experiment, bool) { return experiments.Get(id) }
