package multicast_test

import (
	"context"
	"os"
	"strings"
	"testing"

	"multicast"
)

// Every registered scenario must be described in the operator docs —
// an undocumented scenario fails here (and in the CI docs check), not
// in front of a user.
func TestScenariosDocumented(t *testing.T) {
	docs, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading operator docs: %v", err)
	}
	for _, s := range multicast.Scenarios() {
		if !strings.Contains(string(docs), "`"+s.Name+"`") {
			t.Errorf("scenario %q is not described in docs/OPERATIONS.md", s.Name)
		}
	}
}

// The registry round-trips through the public API: every scenario is
// findable by name and expands to buildable, runnable configurations.
func TestScenarioPublicAPI(t *testing.T) {
	all := multicast.Scenarios()
	if len(all) == 0 {
		t.Fatal("no scenarios registered")
	}
	for _, s := range all {
		got, ok := multicast.ScenarioByName(strings.ToUpper(s.Name))
		if !ok || got.Name != s.Name {
			t.Errorf("ScenarioByName(%q) failed", s.Name)
		}
		pts := multicast.ExpandScenario(s, multicast.ScenarioOptions{Seed: 3, Quick: true})
		if len(pts) == 0 {
			t.Errorf("%s: zero points", s.Name)
		}
		for _, p := range pts {
			if p.Config.Seed != 3 {
				t.Errorf("%s %s: base seed not propagated", s.Name, p.Label)
			}
			if p.Config.Describe() == "" {
				t.Errorf("%s %s: empty workload identity", s.Name, p.Label)
			}
		}
	}
}

// A public-API sweep sharded two ways covers exactly the unsharded
// grid: the cells of the two shards partition the (point × trial)
// cells and every cell's metrics are bit-identical to the unsharded
// sweep's.
func TestRunSweepContextShardPartition(t *testing.T) {
	scen, ok := multicast.ScenarioByName("duel")
	if !ok {
		t.Fatal("duel not registered")
	}
	pts := multicast.ExpandScenario(scen, multicast.ScenarioOptions{N: 64, Budget: 10_000, Seed: 5})
	cfgs := make([]multicast.Config, len(pts))
	for i, p := range pts {
		cfgs[i] = p.Config
	}
	const trials = 3
	type cell struct{ p, t int }
	whole := map[cell]multicast.Metrics{}
	err := multicast.RunSweepContext(context.Background(), cfgs,
		multicast.SweepPlan{Trials: trials},
		func(p, tr int, m multicast.Metrics) error {
			whole[cell{p, tr}] = m
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != len(cfgs)*trials {
		t.Fatalf("unsharded sweep ran %d cells, want %d", len(whole), len(cfgs)*trials)
	}
	got := map[cell]multicast.Metrics{}
	for i := 0; i < 2; i++ {
		err := multicast.RunSweepContext(context.Background(), cfgs,
			multicast.SweepPlan{Trials: trials, Shard: multicast.Shard{Index: i, Count: 2}, Workers: i + 1},
			func(p, tr int, m multicast.Metrics) error {
				if _, dup := got[cell{p, tr}]; dup {
					t.Errorf("cell (%d,%d) ran on both shards", p, tr)
				}
				got[cell{p, tr}] = m
				return nil
			})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	if len(got) != len(whole) {
		t.Fatalf("shards covered %d cells, want %d", len(got), len(whole))
	}
	for c, m := range whole {
		if got[c] != m {
			t.Errorf("cell (%d,%d): sharded metrics diverge from unsharded sweep", c.p, c.t)
		}
	}
}
