package multicast_test

// One benchmark per reproduction experiment (E1–E14, DESIGN.md §3): each
// runs the experiment's workload in quick mode and reports the headline
// metric the paper's claim is about via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates (a trimmed version of) every table. The full tables are
// produced by `go run ./cmd/mcbench`. The Ablation* benchmarks probe the
// design choices DESIGN.md calls out (the n/2 channel rule and the α
// trade-off of MultiCastAdv).

import (
	"strconv"
	"testing"

	"multicast"
)

// benchExperiment runs one experiment per benchmark iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := multicast.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := e.Run(multicast.ExperimentConfig{Quick: true, Trials: 1, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		rows = len(res.Rows)
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(float64(rows), "table-rows")
}

func BenchmarkE1EpidemicIteration(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2CoreSweepT(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3MultiCastSweepT(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4VsSingleChannel(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5AdvSweepT(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6LimitedChannels(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7AdvLimitedChannels(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8FastShutdown(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Competitiveness(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10SweepN(b *testing.B)            { benchExperiment(b, "E10") }
func BenchmarkE11SafetyInvariants(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12LowerBoundGap(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13AdaptiveEve(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14GoodPhase(b *testing.B)         { benchExperiment(b, "E14") }

// BenchmarkEngineSlotsPerSecond measures raw simulator throughput:
// node-slots processed per second for a mid-size MultiCast run.
func BenchmarkEngineSlotsPerSecond(b *testing.B) {
	const n = 256
	var nodeSlots int64
	for i := 0; i < b.N; i++ {
		m, err := multicast.Run(multicast.Config{
			N:         n,
			Algorithm: multicast.AlgoMultiCast,
			Adversary: multicast.FullBurstJammer(0),
			Budget:    50_000,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodeSlots += m.Slots * n
	}
	b.ReportMetric(float64(nodeSlots)/b.Elapsed().Seconds(), "node-slots/s")
}

// BenchmarkAblationChannelCount probes the paper's §4 design argument for
// using n/2 channels (c = n/ChannelDiv). Two jammer models separate the
// effects: against a *fraction* jammer (strategy scales with the
// spectrum), more channels drain Eve's budget faster; against a
// *fixed-power* jammer (constant channels per slot), more channels dilute
// her coverage but also dilute honest rendezvous. The paper's n/2 is the
// Θ(n) sweet spot where one expected peer shares each channel.
func BenchmarkAblationChannelCount(b *testing.B) {
	const n = 256
	jammers := map[string]multicast.Adversary{
		"fraction50": multicast.FractionJammer(0.5),
		"fixed64":    multicast.SweepJammer(64),
	}
	for jn, jam := range jammers {
		for _, div := range []int{1, 2, 4, 8} {
			b.Run(jn+"/n_div_"+strconv.Itoa(div), func(b *testing.B) {
				params := multicast.SimParams()
				params.ChannelDiv = div
				var slots, cost float64
				for i := 0; i < b.N; i++ {
					m, err := multicast.Run(multicast.Config{
						N:         n,
						Algorithm: multicast.AlgoMultiCast,
						Params:    params,
						Adversary: jam,
						Budget:    100_000,
						Seed:      uint64(i) + 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					slots += float64(m.Slots)
					cost += float64(m.MaxNodeEnergy)
				}
				b.ReportMetric(slots/float64(b.N), "slots/run")
				b.ReportMetric(cost/float64(b.N), "max-energy/run")
			})
		}
	}
}

// BenchmarkAblationAlpha probes MultiCastAdv's α trade-off (§1: "ideally α
// should be as small as possible, but the constant hiding behind the
// big-O notation increases as α approaches zero"). Jam-free runs expose
// the τ = Õ(n^2α) term directly.
func BenchmarkAblationAlpha(b *testing.B) {
	const n = 32
	for _, alpha := range []float64{0.15, 0.20, 0.24} {
		b.Run("alpha_"+strconv.FormatFloat(alpha, 'f', 2, 64), func(b *testing.B) {
			params := multicast.SimParams()
			params.Alpha = alpha
			var slots, cost float64
			for i := 0; i < b.N; i++ {
				m, err := multicast.Run(multicast.Config{
					N:         n,
					Algorithm: multicast.AlgoMultiCastAdv,
					Params:    params,
					Seed:      uint64(i) + 1,
					MaxSlots:  1 << 27,
				})
				if err != nil {
					b.Fatal(err)
				}
				slots += float64(m.Slots)
				cost += float64(m.MaxNodeEnergy)
			}
			b.ReportMetric(slots/float64(b.N), "slots/run")
			b.ReportMetric(cost/float64(b.N), "max-energy/run")
		})
	}
}

// BenchmarkAblationSparseEpidemic contrasts the dense epidemic broadcast
// of MultiCastCore (constant p, cost Θ(T/n)) with MultiCast's sparse one
// (decaying pᵢ, cost Θ(√(T/n))) at the same budget — the design change §5
// introduces to improve competitiveness.
func BenchmarkAblationSparseEpidemic(b *testing.B) {
	const n, budget = 256, 200_000
	for _, kind := range []multicast.AlgorithmKind{multicast.AlgoMultiCastCore, multicast.AlgoMultiCast} {
		b.Run(string(kind), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				m, err := multicast.Run(multicast.Config{
					N:         n,
					Algorithm: kind,
					Adversary: multicast.FullBurstJammer(0),
					Budget:    budget,
					Seed:      uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				cost += float64(m.MaxNodeEnergy)
			}
			b.ReportMetric(cost/float64(b.N), "max-energy/run")
		})
	}
}
