// Package multicast is a simulation library for fast, resource-competitive
// broadcast in multi-channel radio networks, reproducing
//
//	Haimin Chen and Chaodong Zheng.
//	"Fast and Resource Competitive Broadcast in Multi-channel Radio
//	Networks". SPAA 2019 (arXiv:1904.06328).
//
// The model (paper §3): a synchronous single-hop radio network of n honest
// nodes and an oblivious jamming adversary, Eve, with an energy budget T.
// Per slot a node may broadcast, listen, or idle on one channel (1 energy
// unit for the first two); Eve may jam any channel set at 1 unit per
// channel·slot. One source must deliver a message m to everyone while
// keeping every node's energy o(T).
//
// The package provides the paper's five algorithms —
//
//	MultiCastCore     knows n and T     Θ̃(T/n) time, Θ̃(T/n) cost     (Fig. 1)
//	MultiCast         knows n           Θ̃(T/n) time, Θ̃(√(T/n)) cost  (Fig. 2)
//	MultiCastAdv      knows nothing     Θ̃(T/n^(1−2α) + n^2α)          (Fig. 4)
//	MultiCastC        C ≤ n/2 channels  Θ̃(T/C) time                   (Fig. 5)
//	MultiCastAdvC     C channels        Θ̃(T/C^(1−2α))                 (Fig. 6)
//
// — plus the single-channel baseline they are compared against (Gilbert et
// al., SPAA 2014 shape), a library of oblivious jammer strategies, a
// deterministic slot-level simulator with energy auditing, and the
// experiment harness that regenerates the reproduction tables (E1–E14).
//
// # Quick start
//
//	m, err := multicast.Run(multicast.Config{
//		N:         256,
//		Algorithm: multicast.AlgoMultiCast,
//		Adversary: multicast.RandomFractionJammer(0.5),
//		Budget:    100_000,
//		Seed:      1,
//	})
//	// m.Slots, m.MaxNodeEnergy, m.EveEnergy, m.Invariants …
//
// Executions are deterministic given (Config, Seed); RunTrials fans seeds
// out over all CPUs, and RunTrialsContext streams metrics (optionally one
// shard of a multi-machine batch) without buffering. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// # Engine selection
//
// The simulator has two slot-loop implementations, selected by
// Config.Engine:
//
//   - EngineDense steps every non-halted node in every slot — the
//     reference semantics.
//   - EngineSparse exploits the schedules' sparsity: each node
//     pre-computes its next non-idle slot (the protocol.Sleeper
//     contract), the engine keeps a bucket-ring wake list, and slot
//     ranges in which no node acts are skipped in bulk. Eve is still
//     charged for jamming in skipped ranges — her jam sets are
//     unobservable there, so only their aggregate size matters, which
//     oblivious strategies report via SpendRange. Adaptive jammers and
//     Observers force per-slot stepping (no range skipping), because
//     both observe every slot.
//   - EngineAuto (the default) picks Sparse whenever it applies.
//
// Node randomness is skip-sampled: the protocols' per-slot choices are
// i.i.d. within a step window, so each node draws the geometric gap to
// its next action in closed form (one uniform) instead of flipping one
// coin per slot. Idle slots consume no randomness in either engine, and
// both engines run the same node code, making them bit-identical by
// construction. Consequence: seeded trajectories are NOT comparable with
// releases that used per-slot coins (PR ≤ 1); all distributions are
// unchanged.
//
// The two engines produce bit-identical Metrics for every configuration
// and seed; the equivalence matrix and fuzz tests in internal/sim enforce
// this, and `mcbench -bench-sim BENCH_sim.json` tracks the speedup
// (≥ 2× on the low-density MultiCastCore scenario; ~5× after the
// gap-draw refactor). `mcbench -matrix` measures the whole
// algorithms × engines × densities grid.
//
// # Trial-layer determinism
//
// Statistical replication has its own bit-identity contract, layered on
// the engines': trial t of a batch always runs with seed Config.Seed+t,
// derived purely from the trial index — never from worker identity,
// scheduling, or shard layout — and streamed sinks receive metrics in
// ascending trial order. Shard i of k (TrialPlan.Shard) runs exactly the
// trials t ≡ i (mod k), so the union of any shard partition is the same
// multiset of executions as the unsharded batch, and shard summaries
// merged from their JSON artifacts (cmd/mcast -summary-out / -merge)
// are bit-identical to the single-machine summary while the batch fits
// the summary accumulators' sample cap (a documented approximation
// beyond it). The first error in trial order aborts a batch: queued
// trials never start and in-flight executions are interrupted, as they
// are on context cancellation.
//
// # Scenarios and sweeps
//
// Workloads worth re-running have names: the scenario registry
// (Scenarios, ScenarioByName) holds parameterized workload generators —
// density spectra, channel and population ladders, the jammer gauntlet,
// the paper's α regimes, the engine benchmark grid — that expand
// (ExpandScenario) into concrete Config points. RunSweepContext executes
// all of a sweep's points in one deterministic campaign by lifting the
// trial-layer contract one level: the (point × trial) grid is flattened
// into a single global index space (cell (p, t) runs with seed
// points[p].Seed + t, exactly as if point p ran alone), and SweepPlan's
// Shard slices that grid across machines, so a sweep sharded k ways and
// merged per point is bit-identical to the unsharded sweep. The
// experiment harness, `mcbench -matrix`, and `mcast -scenario` all
// enumerate through the same registry; `mcast -list-scenarios` prints
// it, and docs/OPERATIONS.md is the cross-machine campaign playbook.
//
// # Campaigns and artifacts
//
// Above the sweep layer sits the campaign layer: one versioned,
// mergeable artifact schema (Summary; single workloads and scenario
// sweeps share it) plus a resumable driver. RunCampaign and
// RunScenarioCampaign launch CampaignPlan.Shards concurrent shard
// workers over the flattened grid, checkpoint each shard's progress at
// grid-cell granularity into CampaignPlan.Dir, retry failed shards from
// their checkpoints, and merge the shard artifacts into the final
// summary. Because checkpoints always cover a prefix of a shard's
// in-order cell stream, a campaign killed at any instant and re-run
// with Resume produces a summary bit-identical to an uninterrupted
// run's. ReadSummary, MergeSummaries, and MergeSummaryFiles expose the
// artifact layer directly (exact-coverage merge rules: one campaign
// identity, all k distinct shards, full trial coverage, known schema
// version), so library users never shell out to `mcast -merge`.
package multicast
